"""Software-fault-isolation baseline (Ryoan [60] / Chancel [41] style).

The enclave-era data sandboxes confine *userspace* code with NaCl-style
SFI: every memory access is rewritten to ``base | (addr & mask)`` so the
program physically cannot address anything outside its region, and a
static verifier checks the rewrite before loading. The cost is paid on
every single load/store of the data-processing hot path — which is the
paper's §12 argument for Erebor: hardware-enforced sandbox boundaries
keep userspace code untouched.

This module implements that baseline for the simulated ISA so the
comparison is *measured on executed instructions*:

* :func:`sfi_instrument` — rewrite a program's memory accesses through a
  reserved register triple (r13 scratch, r14 mask, r15 base);
* :func:`sfi_verify` — the load-time checker: every load/store must go
  through the masked scratch register, no raw accesses, no syscalls;
* :func:`sfi_overhead` — run the same computation raw vs instrumented
  and report the userspace slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.errors import HardwareFault, SimulatorError
from ..hw.isa import I, Instr, assemble, disassemble

#: registers reserved by the SFI ABI (programs must not use them)
SFI_SCRATCH = "r13"
SFI_MASK = "r14"
SFI_BASE = "r15"

#: instructions an SFI verifier refuses outright (control/exit surface)
SFI_FORBIDDEN = frozenset({"syscall", "senduipi", "int", "tdcall",
                           "wrmsr", "mov_cr", "stac", "lidt", "ijmp",
                           "icall"})


class SfiVerifyError(Exception):
    """The program is not a valid SFI module."""


@dataclass
class SfiRegion:
    """The sandbox's one addressable window: [base, base+size)."""

    base: int
    size: int

    def __post_init__(self):
        if self.size & (self.size - 1):
            raise ValueError("SFI region size must be a power of two")
        if self.base % self.size:
            raise ValueError("SFI region base must be size-aligned")

    @property
    def mask(self) -> int:
        return self.size - 1


def sfi_prelude(region: SfiRegion) -> list[Instr]:
    """Pin the mask/base registers (the loader emits this before entry)."""
    return [
        I("movi", SFI_MASK, imm=region.mask),
        I("movi", SFI_BASE, imm=region.base),
    ]


def _masked_address(reg: str, imm: int) -> list[Instr]:
    """r13 = base | ((reg + imm) & mask) — the NaCl sandboxing sequence."""
    return [
        I("mov", SFI_SCRATCH, reg),
        I("addi", SFI_SCRATCH, imm=imm),
        I("and", SFI_SCRATCH, SFI_MASK),
        I("or", SFI_SCRATCH, SFI_BASE),
    ]


def sfi_instrument(instrs: list[Instr], region: SfiRegion) -> list[Instr]:
    """Rewrite every load/store through the masked scratch register."""
    out = list(sfi_prelude(region))
    for instr in instrs:
        if instr.op in SFI_FORBIDDEN:
            raise SfiVerifyError(
                f"instruction {instr.op!r} is not expressible in an SFI module")
        if instr.op == "load":
            out += _masked_address(instr.src, instr.imm)
            out.append(I("load", instr.dst, SFI_SCRATCH))
        elif instr.op == "store":
            out += _masked_address(instr.dst, instr.imm)
            out.append(I("store", SFI_SCRATCH, instr.src))
        elif instr.op in ("push", "pop"):
            # stack ops implicitly address memory: the stack pointer must
            # itself be confined; re-mask it before every use
            out += _masked_address("rsp", 0)
            out.append(I("mov", "rsp", SFI_SCRATCH))
            out.append(instr)
        else:
            out.append(instr)
    return out


def sfi_verify(blob: bytes) -> int:
    """Load-time verification; returns the number of checked accesses.

    Rules (a simplified NaCl checker):
    1. no forbidden instructions anywhere;
    2. every ``load``/``store`` addresses memory only through r13;
    3. each such access is immediately preceded by the canonical
       4-instruction masking sequence.
    """
    instrs = disassemble(blob)
    checked = 0
    for idx, instr in enumerate(instrs):
        if instr.op in SFI_FORBIDDEN:
            raise SfiVerifyError(f"forbidden instruction {instr.op!r} "
                                 f"at index {idx}")
        if instr.op in ("load", "store"):
            addr_reg = instr.src if instr.op == "load" else instr.dst
            if addr_reg != SFI_SCRATCH or instr.imm != 0:
                raise SfiVerifyError(
                    f"{instr.op} at index {idx} bypasses the mask "
                    f"(addresses via {addr_reg}+{instr.imm})")
            window = instrs[max(idx - 4, 0):idx]
            ops = [w.op for w in window]
            if ops != ["mov", "addi", "and", "or"] or any(
                    w.dst != SFI_SCRATCH for w in window):
                raise SfiVerifyError(
                    f"{instr.op} at index {idx} lacks the masking sequence")
            checked += 1
    return checked


def sfi_overhead(workload: list[Instr], region: SfiRegion,
                 *, data_pages: int = 4) -> tuple[int, int]:
    """Execute ``workload`` raw and SFI-instrumented; returns cycle pair.

    Both runs happen in user mode on the micro CPU with the same data
    region mapped; the delta is pure SFI instrumentation cost — the
    userspace tax Erebor's design avoids.
    """
    from ..hw.testbench import MicroMachine, USER_CODE_VA

    def run(instrs: list[Instr]) -> int:
        machine = MicroMachine()
        machine.map_data(region.base, data_pages, user=True)
        machine.load_code(USER_CODE_VA, instrs + [I("int", imm=99)],
                          user=True)
        machine.cpu.mode = "user"
        machine.cpu.rip = USER_CODE_VA
        machine.cpu.regs["rsp"] = region.base + data_pages * 4096 - 64
        before = machine.clock.cycles
        try:
            machine.cpu.run(max_steps=500_000, deliver_faults=False)
        except (HardwareFault, SimulatorError):
            pass   # the final int 99 has no handler: acts as a stop
        return machine.clock.cycles - before

    return run(workload), run(sfi_instrument(workload, region))
