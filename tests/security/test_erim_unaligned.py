"""ERIM-style unaligned sensitive sequences (satellite of §5.1).

ERIM showed that a privileged byte pair is dangerous even when it is not
an instruction the compiler emitted — hidden inside an immediate, or
straddling two adjacent instructions, a mid-instruction jump can still
reach it.  Erebor's stage-2 scan therefore checks *every byte offset*,
not just instruction boundaries.  These tests pin that property at all
three layers: the raw scanner, the booting monitor, and the
``VerifierReport`` V6 entry.
"""

import pytest

from repro.analysis.attacks import (
    erim_spanning_instructions,
    erim_unaligned_immediate,
)
from repro.analysis.verifier import StaticVerifier
from repro.core import BootVerificationError, erebor_boot
from repro.hw.isa import INSTR_SIZE, scan_for_sensitive
from repro.vm import CvmMachine, MachineConfig, MIB

CASES = [
    # (builder, offset of the 0xF0 byte, decoded sub-op name)
    (erim_unaligned_immediate, 5, "tdcall"),
    (erim_spanning_instructions, 11, "wrmsr"),
]
IDS = [b().name for b, _, _ in CASES]


def machine():
    return CvmMachine(MachineConfig(memory_bytes=512 * MIB))


@pytest.mark.parametrize("builder,offset,op", CASES, ids=IDS)
def test_scan_finds_the_unaligned_pair(builder, offset, op):
    text = builder().image.section(".text").data
    assert scan_for_sensitive(text) == [(offset, op)]
    # neither hit sits on an instruction boundary — that is the point
    assert offset % INSTR_SIZE != 0


def test_spanning_pair_straddles_the_boundary():
    # the 0xF0 is the last byte of instruction 0, the sub-opcode the
    # first byte of instruction 1
    text = erim_spanning_instructions().image.section(".text").data
    assert text[INSTR_SIZE - 1] == 0xF0
    assert scan_for_sensitive(text)[0][0] == INSTR_SIZE - 1


@pytest.mark.parametrize("builder,offset,op", CASES, ids=IDS)
def test_boot_rejects_at_the_byte_scan(builder, offset, op):
    attack = builder()
    assert not attack.passes_byte_scan
    with pytest.raises(BootVerificationError) as exc:
        erebor_boot(machine(), kernel_image=attack.image,
                    skip_instrumentation=True, cma_bytes=16 * MIB)
    message = str(exc.value)
    assert op in message
    assert f"{offset:#x}" in message


@pytest.mark.parametrize("builder,offset,op", CASES, ids=IDS)
def test_verifier_reports_v6_with_the_offset(builder, offset, op):
    report = StaticVerifier().verify_image(builder().image)
    assert "V6" in report.failed_checks
    check = {c.check: c for c in report.checks}["V6"]
    assert not check.passed
    assert check.first_offset == offset
    assert op in check.detail


@pytest.mark.parametrize("builder,offset,op", CASES, ids=IDS)
def test_skip_aligned_never_hides_these(builder, offset, op):
    """The unaligned pairs must survive the instrumentation-aware mode."""
    text = builder().image.section(".text").data
    assert (offset, op) in scan_for_sensitive(text, skip_aligned=True)
