"""In-kernel virtual filesystem.

A path-keyed tree of regular files with a page cache backed by simulated
physical frames. Two storage modes per file:

* *concrete* — contents held as bytes (configs, logs, channel blobs);
* *synthetic* — only a size is tracked (multi-MB benchmark payloads);
  reads return deterministic filler without allocating host memory.

The VFS also hosts DebugFS-style nodes: the paper's prototype emulates the
client↔monitor network relay through ``/sys/kernel/debug/...`` files, and
the artifact's experiments read the sandbox output channel the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory


class FsError(Exception):
    """Path or flag errors (maps to -ENOENT and friends)."""


class RegularFile:
    """One file: concrete bytes or a synthetic sized payload."""

    def __init__(self, name: str, data: bytes = b"", *, synthetic_size: int | None = None):
        self.name = name
        self._data = bytearray(data)
        self._synthetic_size = synthetic_size
        self._page_frames: dict[int, int] = {}   # page cache

    @property
    def size(self) -> int:
        if self._synthetic_size is not None:
            return self._synthetic_size
        return len(self._data)

    @property
    def synthetic(self) -> bool:
        return self._synthetic_size is not None

    def read_at(self, offset: int, size: int) -> bytes:
        if self.synthetic:
            end = min(offset + size, self._synthetic_size)
            if end <= offset:
                return b""
            # deterministic filler: repeat of the file name hash
            pattern = (self.name.encode() + b"#") * 8
            need = end - offset
            return (pattern * (need // len(pattern) + 1))[:need]
        return bytes(self._data[offset:offset + size])

    def write_at(self, offset: int, data: bytes) -> int:
        if self.synthetic:
            raise FsError(f"{self.name}: synthetic files are read-only")
        if offset > len(self._data):
            self._data.extend(b"\x00" * (offset - len(self._data)))
        self._data[offset:offset + len(data)] = data
        return len(data)

    def truncate(self) -> None:
        if self.synthetic:
            raise FsError(f"{self.name}: synthetic files are read-only")
        self._data.clear()
        self._page_frames.clear()

    def page_cache_frame(self, page_index: int, phys: PhysicalMemory) -> int:
        """Frame holding page N of this file (allocated on demand)."""
        fn = self._page_frames.get(page_index)
        if fn is None:
            fn = phys.alloc_frame(f"pagecache:{self.name}")
            if not self.synthetic:
                chunk = self.read_at(page_index << PAGE_SHIFT, PAGE_SIZE)
                if chunk:
                    phys.write(fn << PAGE_SHIFT, chunk)
            self._page_frames[page_index] = fn
        return fn


@dataclass
class DebugFsNode:
    """A hook-backed pseudo-file (read/write call into the owner)."""

    name: str
    on_read: Callable[[], bytes] | None = None
    on_write: Callable[[bytes], None] | None = None

    def read_at(self, offset: int, size: int) -> bytes:
        if self.on_read is None:
            raise FsError(f"{self.name}: not readable")
        return self.on_read()[offset:offset + size]

    def write_at(self, offset: int, data: bytes) -> int:
        if self.on_write is None:
            raise FsError(f"{self.name}: not writable")
        self.on_write(data)
        return len(data)

    @property
    def size(self) -> int:
        return len(self.on_read()) if self.on_read else 0


@dataclass
class OpenFile:
    """A file description (position + flags) behind an fd."""

    inode: object
    offset: int = 0
    readable: bool = True
    writable: bool = False


class Vfs:
    """Flat path-keyed filesystem (directories are implicit)."""

    def __init__(self):
        self.files: dict[str, object] = {}

    def create(self, path: str, data: bytes = b"", *,
               synthetic_size: int | None = None) -> RegularFile:
        f = RegularFile(path, data, synthetic_size=synthetic_size)
        self.files[path] = f
        return f

    def register(self, path: str, node: object) -> None:
        self.files[path] = node

    def lookup(self, path: str) -> object:
        node = self.files.get(path)
        if node is None:
            raise FsError(f"no such file: {path}")
        return node

    def exists(self, path: str) -> bool:
        return path in self.files

    def unlink(self, path: str) -> None:
        if path not in self.files:
            raise FsError(f"no such file: {path}")
        del self.files[path]

    def open(self, path: str, *, create: bool = False, write: bool = False,
             truncate: bool = False) -> OpenFile:
        if not self.exists(path):
            if not create:
                raise FsError(f"no such file: {path}")
            self.create(path)
        inode = self.lookup(path)
        if truncate and isinstance(inode, RegularFile):
            inode.truncate()
        return OpenFile(inode, writable=write)

    def listdir(self, prefix: str) -> list[str]:
        prefix = prefix.rstrip("/") + "/"
        return sorted(p for p in self.files if p.startswith(prefix))
