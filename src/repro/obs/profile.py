"""Cycle profiler: fold span stacks into collapsed flamegraph lines.

The tracer aggregates *self*-cycles per span path at span exit (duration
minus time spent in child spans), so the fold is exact even when the
event ring buffer has dropped records. The output is the standard
collapsed-stack format (``root;child;leaf <cycles>``) consumed by
``flamegraph.pl``, speedscope, and friends.

Conservation property (test-enforced): when a run is wrapped in a single
root span opened at cycle 0 and closed at the end, the folded self-cycles
across all paths sum to exactly the clock's total — every simulated cycle
is attributed to exactly one call path (gate → EMC class → validation
step, syscall → handler, …).
"""

from __future__ import annotations

from .trace import Tracer


def collapsed_stacks(tracer: Tracer) -> list[str]:
    """Flamegraph collapsed-stack lines, hottest path first."""
    return [
        ";".join(path) + f" {cycles}"
        for path, cycles in sorted(tracer.folded.items(),
                                   key=lambda kv: -kv[1])
        if cycles
    ]


def total_attributed(tracer: Tracer) -> int:
    """Total cycles attributed across all folded paths."""
    return tracer.total_attributed()


def hotspots(tracer: Tracer, top: int = 15) -> list[tuple[str, int, float]]:
    """The ``top`` hottest paths as (path, self_cycles, share) tuples."""
    total = tracer.total_attributed() or 1
    ranked = sorted(tracer.folded.items(), key=lambda kv: -kv[1])[:top]
    return [(";".join(path), cycles, cycles / total)
            for path, cycles in ranked if cycles]


def profile_report(tracer: Tracer, top: int = 15) -> str:
    """Human-readable hotspot table (for the CLI's default output)."""
    rows = hotspots(tracer, top)
    if not rows:
        return "(no spans recorded)"
    width = max(len(p) for p, _, _ in rows)
    lines = [f"{'path':<{width}}  {'cycles':>14}  share"]
    for path, cycles, share in rows:
        lines.append(f"{path:<{width}}  {cycles:>14,}  {share:6.2%}")
    lines.append(f"{'TOTAL':<{width}}  {tracer.total_attributed():>14,}")
    return "\n".join(lines)
