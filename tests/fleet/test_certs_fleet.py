"""Fleet-side certificate issuance: determinism, isolation, zero cost.

Pins the integration acceptance criteria: seeded reruns produce
byte-identical certificate files; turning issuance on cannot move the
report's digest (issuance charges zero simulated cycles and rides
outside the ``_base_dict`` preimage); and a reused pool slot never leaks
the previous tenant's secrets or evidence into the next certificate.
"""

import json

from repro.certs import serialize_certificate
from repro.certs.verify import CertificateVerifier
from repro.fleet import run_fleet
from repro.fleet.loadgen import FleetReport

PARAMS = dict(workload="helloworld", clients=4, requests=2, pool_size=2,
              tenants=2, seed=2025, scale=1.0)

#: one slot + three clients: every session after the first runs in the
#: *same* recycled sandbox — the C8 evidence-isolation shape
REUSE_PARAMS = dict(workload="helloworld", clients=3, requests=2,
                    pool_size=1, tenants=3, seed=11, scale=1.0)


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #

def test_seeded_reruns_issue_byte_identical_certificates(tmp_path):
    dirs = []
    for i in range(2):
        out = tmp_path / f"run{i}"
        report, _ = run_fleet(cert_dir=out, **PARAMS)
        assert len(report.certs) == 4
        dirs.append(out)
    first = sorted(dirs[0].iterdir())
    second = sorted(dirs[1].iterdir())
    assert [p.name for p in first] == [p.name for p in second]
    for a, b in zip(first, second):
        assert a.read_bytes() == b.read_bytes(), a.name


def test_issuance_cannot_move_the_seeded_report_digest():
    plain, _ = run_fleet(**PARAMS)
    certified, _ = run_fleet(certificates=True, **PARAMS)
    assert certified.digest() == plain.digest()
    # the audit chain is also identical: evidence events are emitted
    # unconditionally, never gated on issuance being armed
    assert certified.audit_head == plain.audit_head
    assert certified.audit_events == plain.audit_events
    # certs ride in to_dict() only — outside the digest preimage
    assert "certs" in certified.to_dict()
    assert "certs" not in certified._base_dict()
    assert "certs" not in plain.to_dict()


def test_report_certs_map_matches_the_issued_bodies():
    report, system = run_fleet(certificates=True, **PARAMS)
    certs = system.fleet_certificates
    assert report.certs == {n: c["body_sha256"] for n, c in certs.items()}
    roundtrip = json.loads(report.to_json())
    assert roundtrip["certs"] == report.certs


# --------------------------------------------------------------------------- #
# pool-slot reuse: no evidence bleed between tenants
# --------------------------------------------------------------------------- #

def test_slot_reuse_never_leaks_the_previous_tenants_evidence():
    report, system = run_fleet(certificates=True, **REUSE_PARAMS)
    assert report.outcomes == {"completed": 3}
    certs = system.fleet_certificates
    sessions = {s.name: s for s in system.fleet_scheduler.finished}
    # all three sessions really did share one recycled sandbox
    sandbox_ids = {c["body"]["session"]["sandbox_id"]
                   for c in certs.values()}
    assert len(sandbox_ids) == 1
    verifier = CertificateVerifier()
    for name, cert in certs.items():
        assert verifier.verify(cert).ok
        blob = serialize_certificate(cert)
        for other, session in sessions.items():
            if other != name:
                # neither the neighbour's plaintext secret nor any of
                # its payload bytes may surface in this certificate
                assert session.secret.decode() not in blob
        # ... and no certificate carries anyone's request plaintext
        assert sessions[name].secret.decode() not in blob
    # per-session evidence stays distinct despite the shared slot
    assert len({c["body"]["scrub"]["digest"] for c in certs.values()}) == 3
    assert len({c["body"]["trace"]["trace_id"] for c in certs.values()}) == 3
    for name, cert in certs.items():
        assert cert["body"]["trace"]["trace_id"] == report.traces[name]


def test_audit_windows_are_anchored_per_session():
    _, system = run_fleet(certificates=True, **REUSE_PARAMS)
    for cert in system.fleet_certificates.values():
        audit = cert["body"]["audit"]
        segment = cert["attachments"]["audit_segment"]
        assert audit["seq_start"] == segment[0]["seq"]
        assert audit["seq_end"] - 1 == segment[-1]["seq"]
        assert audit["committed_head"] == segment[-1]["digest"]
        assert audit["segment_prev"] == segment[0]["prev"]


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #

def test_issuance_metrics_count_certificates_and_bytes():
    report, system = run_fleet(certificates=True, **PARAMS)
    registry = system.machine.clock.metrics
    issued = registry.counter_total("erebor_certs_issued_total")
    assert issued == len(report.certs) == 4
    # per-tenant labels: 2 tenants x 2 clients each
    assert registry.counter_value("erebor_certs_issued_total",
                                  tenant="tenant-0") == 2
    assert registry.counter_value("erebor_certs_issued_total",
                                  tenant="tenant-1") == 2
    hist = registry.histograms["erebor_certs_bytes"][""]
    assert hist["count"] == 4
    assert hist["sum"] > 0


def test_certs_field_defaults_keep_old_reports_loadable():
    """A FleetReport built without the new field still serializes."""
    assert FleetReport.__dataclass_fields__["certs"].default_factory is dict
