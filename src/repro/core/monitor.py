"""EREBOR-MONITOR: the privileged half of the virtualized kernel mode.

The monitor owns everything Table 2 lists: the MMU configuration interface
(through :class:`~repro.core.nested_mmu.NestedMmu`), control registers,
MSRs, the IDT, and the GHCI. The deprivileged kernel reaches it only
through EMCs; :class:`MonitorOps` is the kernel-facing implementation of
:class:`~repro.kernel.ops.PrivilegedOps` where every call crosses the gate
(charging the calibrated 1224-cycle round trip plus per-class validation)
and passes the policy checks of :mod:`repro.core.policy`.

The monitor also carries the sandbox-facing services (creation, memory
declaration, locking, the secure channel) — those live in
:mod:`repro.core.sandbox` and :mod:`repro.core.channel` and are reached
via the monitor instance held here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..hw import regs
from ..hw.cycles import Cost
from ..hw.isa import scan_for_sensitive
from ..hw.memory import pages_for
from ..kernel.image import SelfImage
from ..kernel.kernel import GuestKernel, KernelConfig
from ..kernel.ops import PrivilegedOps
from ..obs.metrics import HandleCache, sandbox_label
from ..obs.ring import RingBuffer
from ..tdx.module import VMCALL_CPUID
from .nested_mmu import NestedMmu
from .policy import (
    PolicyViolation,
    validate_cr_write,
    validate_ghci,
    validate_msr_write,
)

if TYPE_CHECKING:
    from ..vm import CvmMachine
    from .sandbox import Sandbox

#: gate kind → cached "emc:<kind>" span name (the EMC path runs tens of
#: thousands of times per fleet run; kinds are a small fixed vocabulary)
_EMC_SPAN_NAMES: dict[str, str] = {}


class BootVerificationError(Exception):
    """Stage-2 kernel verification failed (sensitive bytes found)."""


@dataclass
class EreborFeatures:
    """Ablation switches matching the paper's evaluation settings (§9).

    ``mmu_isolation`` and ``exit_protection`` decompose Erebor-full into
    the Erebor-LibOS-MMU and Erebor-LibOS-Exit configurations; the
    microarchitectural disturbance model can be disabled for direct-cost
    microbenchmarks. ``cfg_verifier`` gates the stage-2 CFG pass
    (:mod:`repro.analysis`) — off reproduces the paper's scan-only boot.
    ``dataflow_verifier`` gates the stage-3 abstract-interpretation plane
    (:mod:`repro.analysis.absint`, checks V8–V10) layered on the CFG
    pass; it is inert unless ``cfg_verifier`` is also on.

    ``translation_cache`` gates the host-plane fast path only (superblock
    dispatch + memoized MMU walks, :mod:`repro.hw.translate`): simulated
    cycle ledgers, digests and certificates are byte-identical either
    way; off exists for lockstep oracle tests and A/B speed benchmarks.
    """

    mmu_isolation: bool = True
    exit_protection: bool = True
    uarch_model: bool = True
    cfg_verifier: bool = True
    dataflow_verifier: bool = True
    translation_cache: bool = True


class MonitorStats:
    """Read-only monitor statistics derived from the clock's event ledger.

    Historically this was an independently-bumped dataclass, which let it
    drift from the :class:`~repro.hw.cycles.CycleClock` event counters the
    benchmark harness reports (``charge_emc`` bumped both). There is now a
    single source of truth — ``clock.events`` — and this class is a naming
    view over it, so the two can never diverge (test-enforced).
    """

    __slots__ = ("_events",)

    #: attribute → clock event name
    _FIELDS = {
        "emc_calls": "emc",
        "policy_denials": "policy_denial",
        "sandboxes_created": "sandbox_created",
        "sandboxes_killed": "sandbox_killed",
        "verified_code_blobs": "verified_code_blob",
    }

    def __init__(self, events):
        self._events = events

    def __getattr__(self, name: str) -> int:
        try:
            return self._events[self._FIELDS[name]]
        except KeyError:
            raise AttributeError(name) from None

    def as_dict(self) -> dict:
        return {attr: self._events[event]
                for attr, event in self._FIELDS.items()}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"MonitorStats({body})"


# The audit-chain primitives live in the pure, simulator-free
# :mod:`repro.core.audit` so the offline certificate verifier can load
# them without pulling in the hardware model; re-exported here because
# the monitor is their historical home and the in-CVM call sites (and
# tests) import them from this module.
from .audit import (  # noqa: E402  (grouped with the audit facade)
    AUDIT_GENESIS,
    AuditEvent,
    ChainVerdict,
    audit_chain_digest,
    verify_audit_chain,
    verify_audit_segment,
)

__all__ = [
    "AUDIT_GENESIS",
    "AuditEvent",
    "BootVerificationError",
    "ChainVerdict",
    "EreborFeatures",
    "EreborMonitor",
    "MonitorOps",
    "MonitorStats",
    "audit_chain_digest",
    "verify_audit_chain",
    "verify_audit_segment",
]


class EreborMonitor:
    """One monitor instance governing one CVM."""

    #: size of the CMA-style reserved pool backing confined memory
    CMA_BYTES_DEFAULT = 512 * 1024 * 1024
    #: size of the device-shared I/O window (the only shareable region)
    SHARED_IO_BYTES = 16 * 1024 * 1024
    #: audit-log ring capacity (events); oldest entries drop beyond this
    AUDIT_LOG_CAPACITY = 4096

    def __init__(self, machine: "CvmMachine",
                 features: EreborFeatures | None = None,
                 *, cma_bytes: int | None = None):
        self.machine = machine
        self.clock = machine.clock
        self.phys = machine.phys
        self.cpu = machine.cpu
        self.tdx = machine.tdx
        self.features = features or EreborFeatures()
        self.mitigations = None   # optional §12 engine (arm_mitigations)
        from .shadow_stacks import ShadowStackManager
        self.sst_manager = ShadowStackManager(self)
        self.vmmu = NestedMmu(self.phys, self.clock)
        self.ops = MonitorOps(self)
        self.stats = MonitorStats(self.clock.events)
        #: bounded log of security-relevant decisions (an operator /
        #: auditor aid; never consulted by enforcement itself). A ring:
        #: once full the oldest events are overwritten and
        #: ``audit_log.dropped`` counts what was lost.
        self.audit_log: RingBuffer[AuditEvent] = RingBuffer(
            self.AUDIT_LOG_CAPACITY)
        #: tamper-evident chain state: head digest + next sequence number.
        #: The head is mirrored onto ``clock.audit_head`` so fleet reports
        #: and obs bundles can carry it without a monitor reference.
        self.audit_head: str = AUDIT_GENESIS
        self.audit_seq: int = 0
        self.kernel: GuestKernel | None = None
        self.kernel_syscall_entry: int | None = None
        #: the stage-2 CFG verifier's report for the loaded kernel image
        #: (None on scan-only boots); its digest is extended into RTMR[3]
        self.kernel_verifier_report = None
        #: the stage-3 dataflow verifier's report (V8–V10, None when the
        #: plane is off); digest extended into RTMR[3] after the CFG one,
        #: and its StaticBudget feeds fleet admission
        self.kernel_dataflow_report = None
        self.sandboxes: dict[int, "Sandbox"] = {}
        self._next_sandbox_id = 1
        self._cpuid_cache: tuple | None = None
        #: (kind, owner) → pre-resolved EMC metric write handles
        self._emc_handles = HandleCache()
        self._cma_pool: list[int] = []
        self._shared_io: list[int] = []
        self._shared_io_set: set[int] = set()
        cma = cma_bytes if cma_bytes is not None else self.CMA_BYTES_DEFAULT
        self._cma_bytes = cma
        self.installed = False

    # ------------------------------------------------------------------ #
    # installation (stage 1: only firmware + monitor are in the TD)
    # ------------------------------------------------------------------ #

    def install(self) -> None:
        """Claim monitor memory, arm protections, reserve regions."""
        # monitor's own frames (code/data/stacks model)
        self.phys.alloc_frames(64, "monitor")
        # CMA-style reserved pool for sandbox confined memory (pinned)
        self._cma_pool = self.phys.alloc_frames(
            pages_for(self._cma_bytes), "cma", contiguous=True)
        # the only region ever convertible to shared (device I/O window)
        self._shared_io = self.phys.alloc_frames(
            pages_for(self.SHARED_IO_BYTES), "shm-io", contiguous=True)
        self._shared_io_set = set(self._shared_io)
        # privileged-mode CPU state: PKS/CET/SMEP/SMAP on, kernel PKRS
        self.cpu.crs[4] |= (regs.CR4_SMEP | regs.CR4_SMAP | regs.CR4_PKS
                            | regs.CR4_CET)
        self.cpu.msrs[regs.IA32_S_CET] = (regs.S_CET_ENDBR_EN
                                          | regs.S_CET_SH_STK_EN)
        from .gates import PKRS_KERNEL
        self.cpu.msrs[regs.IA32_PKRS] = PKRS_KERNEL
        self.installed = True

    # ------------------------------------------------------------------ #
    # stage 2: kernel verification and load
    # ------------------------------------------------------------------ #

    def verify_code(self, blob: bytes, what: str = "code") -> None:
        """Byte-scan executable bytes for sensitive sequences (§5.1)."""
        with self.clock.tracer.span("verify:code", "monitor",
                                    what=what, size=len(blob)):
            self.clock.charge(12 * len(blob) // 64 + Cost.FENCE, "verify")
        hits = scan_for_sensitive(blob)
        self.clock.count("verified_code_blob")
        if hits:
            offset, op = hits[0]
            self.audit("verify", f"REJECTED {what}: {op} at {offset:#x}")
            self.clock.tracer.trigger("verify_reject",
                                      f"{what}: {op} at {offset:#x}")
            raise BootVerificationError(
                f"{what}: sensitive instruction {op!r} at byte offset "
                f"{offset:#x} (+{len(hits) - 1} more)")
        self.audit("verify", f"accepted {what} ({len(blob)} bytes)")

    def verify_image_cfg(self, image: SelfImage):
        """Stage-2 CFG pass: prove structural properties the scan cannot.

        Runs :class:`repro.analysis.verifier.StaticVerifier` over the
        image (V0–V7: endbr landing pads, gate provenance, W^X,
        branch-target sanity, thunk liveness, ...), charges the
        calibrated walk cost, audits the verdict, and — on success —
        extends the report digest into RTMR[3] so remote clients can
        distinguish a CFG-verified boot from a scan-only one.
        """
        from ..analysis.verifier import StaticVerifier
        from ..tdx.attestation import KERNEL_CFG_RTMR_INDEX
        report = StaticVerifier().verify_image(image)
        with self.clock.tracer.span("verify:cfg", "monitor",
                                    image=image.name,
                                    instructions=report.instructions):
            self.clock.charge(Cost.VERIFY_CFG_BASE
                              + Cost.VERIFY_CFG_PER_INSTR
                              * report.instructions, "verify")
        self.clock.count("cfg_verified_image")
        self.kernel_verifier_report = report
        digest = report.digest()
        self.clock.cfg_report_digest = digest
        if not report.ok:
            first = report.first_failure
            failed = ", ".join(report.failed_checks)
            self.audit("verify", f"REJECTED {image.name} CFG "
                       f"[{failed}]: {first.detail}")
            self.clock.tracer.trigger(
                "verify_reject", f"{image.name} CFG [{failed}]")
            raise BootVerificationError(
                f"kernel {image.name}: CFG verification failed "
                f"[{failed}] — {first.detail}")
        self.audit("verify", f"CFG-verified {image.name} "
                   f"({report.instructions} instrs, {report.gate_sites} "
                   f"gate thunks) digest {digest[:16]}")
        if self.tdx is not None:
            self.tdx.measurement.extend_rtmr(KERNEL_CFG_RTMR_INDEX,
                                             digest.encode())
        return report

    def verify_image_dataflow(self, image: SelfImage):
        """Stage-3 dataflow pass: abstract interpretation over the CFGs.

        Runs :class:`repro.analysis.absint.DataflowVerifier` (V8
        sensitive-taint, V9 stack-balance, V10 static-budget), charges
        the calibrated fixpoint cost under the same ``verify`` budget
        tag, audits the verdict, and — on success — extends the report
        digest into RTMR[3] as a second extension after the CFG digest,
        so attestation distinguishes scan-only, CFG-verified, and
        dataflow-proven boots.
        """
        from ..analysis.absint import DataflowVerifier
        from ..tdx.attestation import KERNEL_CFG_RTMR_INDEX
        report = DataflowVerifier().verify_image(image)
        with self.clock.tracer.span("verify:dataflow", "monitor",
                                    image=image.name,
                                    instructions=report.instructions,
                                    iterations=report.iterations):
            self.clock.charge(Cost.VERIFY_DATAFLOW_BASE
                              + Cost.VERIFY_DATAFLOW_PER_INSTR
                              * report.instructions, "verify")
        self.clock.count("dataflow_verified_image")
        self.kernel_dataflow_report = report
        digest = report.digest()
        self.clock.dataflow_report_digest = digest
        if not report.ok:
            first = report.first_failure
            failed = ", ".join(report.failed_checks)
            self.audit("verify", f"REJECTED {image.name} dataflow "
                       f"[{failed}]: {first.detail}")
            self.clock.tracer.trigger(
                "verify_reject", f"{image.name} dataflow [{failed}]")
            raise BootVerificationError(
                f"kernel {image.name}: dataflow verification failed "
                f"[{failed}] — {first.detail}")
        budget = report.budget
        self.audit("verify", f"dataflow-proven {image.name} "
                   f"(emc<={budget.emc_per_activation}, "
                   f"exits<={budget.exits_per_activation} per activation) "
                   f"digest {digest[:16]}")
        if self.tdx is not None:
            self.tdx.measurement.extend_rtmr(KERNEL_CFG_RTMR_INDEX,
                                             digest.encode())
        return report

    def verify_and_load_kernel(self, image_blob: bytes,
                               config: KernelConfig | None = None) -> GuestKernel:
        """Stage-2 boot: scan + CFG-verify, then boot a deprivileged kernel."""
        if not self.installed:
            raise RuntimeError("monitor not installed (stage 1 incomplete)")
        image = SelfImage.deserialize(image_blob)
        for section in image.executable_sections():
            self.verify_code(section.data, what=f"kernel {section.name}")
        if self.features.cfg_verifier:
            self.verify_image_cfg(image)
            if self.features.dataflow_verifier:
                self.verify_image_dataflow(image)
        # mark kernel text frames so W^X policy can identify them
        text_frames = self.phys.alloc_frames(
            max(pages_for(len(image.section(".text").data)), 1), "ktext")
        self.phys.write(text_frames[0] << 12, image.section(".text").data[:4096])

        from .exits import MonitorExitPath
        kernel = GuestKernel(self.phys, self.clock, self.cpu, self.tdx,
                             ops=self.ops, config=config)
        kernel.exit_path = MonitorExitPath(self)
        self.kernel = kernel
        self.vmmu.register_aspace(kernel.kernel_aspace)
        kernel.boot()
        self.machine.vmm.interrupt_sink = lambda vector: kernel.pump()
        self.machine.kernel = kernel
        if self.cpu.tcache.enabled:
            # CFG-keyed pre-translation: the StaticVerifier just proved
            # the image decodes into well-formed basic blocks, so each
            # block head is decoded once into a superblock now instead of
            # lazily at first execution (host-plane only; blocks whose
            # VAs the kernel has not mapped are skipped).
            from ..hw.errors import InvalidOpcode
            for section in image.executable_sections():
                try:
                    self.cpu.tcache.preload(kernel.kernel_aspace,
                                            section.va, section.data)
                except InvalidOpcode:
                    pass
        return kernel

    # ------------------------------------------------------------------ #
    # EMC accounting
    # ------------------------------------------------------------------ #

    def charge_emc(self, validation_cycles: int, kind: str = "nop") -> None:
        self.charge_emc_batch(validation_cycles, kind, 1)

    def _emc_charges(self, clock, validation_cycles: int, count: int) -> None:
        clock.charge(count * Cost.EMC_ROUND_TRIP, "emc")
        # validation rides inside the emc span rather than a nested
        # span of its own: it is a single charge, its cost stays
        # separately visible via the ``emc_validate`` ledger tag and
        # the per-kind EMC-cycles histogram, and dropping the extra
        # record cuts a third of the armed run's span volume
        clock.charge(count * validation_cycles, "emc_validate")
        clock.count("emc", count)
        if self.features.uarch_model:
            clock.charge(count * Cost.UARCH_PER_EMC, "uarch")

    def charge_emc_batch(self, validation_cycles: int, kind: str = "nop",
                         count: int = 1) -> None:
        """Charge ``count`` identical EMC round trips as one gate burst.

        Bit-exact with ``count`` sequential :meth:`charge_emc` calls —
        same cycle totals per tag, same event counts, same per-call
        histogram samples (each round trip's delta is the burst delta
        divided by ``count``, exactly) — but pays one span pair and one
        metric write on the host. Burst call sites must not interleave
        observers (``pump``/tracer reads) between the constituent calls,
        which none of the batched paths do.
        """
        clock = self.clock
        emc_start = clock.cycles
        tracer = clock.tracer
        if tracer.enabled:
            span_name = _EMC_SPAN_NAMES.get(kind)
            if span_name is None:
                span_name = _EMC_SPAN_NAMES[kind] = f"emc:{kind}"
            if count == 1:
                with tracer.span("gate", "gate"), \
                        tracer.span(span_name, "emc"):
                    self._emc_charges(clock, validation_cycles, count)
            else:
                with tracer.span("gate", "gate"), \
                        tracer.span(span_name, "emc", calls=count):
                    self._emc_charges(clock, validation_cycles, count)
        else:
            self._emc_charges(clock, validation_cycles, count)
        metrics = clock.metrics
        if metrics.enabled:
            kernel = self.kernel
            owner = sandbox_label(kernel.current if kernel else None)
            # hottest metric path in the tree: resolve the three series
            # once per (kind, owner) and write through cached handles
            handles = self._emc_handles.get(metrics, (kind, owner))
            if handles is None:
                handles = self._emc_handles.put((kind, owner), (
                    metrics.counter_handle("erebor_emc_total",
                                           cls=kind, sandbox=owner),
                    metrics.counter_handle("erebor_pkrs_toggles_total"),
                    metrics.histogram_handle("erebor_emc_cycles", cls=kind),
                ))
            emc_total, pkrs_toggles, emc_cycles = handles
            emc_total.inc(count)
            # each EMC round trip writes IA32_PKRS twice (revoke + restore)
            pkrs_toggles.inc(2 * count)
            if count == 1:
                emc_cycles.observe(clock.cycles - emc_start)
            else:
                emc_cycles.observe_n((clock.cycles - emc_start) // count,
                                     count)

    def audit(self, kind: str, detail: str) -> None:
        cycle = self.clock.cycles
        seq = self.audit_seq
        digest = audit_chain_digest(self.audit_head, seq, cycle, kind,
                                    detail)
        self.audit_log.append(AuditEvent(cycle, kind, detail, seq,
                                         self.audit_head, digest))
        self.audit_head = digest
        self.audit_seq = seq + 1
        self.clock.audit_head = digest
        self.clock.tracer.audit(kind, detail, cycle=cycle)

    def verify_audit_chain(self) -> ChainVerdict:
        """Verify the live ring against the monitor's own head digest."""
        return verify_audit_chain(self.audit_log, head=self.audit_head)

    def _deny(self, exc: PolicyViolation) -> PolicyViolation:
        self.clock.count("policy_denial")
        self.clock.metrics.inc("erebor_policy_denials_total")
        self.audit("deny", str(exc))
        self.clock.tracer.trigger("policy_deny", str(exc))
        return exc

    # ------------------------------------------------------------------ #
    # monitor-internal privileged services
    # ------------------------------------------------------------------ #

    def attest(self, report_data: bytes):
        """Generate a quote (monitor-only; C5). Charges the EMC-gated
        GHCI path of Table 4 (128081 cycles end to end).

        Only available in a TD guest: the artifact's default normal-VM
        setting (§A.3) runs all of Erebor's mechanisms but has no
        hardware to attest with — its channel uses the DebugFS emulation
        instead.
        """
        if self.tdx is None:
            raise PolicyViolation(
                "attestation requires a TD guest; the normal-VM setting "
                "has no TDX module (use the DebugFS channel emulation)")
        self.charge_emc(Cost.VALIDATE_GHCI, kind="ghci")
        self.audit("attest", f"quote over {len(report_data)}B report data")
        return self.tdx.guest_tdreport(report_data)

    def arm_mitigations(self, config) -> None:
        """Enable the optional side-channel mitigation engine (§12)."""
        from .mitigations import SideChannelMitigations
        self.mitigations = SideChannelMitigations(self.clock, config)

    def mitigation_router(self):
        """The per-tenant §12 router, installing one on first use.

        An already-armed fleet-wide engine (``arm_mitigations``) is kept
        as the router's default, so upgrading to per-tenant routing never
        weakens an existing policy.
        """
        from .mitigations import TenantMitigationRouter
        if not isinstance(self.mitigations, TenantMitigationRouter):
            router = TenantMitigationRouter(self.clock,
                                            default=self.mitigations)
            self.mitigations = router
        return self.mitigations

    def emulated_cpuid(self) -> tuple:
        """Serve cpuid from the monitor's host-filled cache (§6.2)."""
        if self._cpuid_cache is None:
            self._cpuid_cache = self.tdx.guest_vmcall(VMCALL_CPUID)
        self.clock.charge(Cost.CPUID_EMULATED, "cpuid")
        return self._cpuid_cache

    def take_cma_frames(self, count: int, owner: str) -> list[int]:
        if count > len(self._cma_pool):
            raise MemoryError(
                f"confined pool exhausted (want {count}, "
                f"have {len(self._cma_pool)})")
        frames, self._cma_pool = self._cma_pool[:count], self._cma_pool[count:]
        for fn in frames:
            self.phys.frame(fn).owner = owner
        return frames

    def return_cma_frames(self, frames: list[int]) -> None:
        for fn in frames:
            self.phys.zero_frame(fn)
            self.phys.frame(fn).owner = "cma"
        self._cma_pool.extend(frames)

    def shared_io_window(self) -> list[int]:
        return list(self._shared_io)

    # ------------------------------------------------------------------ #
    # sandbox facade (implementation in sandbox.py / channel.py)
    # ------------------------------------------------------------------ #

    def seal_as_template(self, sandbox: "Sandbox", name: str) -> list[int]:
        """Freeze a pre-initialized sandbox into a named fork template.

        The sandbox must still be pre-lock (it has never held client
        data, which is what makes read-only sharing of its image safe).
        Its confined frames are re-classified as template frames: removed
        from the single-mapping confined registry, flipped read-only in
        the template's own page table (one batched EMC, like common-region
        sealing), and registered so no address space can ever map them
        writable again. Returns the frame list — the golden image forked
        sandboxes will map copy-on-write.
        """
        from ..hw.memory import PAGE_SHIFT
        from ..hw.paging import PTE_P, PTE_W
        from ..kernel.process import PROT_WRITE
        if sandbox.locked or sandbox.dead:
            raise self._deny(PolicyViolation(
                f"sandbox {sandbox.sandbox_id} has held client data; "
                "only pre-lock sandboxes can become templates"))
        if any(t == name for t in self.vmmu.template_frames.values()):
            raise self._deny(PolicyViolation(
                f"template {name!r} already exists"))
        self.charge_emc(Cost.VALIDATE_MMU, kind="mmu")
        frames = list(sandbox.confined_frames)
        aspace = sandbox.task.aspace
        rewritten = 0
        for vma in sandbox.confined_vmas:
            for page in range(vma.length >> PAGE_SHIFT):
                va = vma.start + (page << PAGE_SHIFT)
                pte = aspace.get_pte(va)
                if pte & PTE_P and pte & PTE_W:
                    aspace.set_pte(va, pte & ~PTE_W)
                    self.clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")
                    rewritten += 1
            vma.prot &= ~PROT_WRITE
        self.vmmu.release_confined(sandbox.sandbox_id)
        self.vmmu.adopt_template(name, frames)
        sandbox.confined_frames = []
        sandbox.state = "template"
        self.clock.count("template_sealed")
        self.clock.tracer.event("fleet:template_seal", "fleet",
                                template=name, sandbox=sandbox.sandbox_id,
                                frames=len(frames))
        self.clock.metrics.inc("erebor_templates_sealed_total", template=name)
        self.audit("sandbox", f"sealed #{sandbox.sandbox_id} as template "
                   f"{name!r} ({len(frames)} frames, {rewritten} PTEs "
                   "flipped read-only)")
        return frames

    def create_sandbox(self, name: str, *, confined_budget: int,
                       threads: int = 1) -> "Sandbox":
        from .sandbox import Sandbox
        if self.kernel is None:
            raise RuntimeError("no kernel loaded")
        sandbox_id = self._next_sandbox_id
        self._next_sandbox_id += 1
        sandbox = Sandbox(self, sandbox_id, name,
                          confined_budget=confined_budget, threads=threads)
        self.sandboxes[sandbox_id] = sandbox
        self.clock.count("sandbox_created")
        self.clock.tracer.event("sandbox:create", "sandbox",
                                sandbox=sandbox_id, name=name)
        self.clock.metrics.inc("erebor_sandboxes_created_total")
        self.audit("sandbox", f"created #{sandbox_id} {name!r} "
                   f"(budget {confined_budget >> 20} MiB, {threads} threads)")
        return sandbox


class MonitorOps(PrivilegedOps):
    """The kernel's view of privilege: every call is an EMC."""

    def __init__(self, monitor: EreborMonitor):
        self.monitor = monitor
        self.clock = monitor.clock

    # --- MMU -------------------------------------------------------------

    def write_pte(self, aspace, va, pte):
        vmmu = self.monitor.vmmu
        if aspace.root_fn not in vmmu.registered_roots:
            # fresh process page table: monitor validates and adopts it
            vmmu.register_aspace(aspace)
        if not self.monitor.features.mmu_isolation:
            # ablation (Erebor-LibOS-Exit): MMU path behaves natively
            self.clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")
            self.clock.count("pte_write")
            if pte:
                aspace.set_pte(va, pte)
            else:
                aspace.clear_pte(va)
            return
        self.monitor.charge_emc(Cost.VALIDATE_MMU, kind="mmu")
        try:
            vmmu.write_pte(aspace, va, pte)
        except PolicyViolation as exc:
            raise self.monitor._deny(exc)

    def clear_pte(self, aspace, va):
        self.write_pte(aspace, va, 0)

    def mmu_housekeeping(self, n):
        if not self.monitor.features.mmu_isolation:
            self.clock.charge(n * Cost.PTE_WRITE_NATIVE, "mmu_op")
            self.clock.count("pte_write", n)
            return
        # one gate burst for the n validations: identical totals, tags,
        # events and histogram samples as n sequential round trips
        self.monitor.charge_emc_batch(Cost.VALIDATE_MMU, kind="mmu", count=n)
        self.clock.charge(n * Cost.PTE_WRITE_NATIVE, "mmu_op")
        self.clock.count("pte_write", n)

    # --- CR / MSR / IDT ----------------------------------------------------

    def write_cr(self, crn, value):
        self.monitor.charge_emc(Cost.VALIDATE_CR, kind="cr")
        try:
            validate_cr_write(crn, value)
        except PolicyViolation as exc:
            raise self.monitor._deny(exc)
        self.clock.charge(Cost.CR_WRITE_NATIVE, "cr_op")
        self.clock.count("cr_write")
        self.monitor.cpu.crs[crn] = value

    def write_msr(self, msr, value):
        self.monitor.charge_emc(Cost.VALIDATE_MSR, kind="msr")
        try:
            validate_msr_write(msr, value)
        except PolicyViolation as exc:
            if msr == regs.IA32_LSTAR:
                # the kernel registers its entry; the monitor interposes
                self.monitor.kernel_syscall_entry = value
                self.clock.charge(Cost.WRMSR_SLOW_NATIVE, "msr_op")
                return
            raise self.monitor._deny(exc)
        self.clock.charge(Cost.WRMSR_SLOW_NATIVE, "msr_op")
        self.clock.count("msr_write")
        self.monitor.cpu.msrs[msr] = value

    def load_idt(self, idt):
        self.monitor.charge_emc(Cost.IDT_MONITOR_UPDATE, kind="idt")
        self.clock.count("lidt")
        self.monitor.cpu.idt = idt

    def set_idt_vector(self, idt, vector, handler):
        self.monitor.charge_emc(Cost.IDT_MONITOR_UPDATE, kind="idt")
        idt.set_vector(vector, 0, py_handler=handler)

    # --- GHCI ---------------------------------------------------------------

    def map_gpa(self, fn_start, count, *, shared):
        self.monitor.charge_emc(Cost.VALIDATE_GHCI, kind="ghci")
        try:
            validate_ghci("map_gpa")
            if shared:
                window = self.monitor._shared_io_set
                for fn in range(fn_start, fn_start + count):
                    if fn not in window:
                        raise PolicyViolation(
                            f"frame {fn:#x} outside the shared-I/O window "
                            "cannot be converted to shared")
        except PolicyViolation as exc:
            raise self.monitor._deny(exc)
        if self.monitor.tdx is not None:
            self.monitor.tdx.guest_map_gpa(fn_start, count, shared=shared)

    def vmcall(self, subfn, payload=None):
        self.monitor.charge_emc(Cost.VALIDATE_GHCI, kind="ghci")
        try:
            validate_ghci("vmcall_io")
        except PolicyViolation as exc:
            raise self.monitor._deny(exc)
        if self.monitor.tdx is None:
            return None
        return self.monitor.tdx.guest_vmcall(subfn, payload)

    def tdreport(self, report_data):
        raise self.monitor._deny(PolicyViolation(
            "attestation reports are monitor-only (C5); the kernel cannot "
            "request tdreport"))

    # --- dynamic code (modules / eBPF / text_poke) ------------------------

    def verify_dynamic_code(self, blob, what="module"):
        """The VERIFY_CODE EMC: scan before anything becomes kernel text."""
        self.monitor.charge_emc(Cost.VALIDATE_MMU, kind="verify")
        self.clock.count("dynamic_code_load")
        try:
            self.monitor.verify_code(blob, what=what)
        except BootVerificationError as exc:
            raise self.monitor._deny(PolicyViolation(str(exc)))

    # --- SMAP user copy -------------------------------------------------------

    def user_copy(self, nbytes, *, to_user, task=None):
        pages = max(pages_for(nbytes), 1)
        if not self.monitor.features.mmu_isolation:
            self.clock.charge(Cost.STAC_CLAC_NATIVE
                              + pages * Cost.COPY_PER_PAGE_NATIVE, "user_copy")
            self.clock.count("user_copy")
            return
        self.monitor.charge_emc(Cost.VALIDATE_SMAP, kind="smap")
        kernel = self.monitor.kernel
        if task is None:
            task = kernel.current if kernel else None
        if (task is not None and task.kind == "sandbox"
                and task.sandbox is not None and task.sandbox.locked):
            raise self.monitor._deny(PolicyViolation(
                f"kernel user-copy into locked sandbox "
                f"{task.sandbox.sandbox_id} refused (C6)"))
        self.clock.charge(Cost.STAC_CLAC_NATIVE
                          + pages * Cost.USER_COPY_PER_PAGE, "user_copy")
        self.clock.count("user_copy")

    def user_copy_burst(self, nbytes, count, *, to_user, task=None):
        """``count`` same-sized user copies dispatched as one gate burst.

        Bit-exact with ``count`` sequential :meth:`user_copy` calls for
        admissible targets; a locked-sandbox target is delegated to the
        single-copy path so the C6 denial charges exactly what the first
        call of the unbatched sequence would have charged.
        """
        pages = max(pages_for(nbytes), 1)
        if not self.monitor.features.mmu_isolation:
            self.clock.charge(count * (Cost.STAC_CLAC_NATIVE
                              + pages * Cost.COPY_PER_PAGE_NATIVE),
                              "user_copy")
            self.clock.count("user_copy", count)
            return
        kernel = self.monitor.kernel
        if task is None:
            task = kernel.current if kernel else None
        if (task is not None and task.kind == "sandbox"
                and task.sandbox is not None and task.sandbox.locked):
            self.user_copy(nbytes, to_user=to_user, task=task)  # denies
            return
        self.monitor.charge_emc_batch(Cost.VALIDATE_SMAP, kind="smap",
                                      count=count)
        self.clock.charge(count * (Cost.STAC_CLAC_NATIVE
                          + pages * Cost.USER_COPY_PER_PAGE), "user_copy")
        self.clock.count("user_copy", count)
