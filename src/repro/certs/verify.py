"""Offline, client-side verification of execution certificates.

This module is the relying party's half of :mod:`repro.certs` and is
deliberately simulator-free: it imports only the pure leaves
(:mod:`repro.core.audit`, :mod:`repro.tdx.attestation`,
:mod:`repro.obs.reqtrace`) plus the stdlib, so ``python -m repro.certs
verify`` runs in a process that never loads ``repro.hw`` /
``repro.kernel`` / ``repro.fleet`` — the client does not need (and must
not need) the platform it is auditing.

Checks run in evidence order, each with its own failure code, so every
tamper class localizes:

====================  ====================================================
code                  what was doctored
====================  ====================================================
``format``            not an ``erebor-cert/1`` document
``structure``         a required section is missing or mistyped
``quote-signature``   the quote's HMAC does not verify (forged quote)
``body-digest``       ``body_sha256`` does not match the body's canonical
                      serialization
``quote-binding``     the quote's report data does not bind this body
                      (replayed quote from another session/certificate)
``platform-mrtd``     MRTD differs from the published golden measurement
``platform-rtmr``     a runtime register differs from the published value
``kernel-digest``     RTMR[3] is not the extension of the claimed
                      CFG-verifier report digest
``scrub-evidence``    the scrub record is absent, mistyped, for the wrong
                      sandbox, or fails its committed digest
``audit-evidence``    the audit segment attachment is absent or empty
``audit-segment``     the segment's hash chain breaks, or it does not end
                      at the committed head (spliced / reordered /
                      truncated — first bad seq reported)
``audit-arc``         the admit → response/kill → scrub milestones for
                      this session are missing from its segment
``trace-digest``      the attached span tree does not hash to the
                      committed ``tree_digest``
``trace-arc``         the tree is missing a required causal stage
``session-binding``   the certificate is for a different session than the
                      caller expected (``--expect-trace``)
====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.audit import AuditEvent, verify_audit_segment
from ..obs.reqtrace import REQUIRED_STAGES, payload_stage_names, tree_digest_of
from ..tdx.attestation import (
    KERNEL_CFG_RTMR_INDEX,
    AttestationAuthority,
    Quote,
    QuoteVerificationError,
    TdReport,
    expected_rtmr,
)
from . import (
    CERT_FORMAT,
    REFS_FORMAT,
    CertificateError,
    bind_report_data,
    body_digest,
    canonical_json,
    sha256_hex,
)

#: scrub-record kinds that constitute C8 evidence: a verified warm-pool
#: scrub (completed sessions) or a kill-path scrub (evicted sessions)
SCRUB_KINDS = ("scrub-verify", "kill-scrub")

#: session outcomes a certificate may attest (rejected sessions never
#: held a slot, so there is nothing to certify)
CERTIFIABLE_OUTCOMES = ("completed", "evicted")

_BODY_SECTIONS = ("session", "platform", "kernel", "audit", "scrub",
                  "trace")


@dataclass
class VerifyResult:
    """Outcome of one certificate verification."""

    ok: bool
    session: str = ""
    code: str = ""                 # failure locator ("" when ok)
    detail: str = ""
    checks: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


class CertificateVerifier:
    """Verifies ``erebor-cert/1`` documents against published goldens.

    ``refs`` is the fleet-published ``published.json`` (format
    ``erebor-cert-refs/1``) carrying the golden MRTD and RTMR values a
    client derives — or downloads once — from the open-source firmware,
    monitor, and instrumented kernel. Without it the platform checks
    that need external goldens are skipped (everything self-contained,
    including the RTMR[3] ↔ kernel-digest consistency proof, still
    runs).

    ``authority`` defaults to the reproduction's fixed platform root of
    trust; a real deployment would substitute certificate-chain
    verification here.
    """

    def __init__(self, authority: AttestationAuthority | None = None,
                 refs: dict | None = None):
        self.authority = authority or AttestationAuthority()
        self.refs = self._check_refs(refs)

    @staticmethod
    def _check_refs(refs: dict | None) -> dict | None:
        if refs is None:
            return None
        if refs.get("format") != REFS_FORMAT:
            raise CertificateError(
                "format", f"published refs are not {REFS_FORMAT!r}")
        return refs

    # ------------------------------------------------------------------ #
    # the check sequence
    # ------------------------------------------------------------------ #

    def verify(self, cert: dict, *,
               expect_trace: str | None = None) -> VerifyResult:
        """Run every check; returns a :class:`VerifyResult` (never raises
        for tampered input — malformed bytes become a ``format``/
        ``structure`` failure like any other)."""
        checks: list[str] = []
        session = ""
        try:
            body = self._check_structure(cert, checks)
            session = str(body["session"].get("name", ""))
            quote = self._check_quote_signature(cert, checks)
            self._check_body_digest(cert, body, checks)
            self._check_quote_binding(cert, quote, checks)
            self._check_platform(body, quote, checks)
            self._check_kernel_digest(body, quote, checks)
            self._check_scrub(cert, body, checks)
            segment = self._check_audit_segment(cert, body, checks)
            self._check_audit_arc(body, segment, checks)
            self._check_trace(cert, body, checks)
            if expect_trace is not None:
                self._check_session_binding(body, expect_trace, checks)
        except CertificateError as exc:
            return VerifyResult(False, session=session, code=exc.code,
                                detail=exc.detail, checks=checks)
        return VerifyResult(True, session=session, checks=checks)

    # -- layers 1-2: shape ---------------------------------------------- #

    def _check_structure(self, cert: dict, checks: list[str]) -> dict:
        if cert.get("format") != CERT_FORMAT:
            raise CertificateError(
                "format",
                f"expected format {CERT_FORMAT!r}, got "
                f"{cert.get('format')!r}")
        for key in ("body", "body_sha256", "quote", "attachments"):
            if key not in cert:
                raise CertificateError("structure",
                                       f"certificate lacks {key!r}")
        body = cert["body"]
        if not isinstance(body, dict):
            raise CertificateError("structure", "body is not an object")
        for section in _BODY_SECTIONS:
            if not isinstance(body.get(section), dict):
                raise CertificateError(
                    "structure", f"body lacks the {section!r} section")
        outcome = body["session"].get("outcome")
        if outcome not in CERTIFIABLE_OUTCOMES:
            raise CertificateError(
                "structure",
                f"outcome {outcome!r} is not certifiable "
                f"(expected one of {CERTIFIABLE_OUTCOMES})")
        checks.append("structure")
        return body

    # -- layer 3: the signed platform evidence -------------------------- #

    @staticmethod
    def _parse_quote(cert: dict) -> Quote:
        q = cert["quote"]
        try:
            report = TdReport(
                mrtd=bytes.fromhex(q["mrtd"]),
                rtmrs=tuple(bytes.fromhex(r) for r in q["rtmrs"]),
                report_data=bytes.fromhex(q["report_data"]))
            return Quote(report, bytes.fromhex(q["signature"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificateError("structure",
                                   f"quote is malformed: {exc}") from exc

    def _check_quote_signature(self, cert: dict,
                               checks: list[str]) -> Quote:
        quote = self._parse_quote(cert)
        try:
            self.authority.verify(quote)
        except QuoteVerificationError as exc:
            raise CertificateError("quote-signature", str(exc)) from exc
        checks.append("quote-signature")
        return quote

    def _check_body_digest(self, cert: dict, body: dict,
                           checks: list[str]) -> None:
        recomputed = body_digest(body)
        if recomputed != cert["body_sha256"]:
            raise CertificateError(
                "body-digest",
                f"body hashes to {recomputed[:16]}..., certificate "
                f"claims {str(cert['body_sha256'])[:16]}...")
        checks.append("body-digest")

    def _check_quote_binding(self, cert: dict, quote: Quote,
                             checks: list[str]) -> None:
        bound = bind_report_data(cert["body_sha256"])
        if quote.report_data != bound:
            raise CertificateError(
                "quote-binding",
                "quote report data does not bind this certificate body "
                "(quote replayed from another session or certificate)")
        checks.append("quote-binding")

    def _check_platform(self, body: dict, quote: Quote,
                        checks: list[str]) -> None:
        platform = body["platform"]
        # the body's platform section must restate the quote (the quote
        # is authoritative; the body copy exists for human readers)
        if platform.get("mrtd") != quote.mrtd.hex():
            raise CertificateError(
                "structure", "body platform.mrtd disagrees with the quote")
        if self.refs is None:
            return
        expected_mrtd = bytes.fromhex(self.refs["mrtd"])
        expected_rtmrs = {int(i): bytes.fromhex(v)
                          for i, v in self.refs.get("rtmrs", {}).items()}
        try:
            self.authority.verify(quote, expected_mrtd=expected_mrtd)
        except QuoteVerificationError as exc:
            raise CertificateError("platform-mrtd", str(exc)) from exc
        try:
            self.authority.verify(quote, expected_rtmrs=expected_rtmrs)
        except QuoteVerificationError as exc:
            raise CertificateError("platform-rtmr", str(exc)) from exc
        checks.append("platform")

    def _check_kernel_digest(self, body: dict, quote: Quote,
                             checks: list[str]) -> None:
        """RTMR[3] must be the extension chain of the claimed verifier
        report digests — the CFG digest, then (on dataflow-proven boots)
        the dataflow digest — binding the certificate's kernel claims to
        the measured boot without any simulator state."""
        digest = str(body["kernel"].get("verifier_digest", ""))
        if not digest:
            raise CertificateError(
                "kernel-digest", "body carries no kernel verifier digest")
        preimages = [digest.encode()]
        dataflow = str(body["kernel"].get("dataflow_digest", ""))
        if dataflow:
            preimages.append(dataflow.encode())
        derived = expected_rtmr(preimages)
        measured = quote.report.rtmrs[KERNEL_CFG_RTMR_INDEX]
        if derived != measured:
            what = ("verifier+dataflow digests" if dataflow
                    else "claimed verifier digest")
            raise CertificateError(
                "kernel-digest",
                f"RTMR[{KERNEL_CFG_RTMR_INDEX}] is not the extension of "
                f"the {what} {digest[:16]}...")
        checks.append("kernel-digest")

    # -- layer 4: the self-authenticating attachments -------------------- #

    def _check_scrub(self, cert: dict, body: dict,
                     checks: list[str]) -> None:
        record = cert["attachments"].get("scrub_record")
        if not isinstance(record, dict):
            raise CertificateError(
                "scrub-evidence",
                "no scrub record attached: the session's C8 scrub proof "
                "was dropped")
        kind = record.get("kind")
        if kind not in SCRUB_KINDS:
            raise CertificateError(
                "scrub-evidence",
                f"scrub record kind {kind!r} is not scrub evidence "
                f"(expected one of {SCRUB_KINDS})")
        sandbox = body["session"].get("sandbox_id")
        if record.get("sandbox") != sandbox:
            raise CertificateError(
                "scrub-evidence",
                f"scrub record covers sandbox {record.get('sandbox')!r}, "
                f"session ran in sandbox {sandbox!r}")
        recomputed = sha256_hex(canonical_json(record))
        if recomputed != body["scrub"].get("digest"):
            raise CertificateError(
                "scrub-evidence",
                "scrub record does not hash to the committed scrub digest")
        outcome = body["session"]["outcome"]
        wanted = "kill-scrub" if outcome == "evicted" else "scrub-verify"
        if kind != wanted:
            raise CertificateError(
                "scrub-evidence",
                f"outcome {outcome!r} requires a {wanted!r} record, "
                f"got {kind!r}")
        checks.append("scrub-evidence")

    def _check_audit_segment(self, cert: dict, body: dict,
                             checks: list[str]) -> list[AuditEvent]:
        raw = cert["attachments"].get("audit_segment")
        if not isinstance(raw, list) or not raw:
            raise CertificateError(
                "audit-evidence",
                "no audit segment attached: the session's chain evidence "
                "was dropped")
        try:
            events = [AuditEvent.from_dict(e) for e in raw]
        except (KeyError, TypeError) as exc:
            raise CertificateError(
                "audit-evidence", f"audit segment malformed: {exc}") from exc
        audit = body["audit"]
        verdict = verify_audit_segment(
            events, str(audit.get("committed_head", "")),
            expected_prev=audit.get("segment_prev"))
        if not verdict:
            where = ("" if verdict.first_bad_seq is None
                     else f" at seq {verdict.first_bad_seq}")
            raise CertificateError(
                "audit-segment",
                f"segment chain {verdict.error}{where} "
                f"({verdict.checked} links verified before the break)")
        if (events[0].seq != audit.get("seq_start")
                or events[-1].seq != audit.get("seq_end", 0) - 1):
            raise CertificateError(
                "audit-segment",
                f"segment spans seq {events[0].seq}..{events[-1].seq}, "
                f"body claims {audit.get('seq_start')}.."
                f"{audit.get('seq_end', 0) - 1}")
        checks.append("audit-segment")
        return events

    def _check_audit_arc(self, body: dict, segment: list[AuditEvent],
                         checks: list[str]) -> None:
        """The session's own milestones must appear inside its segment:
        admit → (responses | kill) → scrub, each named precisely enough
        to exclude a neighbouring session's events."""
        session = body["session"]
        name, sandbox = session.get("name"), session.get("sandbox_id")
        outcome = session["outcome"]
        needle_session = f"session {name} "
        needle_sandbox = f"sandbox #{sandbox}"

        def seen(kind: str, needle: str) -> bool:
            return any(e.kind == kind and needle in e.detail
                       for e in segment)

        missing = []
        if not seen("admit", needle_session):
            missing.append("admit")
        if outcome == "completed":
            if not seen("response", needle_session):
                missing.append("response")
            if not seen("scrub", needle_sandbox):
                missing.append("scrub")
        else:   # evicted: the kill path is the scrub
            if not seen("kill", needle_sandbox):
                missing.append("kill")
        if missing:
            raise CertificateError(
                "audit-arc",
                f"segment lacks the session's {'/'.join(missing)} "
                f"milestone(s) for {name!r} ({outcome})")
        checks.append("audit-arc")

    def _check_trace(self, cert: dict, body: dict,
                     checks: list[str]) -> None:
        tree = cert["attachments"].get("trace_tree")
        trace = body["trace"]
        if not isinstance(tree, list) or not tree:
            raise CertificateError(
                "trace-digest",
                "no trace tree attached: the session's causal evidence "
                "was dropped")
        recomputed = tree_digest_of(tree)
        if recomputed != trace.get("tree_digest"):
            raise CertificateError(
                "trace-digest",
                f"trace tree hashes to {recomputed[:16]}..., body "
                f"commits {str(trace.get('tree_digest'))[:16]}...")
        if body["session"]["outcome"] == "completed":
            names = payload_stage_names(tree)
            missing = [s for s in REQUIRED_STAGES if s not in names]
            if missing:
                raise CertificateError(
                    "trace-arc",
                    f"trace tree lacks stage(s) {', '.join(missing)}")
        checks.append("trace")

    def _check_session_binding(self, body: dict, expect_trace: str,
                               checks: list[str]) -> None:
        got = str(body["trace"].get("trace_id", ""))
        if got != expect_trace:
            raise CertificateError(
                "session-binding",
                f"certificate attests trace {got or '<none>'}, caller "
                f"expected {expect_trace} (certificate from a different "
                "session)")
        checks.append("session-binding")


def verify_certificate(cert: dict, *, refs: dict | None = None,
                       authority: AttestationAuthority | None = None,
                       expect_trace: str | None = None) -> VerifyResult:
    """One-shot convenience wrapper around :class:`CertificateVerifier`."""
    return CertificateVerifier(authority, refs).verify(
        cert, expect_trace=expect_trace)
