"""Pin: every warm reset increments ``erebor_sandbox_reuse_total{sandbox}``.

The fleet's pool-utilization dashboards key on this counter; it must tick
exactly once per ``reset_for_reuse`` with the sandbox id as its label.
"""

from repro.core.boot import erebor_boot
from repro.obs.metrics import MetricsRegistry
from repro.vm import CvmMachine, MachineConfig, MIB


def test_reset_for_reuse_counts_once_per_reuse():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    machine.clock.metrics = MetricsRegistry()
    system = erebor_boot(machine, cma_bytes=32 * MIB)
    sandbox = system.monitor.create_sandbox("reuse-probe",
                                            confined_budget=2 * MIB)
    sandbox.declare_confined(512 * 1024)
    registry = machine.clock.metrics
    assert registry.counter_value("erebor_sandbox_reuse_total",
                                  sandbox=str(sandbox.sandbox_id)) == 0
    sandbox.reset_for_reuse()
    sandbox.reset_for_reuse()
    assert registry.counter_value("erebor_sandbox_reuse_total",
                                  sandbox=str(sandbox.sandbox_id)) == 2
    # the label keeps per-sandbox series distinct
    other = system.monitor.create_sandbox("other", confined_budget=2 * MIB)
    other.declare_confined(256 * 1024)
    other.reset_for_reuse()
    assert registry.counter_value("erebor_sandbox_reuse_total",
                                  sandbox=str(other.sandbox_id)) == 1
    assert registry.counter_total("erebor_sandbox_reuse_total") == 3
