"""Image processing service — the reproduction's YOLO pipeline (Table 5).

Real convolution + pooling + detection-head math in numpy over synthetic
images, at 1/4 linear scale of the paper's 100-image segmentation batch.
Weights are a *common* region (shared across sandboxes); per-image
buffers live in confined heap.
"""

from __future__ import annotations

import numpy as np

from ..libos.libos import CommonSpec, PreloadFile
from .base import MIB, Workload, WorkloadProfile, register

IMG = 32          # image side
KERNELS = 8       # conv filters
#: per-barrier-item compute, cycles (64 items per image, 8 threads)
CYCLES_PER_ITEM = 6_000_000


@register
class YoloWorkload(Workload):
    name = "yolo"
    description = ("NCNN/OpenCV-style image segmentation over an input "
                   "image batch with common Yolov5-shaped weights")

    images = 24

    def __init__(self, seed: int = 0, scale: float = 1.0):
        super().__init__(seed, scale)
        rng = np.random.default_rng(seed + 2)
        self.filters = rng.standard_normal((KERNELS, 3, 3)).astype(np.float32)
        self.head = rng.standard_normal((KERNELS, 4)).astype(np.float32)

    @property
    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            heap_bytes=24 * MIB,
            threads=8,
            common=[CommonSpec("yolov5-weights", 8 * MIB, initializer=True)],
            preload=[PreloadFile("/app/classes.txt", b"person\ncar\ndog\n")],
            bg_mmu_ops_per_tick=16,
            bg_copy_ops_per_tick=12,
            bg_faults_per_tick=1.0,
            bg_ve_per_tick=0.8,
            reclaim_pages_per_tick=2,
            common_touch_stride=32 * 1024,
            init_compute_cycles=300_000_000,
        )

    def default_request(self) -> bytes:
        rng = np.random.default_rng(self.seed + 3)
        n = max(int(self.images * self.scale), 2)
        return rng.integers(0, 255, size=n * IMG * IMG, dtype=np.uint8).tobytes()

    # ------------------------------------------------------------------ #

    def _detect(self, image: np.ndarray) -> list[tuple[int, float]]:
        """Conv -> ReLU -> global pool -> box head (real math)."""
        feats = []
        for kernel in self.filters:
            acc = np.zeros((IMG - 2, IMG - 2), dtype=np.float32)
            for dy in range(3):
                for dx in range(3):
                    acc += kernel[dy, dx] * image[dy:dy + IMG - 2, dx:dx + IMG - 2]
            feats.append(np.maximum(acc, 0).mean())
        scores = np.array(feats, dtype=np.float32) @ self.head
        cls = int(np.argmax(scores))
        return [(cls, float(scores[cls]))]

    def serve(self, rt, request: bytes) -> bytes:
        n = len(request) // (IMG * IMG)
        if n == 0:
            raise ValueError("request carries no images")
        buf_va = rt.malloc(n * IMG * IMG)
        results = []
        for i in range(n):
            raw = np.frombuffer(
                request[i * IMG * IMG:(i + 1) * IMG * IMG], dtype=np.uint8)
            image = raw.reshape(IMG, IMG).astype(np.float32) / 255.0
            rt.touch_range(buf_va + i * IMG * IMG, IMG * IMG, write=True)
            # whole weight set swept per image, one page per 32 KiB chunk
            rt.touch_common("yolov5-weights", stride=32 * 1024)
            rt.parallel_for(64, CYCLES_PER_ITEM, sync_every=1)
            (cls, score), = self._detect(image)
            results.append(f"{i}:{cls}:{score:.3f}")
        output = ";".join(results).encode()
        rt.send_output(output)
        return output
