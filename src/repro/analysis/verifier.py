"""The CFG-based static verifier run at boot after the byte scan.

Erebor's two-stage verified boot byte-scans executable sections for
sensitive instructions (paper §5.1).  That scan is necessary but not
sufficient: the security argument also needs *structural* facts — the
entry gate as the only legal indirect-call destination into the monitor,
instrumentation thunks as the only code calling it, W^X sections, no
stray control flow.  :class:`StaticVerifier` proves those facts over the
recovered CFG before the kernel ever executes.

Checks (IDs are stable; clients and the audit log reference them):

======  ===================  ==============================================
ID      name                 rejects
======  ===================  ==============================================
V0      stream-decode        sections that are not clean aligned streams
V1      branch-target        direct branches (and the image entry) landing
                             out of section or between instructions
V2      endbr-pad            statically-known indirect targets that do not
                             land on ``endbr`` (or the entry gate)
V3      gate-provenance      ``icall``s of the entry-gate VA from code that
                             is not an instrumentation-shaped thunk
V4      wx-section           sections mapped writable *and* executable
V5      section-fallthrough  executable sections whose last instruction can
                             fall off the end
V6      byte-scan            sensitive byte sequences at any offset (the
                             paper's original stage-2 scan, folded in)
V7      thunk-liveness       gate thunks that clobber live registers
                             without a matching save/restore bracket
======  ===================  ==============================================

The report is pure and deterministic — no clock, no I/O — so the same
image always yields the same :meth:`VerifierReport.digest`, which the
monitor folds into RTMR[3] of the attestation measurement.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..emc_abi import ENTRY_GATE_VA
from ..hw.isa import INSTR_SIZE, scan_for_sensitive
from ..kernel.image import SelfImage
from .cfg import CfgDecodeError, ControlFlowGraph, TERMINATORS, build_cfg
from .thunks import parse_gate_call_site, thunk_templates

#: stable check-ID → short name table (order is report order)
CHECKS = {
    "V0": "stream-decode",
    "V1": "branch-target",
    "V2": "endbr-pad",
    "V3": "gate-provenance",
    "V4": "wx-section",
    "V5": "section-fallthrough",
    "V6": "byte-scan",
    "V7": "thunk-liveness",
}


@dataclass(frozen=True)
class Finding:
    """One concrete violation: which check, where, and why."""

    check: str                  # key into CHECKS
    section: str                # section name ("<image>" for whole-image)
    offset: int | None          # section-relative byte offset, if localized
    detail: str

    def as_dict(self) -> dict:
        return {"check": self.check, "section": self.section,
                "offset": self.offset, "detail": self.detail}


@dataclass(frozen=True)
class CheckResult:
    """Aggregated verdict for one check ID."""

    check: str
    name: str
    passed: bool
    count: int
    first_section: str | None
    first_offset: int | None
    detail: str                 # detail of the first finding, or ""

    def as_dict(self) -> dict:
        return {"id": self.check, "name": self.name, "passed": self.passed,
                "count": self.count, "first_section": self.first_section,
                "first_offset": self.first_offset, "detail": self.detail}


@dataclass
class VerifierReport:
    """Deterministic, attestable summary of one image verification."""

    image: str
    entry: int
    gate_va: int
    sections: list[dict] = field(default_factory=list)
    instructions: int = 0
    blocks: int = 0
    edges: int = 0
    indirect_sites: int = 0
    gate_sites: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def checks(self) -> list[CheckResult]:
        per: dict[str, list[Finding]] = {cid: [] for cid in CHECKS}
        for f in self.findings:
            per[f.check].append(f)
        out = []
        for cid, name in CHECKS.items():
            fs = per[cid]
            first = fs[0] if fs else None
            out.append(CheckResult(
                check=cid, name=name, passed=not fs, count=len(fs),
                first_section=first.section if first else None,
                first_offset=first.offset if first else None,
                detail=first.detail if first else ""))
        return out

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def failed_checks(self) -> list[str]:
        return sorted({f.check for f in self.findings})

    @property
    def first_failure(self) -> Finding | None:
        return self.findings[0] if self.findings else None

    def as_dict(self) -> dict:
        return {
            "image": self.image,
            "entry": self.entry,
            "gate_va": self.gate_va,
            "sections": self.sections,
            "instructions": self.instructions,
            "blocks": self.blocks,
            "edges": self.edges,
            "indirect_sites": self.indirect_sites,
            "gate_sites": self.gate_sites,
            "ok": self.ok,
            "failed_checks": self.failed_checks,
            "checks": [c.as_dict() for c in self.checks],
            "findings": [f.as_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        # sort_keys keeps the preimage independent of dict build order
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 over the canonical JSON — folded into RTMR[3] at boot."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


class StaticVerifier:
    """Runs the V0–V7 checks over every executable section of an image."""

    def __init__(self, *, gate_va: int = ENTRY_GATE_VA):
        self.gate_va = gate_va
        self._templates = thunk_templates()

    def verify_image(self, image: SelfImage) -> VerifierReport:
        report = VerifierReport(image=image.name, entry=image.entry,
                                gate_va=self.gate_va)
        cfgs: list[tuple[object, ControlFlowGraph]] = []
        for sec in image.sections:
            report.sections.append({
                "name": sec.name, "va": sec.va, "size": len(sec.data),
                "flags": sec.flags, "executable": sec.executable})
            if sec.executable and sec.writable:
                report.findings.append(Finding(
                    "V4", sec.name, None,
                    f"section {sec.name} is both writable and executable "
                    f"(flags {sec.flags:#x})"))
            if not sec.executable:
                continue
            for off, name in scan_for_sensitive(sec.data):
                report.findings.append(Finding(
                    "V6", sec.name, off,
                    f"sensitive byte sequence ({name}) at offset {off:#x}"))
            try:
                cfg = build_cfg(sec.data, sec.va)
            except CfgDecodeError as exc:
                report.findings.append(Finding(
                    "V0", sec.name, exc.offset,
                    f"undecodable instruction stream: {exc.description}"))
                continue
            cfgs.append((sec, cfg))
            report.instructions += len(cfg.instrs)
            report.blocks += len(cfg.blocks)
            report.edges += len(cfg.edges)
            report.indirect_sites += len(cfg.indirect_sites)

        self._check_entry(image, cfgs, report)
        for sec, cfg in cfgs:
            self._check_section(sec, cfg, cfgs, report)
        return report

    # -- individual checks -------------------------------------------------

    def _check_entry(self, image, cfgs, report) -> None:
        for _, cfg in cfgs:
            if cfg.contains(image.entry) and cfg.aligned(image.entry):
                return
        report.findings.append(Finding(
            "V1", "<image>", None,
            f"entry {image.entry:#x} is not an aligned instruction in any "
            "executable section"))

    def _check_section(self, sec, cfg, cfgs, report) -> None:
        if cfg.instrs:
            last = cfg.instrs[-1]
            if last.op not in TERMINATORS and last.op not in ("jmp", "ijmp"):
                report.findings.append(Finding(
                    "V5", sec.name, len(sec.data) - INSTR_SIZE,
                    f"section ends in {last.op!r}: execution can fall off "
                    "the section end"))
        for idx, instr in enumerate(cfg.instrs):
            if instr.op in ("jmp", "jz", "jnz", "call"):
                if not (cfg.contains(instr.imm) and cfg.aligned(instr.imm)):
                    report.findings.append(Finding(
                        "V1", sec.name, idx * INSTR_SIZE,
                        f"{instr.op} at offset {idx * INSTR_SIZE:#x} "
                        f"targets {instr.imm:#x}, which is not an aligned "
                        "in-section instruction"))
        for site in cfg.indirect_sites:
            off = site.va - sec.va
            if site.target is None:
                continue            # runtime IBT is the only possible check
            if site.target == self.gate_va:
                self._check_gate_site(sec, cfg, site, off, report)
                continue
            if not self._lands_on_endbr(site.target, cfgs):
                report.findings.append(Finding(
                    "V2", sec.name, off,
                    f"{site.op} at offset {off:#x} targets "
                    f"{site.target:#x}, which is not an endbr landing pad"))

    def _lands_on_endbr(self, target: int, cfgs) -> bool:
        for _, cfg in cfgs:
            if cfg.contains(target):
                instr = cfg.instr_at(target)
                return instr is not None and instr.op == "endbr"
        return False

    def _check_gate_site(self, sec, cfg, site, off, report) -> None:
        if site.op != "icall":
            report.findings.append(Finding(
                "V3", sec.name, off,
                f"{site.op} at offset {off:#x} jumps to the entry gate; "
                "only instrumentation thunks may icall it"))
            return
        icall_index = (site.va - cfg.section_va) // INSTR_SIZE
        parsed = parse_gate_call_site(cfg.instrs, icall_index, self.gate_va)
        matched = next(
            (t for t in self._templates.values()
             if t.matches_body(parsed.body)), None)
        if matched is None or not parsed.ret_ok:
            report.findings.append(Finding(
                "V3", sec.name, off,
                f"icall of the entry gate at offset {off:#x} is not an "
                "instrumentation-shaped thunk"))
        else:
            report.gate_sites += 1
        clobbered = parsed.clobbered
        if clobbered:
            report.findings.append(Finding(
                "V7", sec.name, off,
                f"gate thunk at offset {off:#x} clobbers "
                f"{', '.join(clobbered)} without a save/restore bracket"))
