"""User-interrupt (UINTR) fabric.

The paper's AV3 includes a covert channel where a sandboxed program sends
*user-mode interrupts* to attacker processes without ever trapping to the
kernel. The hardware side is simple: ``senduipi`` consults the sender's
``IA32_UINTR_TT`` target table (valid bit 0); if valid, the interrupt is
posted to the receiver registered for that index. Erebor's monitor clears
the valid bit before entering a sandbox, so ``senduipi`` raises #GP — that
check lives in the CPU; this module is the delivery fabric behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class UintrFabric:
    """Routes posted user interrupts to registered receivers."""

    receivers: dict[int, Callable[[int, int], None]] = field(default_factory=dict)
    posted: list[tuple[int, int]] = field(default_factory=list)  # (sender, index)

    def register_receiver(self, index: int, callback: Callable[[int, int], None]) -> None:
        self.receivers[index] = callback

    def send(self, sender_cpu, index: int) -> None:
        """Post a user interrupt from ``sender_cpu`` to target ``index``."""
        self.posted.append((sender_cpu.cpu_id, index))
        callback = self.receivers.get(index)
        if callback is not None:
            callback(sender_cpu.cpu_id, index)
