"""End-to-end attack-vector scenarios (AV1-AV3, paper §3.2 / Table 1).

Each test is an attacker playbook run against a fully booted Erebor CVM
with a locked sandbox holding a known client secret; the assertion is
always the same: the attack is stopped *and* the secret never appears in
anything the host, kernel, or proxy could observe.
"""

import pytest

from repro.client import RemoteClient
from repro.core import (
    PolicyViolation,
    SandboxViolation,
    erebor_boot,
    published_measurement,
)
from repro.core.channel import SecureChannel, UntrustedProxy
from repro.hw import regs
from repro.hw.devices import DmaBlocked
from repro.hw.errors import GeneralProtectionFault, PageFault
from repro.hw.memory import PAGE_SIZE
from repro.hw.mmu import AccessContext, KERNEL_MODE
from repro.hw.paging import PTE_NX, PTE_P, PTE_U, PTE_W, make_pte
from repro.kernel.process import SegmentationFault
from repro.tdx.vmm import PrivateMemoryError
from repro.vm import CvmMachine, MachineConfig, MIB

SECRET = b"CLIENT-SECRET-<2b85c1>"


@pytest.fixture
def rig():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    sandbox = system.monitor.create_sandbox("victim", confined_budget=8 * MIB,
                                            threads=2)
    sandbox.declare_confined(1 * MIB)
    channel = SecureChannel(system.monitor, sandbox)
    proxy = UntrustedProxy(system.monitor)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    client.request(proxy, channel, SECRET)
    assert sandbox.locked
    return machine, system, sandbox, channel, proxy, client


def assert_secret_never_leaked(machine, proxy):
    assert SECRET not in machine.vmm.observed_blob()
    assert not proxy.log.saw(SECRET)


# --------------------------------------------------------------------------- #
# AV1: OS data retrieval
# --------------------------------------------------------------------------- #

def test_av1_kernel_user_copy_from_sandbox_denied(rig):
    machine, system, sandbox, channel, proxy, client = rig
    kernel = system.kernel
    kernel.current = sandbox.task
    with pytest.raises(PolicyViolation):
        kernel.ops.user_copy(4096, to_user=False)
    assert_secret_never_leaked(machine, proxy)


def test_av1_kernel_smap_blocks_direct_read_of_sandbox_pages(rig):
    machine, system, sandbox, channel, proxy, client = rig
    va = sandbox.io_vma.start
    ctx = AccessContext(mode=KERNEL_MODE, cr0=machine.cpu.crs[0],
                        cr4=machine.cpu.crs[4], pkrs=0)
    with pytest.raises(PageFault):
        machine.cpu.mmu.check(sandbox.task.aspace, va, "read", ctx)


def test_av1_kernel_cannot_map_confined_frame_into_own_space(rig):
    machine, system, sandbox, channel, proxy, client = rig
    target = sandbox.io_vma.backing.frames[0]
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_pte(
            system.kernel.kernel_aspace, 0x50_0000_0000,
            make_pte(target, PTE_P | PTE_NX))
    assert_secret_never_leaked(machine, proxy)


def test_av1_double_mapping_into_second_process_denied(rig):
    machine, system, sandbox, channel, proxy, client = rig
    attacker = system.kernel.spawn("attacker")
    target = sandbox.io_vma.backing.frames[0]
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_pte(
            attacker.aspace, 0x40_0000,
            make_pte(target, PTE_P | PTE_U | PTE_NX))


def test_av1_convert_sandbox_memory_to_shared_denied(rig):
    machine, system, sandbox, channel, proxy, client = rig
    target = sandbox.io_vma.backing.frames[0]
    with pytest.raises(PolicyViolation):
        system.monitor.ops.map_gpa(target, 1, shared=True)
    # and the TDX module still treats it as private
    assert not machine.tdx.is_shared(target)


def test_av1_device_dma_into_sandbox_memory_blocked(rig):
    machine, system, sandbox, channel, proxy, client = rig
    target = sandbox.io_vma.backing.frames[0]
    with pytest.raises(DmaBlocked):
        machine.dma.dma_read(target * PAGE_SIZE, 64)
    with pytest.raises(PrivateMemoryError):
        machine.vmm.host_read(target)
    assert_secret_never_leaked(machine, proxy)


def test_av1_secret_physically_present_yet_unreachable(rig):
    """Sanity: the secret IS in guest memory; the attacks above would have
    worked without Erebor."""
    machine, system, sandbox, channel, proxy, client = rig
    fn = sandbox.io_vma.backing.frames[0]
    assert machine.phys.read(fn * PAGE_SIZE, len(SECRET)) == SECRET


# --------------------------------------------------------------------------- #
# AV2: program direct data leakage
# --------------------------------------------------------------------------- #

def test_av2_sandbox_write_syscall_kills(rig):
    machine, system, sandbox, channel, proxy, client = rig
    kernel = system.kernel
    fd_holder = {}
    with pytest.raises(SandboxViolation):
        kernel.syscall(sandbox.task, "open", "/tmp/exfil", create=True,
                       write=True)
    assert sandbox.dead
    assert not kernel.vfs.exists("/tmp/exfil")
    assert_secret_never_leaked(machine, proxy)


def test_av2_sandbox_network_send_kills(rig):
    machine, system, sandbox, channel, proxy, client = rig
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(sandbox.task, "socket")
    assert sandbox.dead
    assert_secret_never_leaked(machine, proxy)


def test_av2_sandbox_hypercall_kills(rig):
    machine, system, sandbox, channel, proxy, client = rig
    system.kernel.current = sandbox.task
    with pytest.raises(SandboxViolation):
        system.kernel.exit_path.on_ve(sandbox.task, "hypercall")
    assert sandbox.dead


def test_av2_sandbox_write_to_common_memory_blocked_after_lock(rig):
    """Leaking via shared model memory to a colluding sandbox fails."""
    machine, system, sandbox, channel, proxy, client = rig
    # a second, attacker-owned sandbox shares the region
    sb2 = system.monitor.create_sandbox("colluder", confined_budget=2 * MIB)
    sb2.declare_confined(64 * 1024)
    v1 = sandbox.attach_common("shared-db", 256 * 1024)
    # region sealed because `sandbox` is locked? sealing happens at lock
    # time; late attach maps read-only since window closed for non-init
    with pytest.raises(SegmentationFault):
        system.kernel.touch_pages(sandbox.task, v1.start, PAGE_SIZE,
                                  write=True)


def test_av2_sandbox_write_outside_its_vmas_blocked(rig):
    machine, system, sandbox, channel, proxy, client = rig
    with pytest.raises(SegmentationFault):
        system.kernel.touch_pages(sandbox.task, 0x3000_0000, PAGE_SIZE,
                                  write=True)


def test_av2_killed_sandbox_memory_scrubbed(rig):
    machine, system, sandbox, channel, proxy, client = rig
    fn = sandbox.io_vma.backing.frames[0]
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(sandbox.task, "getpid")
    assert machine.phys.read(fn * PAGE_SIZE, len(SECRET)) == b"\x00" * len(SECRET)


# --------------------------------------------------------------------------- #
# AV3: covert leakage
# --------------------------------------------------------------------------- #

def test_av3_syscall_parameter_channel_impossible(rig):
    """Encoding secrets in syscall arguments dies with the first syscall."""
    machine, system, sandbox, channel, proxy, client = rig
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(sandbox.task, "nanosleep", SECRET[0] * 1000)
    assert sandbox.dead


def test_av3_user_interrupt_channel_disabled(rig):
    """senduipi with the target table invalidated raises #GP (Fig. 7 ④)."""
    machine, system, sandbox, channel, proxy, client = rig
    assert machine.cpu.msrs[regs.IA32_UINTR_TT] == 0  # cleared at lock
    from repro.hw.isa import I
    from repro.hw.testbench import MicroMachine, USER_CODE_VA
    micro = MicroMachine(uintr=machine.uintr)
    micro.cpu.msrs[regs.IA32_UINTR_TT] = 0  # what the monitor enforced
    micro.load_code(USER_CODE_VA, [
        I("movi", "rax", imm=1),
        I("senduipi", "rax"),
    ], user=True)
    with pytest.raises(GeneralProtectionFault):
        micro.run_user()
    assert machine.uintr.posted == []


def test_av3_output_size_channel_closed_by_padding(rig):
    """Two very different result sizes produce identical ciphertext sizes."""
    machine, system, sandbox, channel, proxy, client = rig
    sandbox.push_output(b"Y")                     # 1 bit of secret
    r_small = channel.fetch_response()
    sandbox.push_output(b"N" * 700)               # very different answer
    r_large = channel.fetch_response()
    assert len(r_small) == len(r_large)


def test_av3_exit_rate_observable_only_as_counts_not_content(rig):
    """Interrupt exits expose no register state: the monitor masks it."""
    machine, system, sandbox, channel, proxy, client = rig
    kernel = system.kernel
    kernel.current = sandbox.task
    before = machine.clock.by_tag.get("sandbox_state", 0)
    kernel.advance(kernel.tick_period * 3, sandbox.task)
    after = machine.clock.by_tag["sandbox_state"]
    assert after > before  # state saved+masked+restored on every exit
    assert_secret_never_leaked(machine, proxy)


# --------------------------------------------------------------------------- #
# Baseline comparison: the same attacks SUCCEED without Erebor
# --------------------------------------------------------------------------- #

def test_without_erebor_kernel_reads_everything():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    kernel = machine.boot_native_kernel()
    task = kernel.spawn("victim")
    from repro.kernel.process import PROT_READ, PROT_WRITE
    vma = kernel.mmap(task, PAGE_SIZE, PROT_READ | PROT_WRITE)
    kernel.touch_pages(task, vma.start, PAGE_SIZE, write=True)
    fn = task.aspace.mapped_frame(vma.start)
    machine.phys.write(fn * PAGE_SIZE, SECRET)
    # native kernel: user_copy succeeds, PTE remap succeeds, MapGPA+DMA works
    kernel.ops.user_copy(4096, to_user=False)  # no exception
    kernel.ops.write_pte(kernel.kernel_aspace, 0x50_0000_0000,
                         make_pte(fn, PTE_P | PTE_NX))  # double map: fine
    machine.tdx.guest_map_gpa(fn, 1, shared=True)  # kernel owns GHCI
    leaked = machine.vmm.host_read(fn)
    assert SECRET in leaked  # the host now holds the plaintext
