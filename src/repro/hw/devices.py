"""Devices and DMA, with the TDX shared-memory restriction.

In a TD guest, device MMIO and DMA can only touch *shared* guest-physical
memory; the host IOMMU rejects DMA into private pages (paper §2.1). The
:class:`DmaEngine` models a host-controlled device: it reads and writes
guest-physical frames directly — no guest page tables, no PKS — subject
only to the shared/private check supplied by the TDX module. Attacks in
AV1 ("convert regions to shared and retrieve them using device DMA") are
expressed against this engine.
"""

from __future__ import annotations

from typing import Callable, Protocol

from .errors import SimulatorError
from .memory import PAGE_SHIFT, PhysicalMemory


class DmaBlocked(Exception):
    """The IOMMU rejected a DMA transaction (private target page)."""


class SharedMemoryOracle(Protocol):
    """Answers "is this guest-physical frame shared with the host?"."""

    def is_shared(self, fn: int) -> bool: ...


class DmaEngine:
    """A host-side DMA-capable device (disk/NIC model)."""

    def __init__(self, phys: PhysicalMemory, shared_oracle: SharedMemoryOracle,
                 name: str = "virtio"):
        self.phys = phys
        self.oracle = shared_oracle
        self.name = name
        self.blocked_attempts: list[int] = []

    def _check(self, pa: int, size: int) -> None:
        for fn in range(pa >> PAGE_SHIFT, (pa + max(size, 1) - 1 >> PAGE_SHIFT) + 1):
            if not self.oracle.is_shared(fn):
                self.blocked_attempts.append(fn)
                raise DmaBlocked(
                    f"{self.name}: DMA to private frame {fn:#x} rejected by IOMMU")

    def dma_read(self, pa: int, size: int) -> bytes:
        """Device reads guest memory (e.g. transmit buffer)."""
        self._check(pa, size)
        return self.phys.read(pa, size)

    def dma_write(self, pa: int, data: bytes) -> None:
        """Device writes guest memory (e.g. receive buffer)."""
        self._check(pa, len(data))
        self.phys.write(pa, data)


class VirtualNic:
    """A shared-memory NIC: ring of packets moved by DMA.

    The untrusted proxy process uses this to exchange ciphertext with the
    outside world; everything crossing it is visible to the host (and to
    the Fig. 10 throughput benchmarks).
    """

    def __init__(self, dma: DmaEngine):
        self.dma = dma
        self.tx_log: list[bytes] = []          # what the host observed leaving
        self.rx_queue: list[bytes] = []        # packets waiting for the guest
        self.on_transmit: Callable[[bytes], None] | None = None

    def guest_transmit(self, pa: int, size: int) -> None:
        """Guest hands a shared buffer to the device for transmission."""
        packet = self.dma.dma_read(pa, size)
        self.tx_log.append(packet)
        if self.on_transmit is not None:
            self.on_transmit(packet)

    def host_inject(self, packet: bytes) -> None:
        self.rx_queue.append(packet)

    def guest_receive(self, pa: int, max_size: int) -> int:
        """Deliver the next queued packet into a shared buffer via DMA."""
        if not self.rx_queue:
            return 0
        packet = self.rx_queue.pop(0)
        if len(packet) > max_size:
            raise SimulatorError("receive buffer too small")
        self.dma.dma_write(pa, packet)
        return len(packet)
