"""Tests for waitpid/lseek/dup and multi-task scheduling behaviour."""

import pytest

from repro.kernel.vfs import FsError
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def kernel():
    return CvmMachine(MachineConfig(memory_bytes=256 * MIB)).boot_native_kernel()


def test_waitpid_returns_exit_code(kernel):
    parent = kernel.spawn("parent")
    child = kernel.syscall(parent, "clone")
    kernel.syscall(child, "exit", 42)
    assert kernel.syscall(parent, "waitpid", child.pid) == 42


def test_waitpid_burns_time_until_exit(kernel):
    parent = kernel.spawn("parent")
    child = kernel.syscall(parent, "clone")

    # exit the child after a few ticks via a tick hook
    state = {"ticks": 0}

    def reaper():
        state["ticks"] += 1
        if state["ticks"] == 3 and child.state != "dead":
            kernel.exit_task(child, 7)

    kernel.tick_hooks.append(reaper)
    assert kernel.syscall(parent, "waitpid", child.pid) == 7
    assert state["ticks"] >= 3


def test_waitpid_timeout(kernel):
    parent = kernel.spawn("parent")
    child = kernel.syscall(parent, "clone")
    with pytest.raises(TimeoutError):
        kernel.syscall(parent, "waitpid", child.pid, max_ticks=3)


def test_waitpid_unknown_pid(kernel):
    parent = kernel.spawn("parent")
    with pytest.raises(ValueError):
        kernel.syscall(parent, "waitpid", 9999)


def test_lseek_repositions(kernel):
    task = kernel.spawn("t")
    fd = kernel.syscall(task, "open", "/f", create=True, write=True)
    kernel.syscall(task, "write", fd, b"abcdef")
    kernel.syscall(task, "lseek", fd, 2)
    assert kernel.syscall(task, "read", fd, 2) == b"cd"


def test_dup_shares_offset(kernel):
    task = kernel.spawn("t")
    fd = kernel.syscall(task, "open", "/g", create=True, write=True)
    kernel.syscall(task, "write", fd, b"xyz")
    kernel.syscall(task, "lseek", fd, 0)
    fd2 = kernel.syscall(task, "dup", fd)
    assert kernel.syscall(task, "read", fd2, 1) == b"x"
    assert kernel.syscall(task, "read", fd, 1) == b"y"   # same description


def test_dup_bad_fd(kernel):
    task = kernel.spawn("t")
    with pytest.raises(FsError):
        kernel.syscall(task, "dup", 99)
