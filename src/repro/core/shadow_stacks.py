"""Per-task kernel shadow stacks, monitor-managed (paper §2.2 + §5.3).

Kernel shadow stacks are per-logical-core and per-task; switching tasks
means switching ``IA32_PL0_SSP`` — a monitor-owned MSR under Erebor (the
kernel writing it freely could point the checker at attacker-built return
records). The monitor therefore owns the whole lifecycle:

* allocate each task's stack in write-protected shadow-stack frames with
  a supervisor token at the top,
* on context switch (an EMC): verify + release the outgoing task's busy
  token, verify + claim the incoming one, write the SSP,
* refuse activation of busy or corrupted tokens — the one-core-at-a-time
  rule the paper quotes from the CET spec.

The paper's Linux prototype omits kernel SST (unsupported upstream at the
time); this module implements the full design the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hw import cet
from ..hw.cycles import Cost
from ..hw.memory import PAGE_SIZE

if TYPE_CHECKING:
    from ..kernel.process import Task
    from .monitor import EreborMonitor

#: kernel-VA region housing per-task shadow stacks
TASK_SST_BASE = 0x60_C000_0000
TASK_SST_STRIDE = 16 * PAGE_SIZE
TASK_SST_PAGES = 4


class ShadowStackManager:
    """Monitor-side bookkeeping for every task's kernel shadow stack."""

    def __init__(self, monitor: "EreborMonitor"):
        self.monitor = monitor
        self._token_by_pid: dict[int, int] = {}
        #: cpu_id -> token VA of the stack that core currently holds busy
        self.active: dict[int, int] = {}
        self._next_slot = 0

    # ------------------------------------------------------------------ #

    def stack_for(self, task: "Task") -> int:
        """Return (allocating on first use) the task's stack token VA."""
        token = self._token_by_pid.get(task.pid)
        if token is None:
            kernel = self.monitor.kernel
            base = TASK_SST_BASE + self._next_slot * TASK_SST_STRIDE
            self._next_slot += 1
            token = cet.allocate_shadow_stack(
                self.monitor.phys, kernel.kernel_aspace, base,
                TASK_SST_PAGES, owner="monitor")
            self._token_by_pid[task.pid] = token
            self.monitor.clock.charge(
                TASK_SST_PAGES * Cost.PTE_WRITE_NATIVE, "sst")
        return token

    def switch(self, cpu_id: int, prev: "Task | None", nxt: "Task") -> None:
        """The context-switch EMC body: release prev's stack, claim next's."""
        monitor = self.monitor
        kernel = monitor.kernel
        phys = monitor.phys
        aspace = kernel.kernel_aspace
        with monitor.clock.tracer.span("emc:sst", "emc"):
            monitor.clock.charge(Cost.EMC_ROUND_TRIP + Cost.VALIDATE_MSR,
                                 "sst")
        monitor.clock.count("emc")
        monitor.clock.count("sst_switch")
        from ..obs.metrics import sandbox_label
        monitor.clock.metrics.inc("erebor_emc_total", cls="sst",
                                  sandbox=sandbox_label(nxt))
        monitor.clock.metrics.inc("erebor_pkrs_toggles_total", 2)
        held = self.active.get(cpu_id)
        if held is not None:
            cet.deactivate_shadow_stack(kernel.cpu, aspace, held, phys)
        token = self.stack_for(nxt)
        cet.activate_shadow_stack(kernel.cpu, aspace, token, phys)
        self.active[cpu_id] = token

    def release_task(self, task: "Task") -> None:
        """A task died: retire its stack (frames stay monitor-owned)."""
        self._token_by_pid.pop(task.pid, None)
