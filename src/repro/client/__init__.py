"""The remote client: attestation verification + sealed request/response."""

from .client import AttestationFailure, RemoteClient

__all__ = ["AttestationFailure", "RemoteClient"]
