"""Unit tests for the TDX module: sEPT, tdcall dispatch, measurement."""

import pytest

from repro.hw.cycles import Cost, CycleClock
from repro.hw.errors import GeneralProtectionFault
from repro.hw.isa import I
from repro.hw.memory import PhysicalMemory
from repro.hw.testbench import KERNEL_CODE_VA, KERNEL_DATA_VA, MicroMachine
from repro.tdx import (
    AttestationAuthority,
    HostVmm,
    LEAF_TDREPORT,
    LEAF_VMCALL,
    PrivateMemoryError,
    TdxModule,
    VMCALL_CPUID,
    VMCALL_MAPGPA,
)


@pytest.fixture
def rig():
    phys = PhysicalMemory(64 * 1024 * 1024)
    clock = CycleClock()
    vmm = HostVmm(phys, clock)
    tdx = TdxModule(phys, clock, vmm, AttestationAuthority())
    vmm.shared_oracle = tdx
    return phys, clock, vmm, tdx


def test_all_memory_private_by_default(rig):
    _, _, _, tdx = rig
    assert not tdx.is_shared(0)
    assert not tdx.is_shared(12345)


def test_mapgpa_converts_and_notifies_host(rig):
    _, _, vmm, tdx = rig
    tdx.guest_map_gpa(100, 4, shared=True)
    assert all(tdx.is_shared(fn) for fn in range(100, 104))
    assert not tdx.is_shared(104)
    assert ("mapgpa", (100, 4, True)) in vmm.observations
    tdx.guest_map_gpa(100, 2, shared=False)
    assert not tdx.is_shared(100)
    assert tdx.is_shared(102)


def test_host_cannot_read_private_memory(rig):
    phys, _, vmm, tdx = rig
    phys.write(50 * 4096, b"secret data")
    with pytest.raises(PrivateMemoryError):
        vmm.host_read(50)


def test_host_reads_shared_memory(rig):
    phys, _, vmm, tdx = rig
    phys.write(51 * 4096, b"public data")
    tdx.guest_map_gpa(51, 1, shared=True)
    assert vmm.host_read(51).startswith(b"public data")
    assert b"public data" in vmm.observed_blob()


def test_tdcall_charges_table3_cost(rig):
    _, clock, _, tdx = rig
    before = clock.cycles
    tdx.guest_map_gpa(10, 1, shared=True)
    assert clock.cycles - before == Cost.TDCALL_ROUND_TRIP


def test_tdreport_binds_measurement_and_report_data(rig):
    _, _, _, tdx = rig
    tdx.build_load("firmware", b"OVMF")
    tdx.build_load("monitor", b"EREBOR")
    tdx.finalize()
    quote = tdx.guest_tdreport(b"channel-binding")
    assert quote.report_data.startswith(b"channel-binding")
    assert quote.mrtd == tdx.measurement.mrtd
    report = tdx.authority.verify(quote, expected_mrtd=tdx.measurement.mrtd)
    assert report.mrtd == quote.mrtd


def test_measurement_order_sensitive(rig):
    _, _, _, tdx = rig
    tdx.build_load("a", b"1")
    tdx.build_load("b", b"2")
    other = TdxModule(rig[0], rig[1], rig[2], AttestationAuthority())
    other.build_load("b", b"2")
    other.build_load("a", b"1")
    assert tdx.measurement.mrtd != other.measurement.mrtd


def test_build_load_after_finalize_rejected(rig):
    _, _, _, tdx = rig
    tdx.finalize()
    with pytest.raises(RuntimeError):
        tdx.build_load("late", b"payload")


def test_report_data_too_long(rig):
    _, _, _, tdx = rig
    with pytest.raises(ValueError):
        tdx.guest_tdreport(b"x" * 65)


def test_micro_tdcall_vmcall_mapgpa(rig):
    phys, clock, vmm, tdx = rig
    m = MicroMachine(tdx=tdx)
    # tdcall(vmcall, mapgpa): rcx=fn_start, rdx=(count<<1)|shared
    m.load_code(KERNEL_CODE_VA, [
        I("movi", "rax", imm=LEAF_VMCALL),
        I("movi", "rbx", imm=VMCALL_MAPGPA),
        I("movi", "rcx", imm=77),
        I("movi", "rdx", imm=(3 << 1) | 1),
        I("tdcall"),
        I("hlt"),
    ])
    m.run_kernel()
    assert tdx.is_shared(77) and tdx.is_shared(79)


def test_micro_tdcall_scrubs_registers_before_host(rig):
    _, _, vmm, tdx = rig
    m = MicroMachine(tdx=tdx)
    m.load_code(KERNEL_CODE_VA, [
        I("movi", "r12", imm=0x5EC12E7),  # "secret" value in a register
        I("movi", "rax", imm=LEAF_VMCALL),
        I("movi", "rbx", imm=VMCALL_CPUID),
        I("tdcall"),
        I("hlt"),
    ])
    m.run_kernel()
    exits = [p for kind, p in vmm.observations if kind == "td_exit_regs"]
    assert exits and all(v == 0 for v in exits[0].values())


def test_micro_tdreport(rig):
    _, _, _, tdx = rig
    tdx.build_load("monitor", b"EREBOR")
    tdx.finalize()
    m = MicroMachine(tdx=tdx)
    m.map_data(KERNEL_DATA_VA)
    m.write_phys(KERNEL_DATA_VA, b"nonce-material".ljust(64, b"\x00"))
    m.load_code(KERNEL_CODE_VA, [
        I("movi", "rax", imm=LEAF_TDREPORT),
        I("movi", "rcx", imm=KERNEL_DATA_VA),
        I("tdcall"),
        I("hlt"),
    ])
    m.run_kernel()
    assert m.cpu.last_tdreport.report_data.startswith(b"nonce-material")


def test_micro_tdcall_from_user_faults(rig):
    _, _, _, tdx = rig
    m = MicroMachine(tdx=tdx)
    from repro.hw.testbench import USER_CODE_VA
    m.load_code(USER_CODE_VA, [I("tdcall")], user=True)
    with pytest.raises(GeneralProtectionFault):
        m.run_user()


def test_unknown_leaf_faults(rig):
    _, _, _, tdx = rig
    m = MicroMachine(tdx=tdx)
    m.load_code(KERNEL_CODE_VA, [I("movi", "rax", imm=999), I("tdcall"), I("hlt")])
    with pytest.raises(GeneralProtectionFault):
        m.run_kernel()


def test_vmm_interrupt_injection_reaches_sink(rig):
    _, _, vmm, _ = rig
    got = []
    vmm.interrupt_sink = got.append
    vmm.inject_interrupt(32)
    assert got == [32]
    assert ("inject_irq", 32) in vmm.observations


def test_plain_vmcall_cost(rig):
    _, clock, vmm, _ = rig
    before = clock.cycles
    vmm.plain_vmcall()
    assert clock.cycles - before == Cost.VMCALL_ROUND_TRIP
