#!/usr/bin/env python3
"""Cloud intrusion detection over corporate audit logs (§3.1).

Unicorn-style provenance analysis as a service: a corporation ships its
(parsed) system audit log — full of internal hostnames, process names and
connection patterns — and gets back an APT verdict. The log must never be
readable by the analytics provider. This example runs both a clean and an
attack-bearing log through sandboxed analysis.

Run:  python examples/intrusion_detection.py
"""

from repro import CvmMachine, MachineConfig, MIB, erebor_boot
from repro.apps import LibOsRuntime, synth_log, workload
from repro.client import RemoteClient
from repro.core import SecureChannel, UntrustedProxy, published_measurement
from repro.libos import LibOs


def analyze(system, machine, detector, log: bytes, seed: int) -> bytes:
    libos = LibOs.boot_sandboxed(system, detector.manifest(),
                                 confined_budget=20 * MIB)
    runtime = LibOsRuntime(libos)
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(machine.authority, published_measurement(),
                          seed=seed)
    client.connect(proxy, channel)
    client.request(proxy, channel, log)
    detector.serve(runtime, runtime.recv_input())
    verdict = client.fetch_result(proxy, channel)
    libos.sandbox.cleanup()    # stateless: scrub between customers
    return verdict


def main() -> None:
    machine = CvmMachine(MachineConfig(memory_bytes=768 * MIB))
    system = erebor_boot(machine, cma_bytes=96 * MIB)
    detector = workload("unicorn", scale=0.25)

    clean = synth_log(seed=100, events=3000, attack=False)
    attacked = synth_log(seed=100, events=3000, attack=True)

    v_clean = analyze(system, machine, detector, clean, seed=31)
    v_attack = analyze(system, machine, detector, attacked, seed=32)
    print(f"clean log   -> {v_clean.split(b';')[0].decode()}")
    print(f"attack log  -> {v_attack.split(b';')[0].decode()} "
          f"({v_attack.split(b';')[2][:40].decode()}...)")

    assert v_clean.startswith(b"clean")
    assert v_attack.startswith(b"ALERT")

    # the log's internal identifiers never left the sandbox boundary
    host = machine.vmm.observed_blob()
    assert b"proc7" not in host and b"exfil" not in host
    print("verdicts differ, log contents never exposed. OK")


if __name__ == "__main__":
    main()
