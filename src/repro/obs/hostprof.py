"""Host wall-clock attribution: where do real seconds go in the simulator?

Everything else in ``repro.obs`` measures *simulated* cycles and is
forbidden by the lint discipline from ever reading the host clock (rule
D1) or charging the simulated one (rule D2). This module is the one
deliberate, named exception to D1 — and the lint rules encode the
exemption for exactly this path (see ``repro/analysis/lint.py``,
``_D1_EXEMPT``): host-time attribution *is* its purpose, so
``time.perf_counter`` here is not a discipline violation but the product.
The D2 half still binds: the profiler never touches a
:class:`~repro.hw.cycles.CycleClock`, so arming it cannot move a single
simulated cycle and every pinned fleet digest stays byte-identical.

Why it exists: the simulated ledger says *what the modeled hardware paid*;
it says nothing about where the *host* burns wall-time running the model.
The translation-cache roadmap item is justified entirely by host time
(interpreter fetch/decode dominating), and the obs plane's own emit path
is the other known tax — neither is visible to any cycle-denominated
profile. :class:`HostProfiler` answers both with low-overhead scoped
counters: it patches a small, fixed table of simulator entry points
(:data:`SUBSYSTEMS` — interpreter fetch/decode, MMU walks, EMC gate
dispatch, guest syscalls, AEAD crypto, pool scrub, tracer emit) with
wrappers that attribute **self time** (own wall-time minus profiled
children) to a named subsystem, then renders a ranked table and a
collapsed-stack flamegraph.

Honest accounting rules:

* **no catch-all root** — the measurement window is explicit
  (:meth:`HostProfiler.start` / :meth:`stop`), so the reported coverage
  (attributed / window) is a real claim, not 100% by construction. The
  acceptance bar is ≥ 90% on the 16-request llama fleet.
* **self time only** — a parent scope is never credited for a child's
  seconds, so the table's shares sum to the coverage, not past it.
* **calibrated observer cost** — the wrapper's own per-entry cost is
  measured (:meth:`calibrate`) and reported next to the table, so a
  hot subsystem's share can be discounted for probe overhead instead of
  silently absorbing it.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path
from time import perf_counter  # D1-exempt: host attribution is the product

#: label → (module, qualified attribute) patch table. Labels repeat when
#: several entry points belong to one subsystem. ``Class.method`` targets
#: a class attribute (classmethods handled), a bare name targets the
#: module attribute (patching the importing module's reference, so
#: already-imported call sites resolve the wrapper).
SUBSYSTEMS: tuple[tuple[str, str, str], ...] = (
    ("cpu:fetch-decode", "repro.hw.cpu", "Cpu.step"),
    ("cpu:superblock", "repro.hw.cpu", "Cpu._translated_burst"),
    ("cpu:run-loop", "repro.hw.cpu", "Cpu.run"),
    ("tcache:acquire", "repro.hw.translate", "TranslationCache.acquire"),
    ("tcache:build", "repro.hw.translate", "TranslationCache._build"),
    ("tcache:preload", "repro.hw.translate", "TranslationCache.preload"),
    ("mmu:walk", "repro.hw.mmu", "Mmu.check"),
    ("mmu:leaf-path", "repro.hw.paging", "AddressSpace.leaf_path"),
    ("mmu:fetch", "repro.hw.mmu", "Mmu.fetch"),
    ("mmu:read", "repro.hw.mmu", "Mmu.read"),
    ("mmu:write", "repro.hw.mmu", "Mmu.write"),
    ("mmu:touch", "repro.hw.mmu", "Mmu.touch"),
    ("emc:gate-dispatch", "repro.core.monitor", "EreborMonitor.charge_emc"),
    ("emc:gate-dispatch", "repro.core.monitor",
     "EreborMonitor.charge_emc_batch"),
    ("kernel:syscall", "repro.kernel.kernel", "GuestKernel.syscall"),
    ("kernel:page-fault", "repro.kernel.kernel",
     "GuestKernel.handle_page_fault"),
    ("crypto:seal", "repro.crypto.aead", "SealedSession.seal"),
    ("crypto:open", "repro.crypto.aead", "SealedSession.open"),
    ("fleet:boot", "repro.fleet.loadgen", "erebor_boot"),
    ("verify:dataflow", "repro.analysis.absint",
     "DataflowVerifier.verify_image"),
    ("bench:run", "repro.bench.runner", "WorkloadRunner.run"),
    ("fleet:template-capture", "repro.fleet.template",
     "SandboxTemplate.capture"),
    ("fleet:fork", "repro.fleet.template", "SandboxTemplate.fork"),
    ("pool:scrub", "repro.fleet.pool", "WarmPool.release"),
    ("fleet:drive", "repro.fleet.scheduler", "FleetScheduler.run"),
    ("obs:tracer-emit", "repro.obs.trace", "_Span.__exit__"),
    ("obs:tracer-emit", "repro.obs.trace", "Tracer.event"),
    ("obs:tracer-emit", "repro.obs.trace", "Tracer.audit"),
)


class HostProfiler:
    """Scoped host-time counters over the simulator's named subsystems."""

    def __init__(self, subsystems=SUBSYSTEMS):
        self.subsystems = tuple(subsystems)
        #: label → attributed self seconds
        self.totals: dict[str, float] = {}
        #: label → entry count
        self.calls: dict[str, int] = {}
        #: label-path tuple → self seconds (flamegraph input)
        self.folded: dict[tuple, float] = {}
        self._stack: list[list] = []   # frames: [label, path, child_s]
        self._paths: dict[tuple, tuple] = {}   # (parent_path, label) cache
        self._patched: list[tuple] = []        # (owner, name, original)
        self._active = False
        self._t_start: float | None = None
        self._t_stop: float | None = None
        self._entry_overhead_s = 0.0

    # -- scoped counters -------------------------------------------------- #

    def scope(self, label: str):
        """Manual scope for code the patch table does not cover."""
        return _Scope(self, label)

    def _push(self, label: str) -> float:
        stack = self._stack
        parent_path = stack[-1][1] if stack else ()
        key = (parent_path, label)
        path = self._paths.get(key)
        if path is None:
            path = self._paths[key] = parent_path + (label,)
        stack.append([label, path, 0.0])
        return perf_counter()

    def _pop(self, t0: float) -> None:
        dt = perf_counter() - t0
        label, path, child_s = self._stack.pop()
        self_s = dt - child_s
        self.totals[label] = self.totals.get(label, 0.0) + self_s
        self.calls[label] = self.calls.get(label, 0) + 1
        self.folded[path] = self.folded.get(path, 0.0) + self_s
        if self._stack:
            self._stack[-1][2] += dt

    def wrap(self, label: str, fn):
        """Wrap ``fn`` so each call attributes self-time to ``label``."""
        profiler = self

        def _hostprof_wrapper(*args, **kwargs):
            if not profiler._active:
                return fn(*args, **kwargs)
            t0 = profiler._push(label)
            try:
                return fn(*args, **kwargs)
            finally:
                profiler._pop(t0)

        _hostprof_wrapper.__name__ = getattr(fn, "__name__",
                                             "_hostprof_wrapper")
        _hostprof_wrapper.__qualname__ = getattr(fn, "__qualname__",
                                                 _hostprof_wrapper.__name__)
        _hostprof_wrapper.__doc__ = getattr(fn, "__doc__", None)
        _hostprof_wrapper.__wrapped__ = fn
        return _hostprof_wrapper

    # -- patching --------------------------------------------------------- #

    def attach(self) -> "HostProfiler":
        """Install wrappers for every :data:`SUBSYSTEMS` entry."""
        if self._patched:
            raise RuntimeError("HostProfiler already attached")
        for label, module_name, qualname in self.subsystems:
            module = importlib.import_module(module_name)
            *owner_parts, name = qualname.split(".")
            owner = module
            for part in owner_parts:
                owner = getattr(owner, part)
            if isinstance(owner, type):
                original = owner.__dict__[name]
            else:
                original = getattr(owner, name)
            if isinstance(original, classmethod):
                wrapped = classmethod(self.wrap(label, original.__func__))
            elif isinstance(original, staticmethod):
                wrapped = staticmethod(self.wrap(label, original.__func__))
            else:
                wrapped = self.wrap(label, original)
            setattr(owner, name, wrapped)
            self._patched.append((owner, name, original))
        return self

    def detach(self) -> None:
        """Restore every patched entry point (reverse order)."""
        while self._patched:
            owner, name, original = self._patched.pop()
            setattr(owner, name, original)

    def __enter__(self) -> "HostProfiler":
        self.attach()
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        self.detach()
        return False

    # -- measurement window ----------------------------------------------- #

    def start(self) -> None:
        """Open the measurement window (coverage denominator)."""
        self._active = True
        self._t_stop = None
        self._t_start = perf_counter()

    def stop(self) -> float:
        """Close the window; returns its length in seconds."""
        self._t_stop = perf_counter()
        self._active = False
        return self.window_s

    @property
    def window_s(self) -> float:
        if self._t_start is None:
            return 0.0
        end = self._t_stop if self._t_stop is not None else perf_counter()
        return end - self._t_start

    # -- calibration ------------------------------------------------------ #

    def calibrate(self, iterations: int = 20_000) -> float:
        """Measure the wrapper's own per-entry cost (seconds/entry).

        Times ``iterations`` profiled no-op calls against bare ones and
        stores the difference so :meth:`report` can state how much of a
        hot subsystem's share is probe, not product.
        """
        def noop():
            return None

        wrapped = self.wrap("hostprof:calibration", noop)
        was_active = self._active
        self._active = True
        t0 = perf_counter()
        for _ in range(iterations):
            wrapped()
        t1 = perf_counter()
        for _ in range(iterations):
            noop()
        t2 = perf_counter()
        self._active = was_active
        # undo the calibration's own entries
        self.totals.pop("hostprof:calibration", None)
        self.calls.pop("hostprof:calibration", None)
        self.folded.pop(("hostprof:calibration",), None)
        self._entry_overhead_s = max((t1 - t0) - (t2 - t1), 0.0) / iterations
        return self._entry_overhead_s

    # -- reporting -------------------------------------------------------- #

    def attributed_s(self) -> float:
        return sum(self.totals.values())

    def coverage(self) -> float:
        window = self.window_s
        return (self.attributed_s() / window) if window > 0 else 0.0

    def report(self) -> dict:
        """Ranked attribution report (JSON-able, deterministically ordered
        by share desc then label)."""
        window = self.window_s
        attributed = self.attributed_s()
        entries = sum(self.calls.values())
        if not self._entry_overhead_s and entries:
            self.calibrate()
        ranked = sorted(self.totals.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return {
            "window_s": round(window, 6),
            "attributed_s": round(attributed, 6),
            "unattributed_s": round(max(window - attributed, 0.0), 6),
            "coverage": round(attributed / window, 6) if window else 0.0,
            "entries": entries,
            "entry_overhead_us": round(self._entry_overhead_s * 1e6, 4),
            "probe_overhead_s": round(self._entry_overhead_s * entries, 6),
            "subsystems": [
                {
                    "name": label,
                    "self_s": round(self_s, 6),
                    "share": round(self_s / window, 6) if window else 0.0,
                    "calls": self.calls.get(label, 0),
                }
                for label, self_s in ranked
            ],
        }

    def render_table(self, top: int = 10) -> str:
        """The ranked host-time table (``bench_tables.txt`` format)."""
        report = self.report()
        lines = [
            "host-time attribution "
            f"(window {report['window_s']:.3f}s, "
            f"{report['coverage'] * 100:.1f}% attributed, "
            f"probe ~{report['entry_overhead_us']:.2f}us/entry)",
            f"{'rank':>4}  {'subsystem':<24} {'self_s':>9} "
            f"{'share':>7} {'calls':>10}",
        ]
        for rank, row in enumerate(report["subsystems"][:top], start=1):
            lines.append(
                f"{rank:>4}  {row['name']:<24} {row['self_s']:>9.4f} "
                f"{row['share'] * 100:>6.1f}% {row['calls']:>10,}")
        other = report["subsystems"][top:]
        if other:
            self_s = sum(r["self_s"] for r in other)
            share = sum(r["share"] for r in other)
            calls = sum(r["calls"] for r in other)
            lines.append(f"{'':>4}  {'(other)':<24} {self_s:>9.4f} "
                         f"{share * 100:>6.1f}% {calls:>10,}")
        lines.append(
            f"{'':>4}  {'(unattributed)':<24} "
            f"{report['unattributed_s']:>9.4f} "
            f"{(1 - report['coverage']) * 100:>6.1f}% {'':>10}")
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack flamegraph lines (``a;b;c <microseconds>``)."""
        lines = []
        for path, self_s in sorted(self.folded.items()):
            us = int(round(self_s * 1e6))
            if us > 0:
                lines.append(f"{';'.join(path)} {us}")
        return "\n".join(lines)

    def write_report(self, path: str | Path) -> dict:
        payload = self.report()
        Path(path).write_text(json.dumps(payload, indent=2))
        return payload

    def __repr__(self) -> str:
        return (f"HostProfiler({len(self.totals)} subsystems, "
                f"{sum(self.calls.values())} entries, "
                f"window {self.window_s:.3f}s)")


class _Scope:
    """Manual profiler scope (same self-time rules as patched entries)."""

    __slots__ = ("_profiler", "_label", "_t0")

    def __init__(self, profiler: HostProfiler, label: str):
        self._profiler = profiler
        self._label = label

    def __enter__(self) -> "_Scope":
        self._t0 = self._profiler._push(self._label) \
            if self._profiler._active else None
        return self

    def __exit__(self, *exc) -> bool:
        if self._t0 is not None:
            self._profiler._pop(self._t0)
        return False


def profile_fleet(run, *, subsystems=SUBSYSTEMS):
    """Run ``run()`` under an attached profiler; returns (result, profiler).

    Convenience for the benchmark and the fleet CLI: patches the
    subsystem table, opens the window exactly around the call, and
    detaches before returning — the interpreter is back to its
    unpatched self when this returns.
    """
    profiler = HostProfiler(subsystems)
    with profiler:
        result = run()
    profiler.calibrate()
    return result, profiler
