"""Warm pool: pre-forked sandboxes recycled between attested clients.

The pool keeps ``size`` forked instances standing. A session acquires a
free slot, runs, and releases it; release scrubs the slot back to the
golden template view via :meth:`Sandbox.reset_for_reuse` and — when
``scrub_verify`` is on — *proves* the scrub by scanning every frame the
previous client could have written for that client's plaintext (the C8
no-state-leak claim, enforced per reuse rather than assumed). Slots whose
sandbox died (kill, eviction) are replaced by fresh forks when the free
count drops below the low watermark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.process import CowBacking
from .template import FleetInstance, SandboxTemplate


class ScrubVerificationError(AssertionError):
    """A reused slot still held a previous client's plaintext (C8 broken)."""


@dataclass
class PoolConfig:
    size: int = 2
    #: refill forks are triggered when free slots drop below this
    low_watermark: int = 1
    #: scan frames for the previous client's plaintext on every release
    scrub_verify: bool = True


@dataclass
class PoolSlot:
    index: int
    instance: FleetInstance
    busy: bool = False
    sessions_served: int = 0


class WarmPool:
    """A fixed-size pool of forked sandboxes with verified recycling."""

    def __init__(self, system, template: SandboxTemplate,
                 config: PoolConfig | None = None):
        self.system = system
        self.template = template
        self.config = config or PoolConfig()
        self.clock = system.machine.clock
        self.slots: list[PoolSlot] = []
        self._next_index = 0
        self.warm_reset_cycles: list[int] = []
        self.fork_cycles: list[int] = []
        self.scrub_verifications = 0
        while len(self.slots) < self.config.size:
            self._fork_slot()
        self._gauges()

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    def free_slots(self) -> list[PoolSlot]:
        return [s for s in self.slots if not s.busy]

    def _gauges(self) -> None:
        metrics = self.clock.metrics
        metrics.set_gauge("erebor_fleet_pool_size", len(self.slots))
        metrics.set_gauge("erebor_fleet_pool_free", len(self.free_slots()))

    def _fork_slot(self) -> PoolSlot:
        instance = self.template.fork()
        slot = PoolSlot(index=self._next_index, instance=instance)
        self._next_index += 1
        self.slots.append(slot)
        self.fork_cycles.append(instance.start_cycles)
        return slot

    def refill(self) -> int:
        """Replace dead slots until the free count clears the watermark."""
        forked = 0
        while (len(self.slots) < self.config.size
               and len(self.free_slots()) < max(self.config.low_watermark, 1)):
            self._fork_slot()
            forked += 1
        self._gauges()
        return forked

    # ------------------------------------------------------------------ #
    # acquire / release
    # ------------------------------------------------------------------ #

    def acquire(self) -> PoolSlot | None:
        """Lowest-index free slot, or None (caller queues); deterministic."""
        slot = self._first_free()
        if slot is None:
            # lost capacity (dead slots) is restored on demand
            self.refill()
            slot = self._first_free()
        if slot is not None:
            slot.busy = True
            self._gauges()
        return slot

    def _first_free(self) -> PoolSlot | None:
        for slot in self.slots:
            if not slot.busy and not slot.instance.sandbox.dead:
                return slot
        return None

    def release(self, slot: PoolSlot,
                patterns: list[bytes] | None = None) -> None:
        """Recycle a slot: scrub, verify the scrub, restock the pool.

        ``patterns`` is the released client's plaintext (requests and
        responses); with ``scrub_verify`` every frame the client could
        have dirtied — its private CoW copies (now back in the CMA), its
        remaining confined frames, and the shared template image — is
        scanned for them after the reset.
        """
        sandbox = slot.instance.sandbox
        if sandbox.dead:
            # killed/evicted mid-session: the kill path already scrubbed
            self.slots.remove(slot)
            self.refill()
            return
        frames_before = list(sandbox.confined_frames)
        t0 = self.clock.cycles
        with self.clock.tracer.span("fleet:warm_reset", cat="fleet",
                                    sandbox=sandbox.sandbox_id):
            sandbox.reset_for_reuse()
            slot.instance.libos.end_session()
        cycles = self.clock.cycles - t0
        self.warm_reset_cycles.append(cycles)
        slot.instance.start_kind = "warm"
        slot.instance.start_cycles = cycles
        if self.config.scrub_verify:
            self.verify_scrub(slot, frames_before, patterns or [])
        slot.busy = False
        slot.sessions_served += 1
        self.clock.metrics.observe("erebor_fleet_start_cycles", cycles,
                                   kind="warm")
        self.refill()

    # ------------------------------------------------------------------ #
    # C8 scrub verification
    # ------------------------------------------------------------------ #

    def verify_scrub(self, slot: PoolSlot, frames_before: list[int],
                     patterns: list[bytes]) -> None:
        """Assert no client-keyed bytes survived the reset (C8 at scale)."""
        sandbox = slot.instance.sandbox
        scan = set(frames_before) | set(sandbox.confined_frames)
        for vma in sandbox.confined_vmas:
            if isinstance(vma.backing, CowBacking):
                scan.update(vma.backing.template_frames)
        phys = self.system.monitor.phys
        for fn in sorted(scan):
            data = phys.frame(fn).data
            if data is None:
                continue
            for pattern in patterns:
                if pattern and pattern in bytes(data):
                    raise ScrubVerificationError(
                        f"frame {fn:#x} still holds client plaintext after "
                        f"reuse of sandbox {sandbox.sandbox_id}")
        self.scrub_verifications += 1
        self.clock.metrics.inc("erebor_fleet_scrub_verified_total",
                               sandbox=str(sandbox.sandbox_id))
        self.clock.tracer.event("fleet:scrub_verified", cat="fleet",
                                sandbox=sandbox.sandbox_id,
                                frames=len(scan))
