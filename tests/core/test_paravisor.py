"""Paravisor-enhanced deployment tests (paper §10)."""

import pytest

from repro.client import AttestationFailure, RemoteClient
from repro.core import erebor_boot, published_measurement
from repro.core.boot import (
    PARAVISOR_RTMR_INDEX,
    published_paravisor_measurement,
)
from repro.core.channel import SecureChannel, UntrustedProxy
from repro.vm import CvmMachine, MachineConfig, MIB


def boot_paravisor():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=32 * MIB, paravisor=True)
    return machine, system


def test_paravisor_boot_works():
    machine, system = boot_paravisor()
    assert system.kernel.booted
    mrtd, rtmr = published_paravisor_measurement()
    assert machine.tdx.measurement.mrtd == mrtd
    assert machine.tdx.measurement.rtmrs[PARAVISOR_RTMR_INDEX] == rtmr


def test_paravisor_mrtd_differs_from_native_deployment():
    mrtd, _ = published_paravisor_measurement()
    assert mrtd != published_measurement()


def test_client_attests_paravisor_deployment_via_rtmr():
    machine, system = boot_paravisor()
    sandbox = system.monitor.create_sandbox("svc", confined_budget=4 * MIB)
    sandbox.declare_confined(256 * 1024)
    channel = SecureChannel(system.monitor, sandbox)
    proxy = UntrustedProxy(system.monitor)
    mrtd, rtmr = published_paravisor_measurement()
    client = RemoteClient(machine.authority, mrtd,
                          expected_rtmrs={PARAVISOR_RTMR_INDEX: rtmr})
    client.connect(proxy, channel)
    assert client.established
    client.request(proxy, channel, b"pv-data")
    assert sandbox.take_input() == b"pv-data"


def test_client_rejects_wrong_monitor_in_rtmr():
    """A paravisor that loaded a tampered monitor fails attestation."""
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    from repro.core.boot import FIRMWARE_BLOB, PARAVISOR_BLOB
    machine.tdx.build_load("firmware", FIRMWARE_BLOB)
    machine.tdx.build_load("paravisor", PARAVISOR_BLOB)
    machine.tdx.finalize()
    machine.tdx.measurement.extend_rtmr(PARAVISOR_RTMR_INDEX, b"evil monitor")
    quote = machine.tdx.guest_tdreport(b"x" * 32)

    mrtd, rtmr = published_paravisor_measurement()
    client = RemoteClient(machine.authority, mrtd,
                          expected_rtmrs={PARAVISOR_RTMR_INDEX: rtmr})
    client.keypair = __import__("repro.crypto", fromlist=["generate_keypair"]) \
        .generate_keypair(client.rng)
    client.nonce = b"n" * 16
    from repro.core.channel import ServerHello
    with pytest.raises(AttestationFailure) as exc:
        client.finish(ServerHello(public=client.keypair.public + 2,
                                  quote=quote))
    assert "RTMR" in str(exc.value)


def test_native_client_rejects_paravisor_deployment_without_rtmr_knowledge():
    """A client expecting the drop-in MRTD refuses a paravisor CVM."""
    machine, system = boot_paravisor()
    sandbox = system.monitor.create_sandbox("svc", confined_budget=4 * MIB)
    sandbox.declare_confined(256 * 1024)
    channel = SecureChannel(system.monitor, sandbox)
    proxy = UntrustedProxy(system.monitor)
    client = RemoteClient(machine.authority, published_measurement())
    with pytest.raises(AttestationFailure):
        client.connect(proxy, channel)
