"""The remote client's side of the Erebor protocol.

The client trusts only: the hardware attestation authority, the published
firmware + monitor binaries (from which it derives the golden
measurement), and its own crypto. Everything in the CVM — the service
program, the kernel, the proxy — and the whole host are untrusted. The
client will only release data after a quote proves that (a) a genuine TDX
platform signed it, (b) the measured boot payload is exactly
firmware+monitor, and (c) the quote's report data binds this very
handshake transcript (no replay, no impersonation).
"""

from __future__ import annotations

import random

from ..crypto import (
    SealedSession,
    derive_channel_keys,
    generate_keypair,
    shared_secret,
    transcript_hash,
    unpad_fixed,
)
from ..core.channel import (ClientHello, SecureChannel, ServerHello,
                            UntrustedProxy, trace_aad)
from ..tdx.attestation import AttestationAuthority, QuoteVerificationError


class AttestationFailure(Exception):
    """The CVM failed to prove it runs the expected monitor."""


class RemoteClient:
    """One client session against one Erebor sandbox."""

    def __init__(self, authority: AttestationAuthority, expected_mrtd: bytes,
                 *, expected_rtmrs: dict[int, bytes] | None = None,
                 seed: int = 7):
        self.authority = authority
        self.expected_mrtd = expected_mrtd
        #: paravisor deployments (§10): runtime registers to verify too
        self.expected_rtmrs = expected_rtmrs or {}
        self.rng = random.Random(seed)
        self.keypair = None
        self.nonce: bytes | None = None
        self.tx: SealedSession | None = None   # client -> monitor
        self.rx: SealedSession | None = None   # monitor -> client
        #: request trace context cryptographically bound into every sealed
        #: record as AEAD associated data (see ``core.channel.trace_aad``);
        #: must match the serving sandbox's context or records fail to
        #: authenticate. None (the default) is byte-compatible with
        #: untraced peers.
        self.trace_context: str | None = None

    # ------------------------------------------------------------------ #
    # handshake
    # ------------------------------------------------------------------ #

    def hello(self) -> ClientHello:
        self.keypair = generate_keypair(self.rng)
        self.nonce = self.rng.getrandbits(128).to_bytes(16, "big")
        return ClientHello(public=self.keypair.public, nonce=self.nonce)

    def finish(self, reply: ServerHello) -> None:
        """Verify the quote and derive channel keys; raises on any doubt."""
        transcript = transcript_hash(
            self.nonce,
            self.keypair.public.to_bytes(256, "big"),
            reply.public.to_bytes(256, "big"),
        )
        try:
            report = self.authority.verify(reply.quote,
                                           expected_mrtd=self.expected_mrtd,
                                           expected_rtmrs=self.expected_rtmrs)
        except QuoteVerificationError as exc:
            raise AttestationFailure(str(exc)) from exc
        if report.report_data[:len(transcript)] != transcript:
            raise AttestationFailure(
                "quote does not bind this handshake transcript "
                "(possible replay or man-in-the-middle)")
        shared = shared_secret(self.keypair, reply.public)
        c2m, m2c = derive_channel_keys(shared, transcript)
        self.tx = SealedSession(c2m)
        self.rx = SealedSession(m2c)

    def connect(self, proxy: UntrustedProxy, channel: SecureChannel) -> None:
        """Run the full handshake through the untrusted proxy."""
        reply = proxy.relay_handshake(channel, self.hello())
        self.finish(reply)

    @property
    def established(self) -> bool:
        return self.tx is not None

    # ------------------------------------------------------------------ #
    # sealed request / response
    # ------------------------------------------------------------------ #

    def seal_request(self, data: bytes) -> bytes:
        if self.tx is None:
            raise AttestationFailure("channel not established")
        return self.tx.seal(data, aad=trace_aad(self.trace_context))

    def open_response(self, record: bytes) -> bytes:
        if self.rx is None:
            raise AttestationFailure("channel not established")
        return unpad_fixed(
            self.rx.open(record, aad=trace_aad(self.trace_context)))

    def request(self, proxy: UntrustedProxy, channel: SecureChannel,
                data: bytes) -> None:
        """Send one sealed request through the proxy."""
        proxy.relay_request(channel, self.seal_request(data))

    def request_chunked(self, proxy: UntrustedProxy, channel: SecureChannel,
                        data: bytes, *, chunk_size: int = 64 * 1024) -> int:
        """Stream a large request as sealed chunks; returns chunk count.

        Each chunk is an independently-sealed record (ordering enforced by
        the AEAD sequence numbers) with a continuation/final header byte.
        """
        if self.tx is None:
            raise AttestationFailure("channel not established")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        chunks = [data[i:i + chunk_size]
                  for i in range(0, max(len(data), 1), chunk_size)]
        for i, chunk in enumerate(chunks):
            last = i == len(chunks) - 1
            flag = bytes([SecureChannel.CHUNK_FINAL if last
                          else SecureChannel.CHUNK_MORE])
            record = self.tx.seal(
                flag + chunk, aad=trace_aad(self.trace_context, b"chunk"))
            proxy.relay_chunk(channel, record)
        return len(chunks)

    def fetch_result(self, proxy: UntrustedProxy,
                     channel: SecureChannel) -> bytes | None:
        record = proxy.relay_response(channel)
        if record is None:
            return None
        return self.open_response(record)
