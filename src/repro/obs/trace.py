"""Structured trace layer: spans and events on the simulated cycle clock.

Every record is timestamped in *simulated cycles* read from the machine's
:class:`~repro.hw.cycles.CycleClock` — never wall-clock — so traces are
deterministic and line up exactly with the calibrated cycle model.
Tracing only ever *reads* the clock; it never charges it, so enabling a
tracer changes no benchmark number (a test pins the empty EMC round trip
at 1224 cycles with a live tracer attached).

The layer is off by default: every clock carries the shared
:data:`NULL_TRACER`, whose methods are no-ops, until
:func:`repro.obs.install` swaps in a real :class:`Tracer`. Recorded
events live in a bounded :class:`~repro.obs.ring.RingBuffer`; span
self-cycles are additionally folded into a path-keyed aggregate
(:attr:`Tracer.folded`) that survives ring drops, which is what the
flamegraph profiler consumes.

This module deliberately imports nothing from the rest of the package so
:mod:`repro.hw.cycles` can depend on it without cycles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from .ring import RingBuffer

#: event kinds
SPAN = "span"          # has a begin and an end cycle
INSTANT = "instant"    # a point in time
AUDIT = "audit"        # a monitor audit decision routed through the trace

#: default ring capacity (events); ~200 bytes/event worst case
DEFAULT_CAPACITY = 1 << 17


@dataclass
class TraceEvent:
    """One trace record (a completed span or a point event)."""

    name: str
    cat: str
    kind: str
    begin: int                      # cycle the record opened
    end: int                        # cycle it closed (== begin for instants)
    depth: int                      # nesting depth at record time
    path: tuple[str, ...]           # span-stack path, root first
    args: dict = field(default_factory=dict)
    #: executing logical CPU at record time (None = serial section)
    cpu: int | None = None

    @property
    def duration(self) -> int:
        return self.end - self.begin

    def to_dict(self) -> dict:
        return {
            "name": self.name, "cat": self.cat, "kind": self.kind,
            "begin": self.begin, "end": self.end, "depth": self.depth,
            "path": list(self.path), "args": dict(self.args),
            "cpu": self.cpu,
        }


class _NullSpan:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op recorder: default sink on every :class:`CycleClock`.

    All methods are O(1) no-ops so instrumented hot paths (gates, syscall
    dispatch, exit interposition) cost nothing extra when observability
    is off — and, by construction, zero *simulated* cycles either way.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, cat: str = "", /, **args) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "", /, **args) -> None:
        return None

    def audit(self, kind: str, detail: str, cycle: int | None = None) -> None:
        return None

    def trigger(self, reason: str, detail: str = "") -> None:
        """A flight-recorder trigger point (security violation, C-series
        check failure, SLO breach). No-op unless a
        :class:`~repro.obs.flight.FlightRecorder` is installed."""
        return None

    def finish(self) -> None:
        return None


#: the shared disabled recorder (stateless, safe to share everywhere)
NULL_TRACER = NullTracer()


class _Frame:
    __slots__ = ("name", "cat", "begin", "args", "child_cycles")

    def __init__(self, name: str, cat: str, begin: int, args: dict):
        self.name = name
        self.cat = cat
        self.begin = begin
        self.args = args
        self.child_cycles = 0


class _Span:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._tracer._push(self._name, self._cat, self._args)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._pop()
        return False


class Tracer(NullTracer):
    """Recording trace sink bound to one cycle clock."""

    enabled = True
    __slots__ = ("clock", "events", "folded", "_stack")

    def __init__(self, clock, capacity: int = DEFAULT_CAPACITY):
        self.clock = clock
        self.events: RingBuffer[TraceEvent] = RingBuffer(capacity)
        #: span path → self-cycles (duration minus child spans); aggregated
        #: at span exit, so it is immune to ring-buffer drops
        self.folded: Counter = Counter()
        self._stack: list[_Frame] = []

    # -- recording ------------------------------------------------------- #

    def span(self, name: str, cat: str = "", /, **args) -> _Span:
        """Open a nested span; use as a context manager."""
        return _Span(self, name, cat, args)

    def event(self, name: str, cat: str = "", /, **args) -> None:
        """Record an instant event at the current cycle and depth."""
        now = self.clock.cycles
        path = tuple(f.name for f in self._stack) + (name,)
        self._emit(TraceEvent(name, cat, INSTANT, now, now,
                              len(self._stack), path, args,
                              self.clock.current_cpu))

    def audit(self, kind: str, detail: str, cycle: int | None = None) -> None:
        """Record a monitor audit decision as a ``kind="audit"`` event."""
        now = self.clock.cycles if cycle is None else cycle
        name = f"audit:{kind}"
        path = tuple(f.name for f in self._stack) + (name,)
        self._emit(TraceEvent(name, "audit", AUDIT, now, now,
                              len(self._stack), path, {"detail": detail},
                              self.clock.current_cpu))

    def trigger(self, reason: str, detail: str = "") -> None:
        """Record a trigger point as an instant event (see FlightRecorder
        for the subclass that additionally freezes a black-box dump)."""
        self.event(f"flight:{reason}", "flight", detail=detail)

    def finish(self) -> None:
        """Close every still-open span at the current cycle."""
        while self._stack:
            self._pop()

    # -- span machinery -------------------------------------------------- #

    def _push(self, name: str, cat: str, args: dict) -> None:
        self._stack.append(_Frame(name, cat, self.clock.cycles, args))

    def _pop(self) -> None:
        frame = self._stack.pop()
        end = self.clock.cycles
        duration = end - frame.begin
        path = tuple(f.name for f in self._stack) + (frame.name,)
        cpu = self.clock.current_cpu
        if cpu is not None and len(self.clock.per_cpu) > 1:
            # SMP profile: attribute self-cycles to the executing core so
            # collapsed stacks from different CPUs never interleave
            self.folded[(f"cpu{cpu}",) + path] += duration - frame.child_cycles
        else:
            self.folded[path] += duration - frame.child_cycles
        if self._stack:
            self._stack[-1].child_cycles += duration
        self._emit(TraceEvent(
            frame.name, frame.cat, SPAN, frame.begin, end,
            len(self._stack), path, frame.args, cpu))

    def _emit(self, event: TraceEvent) -> None:
        """Single sink for every record (FlightRecorder overrides this to
        additionally mirror events into its per-CPU rings)."""
        self.events.append(event)

    # -- inspection ------------------------------------------------------ #

    @property
    def dropped(self) -> int:
        return self.events.dropped

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def total_attributed(self) -> int:
        """Sum of folded self-cycles == total cycles under closed roots."""
        return sum(self.folded.values())

    def spans(self) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind == SPAN)

    def __repr__(self) -> str:
        return (f"Tracer({len(self.events)} events, depth "
                f"{len(self._stack)}, {self.dropped} dropped)")
