"""Structured trace layer: spans and events on the simulated cycle clock.

Every record is timestamped in *simulated cycles* read from the machine's
:class:`~repro.hw.cycles.CycleClock` — never wall-clock — so traces are
deterministic and line up exactly with the calibrated cycle model.
Tracing only ever *reads* the clock; it never charges it, so enabling a
tracer changes no benchmark number (a test pins the empty EMC round trip
at 1224 cycles with a live tracer attached).

The layer is off by default: every clock carries the shared
:data:`NULL_TRACER`, whose methods are no-ops, until
:func:`repro.obs.install` swaps in a real :class:`Tracer`. Recorded
events live in a bounded :class:`~repro.obs.ring.RingBuffer`; span
self-cycles are additionally folded into a path-keyed aggregate
(:attr:`Tracer.folded`) that survives ring drops, which is what the
flamegraph profiler consumes.

Two properties of the emit path matter at fleet scale:

* **allocation-light** — a fleet run emits hundreds of thousands of
  records, and the recorder's host-side cost is the obs plane's only
  real overhead (simulated overhead is zero by construction). Records
  are tuples (:class:`TraceEvent` subclasses ``tuple``; field access
  goes through properties only at export time), span names and
  categories are interned, the span context manager *is* the stack
  frame (one allocation per span, not two), and each frame caches its
  full path tuple so closing a span never rebuilds it. The overhead
  benchmark (``BENCH_obs_overhead.json``) pins the result.
* **request context** — :meth:`Tracer.bind` scopes a request-level
  trace ID over a region of execution; every record emitted inside the
  binding carries it in :attr:`TraceEvent.trace`, which is what
  :mod:`repro.obs.reqtrace` groups into per-request causal span trees.

This module deliberately imports nothing from the rest of the package so
:mod:`repro.hw.cycles` can depend on it without cycles.
"""

from __future__ import annotations

import gc
from collections import Counter
from sys import intern as _intern
from typing import Iterator

from .ring import RingBuffer

#: event kinds
SPAN = "span"          # has a begin and an end cycle
INSTANT = "instant"    # a point in time
AUDIT = "audit"        # a monitor audit decision routed through the trace

#: default ring capacity (events); ~200 bytes/event worst case
DEFAULT_CAPACITY = 1 << 17

#: C-speed constructor used on the hot path (no Python ``__new__`` frame)
_new_event = tuple.__new__


class TraceEvent(tuple):
    """One trace record (a completed span or a point event).

    Stored as a bare 10-tuple — the emit path creates one C-level tuple
    per record and nothing else — with named access through properties
    for every consumer that formats, filters, or exports.
    """

    __slots__ = ()

    def __new__(cls, name: str, cat: str = "", kind: str = INSTANT,
                begin: int = 0, end: int = 0, depth: int = 0,
                path: tuple = (), args: dict | None = None,
                cpu: int | None = None, trace: str | None = None):
        return _new_event(cls, (name, cat, kind, begin, end, depth,
                                tuple(path), {} if args is None else args,
                                cpu, trace))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def cat(self) -> str:
        return self[1]

    @property
    def kind(self) -> str:
        return self[2]

    @property
    def begin(self) -> int:                 # cycle the record opened
        return self[3]

    @property
    def end(self) -> int:                   # cycle it closed (== begin
        return self[4]                      # for instants)

    @property
    def depth(self) -> int:                 # nesting depth at record time
        return self[5]

    @property
    def path(self) -> tuple:                # span-stack path, root first
        return self[6]

    @property
    def args(self) -> dict:
        return self[7]

    @property
    def cpu(self) -> int | None:            # executing logical CPU at
        return self[8]                      # record time (None = serial)

    @property
    def trace(self) -> str | None:          # bound request trace ID
        return self[9]

    @property
    def duration(self) -> int:
        return self[4] - self[3]

    def to_dict(self) -> dict:
        out = {
            "name": self[0], "cat": self[1], "kind": self[2],
            "begin": self[3], "end": self[4], "depth": self[5],
            "path": list(self[6]), "args": dict(self[7]),
            "cpu": self[8],
        }
        if self[9] is not None:
            out["trace"] = self[9]
        return out

    def __repr__(self) -> str:
        return (f"TraceEvent({self[0]!r}, kind={self[2]!r}, "
                f"begin={self[3]}, end={self[4]}, cpu={self[8]})")


class _NullSpan:
    """Context manager that does nothing (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op recorder: default sink on every :class:`CycleClock`.

    All methods are O(1) no-ops so instrumented hot paths (gates, syscall
    dispatch, exit interposition) cost nothing extra when observability
    is off — and, by construction, zero *simulated* cycles either way.
    """

    enabled = False
    #: request trace ID currently bound (always None on the null tracer)
    current_trace = None
    __slots__ = ()

    def span(self, name: str, cat: str = "", /, **args) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "", /, **args) -> None:
        return None

    def audit(self, kind: str, detail: str, cycle: int | None = None) -> None:
        return None

    def bind(self, trace_id: str | None) -> _NullSpan:
        """Scope a request trace ID over a region (no-op when disabled)."""
        return _NULL_SPAN

    def trigger(self, reason: str, detail: str = "") -> None:
        """A flight-recorder trigger point (security violation, C-series
        check failure, SLO breach). No-op unless a
        :class:`~repro.obs.flight.FlightRecorder` is installed."""
        return None

    def finish(self) -> None:
        return None


#: the shared disabled recorder (stateless, safe to share everywhere)
NULL_TRACER = NullTracer()


#: exited span frames kept for reuse per tracer (a fleet's span depth
#: never approaches this; the cap only bounds idle memory)
_SPAN_POOL_MAX = 64

#: shared args mapping for records with no arguments. Stored by
#: reference in the event tuple and treated as immutable everywhere
#: (every consumer copies before mutating); sharing it means a fleet
#: run's worth of argument-less records adds zero long-lived dicts to
#: the gc heap, which is what keeps collector pauses off the emit path.
_EMPTY_ARGS: dict = {}


class _Span:
    """Span context manager *and* stack frame (one allocation per span).

    Frames are recycled through the owning tracer's pool: ``__exit__``
    returns the object for the next :meth:`Tracer.span` call to reuse,
    so a steady-state fleet run allocates a handful of frames total
    instead of one per span. Safe because a frame is only pooled after
    it closed and no reader touches a frame after close.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "begin",
                 "child_cycles", "path", "trace")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self.begin = tracer.clock.cycles
        self.child_cycles = 0
        # paths are interned per (parent, name): every span at the same
        # call site shares one tuple instead of minting a fresh concat,
        # so the ring's long-lived heap growth is one object per record
        parent = stack[-1].path if stack else ()
        cache = tracer._path_cache
        path = cache.get((parent, self.name))
        if path is None:
            path = cache[(parent, self.name)] = parent + (self.name,)
        self.path = path
        self.trace = tracer._trace
        stack.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        stack = tracer._stack
        stack.pop()
        clock = tracer.clock
        end = clock.cycles
        duration = end - self.begin
        self_cycles = duration - self.child_cycles
        cpu_stack = clock._cpu_stack
        cpu = cpu_stack[-1] if cpu_stack else None
        path = self.path
        if cpu is not None and len(clock.per_cpu) > 1:
            # SMP profile: attribute self-cycles to the executing core so
            # collapsed stacks from different CPUs never interleave; the
            # per-core counters avoid a key-tuple concat on every exit
            # (the cpu-prefixed view is merged lazily by :attr:`folded`)
            fold = tracer._fold_by_cpu.get(cpu)
            if fold is None:
                fold = tracer._fold_by_cpu[cpu] = Counter()
            fold[path] += self_cycles
        else:
            tracer._fold_serial[path] += self_cycles
        if stack:
            stack[-1].child_cycles += duration
        tracer._emit(_new_event(TraceEvent, (
            self.name, self.cat, SPAN, self.begin, end, len(stack), path,
            self.args or _EMPTY_ARGS, cpu, self.trace)))
        pool = tracer._span_pool
        if len(pool) < _SPAN_POOL_MAX:
            pool.append(self)
        return False


class _Bind:
    """Context manager scoping :attr:`Tracer.current_trace`."""

    __slots__ = ("_tracer", "_trace_id", "_prev")

    def __init__(self, tracer: "Tracer", trace_id: str | None):
        self._tracer = tracer
        self._trace_id = trace_id

    def __enter__(self) -> "_Bind":
        self._prev = self._tracer._trace
        self._tracer._trace = self._trace_id
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._trace = self._prev
        return False


class Tracer(NullTracer):
    """Recording trace sink bound to one cycle clock."""

    enabled = True
    __slots__ = ("clock", "events", "_fold_serial", "_fold_by_cpu",
                 "_stack", "_trace", "_cpu_keys", "_span_pool",
                 "_path_cache")

    def __init__(self, clock, capacity: int = DEFAULT_CAPACITY):
        self.clock = clock
        self.events: RingBuffer[TraceEvent] = RingBuffer(capacity)
        #: span path → self-cycles, serial (no-core) portion; aggregated
        #: at span exit, so it is immune to ring-buffer drops
        self._fold_serial: Counter = Counter()
        #: cpu id → (span path → self-cycles) for SMP runs
        self._fold_by_cpu: dict[int, Counter] = {}
        self._stack: list[_Span] = []
        #: currently bound request trace ID (see :meth:`bind`)
        self._trace: str | None = None
        #: cpu id → interned ("cpuN",) prefix for SMP folded keys
        self._cpu_keys: dict[int, tuple] = {}
        #: recycled span frames (see :class:`_Span`)
        self._span_pool: list[_Span] = []
        #: (parent path, name) → shared path tuple (see ``_Span.__enter__``)
        self._path_cache: dict[tuple, tuple] = {}

    # -- recording ------------------------------------------------------- #

    def span(self, name: str, cat: str = "", /, **args) -> _Span:
        """Open a nested span; use as a context manager.

        ``name`` and ``cat`` are positional-only so callers may attach
        event args of those names; pass the category positionally —
        ``span("gate", "gate")`` — to fill the record's ``cat`` slot.
        Argument-less spans (the overwhelming majority) then store the
        shared empty args dict instead of a fresh mapping per record.
        """
        pool = self._span_pool
        if pool:
            span = pool.pop()
            span.name = _intern(name)
            span.cat = _intern(cat)
            span.args = args
            return span
        return _Span(self, _intern(name), _intern(cat), args)

    def event(self, name: str, cat: str = "", /, **args) -> None:
        """Record an instant event at the current cycle and depth."""
        clock = self.clock
        now = clock.cycles
        stack = self._stack
        name = _intern(name)
        path = self._path(stack[-1].path if stack else (), name)
        cpu_stack = clock._cpu_stack
        self._emit(_new_event(TraceEvent, (
            name, _intern(cat), INSTANT, now, now, len(stack), path,
            args or _EMPTY_ARGS, cpu_stack[-1] if cpu_stack else None,
            self._trace)))

    def audit(self, kind: str, detail: str, cycle: int | None = None) -> None:
        """Record a monitor audit decision as a ``kind="audit"`` event."""
        clock = self.clock
        now = clock.cycles if cycle is None else cycle
        stack = self._stack
        name = _intern(f"audit:{kind}")
        path = self._path(stack[-1].path if stack else (), name)
        cpu_stack = clock._cpu_stack
        self._emit(_new_event(TraceEvent, (
            name, "audit", AUDIT, now, now, len(stack), path,
            {"detail": detail}, cpu_stack[-1] if cpu_stack else None,
            self._trace)))

    def bind(self, trace_id: str | None) -> _Bind:
        """Scope a request-level trace ID over a region of execution.

        Every record emitted inside the ``with`` (spans closed, instants,
        audits, triggers — at any nesting depth, from any layer) carries
        ``trace_id`` in :attr:`TraceEvent.trace`. Bindings nest and
        restore the previous context on exit; ``bind(None)`` explicitly
        clears the context for a region (e.g. fleet-wide bookkeeping in
        the middle of a request). The binding never touches the clock.
        """
        return _Bind(self, trace_id)

    @property
    def current_trace(self) -> str | None:
        """The trace ID bound by the innermost active :meth:`bind`."""
        return self._trace

    def trigger(self, reason: str, detail: str = "") -> None:
        """Record a trigger point as an instant event (see FlightRecorder
        for the subclass that additionally freezes a black-box dump)."""
        self.event(f"flight:{reason}", "flight", detail=detail)

    def finish(self) -> None:
        """Close every still-open span at the current cycle."""
        while self._stack:
            self._stack[-1].__exit__(None, None, None)

    # -- span machinery -------------------------------------------------- #

    def _cpu_key(self, cpu: int) -> tuple:
        key = self._cpu_keys.get(cpu)
        if key is None:
            key = self._cpu_keys[cpu] = (_intern(f"cpu{cpu}"),)
        return key

    def _path(self, parent: tuple, name: str) -> tuple:
        """Interned path tuple for ``parent + (name,)`` (shared, not minted)."""
        cache = self._path_cache
        path = cache.get((parent, name))
        if path is None:
            path = cache[(parent, name)] = parent + (name,)
        return path

    def _emit(self, event: TraceEvent) -> None:
        """Single sink for every record (FlightRecorder overrides this to
        additionally mirror events into its per-CPU rings). Reaches into
        the ring directly — one increment, one C append — because this
        runs once per record at fleet scale."""
        events = self.events
        events.pushed += 1
        events._buf.append(event)

    # -- inspection ------------------------------------------------------ #

    @property
    def folded(self) -> Counter:
        """Path-keyed self-cycle aggregate (flamegraph input).

        Serial spans key by their path; SMP spans gain a ``("cpuN",)``
        prefix. Merged on demand from the per-core counters the exit
        path maintains — reads happen at export time, writes happen
        hundreds of thousands of times per run, so the merge cost sits
        on the right side.
        """
        if not self._fold_by_cpu:
            return self._fold_serial
        merged = Counter(self._fold_serial)
        for cpu, counter in self._fold_by_cpu.items():
            prefix = self._cpu_key(cpu)
            for path, cycles in counter.items():
                merged[prefix + path] += cycles
        return merged

    @property
    def dropped(self) -> int:
        return self.events.dropped

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def total_attributed(self) -> int:
        """Sum of folded self-cycles == total cycles under closed roots."""
        total = sum(self._fold_serial.values())
        for counter in self._fold_by_cpu.values():
            total += sum(counter.values())
        return total

    def spans(self) -> Iterator[TraceEvent]:
        return (e for e in self.events if e[2] == SPAN)

    def __repr__(self) -> str:
        return (f"Tracer({len(self.events)} events, depth "
                f"{len(self._stack)}, {self.dropped} dropped)")


class gc_batched_recording:
    """Batch the host garbage collector while recording is armed.

    An armed recorder retains one container object per record by design
    (the ring holds the tuples; that *is* the product), so a fleet run
    grows the young generation by hundreds of thousands of survivors.
    At CPython's default gen-0 threshold (700 net allocations) that
    tempo makes the collector fire hundreds of extra times per armed
    run, rescanning ring survivors it can never free — measured as the
    single largest component of the recorder's host overhead after the
    emit path itself went allocation-light.

    This guard raises the young-generation threshold for the duration
    of an armed run and restores the previous tuning on exit. It only
    changes *when* the host collector runs, never what the simulator
    computes: simulated cycles, digests, and every recorded event are
    byte-identical with or without it (the D1/D2 discipline does not
    apply — no clock is read or charged).

    ``enabled=False`` makes it a no-op so call sites can write
    ``with gc_batched_recording(tracer.enabled):`` unconditionally.
    """

    #: (gen0, gen1, gen2) thresholds while recording; gen0 is sized so a
    #: full default ring (2**17 events) triggers ~a handful of young
    #: collections instead of hundreds
    THRESHOLDS = (100_000, 50, 50)

    __slots__ = ("enabled", "_saved")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._saved: tuple | None = None

    def __enter__(self) -> "gc_batched_recording":
        if self.enabled and gc.isenabled():
            self._saved = gc.get_threshold()
            gc.set_threshold(*self.THRESHOLDS)
        return self

    def __exit__(self, *exc) -> bool:
        if self._saved is not None:
            gc.set_threshold(*self._saved)
            self._saved = None
        return False
