#!/usr/bin/env python3
"""Quickstart: boot an Erebor CVM and run the Helloworld sandbox (E2).

Mirrors the paper artifact's experiment E2: a minimal sandbox program that
needs no input and emits ``AAAAAAAAAA`` through the monitor's protected
output channel. Along the way this demonstrates the full pipeline:

1. two-stage verified boot (firmware+monitor measured, kernel byte-scanned),
2. remote attestation and the authenticated key exchange,
3. sandbox creation, confined-memory declaration, and locking,
4. the ioctl channel between LibOS and monitor,
5. padded, sealed output back to the client — with proof that neither the
   host nor the in-CVM proxy ever saw plaintext.

Run:  python examples/quickstart.py
"""

from repro import CvmMachine, MachineConfig, MIB, erebor_boot
from repro.apps import LibOsRuntime, workload
from repro.client import RemoteClient
from repro.core import SecureChannel, UntrustedProxy, published_measurement
from repro.libos import LibOs


def main() -> None:
    print("== stage 1+2: verified boot ==")
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=32 * MIB)
    print(f"  monitor installed, kernel booted "
          f"(measurement {machine.tdx.measurement.mrtd.hex()[:16]}...)")

    print("== sandbox + LibOS ==")
    hello = workload("helloworld")
    libos = LibOs.boot_sandboxed(system, hello.manifest(),
                                 confined_budget=2 * MIB)
    runtime = LibOsRuntime(libos)
    print(f"  sandbox {libos.sandbox.sandbox_id}: "
          f"{libos.sandbox.confined_bytes >> 10} KiB confined, "
          f"state={libos.sandbox.state}")

    print("== client attests and connects ==")
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    print("  quote verified against the published firmware+monitor "
          "measurement; channel keys derived")

    print("== one request/response round ==")
    client.request(proxy, channel, b"")   # helloworld ignores its input
    print(f"  sandbox locked: {libos.sandbox.locked}")
    runtime.recv_input()
    hello.serve(runtime, b"")
    result = client.fetch_result(proxy, channel)
    print(f"  client received: {result!r}")

    print("== who saw what ==")
    host_blob = machine.vmm.observed_blob()
    print(f"  host observations: {len(machine.vmm.observations)} events, "
          f"plaintext visible: {result in host_blob}")
    print(f"  proxy relayed {len(proxy.log.blobs)} blobs, "
          f"plaintext visible: {proxy.log.saw(result)}")
    print(f"  simulated time: {machine.clock.seconds * 1000:.2f} ms, "
          f"EMCs: {machine.clock.events['emc']}")

    assert result == b"A" * 10
    assert result not in host_blob and not proxy.log.saw(result)
    print("OK")


if __name__ == "__main__":
    main()
