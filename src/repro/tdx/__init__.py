"""TDX substrate: trusted module, host VMM, attestation authority."""

from .attestation import (
    AttestationAuthority,
    Quote,
    QuoteVerificationError,
    TdReport,
    expected_measurement,
)
from .module import (
    LEAF_ACCEPT_PAGE,
    LEAF_TDREPORT,
    LEAF_VMCALL,
    PRIVATE,
    SHARED,
    VMCALL_CPUID,
    VMCALL_GETQUOTE,
    VMCALL_HLT,
    VMCALL_IO,
    VMCALL_MAPGPA,
    TdxModule,
)
from .vmm import HostVmm, PrivateMemoryError

__all__ = [
    "AttestationAuthority", "HostVmm", "LEAF_ACCEPT_PAGE", "LEAF_TDREPORT",
    "LEAF_VMCALL", "PRIVATE", "PrivateMemoryError", "Quote",
    "QuoteVerificationError", "SHARED", "TdReport", "TdxModule",
    "VMCALL_CPUID", "VMCALL_GETQUOTE", "VMCALL_HLT", "VMCALL_IO",
    "VMCALL_MAPGPA", "expected_measurement",
]
