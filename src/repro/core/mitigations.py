"""Optional digital side/covert-channel mitigations (paper §12).

The paper leaves micro-architectural channels out of scope but names the
software heuristics Erebor can adopt; this module implements them as
monitor features with measurable costs:

* **cache/TLB eviction-enforced exiting** — flush shared micro-
  architectural state on every sandbox exit (Varys-style), charging a
  fixed eviction cost;
* **sandbox exit rate limiting** — throttle a sandbox whose exit
  frequency exceeds a budget (exit-frequency covert channels);
* **quantized communication intervals** — release channel output only on
  fixed time boundaries (Ryoan-style leakage-free intervals), hiding
  data-dependent processing time;
* **noise injection** — pad channel operations with deterministic dummy
  work (Obfuscuro-style obfuscation, modelled at the cost level).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..hw.cycles import CPU_FREQ_HZ, CycleClock

if TYPE_CHECKING:
    from .sandbox import Sandbox

#: modelled cost of evicting caches+TLB on one exit (Varys-style)
CACHE_FLUSH_CYCLES = 30_000
#: throttle penalty applied when the exit budget is exhausted
THROTTLE_STALL_CYCLES = 200_000


@dataclass
class MitigationConfig:
    """Which §12 mitigations are armed."""

    flush_on_exit: bool = False
    exit_rate_limit_per_sec: int | None = None
    quantize_output_cycles: int | None = None
    noise_injection_max_cycles: int = 0
    seed: int = 0x51DE


class SideChannelMitigations:
    """Monitor-attached mitigation engine."""

    def __init__(self, clock: CycleClock, config: MitigationConfig):
        self.clock = clock
        self.config = config
        self._rng = random.Random(config.seed)
        self._window_start = clock.cycles
        self._window_exits = 0
        self.stats = {"flushes": 0, "throttles": 0, "quantized_waits": 0,
                      "noise_ops": 0}

    # ------------------------------------------------------------------ #
    # exit-side hooks (called from MonitorExitPath)
    # ------------------------------------------------------------------ #

    def on_sandbox_exit(self, sandbox: "Sandbox") -> None:
        if self.config.flush_on_exit:
            self.clock.charge(CACHE_FLUSH_CYCLES, "mitigation_flush")
            self.stats["flushes"] += 1
            self.clock.count("mitigation_flush")
        limit = self.config.exit_rate_limit_per_sec
        if limit is not None:
            if self.clock.cycles - self._window_start >= CPU_FREQ_HZ:
                self._window_start = self.clock.cycles
                self._window_exits = 0
            self._window_exits += 1
            if self._window_exits > limit:
                self.clock.charge(THROTTLE_STALL_CYCLES, "mitigation_throttle")
                self.stats["throttles"] += 1
                self.clock.count("mitigation_throttle")

    # ------------------------------------------------------------------ #
    # channel-side hooks (called from SecureChannel)
    # ------------------------------------------------------------------ #

    def on_output_release(self, sandbox: "Sandbox" | None = None) -> int:
        """Gate an output release; returns the release cycle timestamp.

        With quantization on, the release is delayed to the next interval
        boundary, so the observable completion time carries log2(1) bits
        of the data-dependent processing time. ``sandbox`` is accepted
        (and ignored) so callers can pass it uniformly whether the armed
        engine is fleet-wide or a per-tenant router.
        """
        interval = self.config.quantize_output_cycles
        if self.config.noise_injection_max_cycles:
            noise = self._rng.randrange(self.config.noise_injection_max_cycles)
            self.clock.charge(noise, "mitigation_noise")
            self.stats["noise_ops"] += 1
        if interval:
            remainder = self.clock.cycles % interval
            if remainder:
                self.clock.charge(interval - remainder, "mitigation_quantize")
                self.stats["quantized_waits"] += 1
                self.clock.count("mitigation_quantize")
        return self.clock.cycles


class TenantMitigationRouter:
    """Per-tenant §12 routing: noisy tenants pay their own mitigation cost.

    The ROADMAP's side-channel-budget item: instead of fleet-wide arming
    (every sandbox flushed/throttled because one tenant misbehaved), the
    router keeps one :class:`SideChannelMitigations` engine per tenant —
    typically armed by the fleet's anomaly detectors — plus an optional
    ``default`` engine applied to everyone else. Mitigation cycles are
    charged on whatever core is executing the offending tenant's exit,
    so other tenants' cycle accounting is untouched (test-enforced).
    """

    def __init__(self, clock: CycleClock,
                 default: "SideChannelMitigations | None" = None):
        self.clock = clock
        self.default = default
        self.engines: dict[str, SideChannelMitigations] = {}
        self.armed_at: dict[str, int] = {}   # tenant → arming cycle

    def arm(self, tenant: str, config: MitigationConfig) -> SideChannelMitigations:
        """Arm (or replace) one tenant's engine; returns it."""
        engine = SideChannelMitigations(self.clock, config)
        self.engines[tenant] = engine
        self.armed_at.setdefault(tenant, self.clock.cycles)
        return engine

    def engine_for(self, sandbox) -> "SideChannelMitigations | None":
        tenant = getattr(sandbox, "tenant", "") if sandbox is not None else ""
        return self.engines.get(tenant, self.default)

    # the monitor-facing surface mirrors SideChannelMitigations, so the
    # exit path and the secure channel call either interchangeably

    def on_sandbox_exit(self, sandbox) -> None:
        engine = self.engine_for(sandbox)
        if engine is not None:
            engine.on_sandbox_exit(sandbox)

    def on_output_release(self, sandbox=None) -> int:
        engine = self.engine_for(sandbox)
        if engine is not None:
            return engine.on_output_release(sandbox)
        return self.clock.cycles

    @property
    def stats(self) -> dict:
        """Aggregate engine stats (tenant-tagged under ``per_tenant``)."""
        total = {"flushes": 0, "throttles": 0, "quantized_waits": 0,
                 "noise_ops": 0}
        per_tenant = {}
        engines = dict(self.engines)
        if self.default is not None:
            engines["*default*"] = self.default
        for tenant, engine in engines.items():
            per_tenant[tenant] = dict(engine.stats)
            for k in total:
                total[k] += engine.stats.get(k, 0)
        total["per_tenant"] = per_tenant
        return total
