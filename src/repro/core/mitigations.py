"""Optional digital side/covert-channel mitigations (paper §12).

The paper leaves micro-architectural channels out of scope but names the
software heuristics Erebor can adopt; this module implements them as
monitor features with measurable costs:

* **cache/TLB eviction-enforced exiting** — flush shared micro-
  architectural state on every sandbox exit (Varys-style), charging a
  fixed eviction cost;
* **sandbox exit rate limiting** — throttle a sandbox whose exit
  frequency exceeds a budget (exit-frequency covert channels);
* **quantized communication intervals** — release channel output only on
  fixed time boundaries (Ryoan-style leakage-free intervals), hiding
  data-dependent processing time;
* **noise injection** — pad channel operations with deterministic dummy
  work (Obfuscuro-style obfuscation, modelled at the cost level).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..hw.cycles import CPU_FREQ_HZ, CycleClock

if TYPE_CHECKING:
    from .sandbox import Sandbox

#: modelled cost of evicting caches+TLB on one exit (Varys-style)
CACHE_FLUSH_CYCLES = 30_000
#: throttle penalty applied when the exit budget is exhausted
THROTTLE_STALL_CYCLES = 200_000


@dataclass
class MitigationConfig:
    """Which §12 mitigations are armed."""

    flush_on_exit: bool = False
    exit_rate_limit_per_sec: int | None = None
    quantize_output_cycles: int | None = None
    noise_injection_max_cycles: int = 0
    seed: int = 0x51DE


class SideChannelMitigations:
    """Monitor-attached mitigation engine."""

    def __init__(self, clock: CycleClock, config: MitigationConfig):
        self.clock = clock
        self.config = config
        self._rng = random.Random(config.seed)
        self._window_start = clock.cycles
        self._window_exits = 0
        self.stats = {"flushes": 0, "throttles": 0, "quantized_waits": 0,
                      "noise_ops": 0}

    # ------------------------------------------------------------------ #
    # exit-side hooks (called from MonitorExitPath)
    # ------------------------------------------------------------------ #

    def on_sandbox_exit(self, sandbox: "Sandbox") -> None:
        if self.config.flush_on_exit:
            self.clock.charge(CACHE_FLUSH_CYCLES, "mitigation_flush")
            self.stats["flushes"] += 1
            self.clock.count("mitigation_flush")
        limit = self.config.exit_rate_limit_per_sec
        if limit is not None:
            if self.clock.cycles - self._window_start >= CPU_FREQ_HZ:
                self._window_start = self.clock.cycles
                self._window_exits = 0
            self._window_exits += 1
            if self._window_exits > limit:
                self.clock.charge(THROTTLE_STALL_CYCLES, "mitigation_throttle")
                self.stats["throttles"] += 1
                self.clock.count("mitigation_throttle")

    # ------------------------------------------------------------------ #
    # channel-side hooks (called from SecureChannel)
    # ------------------------------------------------------------------ #

    def on_output_release(self) -> int:
        """Gate an output release; returns the release cycle timestamp.

        With quantization on, the release is delayed to the next interval
        boundary, so the observable completion time carries log2(1) bits
        of the data-dependent processing time.
        """
        interval = self.config.quantize_output_cycles
        if self.config.noise_injection_max_cycles:
            noise = self._rng.randrange(self.config.noise_injection_max_cycles)
            self.clock.charge(noise, "mitigation_noise")
            self.stats["noise_ops"] += 1
        if interval:
            remainder = self.clock.cycles % interval
            if remainder:
                self.clock.charge(interval - remainder, "mitigation_quantize")
                self.stats["quantized_waits"] += 1
                self.clock.count("mitigation_quantize")
        return self.clock.cycles
