"""Flight-recorder overhead bench: obs-on vs obs-off on the llama fleet.

The observability plane's design contract is that it *reads* the cycle
clock and never charges it, so its overhead in simulated cycles is
exactly zero: a fleet run with the flight recorder, windowed SLO
histograms and anomaly detectors all armed must produce the byte-for-byte
same wall cycles (and report digest) as the bare run. This bench pins
that — the acceptance bound is < 10% extra wall cycles, the measured
value is 0% — and reports the *host-side* wall-time cost of recording
in ``BENCH_obs_overhead.json``.

Host-time methodology: one timed run of each arm is noise (the same bare
fleet varies by >30% run to run on a shared machine), so the bench
alternates bare/armed rounds and takes the **ratio of minimums** —
the minimum is the least-perturbed observation of each arm, and
alternating keeps slow machine phases from landing on one arm only.

The second half of the bench turns the profiler on itself: a
:class:`~repro.obs.hostprof.HostProfiler` run of the armed fleet must
attribute at least 90% of host wall-time to named simulator subsystems
(the honest-accounting bar from the module docstring), and the ranked
top-10 table lands in ``bench_tables.txt`` next to the overhead table.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.report import format_table
from repro.fleet import AnomalyConfig, SloConfig, run_fleet
from repro.obs.hostprof import profile_fleet
from repro.vm import MIB

CLIENTS = 8
_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _ROOT / "BENCH_obs_overhead.json"
TABLES = _ROOT / "bench_tables.txt"

FLEET_PARAMS = dict(workload="llama.cpp", clients=CLIENTS, requests=2,
                    pool_size=CLIENTS, tenants=CLIENTS, seed=7, scale=0.1,
                    n_cpus=4, memory_bytes=1024 * MIB, cma_bytes=512 * MIB)

ARMED_PARAMS = dict(flight=True,
                    slo=SloConfig(queue_wait_p95=10**12,
                                  service_p95=10**12, e2e_p99=10**12),
                    anomaly=AnomalyConfig())

#: acceptance bound on simulated wall-cycle overhead (design value: 0)
MAX_OVERHEAD = 0.10

#: alternating bare/armed timing rounds; host overhead = min/min ratio
ROUNDS = 3

#: floor on host wall-time the profiler must attribute to named subsystems
MIN_HOSTPROF_COVERAGE = 0.90


def _timed_run(**extra):
    t0 = time.perf_counter()
    report, system = run_fleet(**FLEET_PARAMS, **extra)
    host_seconds = time.perf_counter() - t0
    return report, system, host_seconds


@pytest.fixture(scope="module")
def runs():
    """Alternating bare/armed rounds; each arm keeps its fastest round."""
    bare = armed = None
    for _ in range(ROUNDS):
        candidate = _timed_run()
        if bare is None or candidate[2] < bare[2]:
            bare = candidate
        candidate = _timed_run(**ARMED_PARAMS)
        if armed is None or candidate[2] < armed[2]:
            armed = candidate
    return {"off": bare, "on": armed}


@pytest.fixture(scope="module")
def hostprof():
    """One profiled armed run (kept out of the timing rounds: the probe
    itself costs host time and must not pollute the overhead ratio)."""
    (_, _), profiler = profile_fleet(
        lambda: run_fleet(**FLEET_PARAMS, **ARMED_PARAMS))
    return profiler


def write_artifact(runs, profiler) -> dict:
    (bare, _, bare_host) = runs["off"]
    (armed, system, armed_host) = runs["on"]
    recorder = system.machine.clock.tracer
    hostprof_report = profiler.report()
    payload = {
        "workload": FLEET_PARAMS["workload"],
        "clients": CLIENTS,
        "n_cpus": FLEET_PARAMS["n_cpus"],
        "seed": FLEET_PARAMS["seed"],
        "max_overhead_bound": MAX_OVERHEAD,
        "timing_rounds": ROUNDS,
        "obs_off": {
            "serve_wall_cycles": bare.serve_wall_cycles,
            "total_cycles": bare.total_cycles,
            "digest": bare.digest(),
            "host_seconds": round(bare_host, 4),
        },
        "obs_on": {
            "serve_wall_cycles": armed.serve_wall_cycles,
            "total_cycles": armed.total_cycles,
            "digest": armed.digest(),
            "host_seconds": round(armed_host, 4),
            "trace_events": len(recorder.events),
            "flight_rings": len(recorder.rings),
            "slo_samples": armed.slo["samples"],
        },
        "simulated_overhead": round(
            armed.serve_wall_cycles / bare.serve_wall_cycles - 1.0, 6),
        # host-side recording cost: min-of-N over alternating rounds
        # (informational, not asserted: CI machines are noisy; the
        # simulated model is the contract)
        "host_overhead": round(armed_host / bare_host - 1.0, 4),
        "hostprof": {
            "window_s": hostprof_report["window_s"],
            "coverage": hostprof_report["coverage"],
            "min_coverage_bound": MIN_HOSTPROF_COVERAGE,
            "entry_overhead_us": hostprof_report["entry_overhead_us"],
            "subsystems": hostprof_report["subsystems"][:10],
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def overhead_table(payload) -> str:
    overhead = payload["simulated_overhead"]
    rows = [
        ["off", f"{payload['obs_off']['serve_wall_cycles']:,}", "-",
         f"{payload['obs_off']['host_seconds']:.2f}s"],
        ["on", f"{payload['obs_on']['serve_wall_cycles']:,}",
         f"{overhead * 100:.2f}%",
         f"{payload['obs_on']['host_seconds']:.2f}s"],
    ]
    return format_table(
        "Flight-recorder overhead, 8 llama forks x 2 requests on 4 cores",
        ["obs", "serve wall cycles", "overhead", "host time"], rows)


def write_tables(payload, profiler) -> str:
    text = "\n\n".join([overhead_table(payload),
                        profiler.render_table(top=10)]) + "\n"
    TABLES.write_text(text)
    return text


def test_flight_recorder_overhead_under_bound(benchmark, runs, hostprof):
    payload = benchmark.pedantic(lambda: write_artifact(runs, hostprof),
                                 rounds=1, iterations=1)
    overhead = payload["simulated_overhead"]
    assert overhead <= MAX_OVERHEAD
    # the design value is exactly zero: same cycles, same digest
    assert overhead == 0.0
    assert payload["obs_on"]["digest"] == payload["obs_off"]["digest"]
    assert payload["obs_on"]["trace_events"] > 0
    print("\n" + write_tables(payload, hostprof))


def test_hostprof_attributes_ninety_percent(hostprof):
    report = hostprof.report()
    assert report["coverage"] >= MIN_HOSTPROF_COVERAGE, (
        f"host profiler attributed only {report['coverage']:.1%} of the "
        f"armed llama-fleet window (bound {MIN_HOSTPROF_COVERAGE:.0%})")
    # self-time accounting: shares must sum to the coverage, never past it
    total_share = sum(r["share"] for r in report["subsystems"])
    assert total_share <= 1.0 + 1e-6
    assert hostprof.collapsed()   # flamegraph input is non-empty
