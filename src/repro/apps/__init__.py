"""The evaluation's service applications (Table 5) and runtime adapters."""

from . import drugbank, graphchi, helloworld, llama, unicorn, yolo  # noqa: F401 - registry
from .base import MIB, REGISTRY, Workload, WorkloadProfile, workload
from .runtime import AppRuntime, LibOsRuntime, NativeRuntime
from .unicorn import synth_log

__all__ = [
    "AppRuntime", "LibOsRuntime", "MIB", "NativeRuntime", "REGISTRY",
    "Workload", "WorkloadProfile", "synth_log", "workload",
]
