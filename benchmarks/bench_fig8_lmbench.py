"""Figure 8 — Erebor's overhead on LMBench system microbenchmarks.

Regenerates the per-benchmark Native-vs-Erebor overhead series (the
figure's bars) plus the EMC rate annotations. Shape targets from the
paper: pagefault is the worst case at ~3.8x, fork is also expensive
(MMU-heavy), plain syscall paths stay close to native.
"""

import pytest

from repro.bench.lmbench import LmbenchSuite
from repro.bench.report import format_table


@pytest.fixture(scope="module")
def results():
    return LmbenchSuite(iterations=150).run_all()


def test_print_fig8(benchmark, results):
    def build():
        rows = [[r.name, f"{r.native_cycles:.0f}", f"{r.erebor_cycles:.0f}",
                 f"{r.ratio:.2f}x", f"{r.emc_per_op:.1f}",
                 f"{r.emc_per_sec / 1e6:.2f}M"]
                for r in results]
        return format_table(
            "Figure 8: LMBench under Erebor (non-sandboxed)",
            ["bench", "native cyc/op", "erebor cyc/op", "overhead",
             "EMC/op", "EMC/s"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_pagefault_is_worst_case(benchmark, results):
    by_name = {r.name: r for r in benchmark.pedantic(
        lambda: results, rounds=1, iterations=1)}
    pf = by_name["pagefault"]
    assert pf.ratio == max(r.ratio for r in results)
    # paper: 3.8x
    assert 3.2 <= pf.ratio <= 4.4, pf.ratio


def test_fork_is_mmu_heavy(benchmark, results):
    by_name = {r.name: r for r in benchmark.pedantic(
        lambda: results, rounds=1, iterations=1)}
    fork = by_name["fork"]
    assert fork.emc_per_op == max(r.emc_per_op for r in results)
    assert fork.ratio >= 2.5


def test_syscall_paths_stay_moderate(benchmark, results):
    by_name = {r.name: r for r in benchmark.pedantic(
        lambda: results, rounds=1, iterations=1)}
    for name in ("null", "select", "signal"):
        assert by_name[name].ratio <= 1.5, name


def test_bench_one_null_syscall(benchmark):
    """A wall-clock benchmark of the simulator's hot syscall path."""
    suite = LmbenchSuite(iterations=1)
    machine, kernel, task = suite._machine("erebor")

    benchmark(lambda: kernel.syscall(task, "getpid"))
