"""The full circle with REAL code: client data processed by loaded
instructions executing inside the sandbox, result returned sealed.

Path: client seals bytes -> proxy -> monitor decrypts into confined I/O
frames -> a SELF program (simulated-ISA machine code) reads those exact
bytes in user mode, computes a checksum and an XOR transform, writes the
result to its data section -> LibOS ships it through the ioctl channel ->
monitor pads+seals -> client opens. The host and proxy see ciphertext
only, and the computation is verifiably correct.
"""

import pytest

from repro.client import RemoteClient
from repro.core import erebor_boot, published_measurement
from repro.core.channel import SecureChannel, UntrustedProxy
from repro.hw.isa import I
from repro.libos import (
    LibOs,
    Manifest,
    build_user_program,
    load_program,
    run_program,
)
from repro.libos.loader import PROG_DATA_VA
from repro.vm import CvmMachine, MachineConfig, MIB

SECRET = bytes(range(1, 65))           # 64 bytes of "client data"
XOR_KEY = 0x5A


def checksum_xor_program():
    """Sums the 64 input bytes (as 8 u64 words) and XORs each word.

    entry args: rsi = input VA (the confined I/O buffer).
    output: data[0] = word-sum, data[8..72] = transformed words.
    """
    body = [I("movi", "r14", imm=0)]     # running sum
    for word in range(8):
        body += [
            I("load", "rax", "rsi", imm=word * 8),
            I("add", "r14", "rax"),
            I("movi", "rbx", imm=XOR_KEY * 0x0101010101010101),
            I("xor", "rax", "rbx"),
            I("movi", "rcx", imm=PROG_DATA_VA + 8 + word * 8),
            I("store", "rcx", "rax"),
        ]
    body += [
        I("movi", "rcx", imm=PROG_DATA_VA),
        I("store", "rcx", "r14"),
        I("hlt"),
    ]
    return build_user_program(body, data=b"\x00" * 128)


@pytest.fixture
def rig():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    libos = LibOs.boot_sandboxed(system,
                                 Manifest(name="checksummer",
                                          heap_bytes=1 * MIB),
                                 confined_budget=8 * MIB)
    program = load_program(libos, checksum_xor_program())
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    return machine, system, libos, program, proxy, channel, client


def expected_words():
    words = [int.from_bytes(SECRET[i * 8:(i + 1) * 8], "little")
             for i in range(8)]
    mask = XOR_KEY * 0x0101010101010101
    return sum(words) & (2**64 - 1), [w ^ mask for w in words]


def test_loaded_code_processes_real_client_bytes(rig):
    machine, system, libos, program, proxy, channel, client = rig
    client.request(proxy, channel, SECRET)
    assert libos.sandbox.locked

    # the program reads straight from the confined I/O buffer the monitor
    # decrypted into
    run_program(libos, program,
                args={"rsi": libos.sandbox.io_vma.start})

    aspace = libos.sandbox.task.aspace
    fn = aspace.mapped_frame(PROG_DATA_VA)
    out = machine.phys.read(fn * 4096, 128)
    got_sum = int.from_bytes(out[:8], "little")
    got_words = [int.from_bytes(out[8 + i * 8:16 + i * 8], "little")
                 for i in range(8)]
    want_sum, want_words = expected_words()
    assert got_sum == want_sum
    assert got_words == want_words

    # LibOS ships it back through the one legal syscall
    libos.send_output(bytes(out[:72]))
    result = client.fetch_result(proxy, channel)
    assert int.from_bytes(result[:8], "little") == want_sum

    # nobody outside saw anything
    assert SECRET not in machine.vmm.observed_blob()
    assert not proxy.log.saw(SECRET)
    # not even the transformed output leaked in plaintext
    assert bytes(out[:16]) not in machine.vmm.observed_blob()


def test_program_sees_exact_decrypted_bytes(rig):
    machine, system, libos, program, proxy, channel, client = rig
    client.request(proxy, channel, SECRET)
    io_frames = libos.sandbox.io_vma.backing.frames
    assert machine.phys.read(io_frames[0] * 4096, len(SECRET)) == SECRET


def test_second_request_reuses_the_program(rig):
    machine, system, libos, program, proxy, channel, client = rig
    client.request(proxy, channel, SECRET)
    run_program(libos, program, args={"rsi": libos.sandbox.io_vma.start})
    other = bytes(range(100, 164))
    client.request(proxy, channel, other)
    run_program(libos, program, args={"rsi": libos.sandbox.io_vma.start})
    fn = libos.sandbox.task.aspace.mapped_frame(PROG_DATA_VA)
    got_sum = int.from_bytes(machine.phys.read(fn * 4096, 8), "little")
    words = [int.from_bytes(other[i * 8:(i + 1) * 8], "little")
             for i in range(8)]
    assert got_sum == sum(words) & (2**64 - 1)
