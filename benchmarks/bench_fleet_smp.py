"""SMP fleet bench: throughput scaling across core counts + determinism.

Runs the llama-fork fleet (8 clients, 8-slot pool — every session a
concurrent CoW fork) at 1, 2, 4 and 8 simulated cores and pins the PR's
headline number: 4 cores serve the same offered load at >=3.0x the
single-core wall-clock throughput. The full sweep is written to
``BENCH_fleet_smp.json`` at the repo root as the scaling artifact
(per-core-count wall cycles, speedups, digests, core busy breakdown).
"""

import json
from pathlib import Path

import pytest

from repro.bench.report import format_table
from repro.fleet import run_fleet
from repro.vm import MIB

CLIENTS = 8
CORE_COUNTS = (1, 2, 4, 8)
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_fleet_smp.json"

FLEET_PARAMS = dict(workload="llama.cpp", clients=CLIENTS, requests=2,
                    pool_size=CLIENTS, tenants=CLIENTS, seed=7, scale=0.1,
                    memory_bytes=1024 * MIB, cma_bytes=512 * MIB)


@pytest.fixture(scope="module")
def sweep():
    """{n_cpus: FleetReport} for the same offered load at each width."""
    return {n: run_fleet(n_cpus=n, **FLEET_PARAMS)[0] for n in CORE_COUNTS}


def write_artifact(sweep) -> dict:
    base = sweep[1].serve_wall_cycles
    payload = {
        "workload": FLEET_PARAMS["workload"],
        "clients": CLIENTS,
        "requests_per_client": FLEET_PARAMS["requests"],
        "pool_size": FLEET_PARAMS["pool_size"],
        "seed": FLEET_PARAMS["seed"],
        "scaling": [
            {
                "n_cpus": n,
                "serve_wall_cycles": r.serve_wall_cycles,
                "serve_cycles": r.serve_cycles,
                "speedup_vs_1core": round(base / r.serve_wall_cycles, 4),
                "throughput_rps": round(r.throughput_rps, 4),
                "requests_per_wall_kcycle":
                    round(r.requests_per_wall_kcycle, 6),
                "core_busy_cycles": r.core_busy_cycles,
                "digest": r.digest(),
            }
            for n, r in sorted(sweep.items())
        ],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_four_cores_serve_at_least_3x(benchmark, sweep):
    payload = benchmark.pedantic(lambda: write_artifact(sweep),
                                 rounds=1, iterations=1)
    by_cores = {row["n_cpus"]: row for row in payload["scaling"]}
    # PR acceptance: 4-core throughput >= 3.0x single-core on llama forks
    assert by_cores[4]["speedup_vs_1core"] >= 3.0
    assert by_cores[2]["speedup_vs_1core"] >= 1.8
    assert by_cores[8]["speedup_vs_1core"] >= 6.0
    for report in sweep.values():
        assert report.outcomes == {"completed": CLIENTS}
    rows = [
        [row["n_cpus"], f"{row['serve_wall_cycles']:,}",
         f"{row['speedup_vs_1core']:.2f}x", f"{row['throughput_rps']:,.1f}"]
        for row in payload["scaling"]
    ]
    print("\n" + format_table(
        "SMP fleet scaling, 8 llama forks x 2 requests "
        "(wall cycles = max over cores)",
        ["cores", "serve wall cycles", "speedup", "req/s"], rows))


def test_serial_work_is_conserved_across_widths(sweep):
    """Adding cores overlaps work; it must not change how much there is."""
    serial = {n: r.serve_cycles for n, r in sweep.items()}
    base = serial[1]
    for n, total in serial.items():
        # handshake fast-forwards differ slightly; the work is the same
        # to within 1%
        assert abs(total - base) <= base * 0.01, (n, total, base)


def test_wall_clock_bounded_by_busiest_core(sweep):
    for n, report in sweep.items():
        busy = report.core_busy_cycles
        assert len(busy) == n
        assert report.serve_wall_cycles >= max(busy)
        # no width serves faster than perfect overlap would allow
        assert report.serve_wall_cycles * n >= report.serve_cycles * 0.99


def test_smp_digests_are_deterministic(benchmark):
    def twice():
        a, _ = run_fleet(n_cpus=4, **FLEET_PARAMS)
        b, _ = run_fleet(n_cpus=4, **FLEET_PARAMS)
        return a, b

    a, b = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()
