#!/usr/bin/env python3
"""Attack-vector playbook: watch AV1-AV3 fail against a locked sandbox.

Every scenario from the paper's threat model (§3.2), executed live:

  AV1 — the OS tries to *retrieve* the client secret (user-copy, direct
        read, double-mapping, shared-conversion + DMA);
  AV2 — the service program tries to *send it out* (file write, socket,
        hypercall, writes into shared memory);
  AV3 — covert channels (syscall arguments, user-mode interrupts,
        output sizing).

For contrast, the same AV1 attack is then run on a native CVM without
Erebor — and succeeds.

Run:  python examples/attack_demos.py
"""

from repro import (
    CvmMachine,
    MachineConfig,
    MIB,
    PolicyViolation,
    SandboxViolation,
    erebor_boot,
)
from repro.client import RemoteClient
from repro.core import SecureChannel, UntrustedProxy, published_measurement
from repro.hw.devices import DmaBlocked
from repro.hw.errors import PageFault
from repro.hw.memory import PAGE_SIZE
from repro.hw.mmu import AccessContext, KERNEL_MODE
from repro.hw.paging import PTE_NX, PTE_P, PTE_U, make_pte
from repro.kernel.process import SegmentationFault

SECRET = b"patient-record-8812[confidential]"


def blocked(name, fn, *exc_types):
    try:
        fn()
    except exc_types as exc:
        print(f"  [BLOCKED] {name}: {type(exc).__name__}: "
              f"{str(exc)[:68]}")
        return True
    print(f"  [LEAKED!] {name}")
    return False


def main() -> None:
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    sandbox = system.monitor.create_sandbox("victim", confined_budget=8 * MIB)
    sandbox.declare_confined(1 * MIB)
    channel = SecureChannel(system.monitor, sandbox)
    proxy = UntrustedProxy(system.monitor)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    client.request(proxy, channel, SECRET)
    kernel = system.kernel
    target_frame = sandbox.io_vma.backing.frames[0]
    print(f"secret installed in confined frame {target_frame:#x}; "
          f"sandbox locked={sandbox.locked}\n")

    print("AV1: OS data retrieval")
    kernel.current = sandbox.task
    all_ok = blocked("kernel copy_from_user on sandbox memory",
                     lambda: kernel.ops.user_copy(4096, to_user=False),
                     PolicyViolation)
    ctx = AccessContext(mode=KERNEL_MODE, cr0=machine.cpu.crs[0],
                        cr4=machine.cpu.crs[4])
    all_ok &= blocked("kernel dereferences sandbox page (SMAP)",
                      lambda: machine.cpu.mmu.check(
                          sandbox.task.aspace, sandbox.io_vma.start,
                          "read", ctx), PageFault)
    all_ok &= blocked("map confined frame into kernel space",
                      lambda: system.monitor.ops.write_pte(
                          kernel.kernel_aspace, 0x50_0000_0000,
                          make_pte(target_frame, PTE_P | PTE_NX)),
                      PolicyViolation)
    all_ok &= blocked("convert confined frame to shared (MapGPA)",
                      lambda: system.monitor.ops.map_gpa(
                          target_frame, 1, shared=True), PolicyViolation)
    all_ok &= blocked("device DMA from confined frame",
                      lambda: machine.dma.dma_read(
                          target_frame * PAGE_SIZE, 64), DmaBlocked)

    print("\nAV2: program direct leakage (each kills the sandbox)")
    all_ok &= blocked("write(/tmp/exfil) after lock",
                      lambda: kernel.syscall(sandbox.task, "open",
                                             "/tmp/exfil", create=True,
                                             write=True), SandboxViolation)
    print(f"  sandbox now dead, memory scrubbed: "
          f"{machine.phys.read(target_frame * PAGE_SIZE, 8)}")

    # fresh victim for AV3
    sandbox2 = system.monitor.create_sandbox("victim2", confined_budget=8 * MIB)
    sandbox2.declare_confined(1 * MIB)
    chan2 = SecureChannel(system.monitor, sandbox2)
    client2 = RemoteClient(machine.authority, published_measurement(), seed=9)
    client2.connect(proxy, chan2)
    client2.request(proxy, chan2, SECRET)

    print("\nAV3: covert channels")
    all_ok &= blocked("syscall-argument encoding",
                      lambda: kernel.syscall(sandbox2.task, "nanosleep",
                                             SECRET[0] * 100),
                      SandboxViolation)
    uintr_tt = machine.cpu.msrs.get(0x985, None)
    print(f"  [BLOCKED] user-interrupt channel: IA32_UINTR_TT={uintr_tt} "
          f"(valid bit cleared; senduipi would #GP)")
    sandbox3 = system.monitor.create_sandbox("victim3", confined_budget=8 * MIB)
    sandbox3.declare_confined(1 * MIB)
    chan3 = SecureChannel(system.monitor, sandbox3)
    client3 = RemoteClient(machine.authority, published_measurement(), seed=10)
    client3.connect(proxy, chan3)
    client3.request(proxy, chan3, SECRET)
    sandbox3.push_output(b"Y")
    small = chan3.fetch_response()
    sandbox3.push_output(b"N" * 600)
    large = chan3.fetch_response()
    print(f"  [BLOCKED] output-size channel: 1B answer -> {len(small)}B "
          f"ciphertext, 600B answer -> {len(large)}B (identical)")

    print(f"\nhost/proxy ever saw the secret: "
          f"{SECRET in machine.vmm.observed_blob() or proxy.log.saw(SECRET)}")

    print("\n--- the same machine WITHOUT Erebor ---")
    native = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    nk = native.boot_native_kernel()
    task = nk.spawn("victim")
    from repro.kernel.process import PROT_READ, PROT_WRITE
    vma = nk.mmap(task, PAGE_SIZE, PROT_READ | PROT_WRITE)
    nk.touch_pages(task, vma.start, PAGE_SIZE, write=True)
    fn = task.aspace.mapped_frame(vma.start)
    native.phys.write(fn * PAGE_SIZE, SECRET)
    native.tdx.guest_map_gpa(fn, 1, shared=True)   # kernel owns GHCI natively
    stolen = native.vmm.host_read(fn)
    print(f"  kernel converts the page to shared, host reads it: "
          f"{stolen[:33]!r}")
    assert SECRET in stolen
    assert all_ok
    print("\nall Erebor defenses held; native CVM leaked as expected. OK")


if __name__ == "__main__":
    main()
