"""SMP fleet scheduling: per-CPU clocks, determinism, and scaling.

The scheduler interleaves one request per core each round, charging all
request work to the executing core's cycle counter; wall-clock time is
the max over per-CPU clocks. These tests pin the clock semantics, the
per-core-count determinism contract (same seed + same ``n_cpus`` →
byte-identical report, with a pinned digest per core count), and the
throughput scaling the whole design exists to deliver.
"""

import pytest

from repro.fleet import run_fleet
from repro.hw.cycles import CycleClock

# --------------------------------------------------------------------------- #
# per-CPU clock semantics (unit level)
# --------------------------------------------------------------------------- #

def test_serial_charges_advance_every_core():
    clock = CycleClock()
    clock.ensure_cpus(4)
    clock.charge(100, "boot")
    assert clock.per_cpu == [100, 100, 100, 100]
    assert clock.wall_cycles == 100
    assert clock.cycles == 100


def test_on_cpu_charges_land_on_one_core_only():
    clock = CycleClock()
    clock.ensure_cpus(2)
    with clock.on_cpu(0):
        clock.charge(300, "work")
    with clock.on_cpu(1):
        clock.charge(100, "work")
    # parallel work overlaps: wall is the max, not the sum
    assert clock.per_cpu == [300, 100]
    assert clock.wall_cycles == 300
    assert clock.cycles == 400            # serial total keeps its meaning
    assert clock.cpu_busy(0) == 300
    assert clock.cpu_busy(1) == 100


def test_serial_section_barriers_after_parallel_work():
    clock = CycleClock()
    clock.ensure_cpus(2)
    with clock.on_cpu(0):
        clock.charge(500)
    clock.charge(10)                      # serial: barrier, then advance
    assert clock.per_cpu == [510, 510]
    assert clock.wall_cycles == 510


def test_nested_cpu_scopes_restore_the_outer_core():
    clock = CycleClock()
    clock.ensure_cpus(3)
    with clock.on_cpu(1):
        with clock.on_cpu(2):
            clock.charge(50)
        clock.charge(5)
    assert clock.cpu_busy(2) == 50
    assert clock.cpu_busy(1) == 5


def test_per_cpu_event_ledgers_are_private():
    clock = CycleClock()
    with clock.on_cpu(0):
        clock.count("emc", 3)
    with clock.on_cpu(1):
        clock.count("emc", 1)
    clock.count("emc")                    # serial: global ledger only
    assert clock.cpu_events(0)["emc"] == 3
    assert clock.cpu_events(1)["emc"] == 1
    assert clock.events["emc"] == 5


def test_late_joining_core_starts_at_the_wall():
    clock = CycleClock()
    clock.charge(1000, "boot")            # single-core era
    clock.ensure_cpus(2)
    assert clock.per_cpu == [1000, 1000]
    with clock.on_cpu(1):
        clock.charge(1)
    assert clock.wall_cycles == 1001


def test_single_core_wall_equals_serial_cycles():
    clock = CycleClock()
    clock.charge(123)
    with clock.on_cpu(0):
        clock.charge(77)
    assert clock.wall_cycles == clock.cycles == 200


def test_negative_charge_still_rejected():
    clock = CycleClock()
    with pytest.raises(ValueError):
        clock.charge(-1)


# --------------------------------------------------------------------------- #
# fleet determinism per core count
# --------------------------------------------------------------------------- #

PARAMS = dict(workload="helloworld", clients=4, requests=2, pool_size=2,
              tenants=2, seed=2025, scale=1.0)

#: same seed + same core count must reproduce these forever; a change
#: here means the cycle model or the commit order moved — deliberate
#: changes must re-pin all three together
#: (last re-pin: the boot-time CFG verifier charges calibrated
#: verify:cfg cycles during stage 2, shifting total_cycles)
PINNED_DIGESTS = {
    1: "ac56b4d36619825613ca95d6b8798cf6a5b3514014efd23af3e42bd699661e84",
    2: "b5c4370350c831ad6ec9ac795b5410edbd48cf02f7346793dc197d922da0ae65",
    4: "b214646e8d839a90c3009b6b798166eb32510827d660194249e7d48a6e5e54ff",
}


@pytest.mark.parametrize("n_cpus", sorted(PINNED_DIGESTS))
def test_pinned_digest_per_core_count(n_cpus):
    report, _ = run_fleet(n_cpus=n_cpus, **PARAMS)
    assert report.digest() == PINNED_DIGESTS[n_cpus]


def test_smp_repeats_are_byte_identical():
    a, _ = run_fleet(n_cpus=4, **PARAMS)
    b, _ = run_fleet(n_cpus=4, **PARAMS)
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()


def test_core_count_changes_the_wall_but_not_the_outputs():
    r1, _ = run_fleet(n_cpus=1, **PARAMS)
    r4, _ = run_fleet(n_cpus=4, **PARAMS)
    # the same sessions complete with the same results...
    assert r1.outcomes == r4.outcomes
    assert r1.requests_served == r4.requests_served
    # ...but the wall clock contracts and the digests differ (core
    # placement is part of the report)
    assert r4.serve_wall_cycles < r1.serve_wall_cycles
    assert r1.digest() != r4.digest()


# --------------------------------------------------------------------------- #
# scaling behaviour
# --------------------------------------------------------------------------- #

SCALE_PARAMS = dict(workload="helloworld", clients=8, requests=4,
                    pool_size=8, tenants=8, seed=5, scale=1.0)


def test_sessions_spread_across_all_cores():
    report, _ = run_fleet(n_cpus=4, **SCALE_PARAMS)
    cores = sorted({s["core"] for s in report.sessions})
    assert cores == [0, 1, 2, 3]
    # least-loaded placement balances 8 sessions as 2 per core
    per_core = [sum(1 for s in report.sessions if s["core"] == c)
                for c in cores]
    assert per_core == [2, 2, 2, 2]


def test_four_cores_triple_single_core_throughput():
    r1, _ = run_fleet(n_cpus=1, **SCALE_PARAMS)
    r4, _ = run_fleet(n_cpus=4, **SCALE_PARAMS)
    speedup = r1.serve_wall_cycles / r4.serve_wall_cycles
    assert speedup >= 3.0
    assert r4.requests_per_wall_kcycle >= 3.0 * r1.requests_per_wall_kcycle


def test_core_busy_cycles_reported_and_balanced():
    report, _ = run_fleet(n_cpus=4, **SCALE_PARAMS)
    busy = report.core_busy_cycles
    assert len(busy) == 4 and all(b > 0 for b in busy)
    # serve wall can't be smaller than the busiest core's work
    assert report.serve_wall_cycles >= max(busy)
    # balanced load: no core does more than 2x the least-loaded one
    assert max(busy) <= 2 * min(busy)


def test_single_core_run_matches_legacy_serial_accounting():
    report, _ = run_fleet(n_cpus=1, **PARAMS)
    assert report.n_cpus == 1
    assert report.serve_wall_cycles == report.serve_cycles
