"""Instruction set of the simulated CPU, with real byte encodings.

Erebor's verified boot "only performs byte-level scanning of the executable
sections" to ensure the kernel contains no *sensitive* instructions
(Table 2 of the paper: CR writes, ``wrmsr``, ``stac``, ``lidt``,
``tdcall``). To make that verification step real rather than symbolic, this
module defines a compact fixed-width ISA in which every instruction encodes
to 12 bytes and sensitive instructions carry a distinctive two-byte prefix
(``0xF0`` + sub-opcode) that the scanner searches for at *every byte
offset* — exactly the check the paper's monitor performs.

The ISA is deliberately small: enough to express the monitor's entry/exit
gates, interrupt gates, syscall stubs, and attacker code snippets, all of
which execute instruction-by-instruction on :class:`repro.hw.cpu.Cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import InvalidOpcode, SimulatorError

INSTR_SIZE = 12

#: Prefix byte marking a sensitive (privilege-critical) instruction.
SENSITIVE_PREFIX = 0xF0

REGISTERS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
REG_INDEX = {name: i for i, name in enumerate(REGISTERS)}

# Non-sensitive opcodes (first byte).
OPCODES = {
    "nop": 0x01, "hlt": 0x02, "mov": 0x03, "movi": 0x04,
    "load": 0x05, "store": 0x06, "push": 0x07, "pop": 0x08,
    "add": 0x10, "sub": 0x11, "and": 0x12, "or": 0x13, "xor": 0x14,
    "shl": 0x15, "shr": 0x16, "addi": 0x17, "cmp": 0x18, "cmpi": 0x19,
    "mul": 0x1A, "div": 0x1B,
    "jmp": 0x20, "jz": 0x21, "jnz": 0x22,
    "call": 0x23, "icall": 0x24, "ijmp": 0x25, "ret": 0x26, "endbr": 0x27,
    "syscall": 0x30, "sysret": 0x31, "iret": 0x32, "int": 0x33,
    "cpuid": 0x34, "rdmsr": 0x35, "clac": 0x36, "senduipi": 0x37,
    "fence": 0x38, "rdcr": 0x39,
    # gs-relative per-CPU accesses: dst <- [gs_base+imm] / [gs_base+imm] <- src
    "gsload": 0x3A, "gsstore": 0x3B,
}

# Sensitive sub-opcodes (second byte, after SENSITIVE_PREFIX). These are the
# Table 2 instructions the monitor must exclusively own.
SENSITIVE_OPS = {
    "mov_cr": 0x01,   # write control register (CR0/3/4)
    "wrmsr": 0x02,    # write model-specific register (rcx=msr, rax=value)
    "stac": 0x03,     # set EFLAGS.AC, suspending SMAP
    "lidt": 0x04,     # load interrupt descriptor table register
    "tdcall": 0x05,   # TDX module call (GHCI)
}

OPCODE_NAMES = {v: k for k, v in OPCODES.items()}
SENSITIVE_NAMES = {v: k for k, v in SENSITIVE_OPS.items()}
SENSITIVE_SUBOPS = frozenset(SENSITIVE_OPS.values())


@dataclass(frozen=True)
class Instr:
    """One decoded instruction.

    ``dst``/``src`` are register names (or a CR number for ``mov_cr``);
    ``imm`` is a 64-bit immediate whose meaning depends on the mnemonic
    (address, displacement, jump target, vector number, ...).
    """

    op: str
    dst: str | int | None = None
    src: str | None = None
    imm: int = 0

    def encode(self) -> bytes:
        if self.op in SENSITIVE_OPS:
            b0, b1 = SENSITIVE_PREFIX, SENSITIVE_OPS[self.op]
        elif self.op in OPCODES:
            b0, b1 = OPCODES[self.op], 0
        else:
            raise SimulatorError(f"unknown mnemonic {self.op!r}")
        b2 = _operand_byte(self.dst)
        b3 = _operand_byte(self.src)
        imm = self.imm & (2 ** 64 - 1)
        return bytes([b0, b1, b2, b3]) + imm.to_bytes(8, "little")

    @property
    def is_sensitive(self) -> bool:
        return self.op in SENSITIVE_OPS


def _operand_byte(operand: str | int | None) -> int:
    if operand is None:
        return 0xFF
    if isinstance(operand, int):
        if not 0 <= operand < 0xFF:
            raise SimulatorError(f"operand {operand} out of range")
        return operand
    return REG_INDEX[operand]


def _operand_from_byte(b: int, *, as_reg: bool = True) -> str | int | None:
    if b == 0xFF:
        return None
    if as_reg and b < len(REGISTERS):
        return REGISTERS[b]
    return b


def decode(blob: bytes, offset: int = 0) -> Instr:
    """Decode one instruction at ``offset`` within ``blob``."""
    raw = blob[offset:offset + INSTR_SIZE]
    if len(raw) < INSTR_SIZE:
        raise InvalidOpcode(f"truncated instruction at {offset:#x}")
    b0, b1, b2, b3 = raw[0], raw[1], raw[2], raw[3]
    imm = int.from_bytes(raw[4:12], "little")
    if b0 == SENSITIVE_PREFIX:
        name = SENSITIVE_NAMES.get(b1)
        if name is None:
            raise InvalidOpcode(f"bad sensitive sub-opcode {b1:#x}")
        if name == "mov_cr":
            return Instr(name, dst=b2, src=_operand_from_byte(b3), imm=imm)
        return Instr(name, dst=_operand_from_byte(b2), src=_operand_from_byte(b3), imm=imm)
    name = OPCODE_NAMES.get(b0)
    if name is None:
        raise InvalidOpcode(f"bad opcode {b0:#x}")
    if name == "rdcr":
        return Instr(name, dst=_operand_from_byte(b2), src=None, imm=b3 if b3 != 0xFF else 0)
    return Instr(name, dst=_operand_from_byte(b2), src=_operand_from_byte(b3), imm=imm)


#: Content-addressed decode memo. ``Instr`` is frozen, so one decoded
#: instruction can safely back every site that executes the same 12 bytes
#: — no invalidation needed: a changed byte is a different key. Bounded
#: so adversarial byte churn cannot grow host memory without limit.
_DECODE_CACHE: dict[bytes, Instr] = {}
_DECODE_CACHE_MAX = 65536


def decode_cached(raw: bytes) -> Instr:
    """Decode one aligned 12-byte encoding through the content memo.

    Exactly equivalent to ``decode(raw)`` (including the
    :class:`InvalidOpcode` raises — failures are never cached); only the
    host-side re-decode work is skipped.
    """
    hit = _DECODE_CACHE.get(raw)
    if hit is None:
        hit = decode(raw)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[raw] = hit
    return hit


def assemble(instrs: list[Instr], *, forbid_sensitive_bytes: bool = False) -> bytes:
    """Assemble a program to bytes.

    With ``forbid_sensitive_bytes`` the assembler additionally rejects any
    *accidental* sensitive byte sequence (e.g. an immediate containing
    ``0xF0`` followed by a valid sub-opcode) — the same property the boot
    scanner enforces, applied at build time by the instrumentation pass.
    """
    blob = b"".join(i.encode() for i in instrs)
    if forbid_sensitive_bytes:
        hits = scan_for_sensitive(blob, skip_aligned=True)
        if hits:
            off, name = hits[0]
            raise SimulatorError(
                f"accidental sensitive byte sequence ({name}) at offset {off:#x}"
            )
    return blob


def scan_for_sensitive(blob: bytes, *, skip_aligned: bool = False) -> list[tuple[int, str]]:
    """Byte-level scan for sensitive instruction sequences (boot verifier).

    Checks every byte offset for ``SENSITIVE_PREFIX`` followed by a valid
    sensitive sub-opcode. With ``skip_aligned`` the scan ignores hits at
    instruction-aligned offsets (used by the assembler, which knows those
    are the intentional encodings it just emitted).

    The scan skips between prefix bytes with ``bytes.find`` so the common
    no-hit path runs at C speed instead of one Python iteration per byte;
    the cycle-cost model in ``verify_code`` is unchanged — the simulated
    monitor still pays per byte scanned, only the host gets faster.
    """
    hits = []
    prefix = bytes([SENSITIVE_PREFIX])
    limit = len(blob) - 1
    off = blob.find(prefix)
    while 0 <= off < limit:
        if blob[off + 1] in SENSITIVE_SUBOPS and \
                not (skip_aligned and off % INSTR_SIZE == 0):
            hits.append((off, SENSITIVE_NAMES[blob[off + 1]]))
        off = blob.find(prefix, off + 1)
    return hits


def disassemble(blob: bytes) -> list[Instr]:
    """Decode a whole aligned program (test/debug helper)."""
    if len(blob) % INSTR_SIZE:
        raise InvalidOpcode("code blob not a multiple of instruction size")
    return [decode(blob, off) for off in range(0, len(blob), INSTR_SIZE)]


# Convenience constructors so gate/attack code reads like assembly.
def I(op: str, dst=None, src=None, imm: int = 0) -> Instr:  # noqa: E743 - asm-style name
    return Instr(op, dst=dst, src=src, imm=imm)
