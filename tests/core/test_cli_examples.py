"""CLI entry-point tests + example smoke runs (importable mains)."""

import sys
from pathlib import Path

import pytest

from repro.bench.__main__ import EXPERIMENTS, main

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
sys.path.insert(0, str(EXAMPLES_DIR))


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_cli_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["tablex"])


def test_cli_table3_table4(capsys):
    assert main(["table3", "table4"]) == 0
    out = capsys.readouterr().out
    assert "1224" in out and "128081" in out


def test_cli_fig8_quick(capsys):
    assert main(["fig8", "--iterations", "20"]) == 0
    out = capsys.readouterr().out
    assert "pagefault" in out


@pytest.mark.parametrize("module_name", [
    "quickstart", "attack_demos", "warm_start_pool", "paravisor_deployment",
])
def test_example_mains_run(module_name):
    module = __import__(module_name)
    module.main()   # each example asserts its own invariants


def test_example_private_retrieval_runs():
    module = __import__("private_retrieval")
    module.main()
