"""C8: software exceptions from a locked sandbox kill it (div/#UD)."""

import pytest

from repro.core import SandboxViolation, erebor_boot
from repro.hw.errors import DivideError
from repro.hw.isa import I
from repro.libos import LibOs, Manifest, build_user_program, load_program, run_program
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def libos():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    return LibOs.boot_sandboxed(system, Manifest(name="p", heap_bytes=1 * MIB),
                                confined_budget=8 * MIB)


def divider(divisor: int):
    return build_user_program([
        I("movi", "rax", imm=100),
        I("movi", "rbx", imm=divisor),
        I("div", "rax", "rbx"),
        I("hlt"),
    ], data=b"\x00" * 8)


def test_div_works(libos):
    program = load_program(libos, divider(5))
    run_program(libos, program)
    # rax restored by the runner; verify via a memory-writing variant
    prog2 = build_user_program([
        I("movi", "rax", imm=100),
        I("movi", "rbx", imm=5),
        I("div", "rax", "rbx"),
        I("movi", "rcx", imm=0x0200_0000 + 4096),
        I("store", "rcx", "rax"),
        I("hlt"),
    ], data=b"\x00" * 8192)
    from repro.libos.loader import PROG_CODE_VA
    prog2.sections[0].va = PROG_CODE_VA + 0x10000
    prog2.entry = PROG_CODE_VA + 0x10000
    prog2.sections[1].va = 0x0200_0000 + 4096
    loaded = load_program(libos, prog2)
    run_program(libos, loaded)
    fn = libos.sandbox.task.aspace.mapped_frame(0x0200_0000 + 4096)
    value = int.from_bytes(libos.kernel.phys.read(fn * 4096, 8), "little")
    assert value == 20


def test_divide_by_zero_before_lock_is_just_a_fault(libos):
    program = load_program(libos, divider(0))
    with pytest.raises(DivideError):
        run_program(libos, program)
    assert not libos.sandbox.dead


def test_divide_by_zero_after_lock_kills_sandbox(libos):
    program = load_program(libos, divider(0))
    libos.sandbox.install_input(b"secret")
    with pytest.raises(SandboxViolation):
        run_program(libos, program)
    assert libos.sandbox.dead
    assert "software exception" in libos.sandbox.kill_reason


def test_mul_instruction(libos):
    program = build_user_program([
        I("movi", "rax", imm=6),
        I("movi", "rbx", imm=7),
        I("mul", "rax", "rbx"),
        I("movi", "rcx", imm=0x0200_0000),
        I("store", "rcx", "rax"),
        I("hlt"),
    ], data=b"\x00" * 64)
    loaded = load_program(libos, program)
    run_program(libos, loaded)
    fn = libos.sandbox.task.aspace.mapped_frame(0x0200_0000)
    assert int.from_bytes(libos.kernel.phys.read(fn * 4096, 8),
                          "little") == 42
