"""Seed and extend ``BENCH_history.jsonl`` — the perf-trajectory log.

Two modes:

* ``python benchmarks/seed_history.py`` (no flags) — **seed**: convert
  the committed ``BENCH_*.json`` artifacts into provenance records (one
  per artifact, simulated fields only) and append one full plane-ledger
  record for the cheap ``fleet-smoke`` bench (min-of-3 host timing).
  Idempotent per bench name: re-seeding skips names already present.
* ``python benchmarks/seed_history.py --bench fleet-smoke --append`` —
  **append**: re-run the named bench (min-of-3) and append a fresh
  record. The ``perf-gate`` CI job does this on every push, then runs
  ``python -m repro.obs gate`` so the newest record is compared against
  its committed predecessor: any simulated drift (cycles, plane totals,
  digest) fails the build; host-second regressions past the threshold
  warn (``--warn-only``) because CI machines are noisy and heterogeneous.

Host timing here is deliberate and lives outside ``src/repro`` — the
D1 wall-clock lint does not govern benchmarks.
"""

import argparse
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.fleet import run_fleet                      # noqa: E402
from repro.obs.ledger import (                         # noqa: E402
    append_history,
    history_entry,
    load_history,
)

HISTORY = _ROOT / "BENCH_history.jsonl"

#: timing rounds per arm; each bench keeps its fastest round
ROUNDS = 3

#: the cheap deterministic fleet the perf gate replays on every push
#: (the SMP-pinned helloworld fleet on 2 cores)
BENCHES = {
    "fleet-smoke": dict(workload="helloworld", clients=4, requests=2,
                        pool_size=2, tenants=2, seed=2025, scale=1.0,
                        n_cpus=2),
}


def run_bench(name: str) -> dict:
    """Min-of-N run of one named bench; returns its history entry."""
    params = BENCHES[name]
    best = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        report, system = run_fleet(**params)
        host = time.perf_counter() - t0
        if best is None or host < best[2]:
            best = (report, system, host)
    report, system, host = best
    return history_entry(
        name, report.ledger, digest=report.digest(),
        host_seconds={"total": host},
        meta={k: v for k, v in params.items()
              if isinstance(v, (int, float, str))})


def seed_from_artifacts() -> list[dict]:
    """Provenance records from the committed ``BENCH_*.json`` artifacts.

    These carry whatever simulated evidence the artifact pinned (cycles,
    digests) with no plane breakdown — they anchor the trajectory's
    starting point; the gate only ever compares same-name pairs, so a
    lone provenance record never produces a verdict by itself.
    """
    entries = []

    path = _ROOT / "BENCH_sim_speed.json"
    if path.exists():
        payload = json.loads(path.read_text())
        micro, fleet = payload["cpu_bound"], payload["fleet"]
        entries.append({
            "bench": "artifact:sim-speed-micro",
            "cycles": micro["cycles"], "wall_cycles": micro["cycles"],
            "planes": {}, "digest": "",
            "host_seconds": {"cache_off": micro["host_seconds_off"],
                             "cache_on": micro["host_seconds_on"]},
            "meta": {"source": "BENCH_sim_speed.json",
                     "speedup": micro["speedup"]},
        })
        entries.append({
            "bench": "artifact:sim-speed-fleet",
            "cycles": fleet["total_cycles"],
            "wall_cycles": fleet["serve_wall_cycles"],
            "planes": {}, "digest": fleet["digest"],
            "host_seconds": {"cache_off": fleet["host_seconds_off"],
                             "cache_on": fleet["host_seconds_on"]},
            "meta": {"source": "BENCH_sim_speed.json",
                     "speedup": fleet["speedup"]},
        })

    path = _ROOT / "BENCH_obs_overhead.json"
    if path.exists():
        payload = json.loads(path.read_text())
        on = payload.get("obs_on", {})
        if on:
            entries.append({
                "bench": "artifact:obs-overhead",
                "cycles": on.get("total_cycles", 0),
                "wall_cycles": on.get("serve_wall_cycles", 0),
                "planes": {}, "digest": on.get("digest", ""),
                "host_seconds": {"total": on.get("host_seconds", 0.0)},
                "meta": {"source": "BENCH_obs_overhead.json"},
            })

    path = _ROOT / "BENCH_certs.json"
    if path.exists():
        payload = json.loads(path.read_text())
        entries.append({
            "bench": "artifact:certs",
            "cycles": 0, "wall_cycles": 0,
            "planes": {}, "digest": payload.get("digest_on", ""),
            "host_seconds": {
                "certs_off": payload.get("host_seconds_off", 0.0),
                "certs_on": payload.get("host_seconds_on", 0.0)},
            "meta": {"source": "BENCH_certs.json",
                     "certs_issued": payload.get("certs_issued", 0)},
        })

    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default=None, choices=sorted(BENCHES),
                        help="bench to run (with --append)")
    parser.add_argument("--append", action="store_true",
                        help="run the bench and append a fresh record "
                             "(skip artifact seeding)")
    parser.add_argument("--history", default=str(HISTORY),
                        help="history file (default: BENCH_history.jsonl)")
    args = parser.parse_args(argv)
    history_path = Path(args.history)

    if args.append:
        if not args.bench:
            parser.error("--append requires --bench")
        entry = run_bench(args.bench)
        append_history(history_path, entry)
        print(f"appended {args.bench}: cycles={entry['cycles']:,} "
              f"wall={entry['wall_cycles']:,} "
              f"host={entry['host_seconds']['total']:.3f}s "
              f"-> {history_path}")
        return 0

    existing = {e.get("bench") for e in load_history(history_path)} \
        if history_path.exists() else set()
    appended = 0
    for entry in seed_from_artifacts():
        if entry["bench"] in existing:
            continue
        append_history(history_path, entry)
        appended += 1
    for name in sorted(BENCHES):
        if name in existing:
            continue
        entry = run_bench(name)
        append_history(history_path, entry)
        appended += 1
    print(f"seeded {appended} record(s) -> {history_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
