"""``python -m repro.certs`` — the client-side certificate toolbox.

Runs offline: no simulator, no fleet, no booted CVM — just the
certificate files and (optionally) the fleet-published golden values.

Examples::

    # verify one certificate / a whole batch directory
    python -m repro.certs verify cert-client-0.json
    python -m repro.certs verify --dir certs/ --published certs/published.json

    # bind verification to the session you think you ran
    python -m repro.certs verify cert.json --expect-trace 9fee1a42cafe0dd1

    # the adversarial matrix: every tamper variant must be rejected
    # with its own localized error
    python -m repro.certs check-tamper --dir certs/

    # write the tampered corpus out for inspection
    python -m repro.certs tamper cert.json --out-dir tampered/

    # human summary of one certificate's claims
    python -m repro.certs show cert.json

Exit codes: 0 = verified / matrix clean, 1 = a certificate failed (or a
tampered one slipped through), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import REFS_FORMAT, CertificateError, load_certificate, \
    serialize_certificate
from .tamper import TAMPERS, tamper_certificate
from .verify import CertificateVerifier


def _load_refs(path: str | None) -> dict | None:
    if path is None:
        return None
    with open(path) as fh:
        refs = json.load(fh)
    if refs.get("format") != REFS_FORMAT:
        raise CertificateError("format",
                               f"{path} is not a {REFS_FORMAT!r} file")
    return refs


def _cert_paths(args, parser) -> list[Path]:
    paths = [Path(p) for p in args.certs]
    if args.dir:
        batch = sorted(Path(args.dir).glob("cert-*.json"))
        if not batch:
            parser.error(f"no cert-*.json files in {args.dir}")
        paths.extend(batch)
        if args.published is None:
            candidate = Path(args.dir) / "published.json"
            if candidate.exists():
                args.published = str(candidate)
    if not paths:
        parser.error("give certificate paths and/or --dir")
    return paths


def _cmd_verify(args, parser) -> int:
    paths = _cert_paths(args, parser)   # may auto-set args.published
    verifier = CertificateVerifier(refs=_load_refs(args.published))
    failures = 0
    for path in paths:
        try:
            cert = load_certificate(path)
        except (OSError, ValueError, CertificateError) as exc:
            print(f"FAIL {path}: unreadable: {exc}")
            failures += 1
            continue
        result = verifier.verify(cert, expect_trace=args.expect_trace)
        if result.ok:
            print(f"OK   {path} session={result.session} "
                  f"checks=[{','.join(result.checks)}]")
        else:
            print(f"FAIL {path} session={result.session} "
                  f"[{result.code}] {result.detail}")
            failures += 1
    return 1 if failures else 0


def _cmd_show(args, parser) -> int:
    cert = load_certificate(args.cert)
    body = cert.get("body", {})
    session = body.get("session", {})
    print(f"certificate  {args.cert}")
    print(f"  format     {cert.get('format')}")
    print(f"  session    {session.get('name')} "
          f"(tenant {session.get('tenant')}, {session.get('outcome')}, "
          f"{session.get('served')} request(s), "
          f"sandbox #{session.get('sandbox_id')})")
    print(f"  workload   {session.get('workload')} "
          f"seed {session.get('fleet_seed')}")
    print(f"  body hash  {cert.get('body_sha256')}")
    platform = body.get("platform", {})
    print(f"  mrtd       {str(platform.get('mrtd'))[:32]}...")
    for index, value in sorted(platform.get("rtmrs", {}).items()):
        shown = f"{value[:32]}..." if value else "(reset)"
        print(f"  rtmr[{index}]    {shown}")
    kernel = body.get("kernel", {})
    print(f"  kernel     CFG digest {str(kernel.get('verifier_digest'))[:32]}"
          f"... ({kernel.get('instructions')} instrs, "
          f"{kernel.get('gate_sites')} gate sites)")
    audit = body.get("audit", {})
    print(f"  audit      seq {audit.get('seq_start')}..{audit.get('seq_end')}"
          f" ({audit.get('events')} events) head "
          f"{str(audit.get('committed_head'))[:32]}...")
    trace = body.get("trace", {})
    print(f"  trace      {trace.get('trace_id')} "
          f"({trace.get('events')} nodes, "
          f"complete={trace.get('complete')})")
    print(f"  scrub      {str(body.get('scrub', {}).get('digest'))[:32]}...")
    return 0


def _cmd_tamper(args, parser) -> int:
    cert = load_certificate(args.cert)
    donor = load_certificate(args.donor) if args.donor else None
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = 0
    for variant, (expected, _, needs_donor) in sorted(TAMPERS.items()):
        if needs_donor and donor is None:
            print(f"skip {variant}: needs --donor", file=sys.stderr)
            continue
        tampered = tamper_certificate(cert, variant, donor)
        path = out_dir / f"tampered-{variant}.json"
        path.write_text(serialize_certificate(tampered))
        print(f"{variant}: expected [{expected}] -> {path}")
        written += 1
    return 0 if written else 2


def _cmd_check_tamper(args, parser) -> int:
    """The adversarial matrix: certs × variants, 100% rejection required.

    Each variant must fail with exactly its expected code — a tampered
    certificate that verifies, or that fails with a *different* code, is
    a verifier bug and fails the run.
    """
    paths = _cert_paths(args, parser)   # may auto-set args.published
    verifier = CertificateVerifier(refs=_load_refs(args.published))
    certs = [(p, load_certificate(p)) for p in paths]
    bad = 0
    tried = 0
    for i, (path, cert) in enumerate(certs):
        donor = certs[(i + 1) % len(certs)][1] if len(certs) > 1 else None
        for variant, (expected, _, needs_donor) in sorted(TAMPERS.items()):
            if needs_donor and donor is None:
                continue
            tried += 1
            result = verifier.verify(tamper_certificate(cert, variant,
                                                        donor))
            if result.ok:
                print(f"BUG  {path} x {variant}: tampered certificate "
                      "VERIFIED")
                bad += 1
            elif result.code != expected:
                print(f"BUG  {path} x {variant}: failed with "
                      f"[{result.code}], expected [{expected}]")
                bad += 1
            elif args.verbose:
                print(f"ok   {path} x {variant}: rejected "
                      f"[{result.code}] {result.detail}")
    print(f"tamper matrix: {tried - bad}/{tried} correctly rejected"
          + ("" if not bad else f" ({bad} BUGS)"))
    return 1 if bad or not tried else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.certs",
        description="Verify Erebor execution certificates offline.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_verify = sub.add_parser("verify", help="verify certificates")
    p_verify.add_argument("certs", nargs="*", help="certificate files")
    p_verify.add_argument("--dir", default=None,
                          help="verify every cert-*.json in a directory "
                               "(auto-loads its published.json)")
    p_verify.add_argument("--published", default=None,
                          help="published golden values (published.json)")
    p_verify.add_argument("--expect-trace", default=None, metavar="ID",
                          help="require the certificate to attest this "
                               "trace ID")
    p_verify.set_defaults(fn=_cmd_verify)

    p_show = sub.add_parser("show", help="print one certificate's claims")
    p_show.add_argument("cert")
    p_show.set_defaults(fn=_cmd_show)

    p_tamper = sub.add_parser(
        "tamper", help="write the tampered corpus for one certificate")
    p_tamper.add_argument("cert")
    p_tamper.add_argument("--donor", default=None,
                          help="second certificate (for replayed-quote)")
    p_tamper.add_argument("--out-dir", default="tampered")
    p_tamper.set_defaults(fn=_cmd_tamper)

    p_check = sub.add_parser(
        "check-tamper",
        help="assert every tamper variant is rejected with its own code")
    p_check.add_argument("certs", nargs="*")
    p_check.add_argument("--dir", default=None)
    p_check.add_argument("--published", default=None)
    p_check.add_argument("--verbose", "-v", action="store_true")
    p_check.set_defaults(fn=_cmd_check_tamper)

    args = parser.parse_args(argv)
    try:
        return args.fn(args, parser)
    except CertificateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
