"""EMC — the Erebor-Monitor-Call ABI.

An EMC is the only way the deprivileged kernel can request a sensitive
instruction. Call numbers ride in ``rdi``, arguments in ``rsi``/``rdx``/
``r8``; the kernel enters through the monitor's entry gate (the single
``endbr``-bearing address in monitor code) and returns through the exit
gate. This module holds only the ABI constants so both the kernel-side
instrumentation pass and the monitor's dispatcher agree without importing
each other.
"""

from __future__ import annotations

from enum import IntEnum

#: Fixed, published load address of the monitor (the instrumentation pass
#: targets the entry gate at this address).
MONITOR_BASE_VA = 0x70_0000_0000
ENTRY_GATE_VA = MONITOR_BASE_VA
#: per-CPU secure stack tops live in the monitor data area
MONITOR_DATA_VA = 0x70_4000_0000
MONITOR_STACK_TOP = 0x70_8000_0000


class EmcCall(IntEnum):
    """EMC service numbers."""

    WRITE_PTE = 1       # rsi=aspace handle, rdx=va, r8=pte
    WRITE_CR = 2        # rsi=crn, rdx=value
    WRITE_MSR = 3       # rsi=msr, rdx=value
    LOAD_IDT = 4        # rsi=idt descriptor va
    SET_IDT_VECTOR = 5  # rsi=vector, rdx=handler
    SMAP_USER_COPY = 6  # rsi=direction, rdx=nbytes
    GHCI = 7            # rsi..=tdcall leaf arguments
    VERIFY_CODE = 8     # rsi=blob va, rdx=len (modules/eBPF/text_poke)
    DECLARE_SANDBOX_MEMORY = 9
    SANDBOX_CHANNEL = 10
    NOP = 0             # empty call (Table 3 microbenchmark)
