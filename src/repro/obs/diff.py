"""Differential run comparator: where did two runs stop agreeing?

``python -m repro.obs diff A B`` compares two obs bundles (or two
``{name: digest}`` maps) and emits a deterministic, schema-checked
divergence report that localizes every delta to **plane → span →
tenant**:

* **plane deltas** — the budget ledger's plane totals, machine-wide and
  per lane (:mod:`repro.obs.ledger`); any non-zero simulated delta is a
  divergence;
* **span deltas** — the folded causal profile's per-path self-cycles,
  so a plane-level delta can be chased to the call path that moved;
* **tenant deltas** — per-tenant counters from the metrics snapshot,
  so a fleet-level delta can be pinned on the client that behaved
  differently;
* **digest comparison** — serve/audit/cfg digests, plus a **first
  divergent audit seq**: the index of the first audit-chain record on
  which the two runs' tamper-evident logs disagree (the earliest
  causally-ordered point of divergence the monitor can attest to).

The determinism rule mirrors the repo's digest discipline: the same two
inputs always produce the byte-identical report (all orderings are
sorted: deltas by ``|delta|`` descending then name; ``json.dumps``
callers use ``sort_keys=True``). Two same-seed runs must compare clean —
``divergent: false`` with every simulated section empty — which is what
the ``perf-gate`` CI job asserts on every push.

Host-plane quantities (seconds, TLB hit rates, superblock coverage)
appear in the report but never flip ``divergent``: they are noise-gated
by :func:`gate_history` thresholds instead.
"""

from __future__ import annotations

import json

#: report schema version
DIFF_VERSION = 1

#: default relative host-seconds regression threshold for the gate
HOST_REGRESSION_THRESHOLD = 0.25


# --------------------------------------------------------------------------- #
# primitive delta builders (all deterministic: sorted |delta| desc, then name)
# --------------------------------------------------------------------------- #

def _delta_map(a: dict, b: dict) -> list[dict]:
    """Per-key deltas of two numeric maps, largest |delta| first."""
    deltas = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key, 0), b.get(key, 0)
        if va != vb:
            deltas.append({"name": key, "a": va, "b": vb, "delta": vb - va})
    deltas.sort(key=lambda d: (-abs(d["delta"]), d["name"]))
    return deltas


def _collapsed_map(collapsed: list) -> dict:
    """Fold ``"path;to;span 123"`` lines into ``{path: cycles}``."""
    out: dict[str, int] = {}
    for line in collapsed or ():
        path, _, cycles = line.rpartition(" ")
        if path:
            out[path] = out.get(path, 0) + int(cycles)
    return out


def _tenant_counters(metrics: dict) -> dict:
    """Flatten per-tenant counters to ``{"counter{labels}": value}``."""
    out: dict[str, float] = {}
    for name, series in (metrics or {}).get("counters", {}).items():
        for labels, value in series.items():
            if "tenant=" in labels:
                out[f"{name}{{{labels}}}"] = value
    return out


def _audit_events(trace: dict) -> list:
    """The audit-chain records of a bundle's trace, in seq order."""
    return [e for e in (trace or {}).get("events", ())
            if e.get("kind") == "AUDIT" or e.get("cat") == "audit"]


def first_divergent_audit_seq(trace_a: dict, trace_b: dict):
    """Seq of the first audit record the two runs disagree on, or None.

    Audit seq is position in the chain (the monitor numbers from 0), so
    the index of the first differing record *is* the divergent seq. A
    pure length difference diverges at the shorter chain's end.
    """
    ev_a, ev_b = _audit_events(trace_a), _audit_events(trace_b)
    for seq, (ea, eb) in enumerate(zip(ev_a, ev_b)):
        if (ea.get("name"), ea.get("begin"), ea.get("args")) != \
                (eb.get("name"), eb.get("begin"), eb.get("args")):
            return seq
    if len(ev_a) != len(ev_b):
        return min(len(ev_a), len(ev_b))
    return None


# --------------------------------------------------------------------------- #
# the comparators
# --------------------------------------------------------------------------- #

def diff_digest_maps(a: dict, b: dict, *, label_a: str = "A",
                     label_b: str = "B") -> dict:
    """Compare two ``{name: digest}`` maps (e.g. trace-tree digest maps).

    Any mismatched or one-sided entry is a divergence.
    """
    mismatches = []
    for name in sorted(set(a) | set(b)):
        da, db = a.get(name, ""), b.get(name, "")
        if da != db:
            mismatches.append({"name": name, "a": da, "b": db})
    return {
        "version": DIFF_VERSION,
        "mode": "digest-map",
        "inputs": {"a": label_a, "b": label_b},
        "divergent": bool(mismatches),
        "digest_mismatches": mismatches,
        "compared": len(set(a) | set(b)),
    }


def diff_bundles(a: dict, b: dict, *, label_a: str = "A",
                 label_b: str = "B") -> dict:
    """Compare two obs bundles; returns the divergence report dict.

    Simulated divergence (what flips ``divergent``): any cycle-count
    delta (total, wall, per-lane, per-plane, per-span, per-tenant
    simulated counters) or any digest/audit-head mismatch. Host-plane
    fields ride along informationally.
    """
    meta_a, meta_b = a.get("meta", {}), b.get("meta", {})
    led_a, led_b = a.get("ledger", {}), b.get("ledger", {})

    simulated = _delta_map(
        {k: meta_a.get(k, 0) for k in ("cycles", "wall_cycles")},
        {k: meta_b.get(k, 0) for k in ("cycles", "wall_cycles")})
    lanes_a = {f"lane:{name}": sum(lane.get("tags", {}).values())
               for name, lane in led_a.get("lanes", {}).items()}
    lanes_b = {f"lane:{name}": sum(lane.get("tags", {}).values())
               for name, lane in led_b.get("lanes", {}).items()}
    simulated += _delta_map(lanes_a, lanes_b)

    plane_deltas = _delta_map(led_a.get("planes", {}),
                              led_b.get("planes", {}))
    span_deltas = _delta_map(
        _collapsed_map(a.get("profile", {}).get("collapsed")),
        _collapsed_map(b.get("profile", {}).get("collapsed")))
    tenant_deltas = _delta_map(_tenant_counters(a.get("metrics")),
                               _tenant_counters(b.get("metrics")))

    digests = []
    for key in ("audit_head", "cfg_report_digest",
                "dataflow_report_digest"):
        da, db = meta_a.get(key, ""), meta_b.get(key, "")
        if da != db:
            digests.append({"name": key, "a": da, "b": db})
    audit_seq = None
    if any(d["name"] == "audit_head" for d in digests):
        audit_seq = first_divergent_audit_seq(a.get("trace", {}),
                                              b.get("trace", {}))

    divergent = bool(simulated or plane_deltas or span_deltas
                     or tenant_deltas or digests)
    return {
        "version": DIFF_VERSION,
        "mode": "bundle",
        "inputs": {"a": label_a, "b": label_b,
                   "workload": meta_a.get("workload", ""),
                   "setting": meta_a.get("setting", "")},
        "divergent": divergent,
        "simulated_deltas": simulated,
        "plane_deltas": plane_deltas,
        "span_deltas": span_deltas,
        "tenant_deltas": tenant_deltas,
        "digest_mismatches": digests,
        "first_divergent_audit_seq": audit_seq,
        # host-plane comparison: informational, never flips `divergent`
        "host": {
            "seconds": {"a": meta_a.get("seconds", 0.0),
                        "b": meta_b.get("seconds", 0.0)},
            "translation": {"a": led_a.get("translation", {}),
                            "b": led_b.get("translation", {})},
        },
    }


def _is_digest_map(payload: dict) -> bool:
    return (bool(payload) and "meta" not in payload
            and all(isinstance(v, str) for v in payload.values()))


def diff_any(a: dict, b: dict, *, label_a: str = "A",
             label_b: str = "B") -> dict:
    """Dispatch by shape: obs bundles vs plain digest maps."""
    if _is_digest_map(a) and _is_digest_map(b):
        return diff_digest_maps(a, b, label_a=label_a, label_b=label_b)
    return diff_bundles(a, b, label_a=label_a, label_b=label_b)


def render_report(report: dict, *, limit: int = 10) -> str:
    """Human-readable summary of a divergence report (CLI stderr)."""
    lines = []
    verdict = "DIVERGENT" if report.get("divergent") else "identical"
    lines.append(f"obs diff [{report.get('mode')}] "
                 f"{report['inputs'].get('a')} vs "
                 f"{report['inputs'].get('b')}: {verdict}")
    for section in ("simulated_deltas", "plane_deltas", "span_deltas",
                    "tenant_deltas"):
        deltas = report.get(section, [])
        if deltas:
            lines.append(f"  {section.replace('_', ' ')} "
                         f"({len(deltas)}):")
            for d in deltas[:limit]:
                lines.append(f"    {d['name']}: {d['a']} -> {d['b']} "
                             f"({d['delta']:+d})" if isinstance(
                                 d['delta'], int) else
                             f"    {d['name']}: {d['a']} -> {d['b']}")
            if len(deltas) > limit:
                lines.append(f"    ... {len(deltas) - limit} more")
    for d in report.get("digest_mismatches", []):
        lines.append(f"  digest {d['name']}: {d['a'][:16]}... != "
                     f"{d['b'][:16]}...")
    seq = report.get("first_divergent_audit_seq")
    if seq is not None:
        lines.append(f"  first divergent audit seq: {seq}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# perf-trajectory gate
# --------------------------------------------------------------------------- #

def gate_history(history: list[dict], *, bench: str | None = None,
                 threshold: float = HOST_REGRESSION_THRESHOLD) -> dict:
    """Noise-aware regression gate over ``BENCH_history.jsonl`` records.

    For each bench name, compares the newest record against its
    predecessor:

    * **simulated drift** — any change in ``cycles``, ``wall_cycles``,
      any plane total, or the pinned digest — is a hard **failure**
      (the simulator is deterministic; drift means behaviour changed);
    * **host regression** — a plane's host seconds growing more than
      ``threshold`` (relative) — is a **warning** (host timing is
      noisy; min-of-N sampling bounds but does not remove the noise).

    Returns ``{"ok", "failures": [...], "warnings": [...],
    "checked": [bench...]}``; ``ok`` is False iff there are failures.
    """
    by_bench: dict[str, list[dict]] = {}
    for entry in history:
        name = entry.get("bench", "")
        if bench is not None and name != bench:
            continue
        by_bench.setdefault(name, []).append(entry)

    failures: list[str] = []
    warnings: list[str] = []
    checked: list[str] = []
    for name in sorted(by_bench):
        entries = by_bench[name]
        if len(entries) < 2:
            continue
        prev, cur = entries[-2], entries[-1]
        checked.append(name)
        for key in ("cycles", "wall_cycles"):
            if prev.get(key, 0) != cur.get(key, 0):
                failures.append(
                    f"{name}: simulated {key} drifted "
                    f"{prev.get(key, 0)} -> {cur.get(key, 0)}")
        for d in _delta_map(prev.get("planes", {}), cur.get("planes", {})):
            failures.append(f"{name}: plane {d['name']} drifted "
                            f"{d['a']} -> {d['b']}")
        if prev.get("digest", "") != cur.get("digest", ""):
            failures.append(f"{name}: digest drifted "
                            f"{prev.get('digest', '')[:16]}... -> "
                            f"{cur.get('digest', '')[:16]}...")
        host_prev = prev.get("host_seconds", {})
        host_cur = cur.get("host_seconds", {})
        for plane in sorted(set(host_prev) | set(host_cur)):
            was, now = host_prev.get(plane, 0.0), host_cur.get(plane, 0.0)
            if was > 0 and now > was * (1 + threshold):
                warnings.append(
                    f"{name}: host seconds for {plane} regressed "
                    f"{was:.4f}s -> {now:.4f}s "
                    f"(+{(now / was - 1) * 100:.1f}% > "
                    f"{threshold * 100:.0f}%)")
    return {"ok": not failures, "failures": failures,
            "warnings": warnings, "checked": checked}


def gate_report(report: dict) -> dict:
    """Gate verdict for one diff report: simulated divergence fails."""
    failures = []
    if report.get("mode") == "digest-map":
        for d in report.get("digest_mismatches", []):
            failures.append(f"digest {d['name']} differs")
    else:
        for d in report.get("simulated_deltas", []):
            failures.append(f"simulated {d['name']} differs by "
                            f"{d['delta']:+d}")
        for d in report.get("plane_deltas", []):
            failures.append(f"plane {d['name']} differs by {d['delta']:+d}")
        for d in report.get("digest_mismatches", []):
            failures.append(f"digest {d['name']} differs")
    return {"ok": not failures, "failures": failures}


def dumps_report(report: dict) -> str:
    """Canonical JSON form of a report (sorted keys, stable bytes)."""
    return json.dumps(report, sort_keys=True, indent=1)
