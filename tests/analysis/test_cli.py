"""The python -m repro.analysis CLI."""

import json
from pathlib import Path

from repro.analysis.__main__ import main

REPRO_SRC = str(Path(__file__).resolve().parents[2] / "src" / "repro")


def test_verify_default_kernel_is_clean(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "V7" in out


def test_verify_self_check_writes_artifact(tmp_path, capsys):
    artifact = tmp_path / "report.json"
    assert main(["verify", "--self-check", "--json", str(artifact)]) == 0
    payload = json.loads(artifact.read_text())
    assert payload["kernel"]["ok"] is True
    names = {a["name"] for a in payload["attacks"]}
    assert "rogue-gate-icall" in names
    assert all(a["rejected_as_expected"] for a in payload["attacks"])
    assert all(a["byte_scan_as_expected"] for a in payload["attacks"])


def test_verify_rejects_attack_image_file(tmp_path, capsys):
    from repro.analysis.attacks import rogue_gate_icall
    path = tmp_path / "evil.self"
    path.write_bytes(rogue_gate_icall().image.serialize())
    assert main(["verify", "--image", str(path)]) == 1
    assert "REJECTED" in capsys.readouterr().out


def test_lint_tree_exits_zero(capsys):
    assert main(["lint", REPRO_SRC]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "repro" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "D1" in out


def test_update_ratchet_roundtrip(tmp_path, capsys):
    tree = tmp_path / "repro" / "legacy.py"
    tree.parent.mkdir()
    tree.write_text("try:\n    x = 1\nexcept Exception:\n    pass\n")
    ratchet = tmp_path / "ratchet.json"
    assert main(["lint", str(tree), "--ratchet", str(ratchet),
                 "--update-ratchet"]) == 0
    entries = json.loads(ratchet.read_text())
    assert entries == {"D4|repro/legacy.py": 1}
    # under the freshly written ratchet the same tree is clean
    assert main(["lint", str(tree), "--ratchet", str(ratchet)]) == 0


def test_report_bundle(tmp_path):
    out = tmp_path / "bundle.json"
    assert main(["report", REPRO_SRC, "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["kernel"]["ok"] is True
    assert payload["lint"]["kept"] == []
    assert payload["attacks"]


def test_dataflow_default_kernel_is_proven(capsys):
    assert main(["dataflow"]) == 0
    out = capsys.readouterr().out
    assert "PROVEN" in out and "budget:" in out


def test_dataflow_self_check_writes_artifact(tmp_path, capsys):
    artifact = tmp_path / "dataflow.json"
    assert main(["dataflow", "--self-check", "--json",
                 str(artifact)]) == 0
    payload = json.loads(artifact.read_text())
    assert payload["kernel"]["ok"]
    assert len(payload["attacks"]) == 3
    assert all(a["rejected_as_expected"] and a["passes_v0_v7"]
               for a in payload["attacks"])


def test_dataflow_rejects_attack_image_file(tmp_path, capsys):
    from repro.analysis.attacks import tainted_gate_argument
    path = tmp_path / "attack.self"
    path.write_bytes(tainted_gate_argument().image.serialize())
    assert main(["dataflow", "--image", str(path)]) == 1
    assert "V8" in capsys.readouterr().out
