#!/usr/bin/env python3
"""Private information retrieval over a shared medical database (§3.1).

A DrugBank-style service: the database is public-ish (common, read-only,
shared across sandboxes) but each client's *query stream* reveals their
medical situation and must stay private. This example sends a sensitive
query set, gets real answers from the in-memory index, and shows the
query names never appear in anything the provider-controlled stack saw.

Run:  python examples/private_retrieval.py
"""

from repro import CvmMachine, MachineConfig, MIB, erebor_boot
from repro.apps import LibOsRuntime, workload
from repro.client import RemoteClient
from repro.core import SecureChannel, UntrustedProxy, published_measurement
from repro.libos import LibOs


def main() -> None:
    machine = CvmMachine(MachineConfig(memory_bytes=768 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    retrieval = workload("drugbank", scale=0.02)

    libos = LibOs.boot_sandboxed(system, retrieval.manifest(),
                                 confined_budget=12 * MIB)
    runtime = LibOsRuntime(libos)
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)

    # a query stream that would tell the provider about the patient
    queries = ",".join([
        "drug-00017", "drug-00233", "drug-01024",   # an HIV regimen, say
        "drug-03999", "drug-00001",
    ]).encode()
    client.request(proxy, channel, queries)
    request = runtime.recv_input()
    retrieval.serve(runtime, request)
    answer = client.fetch_result(proxy, channel)

    hits = answer.split(b";", 1)[0].decode()
    print(f"retrieval result: {hits}")
    for line in answer.split(b";", 1)[1].split(b"&")[:3]:
        print(f"  record: {line.decode()}")

    host = machine.vmm.observed_blob()
    for name in (b"drug-00017", b"drug-01024"):
        assert name not in host, "host learned a queried drug!"
        assert not proxy.log.saw(name), "proxy learned a queried drug!"
    # and the padded response hides even the number of hits: probe two
    # very different result sizes through the real output path
    libos.sandbox.push_output(b"Y")
    tiny = channel.fetch_response()
    libos.sandbox.push_output(b"N" * 700)
    big = channel.fetch_response()
    assert len(tiny) == len(big)
    print(f"responses padded to fixed buckets: 1B and 700B answers both "
          f"ship as {len(tiny)} ciphertext bytes")
    print("query privacy preserved. OK")


if __name__ == "__main__":
    main()
