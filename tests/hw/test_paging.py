"""Unit tests for the three-level page tables."""

import pytest

from repro.hw.errors import SimulatorError
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.paging import (
    PTE_NX,
    PTE_P,
    PTE_U,
    PTE_W,
    AddressSpace,
    make_pte,
    pte_frame,
    pte_pkey,
    va_indices,
)


@pytest.fixture
def phys():
    return PhysicalMemory(256 * 1024 * 1024)


@pytest.fixture
def aspace(phys):
    return AddressSpace(phys, "test")


def test_va_indices_split():
    va = (3 << 30) | (5 << 21) | (7 << 12) | 0x123
    assert va_indices(va) == (3, 5, 7)


def test_va_out_of_range():
    with pytest.raises(SimulatorError):
        va_indices(1 << 39)


def test_pte_compose_extract():
    pte = make_pte(0x1234, PTE_P | PTE_W, pkey=9)
    assert pte_frame(pte) == 0x1234
    assert pte_pkey(pte) == 9
    assert pte & PTE_P and pte & PTE_W


def test_pkey_range_checked():
    with pytest.raises(SimulatorError):
        make_pte(1, PTE_P, pkey=16)


def test_map_translate_roundtrip(phys, aspace):
    fn = phys.alloc_frame("data")
    aspace.map_page(0x40_0000, fn, PTE_P | PTE_W | PTE_U)
    hit = aspace.translate(0x40_0123)
    assert hit is not None
    pa, pte = hit
    assert pa == (fn << 12) | 0x123
    assert pte & PTE_U


def test_translate_unmapped_returns_none(aspace):
    assert aspace.translate(0x123_4000) is None


def test_clear_pte(phys, aspace):
    fn = phys.alloc_frame("data")
    aspace.map_page(0x40_0000, fn, PTE_P)
    aspace.clear_pte(0x40_0000)
    assert aspace.translate(0x40_0000) is None


def test_interior_tables_created_once(phys, aspace):
    before = len(aspace.table_frames)
    aspace.map_page(0x40_0000, phys.alloc_frame("d"), PTE_P)
    mid = len(aspace.table_frames)
    aspace.map_page(0x40_1000, phys.alloc_frame("d"), PTE_P)  # same leaf table
    assert len(aspace.table_frames) == mid
    assert mid == before + 2  # one L1 + one L0 table


def test_table_frames_flagged_as_page_tables(phys, aspace):
    aspace.map_page(0x40_0000, phys.alloc_frame("d"), PTE_P)
    for fn in aspace.table_frames:
        assert phys.frame(fn).is_page_table


def test_distant_vas_use_distinct_leaf_tables(phys, aspace):
    aspace.map_page(0x40_0000, phys.alloc_frame("d"), PTE_P)
    n = len(aspace.table_frames)
    aspace.map_page(8 << 30, phys.alloc_frame("d"), PTE_P)  # different L2 slot
    assert len(aspace.table_frames) == n + 2


def test_leaf_slot_physical_location_is_real(phys, aspace):
    fn = phys.alloc_frame("d")
    slot = aspace.map_page(0x40_0000, fn, PTE_P | PTE_W)
    # overwrite the PTE through raw physical memory: the mapping must change
    phys.write_u64(slot.pa, make_pte(fn, PTE_P))  # drop W bit
    _, pte = aspace.translate(0x40_0000)
    assert not pte & PTE_W


def test_mapped_ranges_enumerates(phys, aspace):
    fns = [phys.alloc_frame("d") for _ in range(3)]
    for i, fn in enumerate(fns):
        aspace.map_page(0x40_0000 + i * PAGE_SIZE, fn, PTE_P | PTE_NX)
    ranges = aspace.mapped_ranges()
    assert len(ranges) == 3
    assert [va for va, _ in ranges] == [0x40_0000, 0x40_1000, 0x40_2000]
