"""Table 3 — privilege-transition round-trip costs.

Regenerates: empty EMC vs syscall vs tdcall (TD guest hypercall) vs
vmcall (plain-guest hypercall), in simulated CPU cycles, with the ratios
the paper prints. The EMC number is *measured* by executing the Fig. 5
gate code instruction-by-instruction on the micro CPU.
"""

import pytest

from repro.bench.report import format_table
from repro.core.emc import EmcCall
from repro.core.microrig import GateRig
from repro.hw.cycles import Cost
from repro.tdx.module import VMCALL_HLT
from repro.vm import CvmMachine, MachineConfig, MIB

PAPER = {"EMC": 1224, "SYSCALL": 684, "TDCALL": 5276, "VMCALL": 4031}


def measure_emc() -> int:
    return GateRig().run_emc(int(EmcCall.NOP))


def measure_syscall() -> int:
    machine = CvmMachine(MachineConfig(memory_bytes=128 * MIB))
    kernel = machine.boot_native_kernel()
    task = kernel.spawn("t")
    # isolate the raw transition: total syscall minus dispatch/handler work
    before = machine.clock.cycles
    kernel.syscall(task, "getpid")
    total = machine.clock.cycles - before
    return total - machine.clock.by_tag["syscall_work"]  # strip handler body


def measure_tdcall() -> int:
    machine = CvmMachine(MachineConfig(memory_bytes=128 * MIB))
    before = machine.clock.cycles
    machine.tdx.guest_vmcall(VMCALL_HLT)
    return machine.clock.cycles - before


def measure_vmcall() -> int:
    machine = CvmMachine(MachineConfig(memory_bytes=128 * MIB, td=False))
    before = machine.clock.cycles
    machine.vmm.plain_vmcall()
    return machine.clock.cycles - before


MEASURES = {
    "EMC": measure_emc,
    "SYSCALL": measure_syscall,
    "TDCALL": measure_tdcall,
    "VMCALL": measure_vmcall,
}


@pytest.mark.parametrize("name", list(MEASURES))
def test_transition_cost(benchmark, name):
    cycles = benchmark.pedantic(MEASURES[name], rounds=3, iterations=1)
    assert cycles == PAPER[name], f"{name}: {cycles} != paper {PAPER[name]}"


def test_print_table3(benchmark):
    def build():
        emc = measure_emc()
        rows = []
        for name, fn in MEASURES.items():
            cycles = fn()
            rows.append([name, cycles, f"{cycles / emc:.2f}x",
                         PAPER[name], f"{PAPER[name] / PAPER['EMC']:.2f}x"])
        return format_table(
            "Table 3: privilege-transition round trips (CPU cycles)",
            ["call", "cycles", "vs EMC", "paper", "paper vs EMC"], rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + table)
    assert "EMC" in table
