"""Program loader: SELF images into confined memory, runnable on the CPU.

The service provider ships its program as a SELF image (the same format
the kernel uses). The LibOS loader places executable sections in
*confined* frames mapped execute-only and data sections in confined
read-write memory — the paper's §6.1 memory-typing applied to program
text — and the program can then genuinely execute, instruction by
instruction, in user mode inside the sandbox's address space, subject to
every hardware check (SMAP keeps the kernel out, missing UINTR tables
#GP ``senduipi``, W^X blocks self-modification).

This is the micro-level complement to the macro workloads: small enough
programs run *for real*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..hw.isa import Instr, assemble
from ..hw.memory import PAGE_SIZE, pages_for
from ..hw.mmu import USER_MODE
from ..kernel.image import SEC_EXEC, SEC_WRITE, Section, SelfImage
from ..kernel.process import PROT_EXEC, PROT_READ, PROT_WRITE, PinnedBacking

if TYPE_CHECKING:
    from .libos import LibOs

#: default layout for loaded sandbox programs
PROG_CODE_VA = 0x0100_0000
PROG_DATA_VA = 0x0200_0000
PROG_STACK_TOP = 0x02F0_0000
PROG_STACK_PAGES = 4


class LoaderError(Exception):
    """Malformed image or layout conflict."""


@dataclass
class LoadedProgram:
    """A program resident in confined memory, ready to run."""

    image_name: str
    entry: int
    stack_top: int
    sections: dict[str, int]   # name -> va


def build_user_program(instrs: list[Instr], *, name: str = "prog",
                       data: bytes = b"") -> SelfImage:
    """Package a user program from ISA instructions (test/demo helper)."""
    sections = [Section(".text", PROG_CODE_VA, assemble(instrs), SEC_EXEC)]
    if data:
        sections.append(Section(".data", PROG_DATA_VA, data, SEC_WRITE))
    return SelfImage(name, PROG_CODE_VA, sections)


def load_program(libos: "LibOs", image: SelfImage) -> LoadedProgram:
    """Map a SELF image into the sandbox's confined memory.

    Code sections become execute-only user mappings (W^X); writable
    sections and the stack become no-execute read-write mappings. All
    frames come from the monitor's confined pool and obey the
    single-mapping policy.
    """
    sandbox = libos.sandbox
    if sandbox is None:
        raise LoaderError("program loading requires a sandboxed LibOS")
    if sandbox.locked:
        raise LoaderError("programs must load before client data arrives")
    kernel = libos.kernel
    monitor = sandbox.monitor
    sections: dict[str, int] = {}

    for section in image.sections:
        pages = max(pages_for(len(section.data)), 1)
        frames = monitor.take_cma_frames(pages,
                                         f"sandbox:{sandbox.sandbox_id}")
        monitor.vmmu.declare_confined(sandbox.sandbox_id, frames)
        sandbox.confined_frames.extend(frames)
        sandbox.confined_bytes += pages * PAGE_SIZE
        # place the bytes before mapping (loader-privileged write)
        offset = 0
        for fn in frames:
            chunk = section.data[offset:offset + PAGE_SIZE]
            if chunk:
                monitor.phys.write(fn << 12, chunk)
            offset += PAGE_SIZE
        if section.executable:
            prot = PROT_READ | PROT_EXEC
        elif section.writable:
            prot = PROT_READ | PROT_WRITE
        else:
            prot = PROT_READ
        vma = kernel.mmap(sandbox.task, pages * PAGE_SIZE, prot,
                          backing=PinnedBacking(frames), kind="confined",
                          fixed_va=section.va)
        sandbox.confined_vmas.append(vma)
        kernel.touch_pages(sandbox.task, vma.start, pages * PAGE_SIZE)
        sections[section.name] = section.va

    # the stack (shared by all programs loaded into this sandbox)
    existing_stack = sandbox.task.find_vma(PROG_STACK_TOP - PAGE_SIZE)
    if existing_stack is not None:
        return LoadedProgram(image.name, image.entry, PROG_STACK_TOP - 64,
                             sections)
    stack_pages = PROG_STACK_PAGES
    frames = monitor.take_cma_frames(stack_pages,
                                     f"sandbox:{sandbox.sandbox_id}")
    monitor.vmmu.declare_confined(sandbox.sandbox_id, frames)
    sandbox.confined_frames.extend(frames)
    sandbox.confined_bytes += stack_pages * PAGE_SIZE
    stack_vma = kernel.mmap(sandbox.task, stack_pages * PAGE_SIZE,
                            PROT_READ | PROT_WRITE,
                            backing=PinnedBacking(frames), kind="confined",
                            fixed_va=PROG_STACK_TOP - stack_pages * PAGE_SIZE)
    sandbox.confined_vmas.append(stack_vma)
    kernel.touch_pages(sandbox.task, stack_vma.start,
                       stack_pages * PAGE_SIZE, write=True)
    return LoadedProgram(image.name, image.entry, PROG_STACK_TOP - 64,
                         sections)


def run_program(libos: "LibOs", program: LoadedProgram, *,
                max_steps: int = 50_000, deliver_faults: bool = False,
                args: dict[str, int] | None = None) -> int:
    """Execute a loaded program in user mode on the simulated CPU.

    The CPU switches to the sandbox's address space (CR3) and runs with
    the machine's armed protections. Returns the number of retired
    instructions; hardware faults propagate to the caller unless
    ``deliver_faults`` routes them through the IDT.

    Exit convention: with syscalls banned in a locked sandbox, a loaded
    program signals completion by executing ``hlt`` — a privileged
    instruction that #GPs from user mode; the runner treats exactly that
    trap as a clean exit (Gramine would intercept an exit syscall; our
    LibOS intercepts the trap).
    """
    from ..core.policy import SandboxViolation
    from ..hw.errors import DivideError, GeneralProtectionFault, InvalidOpcode
    kernel = libos.kernel
    cpu = kernel.cpu
    sandbox = libos.sandbox
    task = sandbox.task
    kernel.current = task
    saved = (cpu.crs[3], cpu.mode, cpu.rip, dict(cpu.regs))
    try:
        cpu.crs[3] = task.aspace.root_fn
        cpu.mode = USER_MODE
        cpu.rip = program.entry
        cpu.regs["rsp"] = program.stack_top
        for reg, value in (args or {}).items():
            cpu.regs[reg] = value
        try:
            return cpu.run(max_steps, deliver_faults=deliver_faults)
        except GeneralProtectionFault as exc:
            if "hlt" in exc.description:
                return max_steps  # clean exit trap
            raise
        except (DivideError, InvalidOpcode) as exc:
            # software exceptions are software-controlled exits (C8):
            # once client data is loaded, they kill the sandbox
            if sandbox.locked:
                kernel.clock.count("sandbox_kill")
                sandbox.kill(f"software exception: {exc}")
                raise SandboxViolation(sandbox.sandbox_id,
                                       f"software exception while locked")
            raise
    finally:
        cpu.crs[3], cpu.mode, cpu.rip, regs_saved = saved
        cpu.regs.update(regs_saved)
