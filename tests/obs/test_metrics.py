"""Metrics registry: labelled series, snapshots, Prometheus exposition."""

import json

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    label_key,
    parse_label_key,
    snapshot_counter_total,
    snapshot_delta,
)


def test_label_key_roundtrip_and_sorting():
    assert label_key({"b": 2, "a": "x"}) == "a=x,b=2"
    assert parse_label_key("a=x,b=2") == {"a": "x", "b": "2"}
    assert label_key({}) == "" and parse_label_key("") == {}


def test_counters_with_labels():
    reg = MetricsRegistry()
    reg.inc("emc_total", cls="mmu", sandbox="1")
    reg.inc("emc_total", 4, cls="mmu", sandbox="1")
    reg.inc("emc_total", cls="cr", sandbox="1")
    reg.inc("emc_total", cls="mmu", sandbox="2")
    assert reg.counter_value("emc_total", cls="mmu", sandbox="1") == 5
    assert reg.counter_total("emc_total", sandbox="1") == 6
    assert reg.counter_total("emc_total", cls="mmu") == 6
    assert reg.counter_total("emc_total") == 7


def test_name_is_usable_as_a_label():
    """Leading params are positional-only, so 'name'/'value' label keys work."""
    reg = MetricsRegistry()
    reg.inc("syscalls_total", name="read")
    reg.observe("latency", 10, name="read")
    assert reg.counter_value("syscalls_total", name="read") == 1


def test_histogram_buckets_and_sum():
    reg = MetricsRegistry()
    reg.describe("lat", "latency", buckets=(10, 100))
    for v in (5, 50, 5000):
        reg.observe("lat", v)
    hist = reg.histograms["lat"][""]
    assert hist["bounds"] == [10, 100]
    assert hist["buckets"] == [1, 1]       # 5000 lands in +Inf only
    assert hist["count"] == 3 and hist["sum"] == 5055


def test_snapshot_is_detached_and_delta_subtracts():
    reg = MetricsRegistry()
    reg.inc("c", 3, k="a")
    reg.set_gauge("g", 7)
    reg.observe("h", 20)
    snap = reg.snapshot()
    reg.inc("c", 2, k="a")
    reg.inc("c", 1, k="b")
    reg.observe("h", 30)
    assert snap["counters"]["c"] == {"k=a": 3}      # unchanged by later incs
    delta = reg.delta_since(snap)
    assert delta["counters"]["c"] == {"k=a": 2, "k=b": 1}
    assert delta["histograms"]["h"][""]["count"] == 1
    assert snapshot_counter_total(delta, "c", k="b") == 1
    # snapshots are plain JSON
    json.dumps(reg.snapshot())
    json.dumps(delta)


def test_snapshot_delta_drops_empty_series():
    reg = MetricsRegistry()
    reg.inc("c")
    snap = reg.snapshot()
    delta = snapshot_delta(reg.snapshot(), snap)
    assert delta["counters"] == {} and delta["histograms"] == {}


def test_null_metrics_is_inert():
    before = NULL_METRICS.snapshot()
    NULL_METRICS.inc("x", cls="y")
    NULL_METRICS.observe("h", 1)
    NULL_METRICS.set_gauge("g", 2)
    assert NULL_METRICS.snapshot() == before
    assert before == {"counters": {}, "gauges": {}, "histograms": {}}


def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.describe("emc_total", "EMCs by class")
    reg.inc("emc_total", 5, cls="mmu", sandbox="1")
    reg.set_gauge("confined_bytes", 4096, sandbox="1")
    reg.describe("lat", buckets=(10, 100))
    reg.observe("lat", 50)
    text = prometheus_text(reg)
    assert "# HELP emc_total EMCs by class" in text
    assert "# TYPE emc_total counter" in text
    assert 'emc_total{cls="mmu",sandbox="1"} 5' in text
    assert 'confined_bytes{sandbox="1"} 4096' in text
    # cumulative histogram: le=100 includes the le=10 bucket's count
    assert 'lat_bucket{le="10"} 0' in text
    assert 'lat_bucket{le="100"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 50" in text and "lat_count 1" in text


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.inc("c", what='say "hi"')
    text = prometheus_text(reg)
    assert 'what="say \\"hi\\""' in text


# --------------------------------------------------------------------- #
# write handles (the hot-path fast lane)
# --------------------------------------------------------------------- #

def test_counter_handle_writes_the_same_series_as_inc():
    reg = MetricsRegistry()
    reg.inc("erebor_emc_total", cls="mmu", sandbox="1")
    handle = reg.counter_handle("erebor_emc_total", cls="mmu", sandbox="1")
    handle.inc()
    handle.inc(3)
    assert reg.counter_value("erebor_emc_total",
                             cls="mmu", sandbox="1") == 5


def test_counter_handle_defers_series_creation_until_first_write():
    reg = MetricsRegistry()
    reg.counter_handle("never_written_total", cls="x")
    assert reg.snapshot()["counters"].get("never_written_total", {}) == {}


def test_histogram_handle_matches_observe_exactly():
    via_observe, via_handle = MetricsRegistry(), MetricsRegistry()
    handle = via_handle.histogram_handle("erebor_emc_cycles", cls="mmu")
    for value in (0, 17, 999, 10**7, 5 * 10**9):
        via_observe.observe("erebor_emc_cycles", value, cls="mmu")
        handle.observe(value)
    assert (via_handle.snapshot()["histograms"]
            == via_observe.snapshot()["histograms"])


def test_handle_cache_invalidates_when_registry_changes():
    from repro.obs.metrics import HandleCache
    cache = HandleCache()
    first = MetricsRegistry()
    assert cache.get(first, "k") is None
    handle = cache.put("k", first.counter_handle("c_total"))
    assert cache.get(first, "k") is handle
    # a new registry identity (fresh install) must drop stale handles:
    # writing through them would update series nobody exports anymore
    second = MetricsRegistry()
    assert cache.get(second, "k") is None
    fresh = cache.put("k", second.counter_handle("c_total"))
    fresh.inc()
    assert second.counter_value("c_total") == 1
    assert first.counter_value("c_total") == 0


def test_null_metrics_handles_are_inert():
    handle = NULL_METRICS.counter_handle("c_total", cls="x")
    handle.inc()
    handle.inc(10)
    NULL_METRICS.histogram_handle("h").observe(42)
    assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
