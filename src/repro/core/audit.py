"""Tamper-evident audit chain primitives (pure, simulator-free).

The monitor's audit log is a sha256 hash chain: every
:class:`AuditEvent` commits to its own fields *and* to its
predecessor's digest, from a fixed :data:`AUDIT_GENESIS` root. The
chain gives an untrusted host no room to mutate, reorder, delete, or
tail-truncate an exported log without :func:`verify_audit_chain` (whole
log) or :func:`verify_audit_segment` (a contiguous slice) localizing
the first bad link.

This module deliberately imports nothing from the simulator: the
client-side certificate verifier (:mod:`repro.certs`) re-checks audit
segments *offline* in a process that never loads ``repro.hw`` /
``repro.kernel`` / ``repro.fleet``, so everything here must stay
stdlib-pure. The monitor (:mod:`repro.core.monitor`) re-exports these
names for the in-CVM side.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: the fixed root of every monitor's audit chain (event 0 links to this)
AUDIT_GENESIS = hashlib.sha256(b"erebor-audit-genesis").hexdigest()


def audit_chain_digest(prev: str, seq: int, cycle: int, kind: str,
                       detail: str) -> str:
    """The sha256 link binding one audit event to its predecessor."""
    material = f"{prev}|{seq}|{cycle}|{kind}|{detail}"
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class AuditEvent:
    """One security-relevant monitor decision, for operator forensics.

    Events form a hash chain: ``digest`` commits to the event's own
    fields *and* to ``prev`` (the predecessor's digest, or
    :data:`AUDIT_GENESIS` for event 0), so an untrusted host that can
    read — or tamper with — an exported log cannot mutate, reorder, or
    truncate it without :func:`verify_audit_chain` localizing the break.
    """

    cycle: int
    kind: str            # deny | verify | attest | sandbox | kill | boot
    detail: str
    seq: int = 0         # position in the chain (monotonic, never reused)
    prev: str = ""       # predecessor's digest (AUDIT_GENESIS for seq 0)
    digest: str = ""     # this event's chain link

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "kind": self.kind,
                "detail": self.detail, "seq": self.seq,
                "prev": self.prev, "digest": self.digest}

    @classmethod
    def from_dict(cls, data: dict) -> "AuditEvent":
        return cls(cycle=data["cycle"], kind=data["kind"],
                   detail=data["detail"], seq=data["seq"],
                   prev=data["prev"], digest=data["digest"])

    def __str__(self) -> str:
        return f"[{self.cycle}] {self.kind}: {self.detail}"


@dataclass
class ChainVerdict:
    """Outcome of :func:`verify_audit_chain` / :func:`verify_audit_segment`."""

    ok: bool
    checked: int                   # events verified before stopping
    head: str                      # last good digest seen
    error: str = ""                # mutated | broken-link | bad-head | ...
    first_bad_seq: int | None = None

    def __bool__(self) -> bool:
        return self.ok


def verify_audit_chain(events, head: str | None = None) -> ChainVerdict:
    """Re-derive the hash chain over ``events``; localize the first break.

    ``events`` is any iterable of :class:`AuditEvent` (the monitor's ring,
    or a deserialized export). Because the audit ring drops its *oldest*
    entries, the chain is allowed to start mid-stream: the first event's
    ``prev`` is taken on trust and only its self-digest is checked; every
    later event must recompute exactly and link to its predecessor.
    Passing the independently-published ``head`` digest additionally
    detects tail truncation (a host dropping the newest — most
    incriminating — events).
    """
    prev_digest: str | None = None
    prev_seq: int | None = None
    checked = 0
    for event in events:
        expect_prev = event.prev if prev_digest is None else prev_digest
        if prev_digest is not None and event.prev != prev_digest:
            return ChainVerdict(False, checked, prev_digest,
                                "broken-link", event.seq)
        if prev_seq is not None and event.seq != prev_seq + 1:
            return ChainVerdict(False, checked, prev_digest or "",
                                "reordered", event.seq)
        recomputed = audit_chain_digest(expect_prev, event.seq, event.cycle,
                                        event.kind, event.detail)
        if recomputed != event.digest:
            return ChainVerdict(False, checked, prev_digest or "",
                                "mutated", event.seq)
        prev_digest = event.digest
        prev_seq = event.seq
        checked += 1
    final = prev_digest if prev_digest is not None else AUDIT_GENESIS
    if head is not None and final != head:
        return ChainVerdict(False, checked, final, "truncated",
                            prev_seq + 1 if prev_seq is not None else 0)
    return ChainVerdict(True, checked, final)


def verify_audit_segment(events, expected_head: str, *,
                         expected_prev: str | None = None) -> ChainVerdict:
    """Check one contiguous slice of the chain without replaying the rest.

    A *segment* is what a per-session execution certificate carries: the
    events between two chain positions, plus the ``expected_head`` digest
    the segment commits to (its last link). Verification re-derives every
    link inside the slice, requires the final digest to equal
    ``expected_head`` (a shortened or extended segment reads as
    ``truncated``), and — when ``expected_prev`` is given — anchors the
    *first* event's back-pointer too, so a segment cannot be silently
    spliced onto a different chain position. The returned
    :class:`ChainVerdict` localizes the first bad link exactly as
    :func:`verify_audit_chain` does.
    """
    events = list(events)
    if not events:
        # an empty segment commits to whatever preceded it: nothing
        # happened, so the head must equal the anchor
        ok = expected_prev is None or expected_head == expected_prev
        return ChainVerdict(ok, 0, expected_head,
                            "" if ok else "empty-mismatch")
    if expected_prev is not None and events[0].prev != expected_prev:
        return ChainVerdict(False, 0, "", "bad-anchor", events[0].seq)
    return verify_audit_chain(events, head=expected_head)
