#!/usr/bin/env python3
"""Warm-start sandbox fleet: amortizing initialization over many clients.

The paper (§9.2) notes the 11.5-52.7% initialization overhead is one-time
and "containers can be pre-initialized in real settings (warm-start)".
``repro.fleet`` turns that remark into a subsystem: one sandbox is booted
cold and sealed as a golden template, a warm pool forks it copy-on-write,
and an admission controller streams attested client sessions through the
pool, scrub-verifying every slot between clients. This example drives
that stack end to end and prints the measured amortization — plus proof
that nothing leaks from one client to the next and the host never saw a
plaintext record.

Run:  python examples/warm_start_pool.py
"""

from repro.fleet import PoolConfig, SandboxTemplate, WarmPool, run_fleet
from repro.vm import MIB

CLIENTS = 6
POOL = 2


def main() -> None:
    report, system = run_fleet(workload="helloworld", clients=CLIENTS,
                               requests=1, pool_size=POOL, tenants=2,
                               seed=42, scale=1.0,
                               memory_bytes=512 * MIB, cma_bytes=64 * MIB)

    ms = 2.1e6   # simulated cycles per millisecond at 2.1 GHz
    print(f"cold boot+init: {report.cold_start_cycles / ms:.2f} ms "
          f"(paid once, then sealed as a template)")
    forks = report.fork_start_cycles
    warms = report.warm_start_cycles
    print(f"CoW fork:       {sum(forks) / len(forks) / ms:.4f} ms per slot "
          f"({report.fork_speedup():,.0f}x cheaper, pool of {POOL})")
    print(f"warm reset:     {sum(warms) / len(warms) / ms:.4f} ms per reuse "
          f"({report.warm_speedup():,.0f}x cheaper)")
    for s in report.sessions:
        print(f"  {s['name']} ({s['tenant']}): {s['outcome']} "
              f"via {s['start_kind']} start, "
              f"{s['served']} request(s)")

    # every reused slot passed the C8 scrub-verify scan for the previous
    # client's plaintext (requests, responses, and its session secret)
    assert report.outcomes == {"completed": CLIENTS}
    assert report.scrub_verifications == CLIENTS       # one per release
    print(f"\nscrub-verified reuses: {report.scrub_verifications} "
          f"(no client-keyed bytes survived any reset)")

    # the amortization claims hold, not just print
    assert report.fork_speedup() >= 5
    assert report.warm_speedup() >= 5

    # and the untrusted world never saw a record in the clear: replay the
    # fleet's sessions and check every client secret against the NIC log
    from repro.fleet import LoadGenerator
    secrets = [s.secret for s in
               LoadGenerator(clients=CLIENTS, requests=1, seed=42,
                             tenants=2).sessions()]
    print("host ever saw a record:",
          any(s in system.machine.vmm.observed_blob() for s in secrets))
    assert not any(s in system.machine.vmm.observed_blob() for s in secrets)

    # templates compose: you can also drive the pool by hand
    from repro.apps.base import workload as make_workload
    template = SandboxTemplate.capture(system, make_workload("helloworld",
                                                             seed=7),
                                       name="manual-template")
    pool = WarmPool(system, template, PoolConfig(size=1))
    slot = pool.acquire()
    assert slot is not None and slot.instance.private_bytes == 0
    pool.release(slot)
    print("OK")


if __name__ == "__main__":
    main()
