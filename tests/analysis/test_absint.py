"""Unit tests for the abstract-interpretation engine itself.

Lattice laws, transfer-function monotonicity, fixpoint determinism, and
the proven StaticBudget of the distribution kernel.  The boot-path and
attack-corpus behaviour lives in ``tests/security/test_dataflow_attacks``.
"""

import itertools

import pytest

from repro.analysis.absint import (
    AbsState,
    AbsVal,
    AnalysisContext,
    CLEAN,
    DATAFLOW_CHECKS,
    DataflowVerifier,
    EMC_ARG_REGS,
    STACK_CAP,
    TAINTED,
    UNKNOWN_CLEAN,
    UNKNOWN_TAINTED,
    entry_state,
    transfer_instr,
)
from repro.analysis.verifier import CHECKS
from repro.hw.isa import I, REGISTERS, decode
from repro.kernel.image import build_kernel_image
from repro.kernel.instrument import instrument_image

# a representative spread of lattice points: both taints crossed with
# bottom-ish, concrete, and conflicting constants
SAMPLES = [
    AbsVal(CLEAN, 0),
    AbsVal(CLEAN, 7),
    AbsVal(CLEAN, None),
    AbsVal(TAINTED, 7),
    AbsVal(TAINTED, 9),
    AbsVal(TAINTED, None),
]


def _instr(*args, **kwargs):
    from repro.hw.isa import assemble
    return decode(assemble([I(*args, **kwargs)]), 0)


def _ctx(**kwargs):
    defaults = dict(sensitive_ranges=(), gate_site_vas=frozenset(),
                    has_secrets=False)
    defaults.update(kwargs)
    return AnalysisContext(**defaults)


# --- lattice laws ------------------------------------------------------

@pytest.mark.parametrize("a,b", list(itertools.product(SAMPLES, SAMPLES)))
def test_join_is_commutative(a, b):
    assert a.join(b) == b.join(a)


@pytest.mark.parametrize(
    "a,b,c",
    list(itertools.product(SAMPLES[:4], SAMPLES[:4], SAMPLES[:4])))
def test_join_is_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@pytest.mark.parametrize("a", SAMPLES)
def test_join_is_idempotent(a):
    assert a.join(a) == a


@pytest.mark.parametrize("a,b", list(itertools.product(SAMPLES, SAMPLES)))
def test_join_is_an_upper_bound(a, b):
    j = a.join(b)
    assert a.leq(j) and b.leq(j)


@pytest.mark.parametrize("a,b", list(itertools.product(SAMPLES, SAMPLES)))
def test_leq_agrees_with_join(a, b):
    # a <= b iff join(a, b) == b — the defining property of a
    # join-semilattice order
    assert a.leq(b) == (a.join(b) == b)


def test_join_resolves_constants():
    assert AbsVal(CLEAN, 7).join(AbsVal(CLEAN, 7)).const == 7
    assert AbsVal(CLEAN, 7).join(AbsVal(CLEAN, 9)).const is None
    assert AbsVal(CLEAN, 7).join(AbsVal(TAINTED, 7)).taint == TAINTED


def test_state_join_demands_equal_stack_depth():
    s1 = entry_state()
    s2 = AbsState(s1.regs, (UNKNOWN_CLEAN,))
    assert s1.join(s2) is None          # recorded as a V9 conflict
    assert s1.join(entry_state()) is not None


# --- transfer-function properties --------------------------------------

TRANSFER_INSTRS = [
    _instr("movi", "rax", imm=42),
    _instr("mov", "rbx", "rcx"),
    _instr("add", "rax", "rbx"),
    _instr("xor", "rdx", "rdx"),
    _instr("push", "rsi"),
    _instr("cpuid"),
    _instr("load", "rcx", "rbx", imm=0),
]


@pytest.mark.parametrize("instr", TRANSFER_INSTRS,
                         ids=lambda i: i.op)
def test_transfer_is_monotone(instr):
    ctx = _ctx(has_secrets=True)
    lo = entry_state()
    hi = AbsState(tuple(UNKNOWN_TAINTED for _ in REGISTERS), ())
    assert lo.leq(hi)
    out_lo = transfer_instr(instr, 0x1000, lo, ctx)
    out_hi = transfer_instr(instr, 0x1000, hi, ctx)
    assert out_lo.leq(out_hi), f"{instr.op}: transfer not monotone"


def test_movi_and_self_xor_are_scrubs():
    ctx = _ctx()
    dirty = entry_state().set_reg("rax", UNKNOWN_TAINTED)
    cleaned = transfer_instr(_instr("movi", "rax", imm=5), 0, dirty, ctx)
    assert cleaned.reg("rax") == AbsVal(CLEAN, 5)
    dirty = entry_state().set_reg("rbx", UNKNOWN_TAINTED)
    cleaned = transfer_instr(_instr("xor", "rbx", "rbx"), 0, dirty, ctx)
    assert cleaned.reg("rbx") == AbsVal(CLEAN, 0)


def test_taint_propagates_through_mov_and_arith():
    ctx = _ctx()
    s = entry_state().set_reg("rcx", UNKNOWN_TAINTED)
    s = transfer_instr(_instr("mov", "rsi", "rcx"), 0, s, ctx)
    assert s.reg("rsi").taint == TAINTED
    s = transfer_instr(_instr("add", "rsi", "rax"), 0, s, ctx)
    assert s.reg("rsi").taint == TAINTED


def test_load_taints_from_sensitive_range():
    secret_va = 0x9000_0000
    ctx = _ctx(sensitive_ranges=((secret_va, secret_va + 64),),
               has_secrets=True)
    s = entry_state().set_reg("rbx", AbsVal(CLEAN, secret_va))
    s = transfer_instr(_instr("load", "rcx", "rbx", imm=0), 0, s, ctx)
    assert s.reg("rcx").taint == TAINTED
    # a load from a known-clean address stays clean
    s2 = entry_state().set_reg("rbx", AbsVal(CLEAN, 0x1000))
    s2 = transfer_instr(_instr("load", "rcx", "rbx", imm=0), 0, s2, ctx)
    assert s2.reg("rcx").taint == CLEAN


def test_push_pop_round_trip():
    ctx = _ctx()
    s = entry_state().set_reg("rdi", AbsVal(TAINTED, 3))
    s = transfer_instr(_instr("push", "rdi"), 0, s, ctx)
    assert len(s.stack) == 1
    s = transfer_instr(_instr("pop", "rsi"), 0, s, ctx)
    assert s.reg("rsi") == AbsVal(TAINTED, 3)
    assert s.stack == ()


def test_stack_cap_drops_oldest():
    ctx = _ctx()
    s = entry_state()
    push = _instr("push", "rax")
    for _ in range(STACK_CAP + 5):
        s = transfer_instr(push, 0, s, ctx)
    assert len(s.stack) == STACK_CAP


# --- check namespaces and reporting ------------------------------------

def test_check_ids_are_disjoint_from_v0_v7():
    assert not set(DATAFLOW_CHECKS) & set(CHECKS)
    assert set(DATAFLOW_CHECKS) == {"V8", "V9", "V10"}
    assert set(EMC_ARG_REGS) <= set(REGISTERS)


# --- whole-kernel determinism and budget -------------------------------

@pytest.fixture(scope="module")
def kernel_report():
    image, _ = instrument_image(build_kernel_image())
    return DataflowVerifier().verify_image(image)


def test_distribution_kernel_is_clean(kernel_report):
    assert kernel_report.ok
    assert kernel_report.findings == []
    assert all(row.passed for row in kernel_report.checks)


def test_digest_is_deterministic(kernel_report):
    image, _ = instrument_image(build_kernel_image())
    again = DataflowVerifier().verify_image(image)
    assert again.digest() == kernel_report.digest()
    assert again.as_dict() == kernel_report.as_dict()
    assert len(kernel_report.digest()) == 64


def test_kernel_budget_is_bounded(kernel_report):
    budget = kernel_report.budget
    assert budget.bounded
    assert budget.emc_per_activation is not None \
        and budget.emc_per_activation > 0
    assert budget.exits_per_activation == 0
    assert budget.emc_per_kcycle is not None and budget.emc_per_kcycle > 0


def test_budget_scales_to_request_quota(kernel_report):
    budget = kernel_report.budget
    per_act = budget.emc_per_activation
    assert budget.max_emc_per_request(1) == per_act
    assert budget.max_emc_per_request(1000) == 1000 * per_act
    # activations below one clamp to one full activation
    assert budget.max_emc_per_request(0) == per_act


def test_fixpoint_terminates_quickly(kernel_report):
    # the worklist is monotone over a finite-height lattice; the kernel
    # should converge in a small multiple of its block count
    assert kernel_report.iterations <= 16 * max(1, kernel_report.blocks)
