"""Tests for the SELF image format and the instrumentation pass."""

import pytest

from repro.core.emc import ENTRY_GATE_VA
from repro.hw.isa import I, assemble, disassemble, scan_for_sensitive
from repro.kernel.image import (
    SEC_EXEC,
    SEC_WRITE,
    Section,
    SelfImage,
    build_kernel_image,
    kernel_entry_stubs,
)
from repro.kernel.instrument import instrument_image, instrument_text


def test_image_serialize_roundtrip():
    img = build_kernel_image()
    blob = img.serialize()
    back = SelfImage.deserialize(blob)
    assert back.name == img.name
    assert back.entry == img.entry
    assert [s.name for s in back.sections] == [s.name for s in img.sections]
    assert back.section(".text").data == img.section(".text").data
    assert back.section(".text").executable
    assert back.section(".data").writable


def test_deserialize_rejects_garbage():
    with pytest.raises(ValueError):
        SelfImage.deserialize(b"ELF\x7f not ours")
    with pytest.raises(ValueError):
        SelfImage.deserialize(build_kernel_image().serialize()[:20])


def test_distribution_kernel_contains_all_sensitive_classes():
    ops = {i.op for i in kernel_entry_stubs() if i.is_sensitive}
    assert ops == {"mov_cr", "wrmsr", "stac", "lidt", "tdcall"}


def test_raw_kernel_fails_byte_scan():
    img = build_kernel_image()
    hits = scan_for_sensitive(img.section(".text").data)
    assert len(hits) >= 5


def test_instrumented_kernel_passes_byte_scan():
    img, report = instrument_image(build_kernel_image())
    assert scan_for_sensitive(img.section(".text").data) == []
    assert report.total() == 5
    assert report.replaced == {"mov_cr": 1, "wrmsr": 1, "stac": 1,
                               "lidt": 1, "tdcall": 1}


def test_instrumentation_is_one_for_one_in_original_body():
    original = assemble(kernel_entry_stubs())
    instrumented, report = instrument_text(original, 0x60_0000_0000)
    n_original = len(disassemble(original))
    body = disassemble(instrumented)[:n_original]
    # every non-sensitive instruction survives in place
    for before, after in zip(disassemble(original), body):
        if before.is_sensitive:
            assert after.op == "call"
        else:
            assert after == before


def test_thunks_target_the_entry_gate():
    original = assemble([I("stac"), I("ret")])
    instrumented, _ = instrument_text(original, 0x60_0000_0000)
    instrs = disassemble(instrumented)
    icalls = [i for i in instrs if i.op == "icall"]
    movis = [i for i in instrs if i.op == "movi" and i.dst == "rax"]
    assert icalls, "thunk must indirect-call the gate"
    assert any(i.imm == ENTRY_GATE_VA for i in movis)


def test_non_exec_sections_untouched():
    data = Section(".rodata", 0x1000, bytes([0xF0, 0x05]) * 8, 0)
    img = SelfImage("x", 0, [Section(".text", 0x2000, assemble([I("ret")]), SEC_EXEC),
                             data])
    out, report = instrument_image(img)
    assert out.section(".rodata").data == data.data
    assert report.total() == 0


def test_instrumenting_clean_text_is_identity():
    text = assemble([I("nop"), I("mov", "rax", "rbx"), I("ret")])
    out, report = instrument_text(text, 0x60_0000_0000)
    assert out == text
    assert report.total() == 0
