"""Discipline-linter rules D1–D7 and the ratchet."""

from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_paths, lint_source
from repro.analysis.ratchet import (
    Ratchet,
    apply_ratchet,
    default_ratchet_path,
)

REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(findings):
    return sorted({f.rule for f in findings})


# --------------------------------------------------------------------------- #
# D1: wall-clock / unseeded randomness
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("snippet", [
    "import time\nt = time.time()\n",
    "import time\nt = time.monotonic_ns()\n",
    "import datetime\nd = datetime.datetime.now()\n",
    "from datetime import datetime\nd = datetime.utcnow()\n",
    "import random\nx = random.random()\n",
    "import random\nx = random.randint(0, 9)\n",
    "import random\nr = random.Random()\n",
    "import numpy as np\nr = np.random.default_rng()\n",
])
def test_d1_flags_nondeterminism(snippet):
    assert rules_of(lint_source(snippet, "repro/x.py")) == ["D1"]


@pytest.mark.parametrize("snippet", [
    "import random\nr = random.Random(42)\n",
    "import numpy as np\nr = np.random.default_rng(7)\n",
    "t = clock.seconds\n",
])
def test_d1_allows_seeded_and_simulated_time(snippet):
    assert lint_source(snippet, "repro/x.py") == []


# --------------------------------------------------------------------------- #
# D2: obs plane read-only on the clock
# --------------------------------------------------------------------------- #

def test_d2_flags_clock_spend_in_obs():
    src = "def f(clock):\n    clock.charge(10, 'x')\n    clock.count('e')\n"
    findings = lint_source(src, "repro/obs/exporter.py")
    assert rules_of(findings) == ["D2"]
    assert len(findings) == 2


def test_d2_scoped_to_obs_only():
    src = "def f(clock):\n    clock.charge(10, 'x')\n"
    assert lint_source(src, "repro/core/monitor.py") == []


# --------------------------------------------------------------------------- #
# D3: ordered hash preimages
# --------------------------------------------------------------------------- #

def test_d3_flags_bare_dict_iteration():
    src = ("import hashlib\n"
           "def f(d):\n"
           "    return hashlib.sha256(str(d.items()).encode())\n")
    assert rules_of(lint_source(src, "repro/x.py")) == ["D3"]


def test_d3_allows_sorted_iteration():
    src = ("import hashlib\n"
           "def f(d):\n"
           "    return hashlib.sha256(str(sorted(d.items())).encode())\n")
    assert lint_source(src, "repro/x.py") == []


def test_d3_flags_unsorted_json_dumps():
    src = ("import hashlib, json\n"
           "def f(d):\n"
           "    return hashlib.sha256(json.dumps(d).encode())\n")
    assert rules_of(lint_source(src, "repro/x.py")) == ["D3"]


def test_d3_allows_sort_keys():
    src = ("import hashlib, json\n"
           "def f(d):\n"
           "    return hashlib.sha256("
           "json.dumps(d, sort_keys=True).encode())\n")
    assert lint_source(src, "repro/x.py") == []


# --------------------------------------------------------------------------- #
# D4: blanket except
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("handler", [
    "except:", "except Exception:", "except BaseException:",
    "except (ValueError, Exception):",
])
def test_d4_flags_blanket_excepts(handler):
    src = f"try:\n    x = 1\n{handler}\n    pass\n"
    assert rules_of(lint_source(src, "repro/x.py")) == ["D4"]


def test_d4_allows_specific_excepts():
    src = "try:\n    x = 1\nexcept (ValueError, KeyError):\n    pass\n"
    assert lint_source(src, "repro/x.py") == []


# --------------------------------------------------------------------------- #
# D5: fleet cycle charges must be CPU-attributed
# --------------------------------------------------------------------------- #

def test_d5_flags_unattributed_fleet_charge():
    src = "def f(clock):\n    clock.charge(10, 'x')\n"
    assert rules_of(lint_source(src, "repro/fleet/sched.py")) == ["D5"]


def test_d5_allows_on_cpu_scope():
    src = ("def f(clock):\n"
           "    with clock.on_cpu(0):\n"
           "        clock.charge(10, 'x')\n")
    assert lint_source(src, "repro/fleet/sched.py") == []


def test_d5_allows_serial_section_marker():
    src = "def f(clock):\n    clock.charge(10, 'x')  # serial-section\n"
    assert lint_source(src, "repro/fleet/sched.py") == []


def test_d5_scoped_to_fleet_only():
    src = "def f(clock):\n    clock.charge(10, 'x')\n"
    assert lint_source(src, "repro/core/monitor.py") == []


# --------------------------------------------------------------------------- #
# ratchet
# --------------------------------------------------------------------------- #

def test_ratchet_waives_counted_findings_lowest_lines_first():
    src = ("try:\n    x = 1\nexcept Exception:\n    pass\n"
           "try:\n    y = 2\nexcept Exception:\n    pass\n")
    findings = lint_source(src, "repro/legacy.py")
    assert len(findings) == 2
    ratchet = Ratchet({"D4|repro/legacy.py": 1})
    kept, waived = apply_ratchet(findings, ratchet)
    assert len(kept) == 1 and len(waived) == 1
    assert waived[0].line < kept[0].line


def test_ratchet_never_waives_d1_d2():
    findings = lint_source("import time\nt = time.time()\n", "repro/x.py")
    ratchet = Ratchet({"D1|repro/x.py": 5})
    kept, waived = apply_ratchet(findings, ratchet)
    assert kept and not waived


def test_ratchet_file_with_d1_entries_is_rejected(tmp_path):
    bad = tmp_path / "ratchet.json"
    bad.write_text('{"D1|repro/x.py": 3}')
    with pytest.raises(ValueError):
        Ratchet.load(bad)


def test_shipped_ratchet_has_no_determinism_entries():
    ratchet = Ratchet.load(default_ratchet_path())
    for key in ratchet.entries:
        assert not key.startswith(("D1|", "D2|"))


# --------------------------------------------------------------------------- #
# the tree itself
# --------------------------------------------------------------------------- #

def test_tree_lints_clean_under_shipped_ratchet():
    ratchet = Ratchet.load(default_ratchet_path())
    kept, _ = lint_paths([REPRO_SRC], ratchet=ratchet)
    assert kept == [], "\n".join(str(f) for f in kept)


def test_rule_table_is_complete():
    assert list(RULES) == ["D1", "D2", "D3", "D4", "D5", "D6", "D7"]


# --------------------------------------------------------------------------- #
# D6: the translation cache is a host-speed plane
# --------------------------------------------------------------------------- #

TCACHE_PATH = "src/repro/hw/translate.py"


def test_d6_flags_clock_spender_in_tcache():
    src = "def build(self):\n    self.cpu.clock.charge(3, 'instr')\n"
    findings = lint_source(src, TCACHE_PATH)
    assert any(f.rule == "D6" for f in findings)


def test_d6_flags_cycle_read_in_tcache():
    src = "def fresh(self):\n    return self.cpu.clock.cycles > 0\n"
    findings = lint_source(src, TCACHE_PATH)
    assert any(f.rule == "D6" for f in findings)


def test_d6_ignores_other_modules():
    src = "def step(self):\n    self.clock.charge(1, 'instr')\n"
    findings = lint_source(src, "src/repro/hw/cpu.py")
    assert not any(f.rule == "D6" for f in findings)


def test_d6_shipping_translate_module_is_clean():
    source = Path(TCACHE_PATH).read_text()
    findings = lint_source(source, TCACHE_PATH)
    assert [f for f in findings if f.rule == "D6"] == []


# --------------------------------------------------------------------------- #
# D7: shared scheduler state commits only on the serial path
# --------------------------------------------------------------------------- #

FLEET_PATH = "repro/fleet/scheduler.py"

D7_MUTATION = ("def f(self, core):\n"
               "    with self.clock.on_cpu(core):\n"
               "        self.queue.append(1)\n")


def test_d7_flags_mutation_inside_on_cpu():
    findings = lint_source(D7_MUTATION, FLEET_PATH)
    assert any(f.rule == "D7" for f in findings)


def test_d7_flags_assignment_inside_on_cpu():
    src = ("def f(self, core):\n"
           "    with self.clock.on_cpu(core):\n"
           "        self.counts['admit'] = 1\n")
    assert any(f.rule == "D7" for f in lint_source(src, FLEET_PATH))


def test_d7_commit_path_marker_waives():
    src = ("def f(self, core):\n"
           "    with self.clock.on_cpu(core):\n"
           "        self.queue.append(1)  # commit-path\n")
    assert not any(f.rule == "D7" for f in lint_source(src, FLEET_PATH))


def test_d7_allows_mutation_outside_on_cpu():
    src = "def f(self):\n    self.queue.append(1)\n"
    assert not any(f.rule == "D7" for f in lint_source(src, FLEET_PATH))


def test_d7_allows_non_shared_attributes():
    src = ("def f(self, core):\n"
           "    with self.clock.on_cpu(core):\n"
           "        self.scratch.append(1)\n")
    assert not any(f.rule == "D7" for f in lint_source(src, FLEET_PATH))


def test_d7_scoped_to_fleet_only():
    assert not any(f.rule == "D7" for f in
                   lint_source(D7_MUTATION, "repro/core/monitor.py"))


def test_d7_shipping_fleet_package_is_clean():
    kept, waived = lint_paths([REPRO_SRC / "fleet"], ratchet=None)
    assert [f for f in kept + waived if f.rule == "D7"] == []


# --------------------------------------------------------------------------- #
# ratchet hardening: per-rule-per-file entries, rationales, stable bytes
# --------------------------------------------------------------------------- #

def test_ratchet_entries_are_per_rule_per_file():
    src = ("import hashlib, json\n"
           "def f(d):\n"
           "    try:\n"
           "        return hashlib.sha256(json.dumps(d).encode())\n"
           "    except Exception:\n"
           "        pass\n")
    findings = lint_source(src, "repro/legacy.py")
    ratchet = Ratchet.from_findings(findings)
    assert set(ratchet.entries) == \
        {"D3|repro/legacy.py", "D4|repro/legacy.py"}
    # a D4 allowance never soaks up a D3 finding in the same file
    kept, waived = apply_ratchet(findings,
                                 Ratchet({"D4|repro/legacy.py": 1}))
    assert {f.rule for f in waived} == {"D4"}
    assert {f.rule for f in kept} == {"D3"}


def test_new_finding_in_clean_file_is_kept():
    """The CI property: debt is frozen per (rule, file); a finding in a
    previously-clean file fails the gate even with a fat ratchet."""
    ratchet = Ratchet({"D4|repro/old.py": 99})
    findings = lint_source("try:\n    x = 1\nexcept Exception:\n    pass\n",
                           "repro/new.py")
    kept, waived = apply_ratchet(findings, ratchet)
    assert kept and not waived


def test_ratchet_rationale_round_trip(tmp_path):
    path = tmp_path / "ratchet.json"
    Ratchet({"D4|repro/legacy.py": 2},
            {"D4|repro/legacy.py": "pre-split exception sweep"}).save(path)
    loaded = Ratchet.load(path)
    assert loaded.entries == {"D4|repro/legacy.py": 2}
    assert loaded.rationales == {"D4|repro/legacy.py":
                                 "pre-split exception sweep"}
    # bare-int legacy entries still parse
    path.write_text('{"D4|repro/legacy.py": 2}')
    assert Ratchet.load(path).entries == {"D4|repro/legacy.py": 2}


def test_ratchet_update_carries_rationales():
    findings = lint_source(
        "try:\n    x = 1\nexcept Exception:\n    pass\n", "repro/legacy.py")
    previous = Ratchet({"D4|repro/legacy.py": 5,
                        "D4|repro/gone.py": 1},
                       {"D4|repro/legacy.py": "historical",
                        "D4|repro/gone.py": "stale"})
    updated = Ratchet.from_findings(findings, previous=previous)
    # count re-baselined to reality, rationale kept; paid-off debt drops
    assert updated.entries == {"D4|repro/legacy.py": 1}
    assert updated.rationales == {"D4|repro/legacy.py": "historical"}


def test_ratchet_file_bytes_are_stable(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    Ratchet({"D4|z.py": 1, "D3|a.py": 2}, {"D3|a.py": "why"}).save(a)
    Ratchet({"D3|a.py": 2, "D4|z.py": 1}, {"D3|a.py": "why"}).save(b)
    assert a.read_bytes() == b.read_bytes()
    keys = list(Ratchet.load(a).entries)
    assert keys == sorted(keys)
