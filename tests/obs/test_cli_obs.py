"""The ``python -m repro.obs`` CLI (the CI smoke job runs the same path)."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.schema import check_chrome_trace, check_export


def test_cli_json_export_validates(tmp_path, capsys):
    out = tmp_path / "obs.json"
    rc = main(["--workload", "helloworld", "--scale", "1.0",
               "--export", "json", "--out", str(out)])
    assert rc == 0
    bundle = json.loads(out.read_text())
    check_export(bundle)
    assert bundle["meta"]["workload"] == "helloworld"
    assert bundle["meta"]["setting"] == "erebor"
    assert bundle["profile"]["total_cycles"] == bundle["meta"]["cycles"]
    assert "-> " in capsys.readouterr().err


def test_cli_chrome_export_validates(tmp_path):
    out = tmp_path / "trace.json"
    rc = main(["--workload", "helloworld", "--scale", "1.0",
               "--export", "chrome", "-o", str(out)])
    assert rc == 0
    check_chrome_trace(json.loads(out.read_text()))


def test_cli_list_workloads(capsys):
    assert main(["--list"]) == 0
    names = capsys.readouterr().out.split()
    assert "helloworld" in names and "llama.cpp" in names


def test_cli_rejects_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["--workload", "nope"])


def test_cli_rejects_nonpositive_capacity(capsys):
    with pytest.raises(SystemExit):
        main(["--workload", "helloworld", "--capacity", "0"])
    assert "--capacity must be positive" in capsys.readouterr().err


def test_cli_prometheus_to_stdout(capsys):
    rc = main(["--workload", "helloworld", "--scale", "1.0",
               "--export", "prometheus"])
    assert rc == 0
    assert "# TYPE erebor_emc_total counter" in capsys.readouterr().out
