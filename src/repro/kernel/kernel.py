"""The guest OS kernel (untrusted in Erebor's threat model).

A deliberately small but complete multitasking kernel: demand-paged
virtual memory, a round-robin scheduler driven by APIC timer ticks, a VFS,
a socket stack, and a Linux-flavoured syscall surface. Architecturally it
is written the way the paper's *instrumented* Linux is: every privileged
operation goes through :class:`~repro.kernel.ops.PrivilegedOps`, so the
identical kernel runs both natively (``NativeOps``) and deprivileged under
Erebor (``MonitorOps``), and every user-visible exit (syscall, page fault,
interrupt, #VE) reports through a pluggable :class:`ExitPath`, which is
where Erebor's monitor interposes.

Timing model: tasks "execute" by calling :meth:`advance` (compute cycles)
and the API surfaces (syscalls, page touches); the kernel pumps APIC timer
ticks out of the shared cycle clock, each tick costing the modelled
delivery + handler + (host-emulated) APIC reprogram, and context-switching
when other tasks are runnable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw import regs
from ..hw.cpu import Cpu, Idt
from ..hw.cycles import CPU_FREQ_HZ, Cost, CycleClock
from ..hw.errors import PageFault
from ..hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory, pages_for
from ..hw.mmu import USER_MODE, AccessContext
from ..hw.paging import PTE_NX, PTE_P, PTE_U, PTE_W, AddressSpace, make_pte
from ..obs.metrics import HandleCache, sandbox_label
from ..tdx.module import TdxModule, VMCALL_IO
from .net import NetStack
from .ops import NativeOps, PrivilegedOps
from .process import (
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
    AnonBacking,
    Backing,
    SegmentationFault,
    Task,
    Vma,
)
from .vfs import Vfs

TIMER_VECTOR = 32
VE_VECTOR = 20
PF_VECTOR = 14

DEFAULT_HZ = 1000

#: interned trace-record names for the kernel's hot paths — dispatch
#: runs tens of thousands of times per fleet run and must not mint a
#: fresh f-string per record (name cardinality is a few dozen)
_SYSCALL_SPAN_NAMES: dict[str, str] = {}
_VE_EVENT_NAMES: dict[str, str] = {}


class ExitPath:
    """Hook points on every kernel entry; Erebor's monitor overrides this."""

    def on_syscall(self, task: Task, name: str) -> None:
        """A task performed a syscall."""

    def on_pagefault(self, task: Task, va: int, write: bool) -> None:
        """A task faulted."""

    def on_secure_pagefault(self, task: Task, va: int, write: bool,
                            vma=None) -> bool:
        """Offer the fault to a secure pager first; True if fully handled.

        ``vma`` is the already-resolved VMA for ``va`` (or None if the
        caller did not look it up) so the fault path resolves it once.
        """
        return False

    def on_interrupt(self, task: Task, vector: int) -> None:
        """An external interrupt preempted ``task``."""

    def on_interrupt_return(self, task: Task, vector: int) -> None:
        """The kernel finished handling an interrupt; ``task`` resumes."""

    def on_ve(self, task: Task | None, reason: str = "") -> None:
        """A virtualization exception fired."""

    def on_context_switch(self, prev: Task | None, nxt: Task) -> None:
        """The scheduler is switching tasks (shadow-stack switch point)."""


@dataclass
class KernelConfig:
    hz: int = DEFAULT_HZ
    timeslice_ticks: int = 4


class GuestKernel:
    """One booted guest kernel instance."""

    def __init__(self, phys: PhysicalMemory, clock: CycleClock, cpu: Cpu,
                 tdx: TdxModule | None, *, ops: PrivilegedOps | None = None,
                 config: KernelConfig | None = None):
        self.phys = phys
        self.clock = clock
        self.cpu = cpu
        self.tdx = tdx
        self.ops = ops or NativeOps(clock, cpu, tdx)
        self.config = config or KernelConfig()
        self.exit_path = ExitPath()

        self.vfs = Vfs()
        self.net = NetStack(self)
        self.modules: dict[str, bytes] = {}
        self.bpf_programs: dict[str, bytes] = {}
        #: what the OS fault handler observed: (pid, va-or-None, write).
        #: va is None when the monitor self-paged the fault (the OS learns
        #: nothing — the controlled-channel defense, §6.1 future work)
        self.fault_log: list[tuple[int, int | None, bool]] = []
        self.tasks: dict[int, Task] = {}
        self._next_pid = 1
        self.current: Task | None = None
        self._run_queue: list[int] = []

        self.tick_period = CPU_FREQ_HZ // self.config.hz
        self._next_tick = clock.cycles + self.tick_period
        #: pre-resolved metric write handles for the kernel's hot paths
        #: (ticks, #VE, page faults, syscalls), keyed by label values
        self._metric_handles = HandleCache()
        #: callables invoked on every timer tick (system-activity drivers)
        self.tick_hooks: list = []
        self._ticks_on_current = 0
        self.kernel_aspace = AddressSpace(phys, "kernel")
        cpu.env.aspace_by_root[self.kernel_aspace.root_fn] = self.kernel_aspace
        self.idt: Idt | None = None
        self.booted = False

    # ------------------------------------------------------------------ #
    # boot
    # ------------------------------------------------------------------ #

    def boot(self) -> None:
        """Configure the CPU the way arch init code would."""
        self.ops.write_cr(4, self.cpu.crs[4] | regs.CR4_SMEP | regs.CR4_SMAP
                          | regs.CR4_PKS)
        self.ops.write_msr(regs.IA32_LSTAR, 0x60_0000_1000)
        idt = Idt(base_va=0x60_4000_0000, kernel_stack_top=0x60_8000_0000)
        self.ops.set_idt_vector(idt, TIMER_VECTOR, self._timer_py_handler)
        self.ops.set_idt_vector(idt, PF_VECTOR, self._pf_py_handler)
        self.ops.set_idt_vector(idt, VE_VECTOR, self._ve_py_handler)
        self.ops.load_idt(idt)
        self.idt = idt
        self.booted = True

    # ------------------------------------------------------------------ #
    # tasks and scheduling
    # ------------------------------------------------------------------ #

    def spawn(self, name: str, kind: str = "native") -> Task:
        pid = self._next_pid
        self._next_pid += 1
        aspace = AddressSpace(self.phys, f"task{pid}")
        self.cpu.env.aspace_by_root[aspace.root_fn] = aspace
        task = Task(pid, name, aspace, kind=kind)
        self.tasks[pid] = task
        self._run_queue.append(pid)
        if self.current is None:
            self.current = task
        return task

    def exit_task(self, task: Task, code: int = 0, *, reap: bool = True) -> None:
        task.state = "dead"
        task.exit_code = code
        if task.pid in self._run_queue:
            self._run_queue.remove(task.pid)
        if self.current is task:
            self.current = None
            self._pick_next()
        if reap and task.kind != "sandbox":
            # sandbox memory is scrubbed by the monitor, not the kernel
            self.reap_task(task)

    def reap_task(self, task: Task) -> None:
        """Tear down a dead task's address space and free its memory.

        Anonymous frames return to the allocator; file-backed and shared
        frames stay (page cache / other mappings). Every PTE clear goes
        through the privileged ops path — under Erebor the monitor
        validates the teardown like any other MMU mutation.
        """
        from .process import AnonBacking
        for vma in list(task.vmas):
            for page in range(vma.length >> PAGE_SHIFT):
                va = vma.start + (page << PAGE_SHIFT)
                if task.aspace.get_pte(va) & PTE_P:
                    self.ops.clear_pte(task.aspace, va)
            if isinstance(vma.backing, AnonBacking):
                self.phys.free_frames(list(vma.backing.frames.values()))
                vma.backing.frames.clear()
            task.remove_vma(vma)
        self.clock.count("task_reaped")

    def runnable_tasks(self) -> list[Task]:
        return [self.tasks[pid] for pid in self._run_queue
                if self.tasks[pid].state == "runnable"]

    def _pick_next(self) -> None:
        runnable = self.runnable_tasks()
        if not runnable:
            return
        if self.current in runnable and len(runnable) == 1:
            return
        # rotate
        if self.current is not None and self.current.pid in self._run_queue:
            self._run_queue.remove(self.current.pid)
            self._run_queue.append(self.current.pid)
        nxt = self.runnable_tasks()[0]
        if nxt is not self.current:
            self.clock.charge(Cost.CONTEXT_SWITCH, "sched")
            self.clock.count("context_switch")
            self.exit_path.on_context_switch(self.current, nxt)
            self.ops.write_cr(3, nxt.aspace.root_fn)
            self.current = nxt
        self._ticks_on_current = 0

    # ------------------------------------------------------------------ #
    # time: compute + timer pump
    # ------------------------------------------------------------------ #

    def advance(self, cycles: int, task: Task | None = None) -> None:
        """Model ``cycles`` of user computation by ``task`` (or current)."""
        task = task or self.current
        if task is not None:
            task.utime_cycles += cycles
        self.clock.charge(cycles, "compute")
        self.pump()

    def pump(self) -> None:
        """Fire any timer ticks the clock has run past."""
        while self.clock.cycles >= self._next_tick:
            self._next_tick += self.tick_period
            self._timer_tick()

    def _timer_tick(self) -> None:
        with self.clock.tracer.span("irq:timer", "irq"):
            self._timer_tick_body()
        metrics = self.clock.metrics
        if metrics.enabled:
            ticks = self._metric_handles.get(metrics, "ticks")
            if ticks is None:
                ticks = self._metric_handles.put(
                    "ticks", metrics.counter_handle("kernel_timer_ticks_total"))
            ticks.inc()

    def _timer_tick_body(self) -> None:
        task = self.current
        self.clock.count("timer_interrupt")
        self.clock.charge(Cost.EXC_DELIVERY, "irq")
        if task is not None:
            self.exit_path.on_interrupt(task, TIMER_VECTOR)
        self.clock.charge(Cost.TIMER_HANDLER_BASE, "irq")
        # reprogram the APIC timer: host-emulated MSR -> #VE + GHCI exit
        self._host_emulated_msr_write(regs.IA32_APIC_TIMER, self._next_tick)
        for hook in self.tick_hooks:
            hook()
        self._ticks_on_current += 1
        if self._ticks_on_current >= self.config.timeslice_ticks:
            self._pick_next()
        self.clock.charge(Cost.IRET, "irq")
        if task is not None:
            self.exit_path.on_interrupt_return(task, TIMER_VECTOR)

    def _count_ve(self, reason: str) -> None:
        """Bump ``kernel_ve_total{reason=...}`` through a cached handle."""
        metrics = self.clock.metrics
        if metrics.enabled:
            handle = self._metric_handles.get(metrics, ("ve", reason))
            if handle is None:
                handle = self._metric_handles.put(
                    ("ve", reason),
                    metrics.counter_handle("kernel_ve_total", reason=reason))
            handle.inc()

    def _host_emulated_msr_write(self, msr: int, value: int) -> None:
        """A wrmsr the host must emulate: #VE, then a GHCI exit."""
        self.clock.count("ve")
        self.clock.tracer.event("ve:wrmsr", "ve", msr=msr)
        self._count_ve("wrmsr")
        self.clock.charge(Cost.EXC_DELIVERY + Cost.IRET, "ve")
        self.exit_path.on_ve(self.current, "wrmsr")
        if self.tdx is not None:
            self.ops.vmcall(VMCALL_IO, ("wrmsr", msr))

    # macro py-handlers (installed in the IDT; used when micro code faults)
    def _timer_py_handler(self, cpu, vector, fault) -> None:
        self._timer_tick()

    def _pf_py_handler(self, cpu, vector, fault) -> None:
        if isinstance(fault, PageFault) and self.current is not None:
            self.handle_page_fault(self.current, fault.address, fault.is_write)

    def _ve_py_handler(self, cpu, vector, fault) -> None:
        self.clock.count("ve")
        reason = getattr(fault, "exit_reason", "")
        label = reason or "unknown"
        name = _VE_EVENT_NAMES.get(label)
        if name is None:
            name = _VE_EVENT_NAMES[label] = f"ve:{label}"
        self.clock.tracer.event(name, "ve")
        self._count_ve(label)
        self.exit_path.on_ve(self.current, reason)

    def raise_ve_interposition(self) -> None:
        """Net stack hook: a #VE occurred on the I/O path."""
        self.exit_path.on_ve(self.current, "io")

    def simulate_device_ve(self) -> None:
        """One host-device notification (virtio doorbell) #VE + GHCI exit."""
        self.clock.count("ve")
        self.clock.tracer.event("ve:io", "ve")
        self._count_ve("io")
        self.clock.charge(Cost.EXC_DELIVERY + Cost.IRET, "ve")
        self.exit_path.on_ve(self.current, "io")
        if self.tdx is not None:
            self.ops.vmcall(VMCALL_IO, ("doorbell",))

    # ------------------------------------------------------------------ #
    # virtual memory
    # ------------------------------------------------------------------ #

    def mmap(self, task: Task, length: int, prot: int, *,
             backing: Backing | None = None, kind: str = "anon",
             fixed_va: int | None = None, pkey: int = 0) -> Vma:
        length = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        start = fixed_va if fixed_va is not None else task.mmap_range(length)
        vma = Vma(start, length, prot, backing or AnonBacking(), kind=kind,
                  pkey=pkey)
        task.add_vma(vma)
        self.clock.count("mmap")
        return vma

    def munmap(self, task: Task, vma: Vma) -> None:
        for page in range(vma.length >> PAGE_SHIFT):
            va = vma.start + (page << PAGE_SHIFT)
            if task.aspace.get_pte(va) & PTE_P:
                self.ops.clear_pte(task.aspace, va)
        task.remove_vma(vma)

    def brk(self, task: Task, new_brk: int) -> int:
        if new_brk > task.brk:
            length = new_brk - task.brk
            self.mmap(task, length, PROT_READ | PROT_WRITE,
                      fixed_va=task.brk, kind="heap")
        task.brk = max(task.brk, new_brk)
        return task.brk

    def handle_page_fault(self, task: Task, va: int, write: bool) -> None:
        """The demand-paging slow path."""
        with self.clock.tracer.span("pagefault", "fault"):
            self._handle_page_fault(task, va, write)
        metrics = self.clock.metrics
        if metrics.enabled:
            owner = sandbox_label(task)
            handle = self._metric_handles.get(metrics, ("pf", owner))
            if handle is None:
                handle = self._metric_handles.put(
                    ("pf", owner),
                    metrics.counter_handle("kernel_page_faults_total",
                                           sandbox=owner))
            handle.inc()

    def _handle_page_fault(self, task: Task, va: int, write: bool) -> None:
        self.clock.count("page_fault")
        self.clock.charge(Cost.EXC_DELIVERY, "pagefault")
        vma = task.find_vma(va)
        handled = self.exit_path.on_secure_pagefault(task, va, write, vma)
        if handled:
            # the monitor resolved the fault internally (self-paging): the
            # kernel only learns that *a* fault occurred, not where
            self.fault_log.append((task.pid, None, write))
            self.clock.charge(Cost.IRET, "pagefault")
            return
        # the ordinary path: the OS fault handler sees the address
        self.fault_log.append((task.pid, va, write))
        self.clock.charge(Cost.PF_HANDLER_BASE, "pagefault")
        self.exit_path.on_pagefault(task, va, write)
        if vma is None:
            self.clock.charge(Cost.IRET, "pagefault")
            raise SegmentationFault(f"{task.name}: no VMA for {va:#x}")
        if write and not vma.prot & PROT_WRITE:
            self.clock.charge(Cost.IRET, "pagefault")
            raise SegmentationFault(f"{task.name}: write to read-only {va:#x}")
        page = vma.page_index(va)
        fn = vma.backing.frame_for(page, self.phys, task.owner_tag)
        flags = PTE_P | PTE_U
        if vma.prot & PROT_WRITE:
            flags |= PTE_W
        if not vma.prot & PROT_EXEC:
            flags |= PTE_NX
        page_va = va & ~(PAGE_SIZE - 1)
        self.ops.write_pte(task.aspace, page_va,
                           make_pte(fn, flags, vma.pkey))
        # ancillary MMU updates on the fault path (A/D bits, upper levels)
        self.ops.mmu_housekeeping(2)
        self.clock.charge(Cost.IRET, "pagefault")

    def touch_pages(self, task: Task, va: int, length: int, *,
                    write: bool = False, stride: int = PAGE_SIZE) -> int:
        """Model a task touching memory; returns the number of faults taken.

        Each page access goes through the real MMU permission pipeline in
        user context; not-present pages take the demand-paging path.
        """
        ctx = AccessContext(mode=USER_MODE, cr0=self.cpu.crs[0],
                            cr4=self.cpu.crs[4], pkrs=0)
        faults = 0
        access = "write" if write else "read"
        end = va + length
        page_va = va & ~(PAGE_SIZE - 1)
        mmu = self.cpu.mmu
        clock = self.clock
        aspace = task.aspace
        # Per-page MEM charges are accumulated and flushed before any
        # point that can observe the clock (the fault handler's spans and
        # the final pump), so the cycle value at every observation — and
        # the resulting ledger — is identical to per-page charging.
        pending = 0
        check = mmu.check
        while page_va < end:
            try:
                check(aspace, page_va, access, ctx)
            except PageFault:
                if pending:
                    clock.charge(pending * Cost.MEM, "mem")
                    pending = 0
                self.handle_page_fault(task, page_va, write)
                check(aspace, page_va, access, ctx)
                faults += 1
            pending += 1
            page_va += stride
        if pending:
            clock.charge(pending * Cost.MEM, "mem")
        self.pump()
        return faults

    # ------------------------------------------------------------------ #
    # dynamic kernel code: modules, eBPF, text_poke (§5.2/§7)
    # ------------------------------------------------------------------ #

    def load_module(self, name: str, blob: bytes) -> None:
        """Load a kernel module; code must pass the privileged verifier."""
        self.ops.verify_dynamic_code(blob, what=f"module {name!r}")
        self.clock.charge(4000 + len(blob) // 16, "module_load")
        self.modules[name] = blob

    def attach_bpf(self, name: str, bytecode: bytes) -> None:
        """Attach an eBPF program (JIT output is kernel text: verified)."""
        self.ops.verify_dynamic_code(bytecode, what=f"eBPF {name!r}")
        self.clock.charge(2500 + len(bytecode) // 8, "module_load")
        self.bpf_programs[name] = bytecode

    def text_poke(self, patch: bytes) -> None:
        """Self-modify kernel text (alternatives/static keys).

        W^X makes kernel text unwritable; the instrumented poke helpers
        hand the patch to the monitor, which validates and applies it."""
        self.ops.verify_dynamic_code(patch, what="text_poke")
        self.clock.charge(1200, "module_load")
        self.clock.count("text_poke")

    # ------------------------------------------------------------------ #
    # syscall entry
    # ------------------------------------------------------------------ #

    def syscall(self, task: Task, name: str, *args, **kwargs):
        """Dispatch one syscall from ``task`` (macro-level entry)."""
        from . import syscalls
        clock = self.clock
        start = clock.cycles
        span_name = _SYSCALL_SPAN_NAMES.get(name)
        if span_name is None:
            span_name = _SYSCALL_SPAN_NAMES[name] = f"syscall:{name}"
        with clock.tracer.span(span_name, "syscall"):
            clock.charge(Cost.SYSCALL_ROUND_TRIP, "syscall")
            clock.count("syscall")
            self.exit_path.on_syscall(task, name)
            handler = syscalls.TABLE.get(name)
            if handler is None:
                raise ValueError(f"unknown syscall {name!r}")
            result = handler(self, task, *args, **kwargs)
            self.pump()
        metrics = clock.metrics
        if metrics.enabled:
            owner = sandbox_label(task)
            handles = self._metric_handles.get(metrics, ("sys", name, owner))
            if handles is None:
                handles = self._metric_handles.put(("sys", name, owner), (
                    metrics.counter_handle("kernel_syscalls_total",
                                           name=name, sandbox=owner),
                    metrics.histogram_handle("kernel_syscall_cycles",
                                             name=name),
                ))
            calls, cycles_hist = handles
            calls.inc()
            cycles_hist.observe(clock.cycles - start)
        return result
