"""Gate mechanics and Table 3 calibration on the micro CPU."""

import pytest

from repro.core.emc import ENTRY_GATE_VA, EmcCall
from repro.core.gates import PKRS_KERNEL, PKRS_MONITOR, build_monitor_code
from repro.core.microrig import GateRig
from repro.hw import regs
from repro.hw.cycles import Cost
from repro.hw.isa import I, assemble, scan_for_sensitive


def test_empty_emc_costs_exactly_table3_value():
    rig = GateRig()
    assert rig.run_emc(int(EmcCall.NOP)) == Cost.EMC_ROUND_TRIP == 1224


def test_emc_cheaper_than_tdcall_more_than_syscall():
    # Table 3's ordering: syscall < EMC < vmcall < tdcall
    assert Cost.SYSCALL_ROUND_TRIP < Cost.EMC_ROUND_TRIP
    assert Cost.EMC_ROUND_TRIP < Cost.VMCALL_ROUND_TRIP
    assert Cost.VMCALL_ROUND_TRIP < Cost.TDCALL_ROUND_TRIP
    assert round(Cost.TDCALL_ROUND_TRIP / Cost.EMC_ROUND_TRIP, 2) == 4.31
    assert round(Cost.SYSCALL_ROUND_TRIP / Cost.EMC_ROUND_TRIP, 2) == 0.56


def test_pkrs_restored_to_kernel_profile_after_emc():
    rig = GateRig()
    rig.run_emc(int(EmcCall.NOP))
    assert rig.cpu.msrs[regs.IA32_PKRS] == PKRS_KERNEL


def test_pkrs_opened_inside_monitor():
    # the WRITE_MSR handler runs between the gates; writing any MSR proves
    # execution reached the handler while PKRS was open (a closed PKRS
    # would have faulted on the secure-stack push in the entry gate).
    rig = GateRig()
    rig.run_emc(int(EmcCall.WRITE_MSR), rsi=0x123, rdx=0x777)
    assert rig.cpu.msrs[0x123] == 0x777
    assert rig.cpu.msrs[regs.IA32_PKRS] == PKRS_KERNEL


def test_write_cr_emc_updates_cr4():
    rig = GateRig()
    want = rig.cpu.crs[4]  # keep protections; write the same value back
    rig.run_emc(int(EmcCall.WRITE_CR), rsi=4, rdx=want)
    assert rig.cpu.crs[4] == want


def test_unknown_call_number_is_denied_no_work():
    rig = GateRig()
    cycles = rig.run_emc(987)
    # falls through the chain to the exit gate: costs more comparisons but
    # never reaches a handler
    assert cycles > 0
    assert 987 not in rig.cpu.msrs


def test_kernel_stack_pointer_preserved_across_emc():
    rig = GateRig()
    rsp_before = None

    # run the stub manually to capture rsp right before the icall
    stub = rig.caller_stub(int(EmcCall.NOP))
    rig.machine.load_code(0x60_0000_0000, stub)
    rig.cpu.mode = "kernel"
    rig.cpu.rip = 0x60_0000_0000
    for _ in range(5):
        rig.cpu.step()
    rsp_before = rig.cpu.regs["rsp"]
    rig.cpu.run(max_steps=10_000)
    assert rig.cpu.regs["rsp"] == rsp_before


def test_monitor_code_has_exactly_one_endbr():
    layout = build_monitor_code()
    endbrs = [i for i in layout.code if i.op == "endbr"]
    assert len(endbrs) == 1
    assert layout.code[0].op == "endbr"


def test_monitor_entry_is_at_published_address():
    layout = build_monitor_code()
    assert layout.entry_gate_va == ENTRY_GATE_VA


def test_monitor_handlers_may_contain_sensitive_instructions():
    # unlike the kernel, the monitor legitimately carries wrmsr etc.
    layout = build_monitor_code()
    blob = assemble(layout.code)
    assert scan_for_sensitive(blob)


def test_gate_cost_composition_matches_table4():
    assert Cost.EREBOR_MMU == 1345
    assert Cost.EREBOR_CR == 1593
    assert Cost.EREBOR_SMAP == 1291
    assert Cost.EREBOR_IDT == 1369
    assert Cost.EREBOR_MSR == 1613
    assert Cost.EREBOR_GHCI == 128081
