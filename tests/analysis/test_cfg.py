"""CFG recovery over the fixed-width ISA."""

import pytest

from repro.analysis.cfg import (
    CfgDecodeError,
    TERMINATORS,
    build_cfg,
    decode_section,
)
from repro.hw.isa import I, INSTR_SIZE, assemble

VA = 0x1000


def test_straight_line_is_one_block():
    cfg = build_cfg(assemble([I("nop"), I("addi", "rax", imm=1), I("ret")]),
                    VA)
    assert len(cfg.blocks) == 1
    assert cfg.blocks[VA].end_va == VA + 3 * INSTR_SIZE
    assert cfg.edges == []


def test_branch_splits_blocks_and_adds_edges():
    #   0: cmpi rax, 0
    #   1: jz -> 3
    #   2: addi rax, 1     (fall-through of the jz)
    #   3: ret             (branch target)
    cfg = build_cfg(assemble([
        I("cmpi", "rax", imm=0),
        I("jz", imm=VA + 3 * INSTR_SIZE),
        I("addi", "rax", imm=1),
        I("ret"),
    ]), VA)
    assert set(cfg.blocks) == {VA, VA + 2 * INSTR_SIZE, VA + 3 * INSTR_SIZE}
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(VA, VA + 3 * INSTR_SIZE)] == "branch"
    assert kinds[(VA, VA + 2 * INSTR_SIZE)] == "fall"
    assert kinds[(VA + 2 * INSTR_SIZE, VA + 3 * INSTR_SIZE)] == "fall"


def test_call_has_call_edge_and_fall_through():
    target = VA + 3 * INSTR_SIZE
    cfg = build_cfg(assemble([
        I("call", imm=target),
        I("hlt"),
        I("nop"),
        I("ret"),
    ]), VA)
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(VA, target)] == "call"
    assert kinds[(VA, VA + INSTR_SIZE)] == "fall"


def test_terminators_have_no_successors():
    for op in sorted(TERMINATORS):
        cfg = build_cfg(assemble([I(op), I("nop"), I("ret")]), VA)
        assert all(e.src != VA for e in cfg.edges), op


def test_movi_icall_peephole_recovers_target():
    target = VA + 3 * INSTR_SIZE
    cfg = build_cfg(assemble([
        I("movi", "rbx", imm=target),
        I("icall", "rbx"),
        I("ret"),
        I("endbr"),
        I("ret"),
    ]), VA)
    [site] = cfg.indirect_sites
    assert site.op == "icall" and site.reg == "rbx"
    assert site.target == target
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(VA, target)] == "indirect"
    # an icall returns: fall-through to the next slot
    assert kinds[(VA, VA + 2 * INSTR_SIZE)] == "fall"


def test_unknown_indirect_target_is_none():
    cfg = build_cfg(assemble([
        I("mov", "rbx", "rcx"),
        I("ijmp", "rbx"),
    ]), VA)
    [site] = cfg.indirect_sites
    assert site.target is None


def test_peephole_requires_matching_register():
    cfg = build_cfg(assemble([
        I("movi", "rcx", imm=VA),      # feeds rcx, branch uses rbx
        I("ijmp", "rbx"),
    ]), VA)
    [site] = cfg.indirect_sites
    assert site.target is None


def test_decode_error_carries_offset():
    blob = assemble([I("nop")]) + b"\xEE" + b"\x00" * (INSTR_SIZE - 1)
    with pytest.raises(CfgDecodeError) as exc:
        decode_section(blob, VA)
    assert exc.value.offset == INSTR_SIZE


def test_unaligned_length_rejected():
    with pytest.raises(CfgDecodeError):
        decode_section(b"\x01" * (INSTR_SIZE + 3), VA)


def test_reachability():
    #   0: jmp -> 2
    #   1: nop          (dead)
    #   2: ret
    cfg = build_cfg(assemble([
        I("jmp", imm=VA + 2 * INSTR_SIZE),
        I("nop"),
        I("ret"),
    ]), VA)
    reachable = cfg.reachable_from(VA)
    assert VA in reachable
    assert VA + 2 * INSTR_SIZE in reachable
    assert VA + INSTR_SIZE not in reachable
