"""Deterministic cycle-accounting model for the simulated platform.

The Erebor paper reports all microbenchmark results in CPU cycles on a
2.1 GHz Xeon 8570 (Tables 3 and 4) and all macrobenchmarks in seconds or
relative overhead (Figures 8-10, Table 6). Since this reproduction runs the
system on a simulated platform rather than silicon, time is modelled as an
explicit cycle ledger:

* every simulated hardware operation (instruction execution, privilege
  transition, world switch, exception delivery) charges a fixed cost to a
  :class:`CycleClock`;
* the *primitive* costs below are calibrated so that the composed costs of
  the paper's microbenchmarks come out exactly as published (e.g. an empty
  EMC round trip = 1224 cycles, an empty syscall = 684);
* all macro results (LMBench, workloads, server throughput) are derived
  from the same constants plus *counted* events — no per-figure tuning.

The clock also keeps per-tag cycle counters and event counters so the
benchmark harness can regenerate Table 6's exit/EMC rate columns.

**SMP accounting.** One machine has one clock, but every logical CPU
carries its own position on it. Work charged inside an :meth:`~CycleClock.on_cpu`
scope advances only that core's counter (and its private event ledger);
work charged outside any scope is a *serial section* — it behaves like a
barrier, synchronizing every core to the current wall position and
advancing them together. Simulated wall-clock time is therefore the
**max** over per-CPU clocks (:attr:`~CycleClock.wall_cycles`), not the
serial sum (:attr:`~CycleClock.cycles`, which keeps its historical
meaning of total work performed). With one CPU the two are identical, so
every calibrated single-core number is unchanged.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..obs.metrics import NULL_METRICS
from ..obs.trace import NULL_TRACER


#: Simulated core frequency (Hz); matches the paper's 2.1 GHz Xeon 8570.
CPU_FREQ_HZ = 2_100_000_000

#: :attr:`CycleClock.tags_by_cpu` lane key for serial-section charges
#: (and single-core charges outside any :meth:`CycleClock.on_cpu` scope)
SERIAL_LANE = -1


class Cost:
    """Calibrated cycle costs for primitive operations.

    Composition targets (paper values):

    ==================  ======  ==========================================
    Composite           Cycles  Source
    ==================  ======  ==========================================
    empty SYSCALL       684     Table 3
    empty EMC           1224    Table 3
    empty TDCALL        5276    Table 3
    empty VMCALL        4031    Table 3
    native PTE write    23      Table 4 (MMU)
    native CR0 write    294     Table 4 (CR)
    native stac/clac    62      Table 4 (SMAP)
    native lidt         260     Table 4 (IDT)
    native wrmsr LSTAR  364     Table 4 (MSR)
    native TDREPORT     126806  Table 4 (GHCI)
    Erebor MMU          1345    = EMC + VALIDATE_MMU + PTE_WRITE_NATIVE
    Erebor CR           1593    = EMC + VALIDATE_CR + CR_WRITE_NATIVE
    Erebor SMAP         1291    = EMC + VALIDATE_SMAP + STAC_CLAC_NATIVE
    Erebor IDT          1369    = EMC + IDT_MONITOR_UPDATE
    Erebor MSR          1613    = EMC + VALIDATE_MSR + WRMSR_SLOW_NATIVE
    Erebor GHCI         128081  = EMC + VALIDATE_GHCI + TDREPORT_NATIVE
    ==================  ======  ==========================================
    """

    # --- micro: per-instruction execution costs (simulated ISA) ---------
    ALU = 3                 # mov/add/cmp and friends
    MOV_IMM = 1
    MEM = 3                 # load/store/push/pop (cache-hit model)
    ENDBR = 1
    JMP = 2
    CALL = 20
    ICALL = 40              # indirect call incl. IBT landing check
    RET = 30
    RDMSR = 90
    WRMSR_PKRS = 380        # serializing write to IA32_PKRS (gate hot path)
    FENCE = 31              # lfence-style speculation barrier
    CPUID_NATIVE = 120      # when not intercepted
    STAC = 31               # half of the 62-cycle stac+clac pair
    CLAC = 31

    # --- composite privilege transitions (authoritative, Table 3) -------
    SYSCALL_ENTRY = 250     # hardware syscall transition
    SYSRET = 250
    KERNEL_FRAME_SAVE = 92  # swapgs + GPR spill on entry
    KERNEL_FRAME_RESTORE = 92
    SYSCALL_ROUND_TRIP = 684            # = 250+250+92+92

    EMC_ROUND_TRIP = 1224               # measured from the gate code (test-enforced)

    TDX_WORLD_SWITCH = 1900             # TD-exit: TDX module context protect
    TDX_WORLD_RESUME = 1900
    TDCALL_DISPATCH = 1476              # TDX-module leaf dispatch + GHCI marshalling
    TDCALL_ROUND_TRIP = 5276            # = 1900+1900+1476

    VM_WORLD_SWITCH = 1700              # plain VMX vmexit/vmentry
    VM_WORLD_RESUME = 1700
    VMCALL_DISPATCH = 631
    VMCALL_ROUND_TRIP = 4031            # = 1700+1700+631

    # --- native privileged operations (Table 4, "Native" column) --------
    PTE_WRITE_NATIVE = 23
    CR_WRITE_NATIVE = 294
    STAC_CLAC_NATIVE = 62
    LIDT_NATIVE = 260
    WRMSR_SLOW_NATIVE = 364             # e.g. IA32_LSTAR
    TDREPORT_NATIVE = 126806            # report generation + HMAC attach

    # --- monitor-side policy validation (Table 4, "Erebor" - EMC - op) --
    VALIDATE_MMU = 98                   # PTP ownership + mapping-policy check
    VALIDATE_CR = 75                    # pinned-bit mask check
    VALIDATE_SMAP = 5                   # user-copy range check fast path
    IDT_MONITOR_UPDATE = 145            # validate + write cached descriptor
    VALIDATE_MSR = 25                   # MSR allow-list check
    VALIDATE_GHCI = 51                  # shared-region + leaf allow-list check

    # --- stage-2 CFG verification (repro.analysis, boot-time) -----------
    # Calibrated like the byte scan: a fixed setup cost (template
    # derivation amortized, report assembly) plus a per-decoded-
    # instruction walk cost (decode + leader/edge bookkeeping + checks).
    VERIFY_CFG_BASE = 540
    VERIFY_CFG_PER_INSTR = 14

    # --- stage-3 dataflow verification (repro.analysis.absint) ----------
    # Fixpoint engine on top of the recovered CFGs: setup (root seeding,
    # budget fold bookkeeping, report assembly) plus a per-instruction
    # cost covering the worklist transfer passes (the lattice has finite
    # height, so passes-per-instruction is a small constant).
    VERIFY_DATAFLOW_BASE = 760
    VERIFY_DATAFLOW_PER_INSTR = 22

    # --- exception / interrupt machinery --------------------------------
    EXC_DELIVERY = 420                  # IDT vectoring + frame push
    IRET = 300
    INT_GATE_OVERHEAD = 196             # Erebor #INT gate: PKRS save/revoke/restore
    PF_HANDLER_BASE = 780               # kernel page-fault handler logic
    TIMER_HANDLER_BASE = 1400           # kernel tick + scheduler work
    CONTEXT_SWITCH = 1500
    SANDBOX_STATE_SAVE = 10500          # save+mask full register/FPU state at exits
    SANDBOX_STATE_RESTORE = 10000
    EXIT_INSPECT = 180                  # monitor classifies an interposed exit
    COPY_PER_PAGE_NATIVE = 230          # 4 KiB memcpy on the kernel copy path
    USER_COPY_PER_PAGE = 250            # monitor-emulated copy (+range checks)
    CPUID_EMULATED = 260                # monitor cache hit for sandboxed cpuid

    # --- macro-model microarchitectural disturbance -----------------------
    # Direct gate costs (Table 3/4) are measured on a quiet core; in end-to-
    # end runs every privilege transition additionally perturbs the TLB,
    # caches and pipeline (PKRS writes serialize). The macro model charges
    # these per-event constants on top of direct costs; the Table 3/4
    # benches measure direct costs only, matching the paper's methodology.
    UARCH_PER_EMC = 1200
    UARCH_PER_SANDBOX_EXIT = 2200

    # --- derived composites (used by Table 4 bench and the macro model) -
    EREBOR_MMU = EMC_ROUND_TRIP + VALIDATE_MMU + PTE_WRITE_NATIVE        # 1345
    EREBOR_CR = EMC_ROUND_TRIP + VALIDATE_CR + CR_WRITE_NATIVE           # 1593
    EREBOR_SMAP = EMC_ROUND_TRIP + VALIDATE_SMAP + STAC_CLAC_NATIVE      # 1291
    EREBOR_IDT = EMC_ROUND_TRIP + IDT_MONITOR_UPDATE                     # 1369
    EREBOR_MSR = EMC_ROUND_TRIP + VALIDATE_MSR + WRMSR_SLOW_NATIVE       # 1613
    EREBOR_GHCI = EMC_ROUND_TRIP + VALIDATE_GHCI + TDREPORT_NATIVE       # 128081


class _CpuScope:
    """Reusable ``with clock.on_cpu(i):`` guard (nesting-safe)."""

    __slots__ = ("_clock", "_cpu")

    def __init__(self, clock: "CycleClock", cpu: int):
        self._clock = clock
        self._cpu = cpu

    def __enter__(self) -> "_CpuScope":
        self._clock._cpu_stack.append(self._cpu)
        return self

    def __exit__(self, *exc) -> bool:
        self._clock._cpu_stack.pop()
        return False


@dataclass
class CycleClock:
    """Monotonic simulated cycle counter with tagged sub-ledgers.

    The clock is shared by every component of one simulated machine. Tags
    let the harness attribute time (e.g. ``"emc"``, ``"pagefault"``) and
    events let it report rates (Table 6 columns such as ``EMC/s``).

    The clock also carries the machine's observability sinks: ``tracer``
    (spans/events timestamped in simulated cycles) and ``metrics`` (the
    labelled counter/gauge/histogram registry). Both default to shared
    no-op singletons, and neither ever charges the clock — observability
    reads time, it never spends it — so the calibrated cycle model is
    byte-identical whether or not :func:`repro.obs.install` has run.

    Per-CPU positions live in :attr:`per_cpu`; :meth:`on_cpu` selects the
    executing core for a region of work, and :attr:`wall_cycles` is the
    SMP wall clock (max over cores). See the module docstring for the
    serial-section barrier semantics.
    """

    cycles: int = 0
    by_tag: Counter = field(default_factory=Counter)
    events: Counter = field(default_factory=Counter)
    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS
    #: wall position of each logical CPU (index = cpu_id)
    per_cpu: list[int] = field(default_factory=lambda: [0])
    #: cycles charged while each CPU was the executing core (busy work;
    #: serial sections are excluded — they belong to no single core)
    busy_by_cpu: Counter = field(default_factory=Counter)
    #: lane-resolved tag ledgers: executing cpu id (or :data:`SERIAL_LANE`
    #: for serial/barrier sections and single-core unscoped charges) →
    #: ``{tag: cycles}``. Untagged charges land under ``"untagged"`` here
    #: (never in :attr:`by_tag`, which keeps its historical contents).
    #: Maintained in the same branch as the busy accounting, so for every
    #: cpu lane ``sum(tags_by_cpu[cpu].values()) == busy_by_cpu[cpu]``
    #: bit-exactly — the conservation invariant the budget ledger
    #: (:mod:`repro.obs.ledger`) verifies and exports.
    tags_by_cpu: dict = field(default_factory=dict)
    #: per-CPU event ledgers (only events counted inside an on_cpu scope)
    events_by_cpu: dict = field(default_factory=dict)
    #: mirror of the monitor's audit-chain head digest (the monitor is
    #: authoritative; this copy lets obs bundles carry the head without
    #: a monitor reference). Empty until the first audited decision.
    audit_head: str = ""
    #: mirror of the boot-time CFG verifier's report digest (see
    #: repro.analysis.verifier.VerifierReport.digest); "" on scan-only
    #: boots, so exported bundles can tell the two apart offline.
    cfg_report_digest: str = ""
    #: mirror of the stage-3 dataflow verifier's report digest (see
    #: repro.analysis.absint.DataflowReport.digest); "" when the plane
    #: is disabled, so bundles can tell CFG-only from dataflow-proven.
    dataflow_report_digest: str = ""
    _cpu_stack: list = field(default_factory=list, repr=False)

    def ensure_cpus(self, n: int) -> None:
        """Grow the per-CPU ledger to ``n`` cores.

        Late-joining cores start at the current wall position: they were
        idle, not absent, for everything charged so far.
        """
        if n <= len(self.per_cpu):
            return
        wall = max(self.per_cpu)
        self.per_cpu.extend(wall for _ in range(n - len(self.per_cpu)))

    def on_cpu(self, cpu_id: int) -> _CpuScope:
        """Scope all charges/events inside the ``with`` to one core."""
        self.ensure_cpus(cpu_id + 1)
        return _CpuScope(self, cpu_id)

    @property
    def current_cpu(self) -> int | None:
        """The executing core, or ``None`` inside a serial section."""
        return self._cpu_stack[-1] if self._cpu_stack else None

    def charge(self, n: int, tag: str | None = None) -> None:
        """Advance the clock by ``n`` cycles, attributing them to ``tag``."""
        if n < 0:
            raise ValueError(f"negative cycle charge: {n}")
        self.cycles += n
        if tag is not None:
            self.by_tag[tag] += n
        per = self.per_cpu
        if self._cpu_stack:
            lane = self._cpu_stack[-1]
            per[lane] += n
            self.busy_by_cpu[lane] += n
        elif len(per) == 1:
            per[0] += n
            lane = SERIAL_LANE
        else:
            # serial section: barrier-sync every core, advance together
            wall = max(per) + n
            for i in range(len(per)):
                per[i] = wall
            lane = SERIAL_LANE
        tags = self.tags_by_cpu.get(lane)
        if tags is None:
            tags = self.tags_by_cpu[lane] = {}
        if tag is None:
            tag = "untagged"
        tags[tag] = tags.get(tag, 0) + n

    def fast_forward(self, cpu_id: int) -> int:
        """Advance one core's clock to the current wall; returns the wait.

        Models a core picking up work that only became *available* now —
        e.g. a queued session admitted when another (further-ahead) core
        released its slot. The skipped span is idle waiting, so nothing
        is charged: the serial total and the core's busy ledger do not
        move. Without this, work handed to a trailing core would start
        in that core's past and wall-clock time would undercount queues.
        """
        self.ensure_cpus(cpu_id + 1)
        waited = max(self.per_cpu) - self.per_cpu[cpu_id]
        if waited > 0:
            self.per_cpu[cpu_id] += waited
        return max(waited, 0)

    def count(self, event: str, n: int = 1) -> None:
        """Record ``n`` occurrences of a named event (no time charged)."""
        self.events[event] += n
        if self._cpu_stack:
            cpu = self._cpu_stack[-1]
            ledger = self.events_by_cpu.get(cpu)
            if ledger is None:
                ledger = self.events_by_cpu[cpu] = Counter()
            ledger[event] += n

    # -- per-CPU reads --------------------------------------------------- #

    def cpu_cycles(self, cpu_id: int) -> int:
        """Wall position of one core (0 if it never existed)."""
        if cpu_id < len(self.per_cpu):
            return self.per_cpu[cpu_id]
        return 0

    def cpu_busy(self, cpu_id: int) -> int:
        """Cycles charged while ``cpu_id`` was the executing core."""
        return self.busy_by_cpu.get(cpu_id, 0)

    def cpu_events(self, cpu_id: int) -> Counter:
        """Event ledger of one core (empty Counter if untouched)."""
        return self.events_by_cpu.get(cpu_id) or Counter()

    def cpu_tags(self, lane: int) -> dict:
        """Tag → cycles ledger of one lane (:data:`SERIAL_LANE` for the
        serial lane); a copy — the live ledger is never handed out."""
        return dict(self.tags_by_cpu.get(lane, ()))

    @property
    def wall_cycles(self) -> int:
        """SMP wall clock: the furthest-ahead core's position."""
        return max(self.per_cpu)

    @property
    def seconds(self) -> float:
        """Simulated serial time at the modelled core frequency."""
        return self.cycles / CPU_FREQ_HZ

    @property
    def wall_seconds(self) -> float:
        """Simulated wall-clock time (max over cores) in seconds."""
        return self.wall_cycles / CPU_FREQ_HZ

    def rate_per_second(self, event: str) -> float:
        """Occurrences of ``event`` per simulated second so far."""
        if self.cycles == 0:
            return 0.0
        return self.events[event] / self.seconds

    def snapshot(self) -> "ClockSnapshot":
        """Capture the current ledger for later interval deltas."""
        return ClockSnapshot(self.cycles, Counter(self.by_tag),
                             Counter(self.events), self.wall_cycles)

    def since(self, snap: "ClockSnapshot") -> "ClockSnapshot":
        """Return the delta ledger accumulated since ``snap``."""
        return ClockSnapshot(
            self.cycles - snap.cycles,
            self.by_tag - snap.by_tag,
            self.events - snap.events,
            self.wall_cycles - snap.wall_cycles,
        )


@dataclass
class ClockSnapshot:
    """Immutable view of a :class:`CycleClock` ledger at a point in time."""

    cycles: int
    by_tag: Counter
    events: Counter
    wall_cycles: int = 0

    @property
    def seconds(self) -> float:
        return self.cycles / CPU_FREQ_HZ

    def rate_per_second(self, event: str) -> float:
        if self.cycles == 0:
            return 0.0
        return self.events[event] / self.seconds
