"""Attack images that pass the byte scan but fail the boot-time CFG pass.

These run the full stage-2 path (``Monitor.verify_and_load_kernel``): the
scan accepts each image, the CFG verifier rejects it with its distinct
check ID, the verdict lands on the audit chain, and the attestation
measurement separates CFG-verified boots from scan-only ones.
"""

import pytest

from repro.analysis.attacks import attack_corpus
from repro.analysis.verifier import StaticVerifier
from repro.core import BootVerificationError, erebor_boot
from repro.core.boot import published_kernel_cfg_rtmr
from repro.core.monitor import EreborFeatures
from repro.hw.isa import scan_for_sensitive
from repro.tdx.attestation import KERNEL_CFG_RTMR_INDEX
from repro.vm import CvmMachine, MachineConfig, MIB

SCAN_PASSING = [a for a in attack_corpus() if a.passes_byte_scan]


def machine():
    return CvmMachine(MachineConfig(memory_bytes=512 * MIB))


@pytest.mark.parametrize("attack", SCAN_PASSING, ids=lambda a: a.name)
def test_byte_scan_accepts_the_attack(attack):
    for section in attack.image.executable_sections():
        assert scan_for_sensitive(section.data) == [], attack.name


@pytest.mark.parametrize("attack", SCAN_PASSING, ids=lambda a: a.name)
def test_boot_rejects_with_expected_check(attack):
    with pytest.raises(BootVerificationError) as exc:
        erebor_boot(machine(), kernel_image=attack.image,
                    skip_instrumentation=True, cma_bytes=16 * MIB)
    assert attack.expected_check in str(exc.value)
    assert "CFG verification failed" in str(exc.value)


def test_at_least_three_distinct_check_ids():
    assert len({a.expected_check for a in SCAN_PASSING}) >= 3


@pytest.mark.parametrize("attack", SCAN_PASSING, ids=lambda a: a.name)
def test_scan_only_boot_would_have_accepted(attack):
    """The CFG pass is load-bearing: scan-only boots miss these."""
    m = machine()
    features = EreborFeatures(cfg_verifier=False)
    system = erebor_boot(m, kernel_image=attack.image, features=features,
                         skip_instrumentation=True, cma_bytes=16 * MIB)
    assert system.kernel.booted
    # and the quote betrays it: RTMR[3] still holds its reset value
    assert m.tdx.measurement.rtmrs[KERNEL_CFG_RTMR_INDEX] == b""


def test_rejection_is_audited():
    attack = SCAN_PASSING[0]
    m = machine()
    with pytest.raises(BootVerificationError):
        erebor_boot(m, kernel_image=attack.image,
                    skip_instrumentation=True, cma_bytes=16 * MIB)
    # the monitor raised mid-boot; its clock mirror still records the
    # digest of the failing report
    assert m.clock.cfg_report_digest != ""


def test_cfg_verified_boot_extends_rtmr3():
    m = machine()
    system = erebor_boot(m, cma_bytes=16 * MIB)
    assert system.kernel.booted
    report = system.monitor.kernel_verifier_report
    assert report is not None and report.ok
    assert m.tdx.measurement.rtmrs[KERNEL_CFG_RTMR_INDEX] == \
        published_kernel_cfg_rtmr()
    assert m.clock.cfg_report_digest == report.digest()


def test_boot_charges_calibrated_cfg_cycles():
    from repro.hw.cycles import Cost

    def boot_cycles(features):
        m = machine()
        erebor_boot(m, features=features, cma_bytes=16 * MIB)
        return m.clock.cycles

    # isolate the CFG pass from the stage-3 dataflow pass layered on it
    with_cfg = boot_cycles(EreborFeatures(dataflow_verifier=False))
    without = boot_cycles(EreborFeatures(cfg_verifier=False))
    delta = with_cfg - without
    # delta = VERIFY_CFG_BASE + per-instr * instructions of the kernel
    from repro.kernel.image import build_kernel_image
    from repro.kernel.instrument import instrument_image
    image, _ = instrument_image(build_kernel_image())
    report = StaticVerifier().verify_image(image)
    assert delta == Cost.VERIFY_CFG_BASE + \
        Cost.VERIFY_CFG_PER_INSTR * report.instructions


def test_audit_chain_includes_cfg_verdict():
    m = machine()
    system = erebor_boot(m, cma_bytes=16 * MIB)
    details = [e.detail for e in system.monitor.audit_log
               if e.kind == "verify"]
    assert any("CFG-verified" in d for d in details)
    assert system.monitor.verify_audit_chain().ok
