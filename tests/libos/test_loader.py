"""Program loader tests: real code running inside the sandbox boundary."""

import pytest

from repro.core import PolicyViolation, erebor_boot
from repro.hw import regs
from repro.hw.errors import GeneralProtectionFault, PageFault
from repro.hw.isa import I
from repro.hw.memory import PAGE_SIZE
from repro.libos import LibOs, Manifest
from repro.libos.loader import (
    LoaderError,
    PROG_CODE_VA,
    PROG_DATA_VA,
    build_user_program,
    load_program,
    run_program,
)
from repro.vm import CvmMachine, MachineConfig, MIB

RESULT_VA = PROG_DATA_VA  # programs write their result at .data start


@pytest.fixture
def rig():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    libos = LibOs.boot_sandboxed(system, Manifest(name="prog", heap_bytes=1 * MIB),
                                 confined_budget=8 * MIB)
    return machine, system, libos


def hello_program():
    """Writes 0x4141414141414141 ('AAAAAAAA') to its data section."""
    return build_user_program([
        I("movi", "rbx", imm=RESULT_VA),
        I("movi", "rax", imm=0x4141414141414141),
        I("store", "rbx", "rax"),
        I("hlt"),                   # exit trap
    ], data=b"\x00" * 64)


def test_load_places_sections_in_confined_memory(rig):
    machine, system, libos = rig
    program = load_program(libos, hello_program())
    assert program.sections[".text"] == PROG_CODE_VA
    fn = libos.sandbox.task.aspace.mapped_frame(PROG_CODE_VA)
    assert machine.phys.frame(fn).owner == f"sandbox:{libos.sandbox.sandbox_id}"
    # code frames obey the single-mapping confined policy
    from repro.hw.paging import PTE_NX, PTE_P, PTE_U, make_pte
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_pte(system.kernel.kernel_aspace,
                                     0x51_0000_0000,
                                     make_pte(fn, PTE_P | PTE_NX))


def test_program_executes_and_writes_result(rig):
    machine, system, libos = rig
    program = load_program(libos, hello_program())
    run_program(libos, program)
    fn = libos.sandbox.task.aspace.mapped_frame(RESULT_VA)
    assert machine.phys.read(fn * PAGE_SIZE, 8) == b"A" * 8


def test_program_cannot_write_its_own_code(rig):
    """W^X inside the sandbox: text is execute-only."""
    machine, system, libos = rig
    evil = build_user_program([
        I("movi", "rbx", imm=PROG_CODE_VA),
        I("movi", "rax", imm=0x1234),
        I("store", "rbx", "rax"),
        I("hlt"),
    ], data=b"\x00" * 8)
    program = load_program(libos, evil)
    with pytest.raises(PageFault):
        run_program(libos, program)


def test_program_cannot_execute_its_data(rig):
    machine, system, libos = rig
    trampoline = build_user_program([
        I("movi", "rax", imm=PROG_DATA_VA),
        I("ijmp", "rax"),            # jump into NX data
    ], data=I("hlt").encode())
    program = load_program(libos, trampoline)
    with pytest.raises(PageFault):
        run_program(libos, program)


def test_program_cannot_touch_memory_outside_its_vmas(rig):
    machine, system, libos = rig
    prying = build_user_program([
        I("movi", "rbx", imm=0x3000_0000),   # unmapped
        I("load", "rax", "rbx"),
        I("hlt"),
    ], data=b"\x00" * 8)
    program = load_program(libos, prying)
    with pytest.raises(PageFault):
        run_program(libos, program)


def test_program_senduipi_gps_when_uintr_disabled(rig):
    machine, system, libos = rig
    covert = build_user_program([
        I("movi", "rax", imm=1),
        I("senduipi", "rax"),
        I("hlt"),
    ], data=b"\x00" * 8)
    program = load_program(libos, covert)
    libos.sandbox.install_input(b"secret")   # locks; UINTR_TT cleared
    assert machine.cpu.msrs[regs.IA32_UINTR_TT] == 0
    with pytest.raises(GeneralProtectionFault) as exc:
        run_program(libos, program)
    assert "user-interrupt" in str(exc.value)


def test_program_tdcall_gps_from_user_mode(rig):
    machine, system, libos = rig
    hypercaller = build_user_program([I("tdcall"), I("hlt")],
                                     data=b"\x00" * 8)
    program = load_program(libos, hypercaller)
    with pytest.raises(GeneralProtectionFault):
        run_program(libos, program)


def test_loading_after_lock_rejected(rig):
    machine, system, libos = rig
    libos.sandbox.install_input(b"data")
    with pytest.raises(LoaderError):
        load_program(libos, hello_program())


def test_loading_requires_sandbox():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    kernel = machine.boot_native_kernel()
    libos = LibOs.boot_plain(kernel, Manifest(name="p", heap_bytes=1 * MIB))
    with pytest.raises(LoaderError):
        load_program(libos, hello_program())


def test_kernel_cannot_read_program_memory_smap(rig):
    """Even loaded code is sandbox-private against the kernel."""
    from repro.hw.mmu import AccessContext, KERNEL_MODE
    machine, system, libos = rig
    program = load_program(libos, hello_program())
    ctx = AccessContext(mode=KERNEL_MODE, cr0=machine.cpu.crs[0],
                        cr4=machine.cpu.crs[4])
    with pytest.raises(PageFault):
        machine.cpu.mmu.check(libos.sandbox.task.aspace, PROG_CODE_VA,
                              "read", ctx)
