"""Tasks, virtual memory areas, and memory backings.

A :class:`Task` is one schedulable entity with its own address space and
VMA list. Demand paging is driven by *backings*: a VMA delegates
"which physical frame holds page N" to its backing object, which is how
the four memory kinds of the paper coexist behind one fault handler:

* anonymous memory — frames allocated on first touch,
* file mappings — frames of the page cache,
* **confined** sandbox memory — pre-reserved, pinned, monitor-declared
  frames that may be mapped into exactly one address space,
* **common** sandbox memory — read-only frames shared across sandboxes
  (the ML model / database sharing of §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..hw.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from ..hw.paging import AddressSpace

if TYPE_CHECKING:
    from .vfs import RegularFile

PROT_READ = 1 << 0
PROT_WRITE = 1 << 1
PROT_EXEC = 1 << 2

USER_CODE_BASE = 0x0040_0000
USER_HEAP_BASE = 0x1000_0000
USER_MMAP_BASE = 0x10_0000_0000
USER_STACK_TOP = 0x3F_F000_0000


class SegmentationFault(Exception):
    """User access outside any VMA (or violating its protection)."""


class Backing:
    """Supplies physical frames for a VMA's pages."""

    pinned = False

    def frame_for(self, page_index: int, phys: PhysicalMemory, owner: str) -> int:
        raise NotImplementedError


class AnonBacking(Backing):
    """Demand-zero anonymous memory: allocate on first touch."""

    def __init__(self):
        self.frames: dict[int, int] = {}

    def frame_for(self, page_index, phys, owner):
        fn = self.frames.get(page_index)
        if fn is None:
            fn = phys.alloc_frame(owner)
            self.frames[page_index] = fn
        return fn


class FileBacking(Backing):
    """Page-cache frames of a file mapping."""

    def __init__(self, file: "RegularFile", offset: int = 0):
        self.file = file
        self.offset = offset

    def frame_for(self, page_index, phys, owner):
        return self.file.page_cache_frame(
            (self.offset >> PAGE_SHIFT) + page_index, phys)


class PinnedBacking(Backing):
    """A fixed, pre-allocated frame range (sandbox confined memory)."""

    pinned = True

    def __init__(self, frames: list[int]):
        self.frames = frames

    def frame_for(self, page_index, phys, owner):
        return self.frames[page_index]


class SharedBacking(Backing):
    """Frames shared read-only across address spaces (common memory)."""

    def __init__(self, frames: list[int]):
        self.frames = frames

    def frame_for(self, page_index, phys, owner):
        return self.frames[page_index]


class CowBacking(Backing):
    """Copy-on-write confined memory forked from a sandbox template.

    Pages resolve to the (read-only, shared) template frame until the
    sandbox first writes them; the monitor then breaks the share into a
    private confined frame recorded in :attr:`private`. Faults on these
    VMAs are never resolved by the OS — the monitor self-pages them, so
    the template/private split (and the access pattern) stays invisible
    to the kernel.
    """

    pinned = True

    def __init__(self, template_frames: list[int], template: str):
        self.template_frames = template_frames
        self.template = template
        #: page index -> private confined frame (populated on first write)
        self.private: dict[int, int] = {}

    def frame_for(self, page_index, phys, owner):
        fn = self.private.get(page_index)
        return fn if fn is not None else self.template_frames[page_index]


@dataclass
class Vma:
    """One contiguous virtual memory area."""

    start: int
    length: int
    prot: int
    backing: Backing
    kind: str = "anon"          # anon | file | confined | common | stack
    pkey: int = 0

    @property
    def end(self) -> int:
        return self.start + self.length

    def contains(self, va: int) -> bool:
        return self.start <= va < self.end

    def page_index(self, va: int) -> int:
        return (va - self.start) >> PAGE_SHIFT


@dataclass
class Task:
    """One schedulable task (process or LibOS-managed thread group)."""

    pid: int
    name: str
    aspace: AddressSpace
    kind: str = "native"                     # native | sandbox | proxy
    vmas: list[Vma] = field(default_factory=list)
    fds: dict[int, object] = field(default_factory=dict)
    next_fd: int = 3
    brk: int = USER_HEAP_BASE
    mmap_cursor: int = USER_MMAP_BASE
    state: str = "runnable"                  # runnable | blocked | dead
    sandbox: object | None = None            # set for sandboxed tasks
    exit_code: int | None = None
    utime_cycles: int = 0

    def find_vma(self, va: int) -> Vma | None:
        for vma in self.vmas:
            if vma.start <= va < vma.start + vma.length:
                return vma
        return None

    def add_vma(self, vma: Vma) -> Vma:
        for existing in self.vmas:
            if vma.start < existing.end and existing.start < vma.end:
                raise ValueError(
                    f"VMA overlap: [{vma.start:#x},{vma.end:#x}) vs "
                    f"[{existing.start:#x},{existing.end:#x})")
        self.vmas.append(vma)
        return vma

    def remove_vma(self, vma: Vma) -> None:
        self.vmas.remove(vma)

    def alloc_fd(self, obj: object) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = obj
        return fd

    def mmap_range(self, length: int) -> int:
        start = self.mmap_cursor
        self.mmap_cursor += (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        self.mmap_cursor += PAGE_SIZE  # guard gap
        return start

    @property
    def owner_tag(self) -> str:
        if self.kind == "sandbox" and self.sandbox is not None:
            return f"sandbox:{self.sandbox.sandbox_id}"
        return f"task:{self.pid}"
