"""RingBuffer: bounded append, drop accounting, list-like access."""

import pytest

from repro.obs.ring import RingBuffer


def test_append_within_capacity():
    ring = RingBuffer(4)
    ring.extend([1, 2, 3])
    assert len(ring) == 3
    assert ring.dropped == 0
    assert list(ring) == [1, 2, 3]


def test_overwrite_oldest_and_count_drops():
    ring = RingBuffer(3)
    ring.extend(range(7))
    assert len(ring) == 3
    assert ring.dropped == 4
    assert list(ring) == [4, 5, 6]


def test_indexing_and_slices():
    ring = RingBuffer(3)
    ring.extend([10, 20, 30, 40])     # 10 dropped
    assert ring[0] == 20
    assert ring[-1] == 40
    assert ring[-2:] == [30, 40]
    assert ring[1:] == [30, 40]
    assert ring.to_list() == [20, 30, 40]


def test_index_out_of_range():
    ring = RingBuffer(2)
    ring.append("a")
    with pytest.raises(IndexError):
        ring[5]


def test_bool_and_clear():
    ring = RingBuffer(2)
    assert not ring
    ring.append(1)
    assert ring
    ring.clear()
    assert not ring and len(ring) == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingBuffer(0)
