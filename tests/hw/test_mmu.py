"""Unit tests for the MMU permission pipeline: SMEP/SMAP/NX/WP/PKS."""

import pytest

from repro.hw import regs
from repro.hw.cycles import CycleClock
from repro.hw.errors import PageFault
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import KERNEL_MODE, USER_MODE, AccessContext, Mmu
from repro.hw.paging import PTE_A, PTE_D, PTE_NX, PTE_P, PTE_U, PTE_W, AddressSpace

USER_VA = 0x40_0000
KERN_VA = 0x60_0000_0000


@pytest.fixture
def rig():
    phys = PhysicalMemory(64 * 1024 * 1024)
    mmu = Mmu(phys, CycleClock())
    aspace = AddressSpace(phys)
    return phys, mmu, aspace


def kctx(**kw):
    defaults = dict(mode=KERNEL_MODE,
                    cr0=regs.CR0_PE | regs.CR0_PG | regs.CR0_WP,
                    cr4=regs.CR4_SMEP | regs.CR4_SMAP | regs.CR4_PKS)
    defaults.update(kw)
    return AccessContext(**defaults)


def uctx(**kw):
    return kctx(mode=USER_MODE, **kw)


def map_user(phys, aspace, va=USER_VA, flags=PTE_P | PTE_W | PTE_U, pkey=0):
    fn = phys.alloc_frame("user")
    aspace.map_page(va, fn, flags, pkey)
    return fn


def map_kernel(phys, aspace, va=KERN_VA, flags=PTE_P | PTE_W, pkey=0):
    fn = phys.alloc_frame("kernel")
    aspace.map_page(va, fn, flags, pkey)
    return fn


def test_not_present_faults(rig):
    _, mmu, aspace = rig
    with pytest.raises(PageFault) as exc:
        mmu.check(aspace, 0xDEAD000, "read", kctx())
    assert not exc.value.present


def test_user_cannot_touch_supervisor_page(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace)
    with pytest.raises(PageFault) as exc:
        mmu.check(aspace, KERN_VA, "read", uctx())
    assert exc.value.present and exc.value.is_user


def test_user_access_to_user_page_ok(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace)
    mmu.check(aspace, USER_VA, "read", uctx())
    mmu.check(aspace, USER_VA, "write", uctx())


def test_smep_blocks_kernel_exec_of_user_page(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace)
    with pytest.raises(PageFault):
        mmu.check(aspace, USER_VA, "exec", kctx())
    # without SMEP the fetch is allowed
    mmu.check(aspace, USER_VA, "exec", kctx(cr4=regs.CR4_SMAP | regs.CR4_PKS))


def test_smap_blocks_kernel_data_access_to_user_page(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace)
    with pytest.raises(PageFault):
        mmu.check(aspace, USER_VA, "read", kctx())
    with pytest.raises(PageFault):
        mmu.check(aspace, USER_VA, "write", kctx())


def test_stac_ac_flag_suspends_smap(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace)
    mmu.check(aspace, USER_VA, "read", kctx(ac=True))
    mmu.check(aspace, USER_VA, "write", kctx(ac=True))


def test_nx_blocks_exec(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, flags=PTE_P | PTE_W | PTE_NX)
    with pytest.raises(PageFault):
        mmu.check(aspace, KERN_VA, "exec", kctx())
    mmu.check(aspace, KERN_VA, "read", kctx())


def test_user_write_to_readonly_faults(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace, flags=PTE_P | PTE_U)
    with pytest.raises(PageFault):
        mmu.check(aspace, USER_VA, "write", uctx())
    mmu.check(aspace, USER_VA, "read", uctx())


def test_cr0_wp_gates_kernel_writes_to_readonly(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, flags=PTE_P)  # read-only supervisor page
    with pytest.raises(PageFault):
        mmu.check(aspace, KERN_VA, "write", kctx())
    # with WP clear, supervisor writes bypass PTE.W (the attack Erebor
    # prevents by making CR0 writes sensitive)
    mmu.check(aspace, KERN_VA, "write", kctx(cr0=regs.CR0_PE | regs.CR0_PG))


def test_pks_access_disable(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, pkey=1)
    pkrs = regs.pkrs_value(k1=regs.PKR_AD)
    with pytest.raises(PageFault) as exc:
        mmu.check(aspace, KERN_VA, "read", kctx(pkrs=pkrs))
    assert exc.value.pkey_violation


def test_pks_write_disable_allows_read(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, pkey=2)
    pkrs = regs.pkrs_value(k2=regs.PKR_WD)
    mmu.check(aspace, KERN_VA, "read", kctx(pkrs=pkrs))
    with pytest.raises(PageFault) as exc:
        mmu.check(aspace, KERN_VA, "write", kctx(pkrs=pkrs))
    assert exc.value.pkey_violation


def test_pks_ignored_when_cr4_pks_clear(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, pkey=2)
    pkrs = regs.pkrs_value(k2=regs.PKR_AD | regs.PKR_WD)
    mmu.check(aspace, KERN_VA, "write",
              kctx(cr4=regs.CR4_SMEP | regs.CR4_SMAP, pkrs=pkrs))


def test_pks_does_not_apply_to_user_pages(rig):
    phys, mmu, aspace = rig
    map_user(phys, aspace, pkey=3)
    pkrs = regs.pkrs_value(k3=regs.PKR_AD)
    mmu.check(aspace, USER_VA, "read", uctx(pkrs=pkrs))


def test_pks_does_not_block_instruction_fetch(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, pkey=1)
    pkrs = regs.pkrs_value(k1=regs.PKR_AD)
    mmu.check(aspace, KERN_VA, "exec", kctx(pkrs=pkrs))


def test_accessed_dirty_bits_maintained(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace)
    mmu.check(aspace, KERN_VA, "read", kctx())
    _, pte = aspace.translate(KERN_VA)
    assert pte & PTE_A and not pte & PTE_D
    mmu.check(aspace, KERN_VA, "write", kctx())
    _, pte = aspace.translate(KERN_VA)
    assert pte & PTE_D


def test_shadow_stack_page_rejects_normal_writes(rig):
    phys, mmu, aspace = rig
    fn = phys.alloc_frame("ss")
    phys.frame(fn).is_shadow_stack = True
    aspace.map_page(KERN_VA, fn, PTE_P)  # non-writable-but-shadow
    with pytest.raises(PageFault):
        mmu.check(aspace, KERN_VA, "write", kctx())
    mmu.check(aspace, KERN_VA, "write", kctx(shadow_stack_op=True))


def test_shadow_stack_op_rejects_normal_pages(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace)
    with pytest.raises(PageFault):
        mmu.check(aspace, KERN_VA, "write", kctx(shadow_stack_op=True))


def test_checked_read_write_roundtrip(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace)
    mmu.write(aspace, KERN_VA + 16, b"hello", kctx())
    assert mmu.read(aspace, KERN_VA + 16, 5, kctx()) == b"hello"


def test_cross_page_write_checks_both_pages(rig):
    phys, mmu, aspace = rig
    map_kernel(phys, aspace, va=KERN_VA)
    # second page read-only
    map_kernel(phys, aspace, va=KERN_VA + PAGE_SIZE, flags=PTE_P)
    with pytest.raises(PageFault):
        mmu.write(aspace, KERN_VA + PAGE_SIZE - 2, b"abcd", kctx())
