"""Request-scoped causal tracing: minting, tree rebuild, rendering.

Covers the reqtrace unit surface on hand-built tracers (the fleet-scale
end-to-end properties — hygiene across pool reuse, per-request trees on
the seeded fleet — live in ``tests/fleet/test_reqtrace_fleet.py``).
"""

import json

import pytest

from repro.hw.cycles import CycleClock
from repro.obs.reqtrace import (RequestTraceIndex, SpanNode, TRACE_ID_LEN,
                                _build_forest, mint_trace_id)
from repro.obs.trace import SPAN, Tracer


def make_tracer():
    clock = CycleClock()
    return clock, Tracer(clock)


def burn(clock, n):
    clock.charge(n, "test")


# --------------------------------------------------------------------------- #
# minting
# --------------------------------------------------------------------------- #

def test_mint_is_deterministic_and_seed_name_scoped():
    a = mint_trace_id(7, "client-0")
    assert a == mint_trace_id(7, "client-0")
    assert len(a) == TRACE_ID_LEN
    assert int(a, 16) >= 0                       # hex
    assert a != mint_trace_id(8, "client-0")     # seed matters
    assert a != mint_trace_id(7, "client-1")     # name matters


def test_mint_does_not_depend_on_tracer_arming():
    # the ID is pure function of (seed, name): no clock, no ambient state
    before = mint_trace_id(42, "s")
    clock, tracer = make_tracer()
    with tracer.bind("deadbeef"):
        with tracer.span("noise"):
            burn(clock, 100)
    assert mint_trace_id(42, "s") == before


# --------------------------------------------------------------------------- #
# forest rebuild
# --------------------------------------------------------------------------- #

def test_forest_recovers_exact_nesting():
    clock, tracer = make_tracer()
    with tracer.bind("t1"):
        with tracer.span("outer"):
            burn(clock, 10)
            tracer.event("mark-a")
            with tracer.span("inner"):
                burn(clock, 5)
                tracer.event("mark-b")
            burn(clock, 10)
    index = RequestTraceIndex.from_tracer(tracer)
    (root,) = index.tree("t1")
    assert root.name == "outer"
    names = [c.name for c in root.children]
    assert names == ["mark-a", "inner"]
    inner = root.children[1]
    assert [c.name for c in inner.children] == ["mark-b"]
    assert inner.begin >= root.begin and inner.end <= root.end


def test_forest_handles_zero_duration_spans_at_boundaries():
    # a zero-width span opening exactly where its parent opens must still
    # attach *under* the parent (depth disambiguates what intervals can't)
    clock, tracer = make_tracer()
    with tracer.bind("t1"):
        with tracer.span("parent"):
            with tracer.span("empty-child"):
                pass
            burn(clock, 3)
    (root,) = RequestTraceIndex.from_tracer(tracer).tree("t1")
    assert root.name == "parent"
    assert [c.name for c in root.children] == ["empty-child"]


def test_forest_separates_sibling_roots():
    clock, tracer = make_tracer()
    with tracer.bind("t1"):
        with tracer.span("first"):
            burn(clock, 4)
        with tracer.span("second"):
            burn(clock, 4)
    roots = RequestTraceIndex.from_tracer(tracer).tree("t1")
    assert [r.name for r in roots] == ["first", "second"]
    assert all(not r.children for r in roots)


def test_events_without_binding_are_not_indexed():
    clock, tracer = make_tracer()
    with tracer.span("unbound"):
        burn(clock, 2)
    with tracer.bind("t9"):
        tracer.event("bound")
    index = RequestTraceIndex.from_tracer(tracer)
    assert index.ids() == ["t9"]
    assert len(index.events("t9")) == 1


# --------------------------------------------------------------------------- #
# lookup
# --------------------------------------------------------------------------- #

def _two_request_index():
    clock, tracer = make_tracer()
    ids = {name: mint_trace_id(1, name) for name in ("client-0", "client-1")}
    for name, tid in ids.items():
        with tracer.bind(tid):
            with tracer.span("work", session=name):
                burn(clock, 7)
    return RequestTraceIndex.from_tracer(tracer, names=ids), ids


def test_resolve_by_name_id_and_prefix():
    index, ids = _two_request_index()
    tid = ids["client-0"]
    assert index.resolve("client-0") == tid
    assert index.resolve(tid) == tid
    assert index.resolve(tid[:6]) == tid
    assert index.session_for(tid) == "client-0"


def test_resolve_rejects_unknown_and_ambiguous():
    index, ids = _two_request_index()
    with pytest.raises(KeyError):
        index.resolve("no-such-request")
    with pytest.raises(KeyError):
        index.resolve("")          # prefix of every ID → ambiguous


# --------------------------------------------------------------------------- #
# completeness + digests
# --------------------------------------------------------------------------- #

def _emit_full_arc(tracer, clock, tid):
    with tracer.bind(tid):
        with tracer.span("fleet:admit"):
            burn(clock, 1)
        with tracer.span("fleet:request"):
            burn(clock, 5)
            with tracer.span("channel:response"):
                burn(clock, 2)


def test_complete_requires_the_full_causal_arc():
    clock, tracer = make_tracer()
    _emit_full_arc(tracer, clock, "full")
    with tracer.bind("truncated"):       # ring-drop analogue: no admit
        with tracer.span("fleet:request"):
            burn(clock, 5)
            with tracer.span("channel:response"):
                burn(clock, 2)
    index = RequestTraceIndex.from_tracer(tracer)
    assert index.complete("full")
    assert not index.complete("truncated")
    assert "[incomplete" in index.render_text("truncated")
    assert "[incomplete" not in index.render_text("full")


def test_tree_digests_are_byte_identical_across_identical_runs():
    def one_run():
        clock, tracer = make_tracer()
        for name in ("client-0", "client-1"):
            _emit_full_arc(tracer, clock, mint_trace_id(3, name))
        return RequestTraceIndex.from_tracer(tracer).digests()

    first, second = one_run(), one_run()
    assert first == second
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
    assert all(len(d) == 64 for d in first.values())


def test_tree_digest_changes_when_the_tree_changes():
    clock, tracer = make_tracer()
    _emit_full_arc(tracer, clock, "a")
    base = RequestTraceIndex.from_tracer(tracer).tree_digest("a")
    with tracer.bind("a"):
        tracer.event("extra")
    assert RequestTraceIndex.from_tracer(tracer).tree_digest("a") != base


# --------------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------------- #

def test_chrome_trace_one_lane_per_request():
    index, ids = _two_request_index()
    view = index.chrome_trace()
    events = view["traceEvents"]
    lanes = [e for e in events if e.get("ph") == "M"
             and e["name"] == "thread_name"]
    assert len(lanes) == 2
    assert {e["tid"] for e in lanes} == {1, 2}
    labels = {e["args"]["name"] for e in lanes}
    assert any(label.startswith("client-0 [") for label in labels)
    # every non-metadata record sits in exactly one request's lane and
    # names its trace ID in args
    data = [e for e in events if e.get("ph") != "M"]
    for e in data:
        assert e["tid"] in (1, 2)
        assert e["args"]["trace"] in ids.values()


def test_chrome_trace_single_request_view():
    index, ids = _two_request_index()
    view = index.chrome_trace("client-1")
    data = [e for e in view["traceEvents"] if e.get("ph") != "M"]
    assert data and all(e["args"]["trace"] == ids["client-1"] for e in data)


def test_render_text_and_summary():
    clock, tracer = make_tracer()
    tid = mint_trace_id(5, "client-0")
    _emit_full_arc(tracer, clock, tid)
    index = RequestTraceIndex.from_tracer(tracer,
                                          names={"client-0": tid})
    text = index.render_text("client-0")
    assert text.splitlines()[0] == f"trace {tid} (client-0)"
    for stage in ("fleet:admit", "fleet:request", "channel:response"):
        assert stage in text
    summary = index.summary()
    assert summary[tid]["session"] == "client-0"
    assert summary[tid]["complete"] is True
    assert summary[tid]["events"] == 3


def test_index_is_read_only_on_the_clock():
    clock, tracer = make_tracer()
    _emit_full_arc(tracer, clock, "t")
    before = clock.cycles
    index = RequestTraceIndex.from_tracer(tracer)
    index.tree("t")
    index.digests()
    index.render_text("t")
    index.chrome_trace()
    assert clock.cycles == before
