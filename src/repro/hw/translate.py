"""CFG-keyed superblock translation cache for the micro CPU.

The interpreter in :class:`repro.hw.cpu.Cpu` pays a full
fetch → decode → table-lookup round trip per instruction. This module
pre-decodes straight-line runs of verified code into *superblocks* —
tuples of ``(instr, handler, cost)`` triples — so `Cpu.run` can dispatch
whole runs with one MMU check at block entry.

Correctness contract (enforced by the lockstep oracle tests and the
``repro.analysis`` lint):

* **Bit-exact charging.** A superblock charges exactly the
  ``_OP_COSTS`` sequence `Cpu.step` would: one ``charge(cost, "instr")``
  per retired instruction, in program order, from the same handler
  table. Build and lookup never read or charge the cycle clock — the
  cache is a host-speed plane.
* **One architectural check per page run.** `Cpu.step` permission-checks
  the fetch of every instruction; inside a block those checks are
  state-no-ops (exec checks depend only on ``mode``/``CR4``/the PTE, all
  of which are either block terminators here or witnessed below), so the
  cache performs the real ``mmu.check`` once at acquisition — preserving
  faults and A-bit maintenance — and skips the provably-idempotent rest.
* **Witnessed staleness.** Every block records the ``Frame.version`` of
  the code frame, the byte image of the leaf PTE mapping it, and the
  interior-entry byte images of the walk (the paging-structure-cache
  record). Any PTE rewrite, CoW resolution, scrub, seal or code-byte
  write changes a witnessed byte or version and the block (and any live
  cursor into it) dies on the next instruction boundary.

Blocks end at control flow, at mode/CR-changing instructions, at
undecodable bytes, and before any instruction that would straddle the
page boundary (those fall back to the interpreter, byte-for-byte).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import InvalidOpcode
from .isa import INSTR_SIZE, decode_cached
from .memory import PAGE_SIZE
from .paging import _PSC_AD_MASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cpu import Cpu
    from .paging import AddressSpace

#: Instructions that terminate a superblock. Control flow leaves the
#: straight line; ``mov_cr``/``lidt``/``tdcall``/``syscall``/``sysret``/
#: ``iret`` can change the inputs of the skipped fetch checks
#: (mode, CR3, CR4) or redirect execution wholesale.
BLOCK_ENDERS = frozenset({
    "jmp", "jz", "jnz", "call", "icall", "ijmp", "ret", "endbr",
    "syscall", "sysret", "iret", "int", "hlt",
    "mov_cr", "lidt", "tdcall",
})
# endbr ends a block only in the sense that it is a branch *target*
# landing pad; keeping it terminal keeps IBT arming states out of block
# interiors entirely (the interpreter fallback owns every _ibt_wait
# transition).

_LAST_SLOT = PAGE_SIZE - INSTR_SIZE

#: Handlers that provably cannot fault, write memory, observe the cycle
#: clock, or change mode/CR state: register/flag arithmetic plus the
#: direct jumps (which only *return* a target). A maximal run of these
#: executes with one fused ``charge`` — bit-exact, because consecutive
#: same-tag charges with no observer between them commute — and without
#: intermediate witness re-checks (nothing in the run can invalidate one).
PURE_OPS = frozenset({
    "nop", "mov", "movi", "add", "sub", "and", "or", "xor", "shl", "shr",
    "cmp", "cmpi", "addi", "mul", "jmp", "jz", "jnz",
})

#: Handlers that may write simulated memory (data stores, stack pushes,
#: per-CPU stores). A store can rewrite page-table bytes or the code
#: page itself, so the block witness must be re-validated before any
#: later instruction of the same block executes.
MUTATOR_OPS = frozenset({"store", "push", "gsstore"})

#: segment kinds (see :meth:`Superblock.__init__`)
SEG_PURE = 0          # fused run of PURE_OPS
SEG_SINGLE = 1        # one instruction, cannot invalidate the witness
SEG_MUTATOR = 2       # one instruction, re-validate witness afterwards


def _segment(entries: tuple) -> tuple:
    """Split a block's entries into execution segments.

    Returns ``(kind, cost, ops)`` triples where ``ops`` is a tuple of
    ``(instr, handler)`` pairs. ``SEG_PURE`` runs carry the summed cost
    of every instruction in the run; singleton segments carry that
    instruction's own cost.
    """
    segments = []
    run: list = []
    run_cost = 0
    for instr, handler, cost in entries:
        if instr.op in PURE_OPS:
            run.append((instr, handler))
            run_cost += cost
            continue
        if run:
            segments.append((SEG_PURE, run_cost, tuple(run)))
            run, run_cost = [], 0
        kind = SEG_MUTATOR if instr.op in MUTATOR_OPS else SEG_SINGLE
        segments.append((kind, cost, ((instr, handler),)))
    if run:
        segments.append((SEG_PURE, run_cost, tuple(run)))
    return tuple(segments)


class Superblock:
    """One straight-line decoded run, valid while its witness holds."""

    __slots__ = ("start_va", "entries", "segments", "witness")

    def __init__(self, start_va: int, entries: tuple, witness: tuple):
        self.start_va = start_va
        #: ``(instr, handler, cost)`` per instruction, program order
        self.entries = entries
        #: pre-segmented execution plan (see :func:`_segment`)
        self.segments = _segment(entries)
        #: ``(walk_wit, leaf_frame, slot_off, pte_img, code_frame,
        #: code_version)`` — the paging-structure-cache record for the
        #: walk, the leaf PTE's byte image, and the code frame's version
        self.witness = witness

    def fresh(self) -> bool:
        walk_wit, ltf, soff, pte_img, cf, cv = self.witness
        if cf.version != cv:
            return False
        d = ltf.data
        if d is None or d[soff:soff + 8] != pte_img:
            return False
        _, _, rf, e2_off, e2_img, lf, e1_off, e1_head, e1_tail = walk_wit
        rd = rf.data
        if rd is None or rd[e2_off:e2_off + 8] != e2_img:
            return False
        ld = lf.data
        return (ld is not None and ld[e1_off] & _PSC_AD_MASK == e1_head
                and ld[e1_off + 1:e1_off + 8] == e1_tail)


class TranslationCache:
    """Per-core superblock cache keyed by ``(root_fn, block_start_va)``."""

    #: deterministic capacity guard: drop everything rather than evict
    CAPACITY = 8192

    def __init__(self, cpu: Cpu):
        self.cpu = cpu
        self.enabled = True
        self._blocks: dict[tuple[int, int], Superblock] = {}
        # host-plane statistics (exported as metrics outside any digest)
        self.sb_exec = 0      # instructions retired from superblocks
        self.sb_builds = 0
        self.sb_hits = 0
        #: simulated cycles charged through superblock segments. Written
        #: by ``Cpu._translated_burst`` (D6 keeps all clock interaction
        #: out of this module); the budget ledger carves these out of the
        #: ``instr`` tag as the ``exec.superblock`` plane.
        self.sb_cycles = 0

    def stats(self) -> dict:
        """Host-plane counters, JSON-able (never in a digest preimage)."""
        return {"sb_exec": self.sb_exec, "sb_builds": self.sb_builds,
                "sb_hits": self.sb_hits, "sb_cycles": self.sb_cycles}

    def flush(self) -> None:
        self._blocks.clear()

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #

    def acquire(self, rip: int) -> Superblock | None:
        """Return a fresh superblock starting at ``rip``, or None.

        Performs the *real* ``mmu.check`` for the block-entry fetch —
        the one architectural side effect (faults, A-bit) the skipped
        per-instruction checks would have produced — so a None return
        means only "interpret this one", never a missed fault: any
        fault raises here exactly as `Cpu.step` would raise it.
        """
        cpu = self.cpu
        if (rip & (PAGE_SIZE - 1)) > _LAST_SLOT:
            return None        # page-straddling fetch: interpreter owns it
        aspace = cpu.aspace
        pa, _ = cpu.mmu.check(aspace, rip, "exec", cpu.access_ctx())
        key = (aspace.root_fn, rip)
        sb = self._blocks.get(key)
        if sb is not None:
            if sb.fresh():
                self.sb_hits += 1
                return sb
            del self._blocks[key]
        return self._build(aspace, rip, pa, key)

    def _build(self, aspace: AddressSpace, rip: int, pa: int,
               key: tuple[int, int]) -> Superblock | None:
        cpu = self.cpu
        path = aspace.leaf_path(rip)
        if path is None:  # pragma: no cover - check() above guarantees it
            return None
        slot, walk_wit = path
        code_frame = cpu.phys.frame(pa >> 12)
        data = code_frame.data
        if data is None:
            return None        # zero-fill page: first decode faults anyway
        dispatch = cpu._dispatch
        entries = []
        offset = pa & (PAGE_SIZE - 1)
        buf = bytes(data)
        while offset <= _LAST_SLOT:
            try:
                instr = decode_cached(buf[offset:offset + INSTR_SIZE])
            except InvalidOpcode:
                break
            handler_cost = dispatch.get(instr.op)
            if handler_cost is None:
                break          # unimplemented op: interpreter raises it
            entries.append((instr, handler_cost[0], handler_cost[1]))
            if instr.op in BLOCK_ENDERS:
                break
            offset += INSTR_SIZE
        if not entries:
            return None
        self.sb_builds += 1
        if len(self._blocks) >= self.CAPACITY:
            self._blocks.clear()
        pte_img = cpu.phys.read_u64(slot.pa).to_bytes(8, "little")
        witness = (walk_wit, cpu.phys.frame(slot.table_fn),
                   slot.index * 8, pte_img, code_frame, code_frame.version)
        sb = Superblock(rip, tuple(entries), witness)
        self._blocks[key] = sb
        return sb

    # ------------------------------------------------------------------ #
    # CFG preload
    # ------------------------------------------------------------------ #

    def preload(self, aspace: AddressSpace, va: int, code: bytes) -> int:
        """Pre-translate every basic block of a verified code image.

        Called after the boot-time :class:`repro.analysis.StaticVerifier`
        has approved ``code`` mapped at ``va``: the recovered CFG names
        each block head, so the whole image is decoded exactly once at
        load time instead of lazily at first execution. Returns the
        number of superblocks built. Purely host-plane: no cycles, no
        architectural state.
        """
        from ..analysis.cfg import build_cfg

        built = 0
        cfg = build_cfg(code, va)
        for block_va in cfg.block_table():
            hit = aspace.translate(block_va)
            if hit is None:
                continue
            key = (aspace.root_fn, block_va)
            if self._build(aspace, block_va, hit[0], key) is not None:
                built += 1
        return built
