"""CLI: ``python -m repro.analysis {verify,dataflow,lint,report}``.

``verify``
    CFG-verify a SELF image (default: the instrumented distribution
    kernel). ``--self-check`` additionally runs the seeded attack corpus
    and requires every attack to be rejected with its expected check ID —
    the CI gate. ``--json`` writes the VerifierReport artifact.

``dataflow``
    Run the abstract-interpretation plane (V8 sensitive-taint, V9
    stack-balance, V10 static-budget) over a SELF image and print the
    proven StaticBudget. ``--self-check`` runs the dataflow attack
    corpus: every attack must pass V0–V7 *and* be rejected with exactly
    its expected dataflow check. ``--json`` writes the DataflowReport.

``lint``
    Run rules D1–D7 over paths (default: the installed ``repro``
    package), applying the in-tree ratchet. ``--update`` (alias
    ``--update-ratchet``) regenerates the ratchet from current findings,
    carrying existing rationales (D1/D2 never ratchetable). Exit 1 on
    any non-waived finding.

``report``
    One JSON document combining kernel verification (both planes), the
    attack-corpus self-checks, and the lint summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..hw.isa import scan_for_sensitive
from ..kernel.image import SelfImage, build_kernel_image
from ..kernel.instrument import instrument_image
from .lint import RULES, lint_paths
from .ratchet import Ratchet, default_ratchet_path
from .verifier import StaticVerifier


def _kernel_image() -> SelfImage:
    image, _ = instrument_image(build_kernel_image())
    return image


def _verify_payload(args) -> dict:
    verifier = StaticVerifier()
    if getattr(args, "image", None):
        image = SelfImage.deserialize(Path(args.image).read_bytes())
    else:
        image = _kernel_image()
    report = verifier.verify_image(image)
    payload = {"kernel": report.as_dict(),
               "kernel_digest": report.digest()}
    if getattr(args, "self_check", False):
        from .attacks import attack_corpus
        attacks = []
        for attack in attack_corpus():
            rep = verifier.verify_image(attack.image)
            scan_clean = not any(
                scan_for_sensitive(s.data)
                for s in attack.image.executable_sections())
            attacks.append({
                "name": attack.name,
                "expected_check": attack.expected_check,
                "failed_checks": rep.failed_checks,
                "rejected_as_expected":
                    attack.expected_check in rep.failed_checks,
                "byte_scan_clean": scan_clean,
                "byte_scan_as_expected":
                    scan_clean == attack.passes_byte_scan,
                "digest": rep.digest(),
            })
        payload["attacks"] = attacks
    return payload


def _dataflow_payload(args) -> dict:
    from .absint import DataflowVerifier
    verifier = DataflowVerifier()
    if getattr(args, "image", None):
        image = SelfImage.deserialize(Path(args.image).read_bytes())
    else:
        image = _kernel_image()
    report = verifier.verify_image(image)
    payload = {"kernel": report.as_dict(),
               "kernel_digest": report.digest()}
    if getattr(args, "self_check", False):
        from .attacks import dataflow_attack_corpus
        structural = StaticVerifier()
        attacks = []
        for attack in dataflow_attack_corpus():
            rep = verifier.verify_image(attack.image)
            v0_v7 = structural.verify_image(attack.image)
            attacks.append({
                "name": attack.name,
                "expected_check": attack.expected_check,
                "failed_checks": rep.failed_checks,
                "rejected_as_expected":
                    rep.failed_checks == [attack.expected_check],
                "passes_v0_v7": v0_v7.ok,
                "digest": rep.digest(),
            })
        payload["attacks"] = attacks
    return payload


def _cmd_dataflow(args) -> int:
    payload = _dataflow_payload(args)
    kernel = payload["kernel"]
    ok = kernel["ok"]
    budget = kernel["budget"] or {}
    print(f"kernel {kernel['image']}: "
          f"{'PROVEN' if ok else 'REJECTED'} "
          f"({kernel['instructions']} instrs, {kernel['iterations']} "
          f"fixpoint iterations, digest {payload['kernel_digest'][:16]})")
    for check in kernel["checks"]:
        mark = "ok" if check["passed"] else f"FAIL x{check['count']}"
        print(f"  {check['id']} {check['name']:<20} {mark}")
    if budget:
        print(f"  budget: emc<={budget['emc_per_activation']} "
              f"exits<={budget['exits_per_activation']} per activation, "
              f"emc<={budget['emc_per_kcycle']}/kcycle")
    for attack in payload.get("attacks", []):
        good = attack["rejected_as_expected"] and attack["passes_v0_v7"]
        ok = ok and good
        verdict = "ok" if good else "UNEXPECTED"
        print(f"  attack {attack['name']:<28} expected "
              f"{attack['expected_check']} got "
              f"{','.join(attack['failed_checks']) or '-'} "
              f"(V0-V7 {'clean' if attack['passes_v0_v7'] else 'DIRTY'}) "
              f"[{verdict}]")
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0 if ok else 1


def _cmd_verify(args) -> int:
    payload = _verify_payload(args)
    kernel = payload["kernel"]
    ok = kernel["ok"]
    print(f"kernel {kernel['image']}: "
          f"{'CLEAN' if ok else 'REJECTED'} "
          f"({kernel['instructions']} instrs, {kernel['gate_sites']} gate "
          f"thunks, digest {payload['kernel_digest'][:16]})")
    for check in kernel["checks"]:
        mark = "ok" if check["passed"] else f"FAIL x{check['count']}"
        print(f"  {check['id']} {check['name']:<20} {mark}")
    for attack in payload.get("attacks", []):
        good = attack["rejected_as_expected"] and \
            attack["byte_scan_as_expected"]
        ok = ok and good
        verdict = "ok" if good else "UNEXPECTED"
        print(f"  attack {attack['name']:<28} expected "
              f"{attack['expected_check']} got "
              f"{','.join(attack['failed_checks']) or '-'} [{verdict}]")
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    ratchet_path = Path(args.ratchet) if args.ratchet \
        else default_ratchet_path()
    if args.update_ratchet:
        findings, _ = lint_paths(paths, ratchet=None)
        previous = Ratchet.load(ratchet_path)
        ratchet = Ratchet.from_findings(findings, previous=previous)
        ratchet.save(ratchet_path)
        unr = [f for f in findings if f.rule in ("D1", "D2")]
        print(f"ratchet written to {ratchet_path} "
              f"({len(ratchet.entries)} entries)")
        for f in unr:
            print(f"UNRATCHETABLE {f}")
        return 1 if unr else 0
    ratchet = Ratchet.load(ratchet_path)
    kept, waived = lint_paths(paths, ratchet=ratchet)
    for f in kept:
        print(f)
    if waived and args.show_waived:
        for f in waived:
            print(f"waived: {f}")
    print(f"{len(kept)} finding(s), {len(waived)} waived "
          f"(rules: {', '.join(sorted(RULES))})")
    return 1 if kept else 0


def _cmd_report(args) -> int:
    class _Args:
        image = None
        self_check = True
    payload = _verify_payload(_Args())
    payload["dataflow"] = _dataflow_payload(_Args())
    ratchet = Ratchet.load(default_ratchet_path())
    paths = args.paths or [str(Path(__file__).resolve().parents[1])]
    kept, waived = lint_paths(paths, ratchet=ratchet)
    payload["lint"] = {
        "kept": [f.__dict__ for f in kept],
        "waived": [f.__dict__ for f in waived],
        "rules": RULES,
    }
    blob = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(blob)
        print(f"report written to {args.out}")
    else:
        print(blob, end="")
    ok = payload["kernel"]["ok"] and not kept and all(
        a["rejected_as_expected"] and a["byte_scan_as_expected"]
        for a in payload["attacks"])
    ok = ok and payload["dataflow"]["kernel"]["ok"] and all(
        a["rejected_as_expected"] and a["passes_v0_v7"]
        for a in payload["dataflow"]["attacks"])
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Erebor static analysis: CFG verifier + lints")
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("verify", help="CFG-verify a SELF image")
    p.add_argument("--image", help="path to a serialized SELF image "
                   "(default: the instrumented distribution kernel)")
    p.add_argument("--self-check", action="store_true", dest="self_check",
                   help="also run the seeded attack corpus")
    p.add_argument("--json", help="write the report JSON here")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("dataflow",
                       help="dataflow-verify a SELF image (V8-V10)")
    p.add_argument("--image", help="path to a serialized SELF image "
                   "(default: the instrumented distribution kernel)")
    p.add_argument("--self-check", action="store_true", dest="self_check",
                   help="also run the dataflow attack corpus")
    p.add_argument("--json", help="write the report JSON here")
    p.set_defaults(fn=_cmd_dataflow)

    p = sub.add_parser("lint", help="run discipline rules D1-D7")
    p.add_argument("paths", nargs="*", help="files/dirs "
                   "(default: the repro package)")
    p.add_argument("--ratchet", help="ratchet file "
                   "(default: the in-tree one)")
    p.add_argument("--update", "--update-ratchet", action="store_true",
                   dest="update_ratchet",
                   help="regenerate the ratchet from current findings "
                        "(rationales carried over)")
    p.add_argument("--show-waived", action="store_true")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("report", help="combined verify+lint JSON")
    p.add_argument("paths", nargs="*")
    p.add_argument("--out", help="write the JSON here (default: stdout)")
    p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
