"""Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group.

Used by the client↔monitor authenticated key exchange (paper §6.3). The
exchange is authenticated by binding a hash of the DH transcript into the
TDX quote's ``report_data`` — see :mod:`repro.core.channel`.

Simulation-grade: parameters and structure are real, but private keys come
from a caller-supplied deterministic RNG so runs are reproducible.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

# RFC 3526, group 14 (2048-bit MODP). Generator 2.
MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2


class KeyExchangeError(Exception):
    """Peer public value failed validation."""


@dataclass
class DhKeyPair:
    private: int
    public: int


def generate_keypair(rng: random.Random) -> DhKeyPair:
    """Generate an ephemeral keypair from a deterministic RNG."""
    private = rng.getrandbits(256) | (1 << 255)
    public = pow(GENERATOR, private, MODP_2048_P)
    return DhKeyPair(private, public)


def validate_public(public: int) -> None:
    """Reject degenerate peer values (1, p-1, out of range)."""
    if not 2 <= public <= MODP_2048_P - 2:
        raise KeyExchangeError("peer public value out of range")


def shared_secret(own: DhKeyPair, peer_public: int) -> bytes:
    """Compute the raw shared secret, hashed to a fixed 32 bytes."""
    validate_public(peer_public)
    secret = pow(peer_public, own.private, MODP_2048_P)
    return hashlib.sha256(secret.to_bytes(256, "big")).digest()


def transcript_hash(*parts: bytes) -> bytes:
    """Hash a handshake transcript (length-prefixed, order-sensitive)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()
