"""Tables 2 and 5 — definitional tables, regenerated from the system.

Table 2 (sensitive privileged instructions) is printed from the ISA's
encoding tables together with a count of each class in the distribution
kernel image and a live demonstration that the verifier finds all of
them. Table 5 (workload descriptions) is printed from the registered
workload profiles, paper-scale columns alongside the simulation scale.
"""

import pytest

from repro.apps.base import REGISTRY, workload as make_workload
from repro.bench.report import format_table, mib
from repro.hw.isa import SENSITIVE_OPS, SENSITIVE_PREFIX, scan_for_sensitive
from repro.kernel.image import build_kernel_image

TABLE2_DESCRIPTIONS = {
    "mov_cr": ("CR", "write CR0/3/4: MMU control + kernel protection bits"),
    "wrmsr": ("MSR", "configure PKS/CET/LSTAR/UINTR control registers"),
    "stac": ("SMAP", "temporarily grant kernel access to user memory"),
    "lidt": ("IDT", "control interrupt/exception context switches"),
    "tdcall": ("GHCI", "TDX module calls: MapGPA / VM exits / attestation"),
}

TABLE5_PAPER = {
    "llama.cpp": "llama2-7b ~5GB common model, 256MB confined KV, 8 threads",
    "yolo": "Yolov5 common weights, 100-image segmentation batch",
    "drugbank": "~400MB common in-memory DB, 2.2M queries",
    "graphchi": "PageRank, Twitch-gamers 6.8M edges, 2GB confined",
    "unicorn": "APT analyzer, 20MB parsed log, 2GB confined cache",
}


def test_print_table2(benchmark):
    def build():
        image = build_kernel_image()
        hits = scan_for_sensitive(image.section(".text").data)
        counts = {}
        for _, op in hits:
            counts[op] = counts.get(op, 0) + 1
        rows = []
        for op, sub in SENSITIVE_OPS.items():
            kind, desc = TABLE2_DESCRIPTIONS[op]
            rows.append([kind, op, f"{SENSITIVE_PREFIX:#04x} {sub:#04x}",
                         counts.get(op, 0), desc])
        return format_table(
            "Table 2: sensitive privileged instructions "
            "(+occurrences found in the distribution kernel)",
            ["type", "instruction", "encoding", "in vmlinux-sim",
             "usage"], rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + table)
    for op in SENSITIVE_OPS:
        assert op in table


def test_every_sensitive_class_present_in_kernel(benchmark):
    hits = benchmark.pedantic(
        lambda: scan_for_sensitive(
            build_kernel_image().section(".text").data),
        rounds=1, iterations=1)
    assert {op for _, op in hits} == set(SENSITIVE_OPS)


def test_print_table5(benchmark):
    def build():
        rows = []
        for name in ("llama.cpp", "yolo", "drugbank", "graphchi", "unicorn"):
            profile = make_workload(name).profile
            common = sum(s.size for s in profile.common)
            rows.append([
                name,
                f"{profile.threads}",
                mib(profile.heap_bytes),
                mib(common) if common else "-",
                TABLE5_PAPER[name],
            ])
        return format_table(
            "Table 5: workloads (simulation scale; paper parameters right)",
            ["program", "threads", "confined", "common",
             "paper workload"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_profiles_preserve_paper_shape(benchmark):
    """Common-vs-confined split matches Table 5's qualitative structure."""
    profiles = benchmark.pedantic(
        lambda: {n: make_workload(n).profile for n in TABLE5_PAPER},
        rounds=1, iterations=1)
    # llama/yolo/drugbank have common regions; graphchi/unicorn do not
    assert profiles["llama.cpp"].common and profiles["yolo"].common
    assert profiles["drugbank"].common
    assert not profiles["graphchi"].common
    assert not profiles["unicorn"].common
    # llama's common (model) dwarfs its confined (KV cache), like 5GB/256MB
    llama = profiles["llama.cpp"]
    assert sum(s.size for s in llama.common) > 2 * llama.heap_bytes
    # 8 threads everywhere the paper says 8
    for name in ("llama.cpp", "yolo", "graphchi", "unicorn"):
        assert profiles[name].threads == 8
