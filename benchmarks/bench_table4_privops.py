"""Table 4 — delegated privileged-operation costs, Native vs Erebor.

Regenerates the six rows (MMU / CR / SMAP / IDT / MSR / GHCI) as *direct*
cycle costs through the real PrivilegedOps implementations, matching the
paper's quiet-core measurement methodology (the macro model's cache/TLB
disturbance term is excluded here, as documented in DESIGN.md §5).
"""

import pytest

from repro.bench.report import format_table
from repro.core import erebor_boot
from repro.hw.cycles import Cost
from repro.hw.paging import PTE_P, PTE_U, make_pte
from repro.vm import CvmMachine, MachineConfig, MIB

PAPER = {
    "MMU": (23, 1345), "CR": (294, 1593), "SMAP": (62, 1291),
    "IDT": (260, 1369), "MSR": (364, 1613), "GHCI": (126806, 128081),
}


def _native_rig():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    kernel = machine.boot_native_kernel()
    return machine, kernel


def _erebor_rig():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    system = erebor_boot(machine, cma_bytes=16 * MIB)
    return machine, system


def _direct(machine, fn) -> int:
    before = machine.clock.snapshot()
    fn()
    delta = machine.clock.since(before)
    return delta.cycles - delta.by_tag.get("uarch", 0)


def _ops_exercises(machine, kernel_or_system, erebor: bool):
    """Return {row: callable} performing each Table 4 operation once."""
    if erebor:
        system = kernel_or_system
        ops, kernel, monitor = system.monitor.ops, system.kernel, system.monitor
    else:
        kernel = kernel_or_system
        ops, monitor = kernel.ops, None
    task = kernel.spawn("bench")
    fn = machine.phys.alloc_frame(task.owner_tag)
    pte = make_pte(fn, PTE_P | PTE_U)
    idt = machine.cpu.idt

    ghci = ((lambda: monitor.attest(b"x" * 32)) if erebor
            else (lambda: kernel.ops.tdreport(b"x" * 32)))
    return {
        "MMU": lambda: ops.write_pte(task.aspace, 0x40_0000, pte),
        "CR": lambda: ops.write_cr(4, machine.cpu.crs[4]),
        "SMAP": lambda: ops.user_copy(8, to_user=True),
        "IDT": lambda: ops.load_idt(idt),
        "MSR": lambda: ops.write_msr(0x900, 7),
        "GHCI": ghci,
    }


@pytest.fixture(scope="module")
def table4_rows():
    rows = {}
    m_native, kernel = _native_rig()
    native_ops = _ops_exercises(m_native, kernel, erebor=False)
    m_erebor, system = _erebor_rig()
    erebor_ops = _ops_exercises(m_erebor, system, erebor=True)
    for name in PAPER:
        native = _direct(m_native, native_ops[name])
        erebor = _direct(m_erebor, erebor_ops[name])
        rows[name] = (native, erebor)
    return rows


@pytest.mark.parametrize("name", list(PAPER))
def test_privileged_op_cost(benchmark, table4_rows, name):
    native, erebor = benchmark.pedantic(lambda: table4_rows[name],
                                        rounds=1, iterations=1)
    paper_native, paper_erebor = PAPER[name]
    if name == "SMAP":
        # the SMAP row's paper numbers cover the raw stac/clac pair; both
        # of our exercises include the one-page copy body, so compare the
        # Erebor-minus-native *delta* to the paper's (1291 - 62)
        assert abs((erebor - native) - (paper_erebor - paper_native)) <= 60
    else:
        assert abs(native - paper_native) <= max(0.15 * paper_native, 40), name
        assert abs(erebor - paper_erebor) <= max(0.05 * paper_erebor, 40), name


def test_print_table4(benchmark, table4_rows):
    def build():
        rows = []
        for name, (native, erebor) in table4_rows.items():
            p_native, p_erebor = PAPER[name]
            rows.append([name, native, erebor, f"{erebor / native:.2f}x",
                         p_native, p_erebor, f"{p_erebor / p_native:.2f}x"])
        return format_table(
            "Table 4: privileged operations (CPU cycles, direct)",
            ["op", "native", "erebor", "ratio",
             "paper-native", "paper-erebor", "paper-ratio"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))
