"""Budget-informed admission: V10's StaticBudget driving the fleet.

The boot-time dataflow plane proves a per-image worst-case EMC bound
(:class:`repro.analysis.absint.StaticBudget`); admission converts it to a
per-request ceiling, the scheduler meters against that ceiling, and the
proven rate bound dominates every observed runtime rate (soundness).
"""

import pytest

from repro.analysis.absint import StaticBudget
from repro.fleet import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
    run_fleet,
)

MIB = 1024 * 1024


def _budget(emc=2, exits=0):
    return StaticBudget(image="test-kernel", emc_per_activation=emc,
                        exits_per_activation=exits, emc_per_kcycle=0.5,
                        exits_per_kcycle=0.0)


UNBOUNDED = StaticBudget(image="looped", emc_per_activation=None,
                         exits_per_activation=None, emc_per_kcycle=0.791139,
                         exits_per_kcycle=0.0)


# --------------------------------------------------------------------------- #
# controller unit behaviour
# --------------------------------------------------------------------------- #

def test_quota_clamped_to_proven_ceiling():
    ctl = AdmissionController(AdmissionConfig(
        static_budget=_budget(emc=2), activations_per_request=100))
    quota = ctl.quota_for("t0")
    # proven ceiling 2 * 100 = 200 < the 10_000 default
    assert quota.max_emc_per_request == 200
    # untouched dimensions pass through
    assert quota.max_active_sessions == TenantQuota().max_active_sessions


def test_generous_proof_leaves_quota_alone():
    ctl = AdmissionController(AdmissionConfig(
        static_budget=_budget(emc=1_000),
        activations_per_request=1_000_000))
    assert ctl.quota_for("t0").max_emc_per_request == \
        TenantQuota().max_emc_per_request


def test_clamp_composes_with_per_tenant_quotas():
    ctl = AdmissionController(AdmissionConfig(
        quotas={"vip": TenantQuota(max_emc_per_request=50)},
        static_budget=_budget(emc=2), activations_per_request=100))
    # the tighter of (tenant quota, proven ceiling) wins, per tenant
    assert ctl.quota_for("vip").max_emc_per_request == 50
    assert ctl.quota_for("other").max_emc_per_request == 200


def test_unbounded_budget_rejects_deterministically():
    ctl = AdmissionController(AdmissionConfig(static_budget=UNBOUNDED))
    for _ in range(3):
        d = ctl.decide("t0", requested_bytes=MIB, active={}, queued=0,
                       free_slots=4)
        assert (d.action, d.reason) == ("reject", "static-budget")
    assert all(entry[1] == "reject" for entry in ctl.log)


def test_budget_blind_admission_unchanged():
    ctl = AdmissionController(AdmissionConfig(static_budget=None))
    d = ctl.decide("t0", requested_bytes=MIB, active={}, queued=0,
                   free_slots=4)
    assert d.action == "admit"


# --------------------------------------------------------------------------- #
# end-to-end fleet behaviour
# --------------------------------------------------------------------------- #

def test_static_budget_admission_requires_dataflow_boot():
    from repro.core.monitor import EreborFeatures
    with pytest.raises(ValueError, match="dataflow-verified boot"):
        run_fleet(workload="helloworld", clients=1, requests=1,
                  features=EreborFeatures(dataflow_verifier=False),
                  static_budget_admission=True)


def test_fleet_wires_the_boot_proof_into_admission():
    report, system = run_fleet(workload="helloworld", clients=2,
                               requests=1, seed=11,
                               static_budget_admission=True)
    proof = system.monitor.kernel_dataflow_report.budget
    assert proof.bounded
    assert report.requests_served == 2


def test_tight_budget_evicts_deterministically():
    # one activation per request: the proven per-request ceiling drops
    # to emc_per_activation (a handful), far below what one llama.cpp
    # request actually burns — the scheduler must evict on the meter
    admission = AdmissionConfig(activations_per_request=1)
    kwargs = dict(workload="llama.cpp", clients=4, requests=2,
                  pool_size=2, tenants=2, seed=2025, scale=0.1,
                  admission=admission, static_budget_admission=True)
    report, system = run_fleet(**kwargs)
    assert report.counts["evict"] > 0
    assert all(s["outcome"] == "evicted" for s in report.sessions
               if s["reason"] == "emc-quota")
    # deterministic: same seed, same evictions, same digest
    again, _ = run_fleet(**kwargs)
    assert again.counts == report.counts
    assert again.digest() == report.digest()


def test_v10_rate_bound_dominates_observed_fleet_rate():
    """Soundness of the headline bound: the statically proven EMC
    density (events per kilocycle) is never exceeded by the measured
    rate of a real 16-request llama fleet."""
    report, system = run_fleet(workload="llama.cpp", clients=8,
                               requests=2, pool_size=4, tenants=2,
                               seed=2025, scale=0.1,
                               static_budget_admission=True)
    budget = system.monitor.kernel_dataflow_report.budget
    emc_events = sum(s["emc_used"] for s in report.sessions)
    assert emc_events > 0 and report.total_cycles > 0
    measured_per_kcycle = 1000.0 * emc_events / report.total_cycles
    assert measured_per_kcycle <= budget.emc_per_kcycle, (
        f"measured {measured_per_kcycle:.6f} EMC/kcycle exceeds the "
        f"proven bound {budget.emc_per_kcycle}")
