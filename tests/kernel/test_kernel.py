"""Unit tests for the guest kernel: tasks, paging, timer, syscalls."""

import pytest

from repro.hw.cycles import Cost
from repro.hw.memory import PAGE_SIZE
from repro.kernel import PROT_READ, PROT_WRITE, SegmentationFault
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def machine():
    return CvmMachine(MachineConfig(memory_bytes=256 * MIB))


@pytest.fixture
def kernel(machine):
    return machine.boot_native_kernel()


def test_boot_configures_protections(kernel, machine):
    from repro.hw import regs
    assert machine.cpu.crs[4] & regs.CR4_SMEP
    assert machine.cpu.crs[4] & regs.CR4_SMAP
    assert machine.cpu.msrs[regs.IA32_LSTAR] != 0
    assert machine.cpu.idt is not None


def test_spawn_creates_isolated_address_spaces(kernel):
    a, b = kernel.spawn("a"), kernel.spawn("b")
    assert a.pid != b.pid
    assert a.aspace is not b.aspace


def test_demand_paging_on_touch(kernel):
    task = kernel.spawn("t")
    vma = kernel.mmap(task, 8 * PAGE_SIZE, PROT_READ | PROT_WRITE)
    faults = kernel.touch_pages(task, vma.start, 8 * PAGE_SIZE, write=True)
    assert faults == 8
    # second touch is fault-free
    assert kernel.touch_pages(task, vma.start, 8 * PAGE_SIZE, write=True) == 0
    assert kernel.clock.events["page_fault"] == 8


def test_fault_outside_vma_segfaults(kernel):
    task = kernel.spawn("t")
    with pytest.raises(SegmentationFault):
        kernel.touch_pages(task, 0x5000_0000, PAGE_SIZE)


def test_write_fault_on_readonly_vma_segfaults(kernel):
    task = kernel.spawn("t")
    vma = kernel.mmap(task, PAGE_SIZE, PROT_READ)
    with pytest.raises(SegmentationFault):
        kernel.touch_pages(task, vma.start, PAGE_SIZE, write=True)
    # reads are fine
    kernel.touch_pages(task, vma.start, PAGE_SIZE)


def test_brk_grows_heap(kernel):
    task = kernel.spawn("t")
    old = task.brk
    new = kernel.syscall(task, "brk", old + 4 * PAGE_SIZE)
    assert new == old + 4 * PAGE_SIZE
    assert kernel.touch_pages(task, old, 4 * PAGE_SIZE, write=True) == 4


def test_munmap_clears_mappings(kernel):
    task = kernel.spawn("t")
    vma = kernel.mmap(task, 2 * PAGE_SIZE, PROT_READ | PROT_WRITE)
    kernel.touch_pages(task, vma.start, 2 * PAGE_SIZE, write=True)
    kernel.munmap(task, vma)
    with pytest.raises(SegmentationFault):
        kernel.touch_pages(task, vma.start, PAGE_SIZE)


def test_timer_ticks_fire_with_compute(kernel):
    kernel.spawn("t")
    before = kernel.clock.events["timer_interrupt"]
    kernel.advance(kernel.tick_period * 5)
    assert kernel.clock.events["timer_interrupt"] - before == 5


def test_timer_tick_raises_ve_for_apic_reprogram(kernel):
    kernel.spawn("t")
    before = kernel.clock.events["ve"]
    kernel.advance(kernel.tick_period * 3)
    assert kernel.clock.events["ve"] - before == 3


def test_scheduler_rotates_between_runnable_tasks(kernel):
    a, b = kernel.spawn("a"), kernel.spawn("b")
    assert kernel.current is a
    # enough ticks to exceed the timeslice
    kernel.advance(kernel.tick_period * kernel.config.timeslice_ticks)
    assert kernel.current is b
    assert kernel.clock.events["context_switch"] >= 1


def test_exit_task_removes_from_runqueue(kernel):
    a, b = kernel.spawn("a"), kernel.spawn("b")
    kernel.syscall(a, "exit", 7)
    assert a.state == "dead" and a.exit_code == 7
    assert kernel.current is b


def test_file_syscalls_roundtrip(kernel):
    task = kernel.spawn("t")
    fd = kernel.syscall(task, "open", "/tmp/x", create=True, write=True)
    assert kernel.syscall(task, "write", fd, b"hello world") == 11
    kernel.syscall(task, "close", fd)
    fd2 = kernel.syscall(task, "open", "/tmp/x")
    assert kernel.syscall(task, "read", fd2, 5) == b"hello"
    assert kernel.syscall(task, "read", fd2, 100) == b" world"
    assert kernel.syscall(task, "stat", "/tmp/x")["size"] == 11


def test_synthetic_files_read_without_storage(kernel):
    kernel.vfs.create("/data/big.bin", synthetic_size=16 * MIB)
    task = kernel.spawn("t")
    fd = kernel.syscall(task, "open", "/data/big.bin")
    chunk = kernel.syscall(task, "read", fd, 4096)
    assert len(chunk) == 4096
    assert kernel.syscall(task, "stat", "/data/big.bin")["size"] == 16 * MIB


def test_syscall_charges_transition_cost(kernel):
    task = kernel.spawn("t")
    before = kernel.clock.cycles
    kernel.syscall(task, "getpid")
    assert kernel.clock.cycles - before >= Cost.SYSCALL_ROUND_TRIP


def test_unknown_syscall_rejected(kernel):
    task = kernel.spawn("t")
    with pytest.raises(ValueError):
        kernel.syscall(task, "bogus")


def test_loopback_sockets(kernel):
    server, client = kernel.spawn("server"), kernel.spawn("client")
    sfd = kernel.syscall(server, "socket")
    kernel.syscall(server, "listen", sfd, 80)
    cfd = kernel.syscall(client, "socket")
    kernel.syscall(client, "connect", cfd, 80)
    conn_fd = kernel.syscall(server, "accept", sfd)
    kernel.syscall(client, "send", cfd, b"ping")
    assert kernel.syscall(server, "recv", conn_fd) == b"ping"


def test_clone_shares_sandbox_identity(kernel):
    task = kernel.spawn("parent")
    child = kernel.syscall(task, "clone")
    assert child.pid != task.pid
    assert child.kind == task.kind


def test_external_send_costs_ve_and_is_host_visible(kernel, machine):
    kernel.spawn("proxy")
    before_ve = kernel.clock.events["ve"]
    kernel.net.external_send(b"ciphertext-blob")
    assert kernel.clock.events["ve"] > before_ve
    assert b"ciphertext-blob" in machine.vmm.observed_blob()
