"""Metrics registry: counters, gauges and histograms keyed by (name, labels).

This is the quantitative half of ``repro.obs``: where the trace layer
answers *when*, the registry answers *how many / how much* — per-sandbox
EMC counts, exit-class breakdowns, page-fault and PKRS-toggle totals,
syscall latency histograms. It supersedes the old ``MonitorStats``
dataclass (now a derived view over the clock's event ledger) and the
benchmark harness's ad-hoc counters: the bench runner snapshots the
registry around every run and attaches the delta to ``results.json``.

Label sets are stored as canonical ``"k=v,k2=v2"`` strings (sorted by
key), which keeps snapshots JSON-able with no conversion. Like the
tracer, the registry never touches the cycle clock; it exists purely on
the host side.
"""

from __future__ import annotations

import copy
import math
from bisect import bisect_left

#: default histogram bucket upper bounds (simulated cycles)
DEFAULT_BUCKETS = (250, 700, 1300, 2500, 5000, 10_000, 30_000,
                   100_000, 1_000_000)

#: default sliding-window geometry for windowed histograms
DEFAULT_WINDOW_CYCLES = 1_000_000
DEFAULT_WINDOWS = 4


#: (label items, in call-site order) → canonical key. Bounded: label
#: cardinality is small by design (tenants, sandboxes, exit classes);
#: the cap only guards against a pathological unbounded-label caller.
_KEY_CACHE: dict[tuple, str] = {}
_KEY_CACHE_MAX = 4096


def label_key(labels: dict) -> str:
    """Canonical series key for a label dict: ``"k=v,k2=v2"`` sorted.

    The hot path of every counter increment — a fleet run computes
    hundreds of thousands of keys from a few dozen distinct label sets,
    so the sorted join is memoized on the (insertion-ordered) items
    tuple. Two call sites passing the same labels in different kwarg
    order miss each other's cache line but still canonicalize to the
    same key.
    """
    if not labels:
        return ""
    items = tuple(labels.items())
    key = _KEY_CACHE.get(items)
    if key is None:
        key = ",".join(f"{k}={v}" for k, v in sorted(items))
        if len(_KEY_CACHE) < _KEY_CACHE_MAX:
            _KEY_CACHE[items] = key
    return key


def parse_label_key(key: str) -> dict:
    """Inverse of :func:`label_key` (empty string → no labels)."""
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))


def labels_match(key: str, match: dict) -> bool:
    """True if the series ``key`` carries every label in ``match``."""
    if not match:
        return True
    labels = parse_label_key(key)
    return all(labels.get(k) == str(v) for k, v in match.items())


class CounterHandle:
    """Pre-resolved writer for one counter series.

    The kwargs form (:meth:`MetricsRegistry.inc`) builds a label dict
    and canonicalizes it on every call; a handle does that resolution
    once, so instrumented hot paths (the EMC gate charges three series
    per round trip, ~100k times per fleet run) pay one dict update per
    write and allocate nothing.
    """

    __slots__ = ("_series", "_key")

    def __init__(self, series: dict, key: str):
        self._series = series
        self._key = key

    def inc(self, value: float = 1) -> None:
        series = self._series
        key = self._key
        series[key] = series.get(key, 0) + value


class HistogramHandle:
    """Pre-resolved writer for one histogram series (see CounterHandle)."""

    __slots__ = ("_hist", "_bounds", "_buckets", "_n")

    def __init__(self, hist: dict):
        self._hist = hist
        self._bounds = hist["bounds"]
        self._buckets = hist["buckets"]
        self._n = len(self._bounds)

    def observe(self, value: float) -> None:
        i = bisect_left(self._bounds, value)
        if i < self._n:
            self._buckets[i] += 1
        hist = self._hist
        hist["sum"] += value
        hist["count"] += 1

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` identical samples (batched gate dispatch).

        Exactly equivalent to ``n`` `observe` calls: the bucket, sum and
        count updates all scale linearly in the sample count.
        """
        i = bisect_left(self._bounds, value)
        if i < self._n:
            self._buckets[i] += n
        hist = self._hist
        hist["sum"] += value * n
        hist["count"] += n


class _NullHandle:
    """Write handle of the disabled registry (shared no-op singleton)."""

    __slots__ = ()

    def inc(self, value: float = 1) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_n(self, value: float, n: int) -> None:
        return None


NULL_HANDLE = _NullHandle()


class HandleCache:
    """Per-instrumentation-site cache of pre-resolved write handles.

    Handles bind dicts inside one concrete registry, so a cache must be
    invalidated when the machine's registry identity changes (e.g.
    :func:`repro.obs.install` arming a fresh registry mid-life). Call
    sites do ``handles = cache.get(metrics, key)`` and on a miss build
    the handle tuple and :meth:`put` it; the identity guard is one
    ``is`` check per lookup.
    """

    __slots__ = ("_metrics", "_handles")

    def __init__(self):
        self._metrics = None
        self._handles: dict = {}

    def get(self, metrics, key):
        if self._metrics is not metrics:
            self._metrics = metrics
            self._handles.clear()
        return self._handles.get(key)

    def put(self, key, handles):
        self._handles[key] = handles
        return handles


_SANDBOX_LABELS: dict[int, str] = {}


def sandbox_label(task) -> str:
    """Metrics label attributing an event to a sandbox (or the kernel)."""
    if (task is not None and getattr(task, "kind", "") == "sandbox"
            and getattr(task, "sandbox", None) is not None):
        sandbox_id = task.sandbox.sandbox_id
        label = _SANDBOX_LABELS.get(sandbox_id)
        if label is None:
            label = _SANDBOX_LABELS[sandbox_id] = str(sandbox_id)
        return label
    return "kernel"


class WindowedHistogram:
    """Deterministic sliding-window value store keyed by *cycle* time.

    Frames align to absolute window boundaries — frame ``k`` covers
    simulated cycles ``[k*W, (k+1)*W)`` — so rotation happens at exact
    cycle boundaries and two seeded runs retain byte-identical windows.
    Percentiles use the nearest-rank method over the values of the last
    ``windows`` frames (integer inputs → integer outputs, no
    interpolation drift).
    """

    __slots__ = ("window_cycles", "windows", "_frames")

    def __init__(self, window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 windows: int = DEFAULT_WINDOWS):
        if window_cycles <= 0 or windows <= 0:
            raise ValueError("window_cycles and windows must be positive")
        self.window_cycles = window_cycles
        self.windows = windows
        #: frame index → values observed in that frame (insertion-ordered)
        self._frames: dict[int, list] = {}

    def observe(self, value, cycle: int) -> None:
        frame = cycle // self.window_cycles
        values = self._frames.get(frame)
        if values is None:
            values = self._frames[frame] = []
            # drop frames that slid out of the retention window
            floor = frame - self.windows + 1
            for old in [f for f in self._frames if f < floor]:
                del self._frames[old]
        values.append(value)

    def values(self, cycle: int | None = None) -> list:
        """Retained values; with ``cycle``, only frames still in-window."""
        if cycle is None:
            frames = sorted(self._frames)
        else:
            floor = cycle // self.window_cycles - self.windows + 1
            frames = sorted(f for f in self._frames if f >= floor)
        out: list = []
        for f in frames:
            out.extend(self._frames[f])
        return out

    @property
    def count(self) -> int:
        return sum(len(v) for v in self._frames.values())

    def quantile(self, q: float, cycle: int | None = None):
        """Nearest-rank quantile of the retained values (None if empty)."""
        values = sorted(self.values(cycle))
        if not values:
            return None
        rank = min(len(values) - 1, max(0, math.ceil(q * len(values)) - 1))
        return values[rank]

    def quantiles(self, cycle: int | None = None) -> dict:
        """The p50/p95/p99 summary the SLO monitors and snapshots use."""
        values = sorted(self.values(cycle))
        if not values:
            return {"count": 0, "p50": None, "p95": None, "p99": None}
        def rank(q):
            return values[min(len(values) - 1,
                              max(0, math.ceil(q * len(values)) - 1))]
        return {"count": len(values), "p50": rank(0.50),
                "p95": rank(0.95), "p99": rank(0.99)}

    def __repr__(self) -> str:
        return (f"WindowedHistogram({self.count} values over "
                f"{len(self._frames)}/{self.windows} x "
                f"{self.window_cycles}-cycle frames)")


class EwmaDetector:
    """One-sided EWMA baseline detector: flags samples far above trend.

    Tracks an exponentially-weighted mean and variance; a sample is
    anomalous when it exceeds ``mean + threshold * spread`` after at
    least ``min_samples`` baseline observations, where spread is the
    EWMA standard deviation floored at 5% of the mean (so a perfectly
    flat baseline still tolerates jitter). Anomalous samples are *not*
    absorbed into the baseline — an attacker cannot drag the trend up.
    Pure float arithmetic, no RNG: deterministic across reruns.
    """

    __slots__ = ("alpha", "threshold", "min_samples", "mean", "var",
                 "samples")

    def __init__(self, alpha: float = 0.3, threshold: float = 3.0,
                 min_samples: int = 4):
        self.alpha = alpha
        self.threshold = threshold
        self.min_samples = min_samples
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0

    @property
    def spread(self) -> float:
        return max(math.sqrt(self.var), 0.05 * abs(self.mean), 1e-9)

    def update(self, value: float) -> bool:
        """Feed one sample; returns True when it is anomalous."""
        if self.samples >= self.min_samples:
            if value > self.mean + self.threshold * self.spread:
                return True
        self.samples += 1
        if self.samples == 1:
            self.mean = float(value)
            self.var = 0.0
            return False
        delta = value - self.mean
        self.mean += self.alpha * delta
        self.var = (1 - self.alpha) * (self.var + self.alpha * delta * delta)
        return False

    def __repr__(self) -> str:
        return (f"EwmaDetector(mean={self.mean:.3f}, "
                f"spread={self.spread:.3f}, samples={self.samples})")


class NullMetrics:
    """No-op registry: the default on every clock (observability off)."""

    enabled = False
    __slots__ = ()

    def describe(self, name: str, help: str = "",
                 buckets: tuple | None = None) -> None:
        return None

    def inc(self, name: str, value: float = 1, /, **labels) -> None:
        return None

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        return None

    def observe(self, name: str, value: float, /, **labels) -> None:
        return None

    def describe_window(self, name: str, help: str = "",
                        window_cycles: int = DEFAULT_WINDOW_CYCLES,
                        windows: int = DEFAULT_WINDOWS) -> None:
        return None

    def observe_window(self, name: str, value: float, cycle: int,
                       /, **labels) -> None:
        return None

    def exemplar(self, name: str, trace_id: str, /, **labels) -> None:
        return None

    def counter_handle(self, name: str, /, **labels) -> _NullHandle:
        return NULL_HANDLE

    def histogram_handle(self, name: str, /, **labels) -> _NullHandle:
        return NULL_HANDLE

    def window_quantiles(self, name: str, /, cycle: int | None = None,
                         **labels) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the shared disabled registry
NULL_METRICS = NullMetrics()


class MetricsRegistry(NullMetrics):
    """Live metrics store for one simulated machine."""

    enabled = True
    __slots__ = ("counters", "gauges", "histograms", "windowed",
                 "exemplars", "_help", "_buckets", "_window_cfg")

    def __init__(self):
        self.counters: dict[str, dict[str, float]] = {}
        self.gauges: dict[str, dict[str, float]] = {}
        #: name → key → {"buckets": [..], "sum": s, "count": n}
        self.histograms: dict[str, dict[str, dict]] = {}
        #: name → key → WindowedHistogram (cycle-time sliding windows)
        self.windowed: dict[str, dict[str, WindowedHistogram]] = {}
        #: name → key → last-seen request trace ID (OpenMetrics-style)
        self.exemplars: dict[str, dict[str, str]] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple] = {}
        self._window_cfg: dict[str, tuple[int, int]] = {}

    # -- registration ---------------------------------------------------- #

    def describe(self, name: str, help: str = "",
                 buckets: tuple | None = None) -> None:
        """Attach help text (Prometheus ``# HELP``) and histogram buckets."""
        if help:
            self._help[name] = help
        if buckets is not None:
            self._buckets[name] = tuple(sorted(buckets))

    def describe_window(self, name: str, help: str = "",
                        window_cycles: int = DEFAULT_WINDOW_CYCLES,
                        windows: int = DEFAULT_WINDOWS) -> None:
        """Configure a windowed series' geometry (and optional help)."""
        if help:
            self._help[name] = help
        self._window_cfg[name] = (window_cycles, windows)

    # -- writes ---------------------------------------------------------- #

    def inc(self, name: str, value: float = 1, /, **labels) -> None:
        series = self.counters.setdefault(name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        self.gauges.setdefault(name, {})[label_key(labels)] = value

    def observe(self, name: str, value: float, /, **labels) -> None:
        bounds = self._buckets.get(name, DEFAULT_BUCKETS)
        series = self.histograms.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = {"bounds": list(bounds),
                                  "buckets": [0] * len(bounds),
                                  "sum": 0, "count": 0}
        # first bound >= value (bounds are sorted: binary, not linear)
        i = bisect_left(hist["bounds"], value)
        if i < len(hist["buckets"]):
            hist["buckets"][i] += 1
        hist["sum"] += value
        hist["count"] += 1

    def observe_window(self, name: str, value: float, cycle: int,
                       /, **labels) -> None:
        """Observe into a cycle-time sliding-window histogram."""
        series = self.windowed.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            cfg = self._window_cfg.get(name,
                                       (DEFAULT_WINDOW_CYCLES,
                                        DEFAULT_WINDOWS))
            hist = series[key] = WindowedHistogram(*cfg)
        hist.observe(value, cycle)

    def counter_handle(self, name: str, /, **labels) -> CounterHandle:
        """Resolve one counter series to a reusable write handle.

        The handle stays valid for the life of the registry; callers
        cache it per label set and call ``handle.inc(v)`` on the hot
        path instead of :meth:`inc`. No series entry is materialized
        until the first write.
        """
        return CounterHandle(self.counters.setdefault(name, {}),
                             label_key(labels))

    def histogram_handle(self, name: str, /, **labels) -> HistogramHandle:
        """Resolve one histogram series to a reusable write handle.

        Materializes the (empty) histogram eagerly so the handle can
        bind its bucket list; bounds come from :meth:`describe` as with
        :meth:`observe`.
        """
        series = self.histograms.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            bounds = self._buckets.get(name, DEFAULT_BUCKETS)
            hist = series[key] = {"bounds": list(bounds),
                                  "buckets": [0] * len(bounds),
                                  "sum": 0, "count": 0}
        return HistogramHandle(hist)

    def exemplar(self, name: str, trace_id: str, /, **labels) -> None:
        """Attach a request trace ID to a series as its exemplar.

        Last-writer-wins, OpenMetrics style: the series answers *what
        happened*, the exemplar names one concrete request to pull the
        causal span tree for (``repro.obs.reqtrace`` resolves it). No-op
        for an empty ID so call sites need no guard.
        """
        if trace_id:
            self.exemplars.setdefault(name, {})[label_key(labels)] = trace_id

    # -- reads ----------------------------------------------------------- #

    def window_quantiles(self, name: str, /, cycle: int | None = None,
                         **labels) -> dict:
        """p50/p95/p99 summary of one windowed series ({} if absent)."""
        hist = self.windowed.get(name, {}).get(label_key(labels))
        if hist is None:
            return {}
        return hist.quantiles(cycle)

    def counter_value(self, name: str, /, **labels) -> float:
        return self.counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str, /, **match) -> float:
        """Sum a counter across all series matching the label subset."""
        return sum(v for key, v in self.counters.get(name, {}).items()
                   if labels_match(key, match))

    def snapshot(self) -> dict:
        """Deep-copied, JSON-able view of every series."""
        windowed = {}
        for name, series in self.windowed.items():
            windowed[name] = {}
            for key, hist in series.items():
                summary = hist.quantiles()
                summary["window_cycles"] = hist.window_cycles
                summary["windows"] = hist.windows
                windowed[name][key] = summary
        return {
            "counters": {n: dict(s) for n, s in self.counters.items()},
            "gauges": {n: dict(s) for n, s in self.gauges.items()},
            "histograms": copy.deepcopy(self.histograms),
            "windowed": windowed,
            "exemplars": {n: dict(s) for n, s in self.exemplars.items()},
        }

    def delta_since(self, snap: dict) -> dict:
        """Interval view: counters/histograms since ``snap``, gauges live."""
        return snapshot_delta(self.snapshot(), snap)


def snapshot_delta(new: dict, old: dict) -> dict:
    """Subtract two :meth:`MetricsRegistry.snapshot` dicts (new - old)."""
    counters: dict = {}
    for name, series in new["counters"].items():
        base = old["counters"].get(name, {})
        delta = {k: v - base.get(k, 0) for k, v in series.items()
                 if v - base.get(k, 0)}
        if delta:
            counters[name] = delta
    histograms: dict = {}
    for name, series in new["histograms"].items():
        base = old["histograms"].get(name, {})
        out_series = {}
        for key, hist in series.items():
            b = base.get(key)
            if b is None:
                out_series[key] = copy.deepcopy(hist)
                continue
            diff = {
                "bounds": list(hist["bounds"]),
                "buckets": [x - y for x, y in zip(hist["buckets"],
                                                  b["buckets"])],
                "sum": hist["sum"] - b["sum"],
                "count": hist["count"] - b["count"],
            }
            if diff["count"]:
                out_series[key] = diff
        if out_series:
            histograms[name] = out_series
    return {"counters": counters,
            "gauges": {n: dict(s) for n, s in new["gauges"].items()},
            "histograms": histograms}


def snapshot_counter_total(snapshot: dict, name: str, /, **match) -> float:
    """Sum a counter in a snapshot dict across matching label sets."""
    return sum(v for key, v in snapshot.get("counters", {})
               .get(name, {}).items() if labels_match(key, match))
