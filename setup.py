"""Legacy setuptools shim.

`pip install -e .` needs the `wheel` package for editable installs on
older pip/setuptools combinations; fully-offline environments without it
can fall back to `python setup.py develop` (or add `src/` to a .pth).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
