"""Seeded tamper corpus: every forgery class must fail, distinctly.

Each entry is a deterministic transformation of a valid certificate
(pure dict-to-dict, no RNG, no wall clock — the corpus is part of the CI
contract and must be byte-stable across runs) paired with the exact
failure code the offline verifier must localize it to:

==================  =================  ==================================
variant             expected code      what the host "did"
==================  =================  ==================================
``forged-quote``    quote-signature    forged the platform signature
``spliced-audit``   audit-segment      doctored one audit event mid-chain
``truncated-audit`` audit-segment      dropped the newest audit events
``dropped-scrub``   scrub-evidence     suppressed the C8 scrub proof
``replayed-quote``  quote-binding      grafted another session's genuine
                                       quote onto this body (replay)
``mutated-claim``   body-digest        edited a claim under the same hash
``doctored-trace``  trace-digest       rewrote the causal span tree
==================  =================  ==================================

A tampered certificate that *verifies* — or fails with the wrong code —
is a verifier bug; ``python -m repro.certs check-tamper`` asserts the
full matrix.
"""

from __future__ import annotations

import copy

from . import CertificateError


def _forged_quote(cert: dict, donor: dict | None = None) -> dict:
    """Flip one nibble of the quote signature: HMAC must catch it."""
    out = copy.deepcopy(cert)
    sig = out["quote"]["signature"]
    flipped = ("0" if sig[0] != "0" else "1") + sig[1:]
    out["quote"]["signature"] = flipped
    return out


def _spliced_audit(cert: dict, donor: dict | None = None) -> dict:
    """Rewrite one mid-segment event's detail without re-chaining.

    Models a host editing an incriminating log line; the event's own
    digest no longer recomputes, so verification localizes the exact
    sequence number.
    """
    out = copy.deepcopy(cert)
    segment = out["attachments"]["audit_segment"]
    victim = segment[len(segment) // 2]
    victim["detail"] = "(nothing to see here)"
    return out


def _truncated_audit(cert: dict, donor: dict | None = None) -> dict:
    """Drop the newest — most incriminating — events off the segment."""
    out = copy.deepcopy(cert)
    segment = out["attachments"]["audit_segment"]
    if len(segment) > 1:
        del segment[-1]
    else:
        out["attachments"]["audit_segment"] = []
    return out


def _dropped_scrub(cert: dict, donor: dict | None = None) -> dict:
    """Suppress the scrub record: no C8 proof, no certificate."""
    out = copy.deepcopy(cert)
    out["attachments"].pop("scrub_record", None)
    return out


def _replayed_quote(cert: dict, donor: dict | None = None) -> dict:
    """Graft another session's *genuine* quote onto this body.

    The signature verifies (it is a real quote) and the body hashes
    correctly (it is untouched), but the quote's report data binds the
    donor's body hash — the replay is caught by the binding check and
    nothing earlier.
    """
    if donor is None:
        raise CertificateError(
            "structure",
            "replayed-quote needs a donor certificate from another "
            "session")
    out = copy.deepcopy(cert)
    out["quote"] = copy.deepcopy(donor["quote"])
    return out


def _mutated_claim(cert: dict, donor: dict | None = None) -> dict:
    """Inflate a body claim without recomputing the body hash."""
    out = copy.deepcopy(cert)
    out["body"]["session"]["served"] = \
        int(out["body"]["session"].get("served", 0)) + 1000
    return out


def _doctored_trace(cert: dict, donor: dict | None = None) -> dict:
    """Rewrite the attached span tree (hide what actually executed)."""
    out = copy.deepcopy(cert)
    tree = out["attachments"]["trace_tree"]
    if tree:
        tree[0]["name"] = "totally:benign"
    else:
        out["attachments"]["trace_tree"] = [{"name": "totally:benign",
                                             "children": []}]
    return out


#: variant name → (expected failure code, transformation, needs_donor)
TAMPERS: dict[str, tuple[str, object, bool]] = {
    "forged-quote": ("quote-signature", _forged_quote, False),
    "spliced-audit": ("audit-segment", _spliced_audit, False),
    "truncated-audit": ("audit-segment", _truncated_audit, False),
    "dropped-scrub": ("scrub-evidence", _dropped_scrub, False),
    "replayed-quote": ("quote-binding", _replayed_quote, True),
    "mutated-claim": ("body-digest", _mutated_claim, False),
    "doctored-trace": ("trace-digest", _doctored_trace, False),
}


def tamper_certificate(cert: dict, variant: str,
                       donor: dict | None = None) -> dict:
    """Apply one named tamper; returns a new certificate dict."""
    try:
        _, fn, _ = TAMPERS[variant]
    except KeyError:
        raise CertificateError(
            "structure",
            f"unknown tamper variant {variant!r} "
            f"(known: {', '.join(sorted(TAMPERS))})") from None
    return fn(cert, donor)
