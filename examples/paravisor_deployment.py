#!/usr/bin/env python3
"""Paravisor-enhanced deployment (§10): RTMR-based monitor attestation.

In emerging cloud deployments (Azure OpenHCL / COCONUT-SVSM), the cloud
provider's paravisor owns the boot-time measurement, and tenant payloads
like the Erebor monitor are recorded in *runtime* measurement registers.
This example boots that shape, shows the client verifying both the
paravisor MRTD and the monitor RTMR from published binaries, and the two
failure cases: a client with drop-in expectations, and a paravisor that
loaded a tampered monitor.

Run:  python examples/paravisor_deployment.py
"""

from repro import CvmMachine, MachineConfig, MIB, erebor_boot
from repro.client import AttestationFailure, RemoteClient
from repro.core import SecureChannel, UntrustedProxy, published_measurement
from repro.core.boot import PARAVISOR_RTMR_INDEX, published_paravisor_measurement


def main() -> None:
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=32 * MIB, paravisor=True)
    mrtd, rtmr = published_paravisor_measurement()
    print("paravisor CVM booted:")
    print(f"  MRTD  (firmware+paravisor): {mrtd.hex()[:24]}...")
    print(f"  RTMR2 (erebor monitor):     {rtmr.hex()[:24]}...")

    sandbox = system.monitor.create_sandbox("svc", confined_budget=4 * MIB)
    sandbox.declare_confined(512 * 1024)
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, sandbox)

    # a correctly-configured client verifies BOTH registers
    client = RemoteClient(machine.authority, mrtd,
                          expected_rtmrs={PARAVISOR_RTMR_INDEX: rtmr})
    client.connect(proxy, channel)
    client.request(proxy, channel, b"pv-secret")
    print(f"  RTMR-aware client attested and connected; "
          f"sandbox got {sandbox.take_input()!r}")

    # a drop-in-profile client refuses this deployment (different MRTD)
    naive = RemoteClient(machine.authority, published_measurement(), seed=9)
    chan2 = SecureChannel(system.monitor,
                          system.monitor.create_sandbox(
                              "svc2", confined_budget=4 * MIB))
    try:
        naive.connect(proxy, chan2)
        raise SystemExit("naive client should have refused!")
    except AttestationFailure as exc:
        print(f"  drop-in-profile client correctly refused: "
              f"{str(exc)[:60]}...")

    # a paravisor loading a tampered monitor fails RTMR verification
    evil = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    from repro.core.boot import FIRMWARE_BLOB, PARAVISOR_BLOB
    evil.tdx.build_load("firmware", FIRMWARE_BLOB)
    evil.tdx.build_load("paravisor", PARAVISOR_BLOB)
    evil.tdx.finalize()
    evil.tdx.measurement.extend_rtmr(PARAVISOR_RTMR_INDEX, b"evil monitor")
    assert evil.tdx.measurement.rtmrs[PARAVISOR_RTMR_INDEX] != rtmr
    print("  tampered-monitor RTMR differs from the published value "
          "(client verification would fail)")
    print("OK")


if __name__ == "__main__":
    main()
