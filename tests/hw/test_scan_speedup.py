"""scan_for_sensitive: bytes.find fast path ≡ the per-byte reference.

The scanner was rewritten to hop between ``0xF0`` prefix bytes with
``bytes.find`` instead of visiting every offset.  The observable
contract — every (offset, name) hit, in order, including unaligned and
``skip_aligned``-filtered ones — must be unchanged; the cycle model
never depended on the Python-level implementation.
"""

import random

import pytest

from repro.hw.isa import (
    INSTR_SIZE,
    SENSITIVE_NAMES,
    SENSITIVE_PREFIX,
    SENSITIVE_SUBOPS,
    scan_for_sensitive,
)


def reference_scan(blob, *, skip_aligned=False):
    """The original per-byte loop, kept verbatim as the oracle."""
    hits = []
    for off in range(len(blob) - 1):
        if blob[off] != SENSITIVE_PREFIX:
            continue
        if blob[off + 1] not in SENSITIVE_SUBOPS:
            continue
        if skip_aligned and off % INSTR_SIZE == 0:
            continue
        hits.append((off, SENSITIVE_NAMES[blob[off + 1]]))
    return hits


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("skip_aligned", [False, True])
def test_equivalent_on_random_blobs(seed, skip_aligned):
    rng = random.Random(seed)
    # bias toward 0xF0 and valid sub-opcodes so hits are dense
    alphabet = ([SENSITIVE_PREFIX] * 8 + sorted(SENSITIVE_SUBOPS)
                + list(range(16)))
    blob = bytes(rng.choice(alphabet) for _ in range(4096))
    assert scan_for_sensitive(blob, skip_aligned=skip_aligned) == \
        reference_scan(blob, skip_aligned=skip_aligned)


@pytest.mark.parametrize("blob", [
    b"",
    b"\xF0",                                   # prefix at the last byte
    b"\xF0\x05",                               # minimal hit
    b"\xF0\xF0\x05",                           # prefix feeding a prefix
    b"\xF0\x99",                               # prefix, bogus sub-op
    b"\x00" * 64,
    bytes([SENSITIVE_PREFIX, 0x02]) * 32,      # back-to-back hits
])
def test_equivalent_on_edge_cases(blob):
    for skip_aligned in (False, True):
        assert scan_for_sensitive(blob, skip_aligned=skip_aligned) == \
            reference_scan(blob, skip_aligned=skip_aligned)


def test_aligned_filter_only_drops_aligned_offsets():
    blob = bytearray(64)
    blob[0] = SENSITIVE_PREFIX          # aligned (offset 0)
    blob[1] = 0x05
    blob[13] = SENSITIVE_PREFIX         # unaligned (offset 13)
    blob[14] = 0x02
    full = scan_for_sensitive(bytes(blob))
    filtered = scan_for_sensitive(bytes(blob), skip_aligned=True)
    assert full == [(0, "tdcall"), (13, "wrmsr")]
    assert filtered == [(13, "wrmsr")]
