"""EMC attack-surface fuzz: the monitor fails closed under garbage input.

A malicious kernel owns the EMC interface (it can call anything with any
arguments). Whatever it sends, the monitor must either perform a policy-
compliant operation or refuse — never corrupt its own invariants, never
crash the machine, never flip a pinned protection bit.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PolicyViolation, erebor_boot
from repro.core.emc import EmcCall
from repro.core.microrig import GateRig
from repro.core.gates import PKRS_KERNEL
from repro.hw import regs
from repro.hw.paging import make_pte
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture(scope="module")
def system():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    return erebor_boot(machine, cma_bytes=32 * MIB)


def protections_intact(system) -> bool:
    cpu = system.machine.cpu
    return bool(cpu.crs[4] & regs.CR4_SMEP
                and cpu.crs[4] & regs.CR4_SMAP
                and cpu.crs[4] & regs.CR4_PKS
                and cpu.msrs[regs.IA32_PKRS] == PKRS_KERNEL)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_random_macro_emc_storm_fails_closed(seed):
    """Random ops with random args: exceptions only, invariants hold."""
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    system = erebor_boot(machine, cma_bytes=16 * MIB)
    ops = system.monitor.ops
    task = system.kernel.spawn("attacker")
    rng = random.Random(seed)
    attacks = [
        lambda: ops.write_cr(rng.choice((0, 3, 4, 8)),
                             rng.getrandbits(64)),
        lambda: ops.write_msr(rng.getrandbits(16), rng.getrandbits(64)),
        lambda: ops.write_pte(task.aspace, rng.getrandbits(32) & ~0xFFF,
                              make_pte(rng.getrandbits(12),
                                       rng.getrandbits(4) | 1,
                                       rng.getrandbits(4))),
        lambda: ops.map_gpa(rng.getrandbits(16), rng.randrange(1, 4),
                            shared=bool(rng.getrandbits(1))),
        lambda: ops.tdreport(bytes(rng.getrandbits(8) for _ in range(8))),
        lambda: ops.user_copy(rng.getrandbits(16), to_user=True),
        lambda: ops.verify_dynamic_code(
            bytes(rng.getrandbits(8) for _ in range(48))),
    ]
    for _ in range(25):
        try:
            rng.choice(attacks)()
        except (PolicyViolation, Exception):
            pass
    assert protections_intact(system)
    # the monitor still serves legitimate requests afterwards
    sandbox = system.monitor.create_sandbox("ok", confined_budget=2 * MIB)
    sandbox.declare_confined(256 * 1024)
    assert sandbox.state == "ready"


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**16 - 1), st.integers(0, 2**64 - 1),
       st.integers(0, 2**64 - 1))
def test_property_micro_gate_survives_garbage_call_numbers(number, rsi, rdx):
    """Unknown call numbers fall through to the exit gate, no work done."""
    rig = GateRig()
    msrs_before = dict(rig.cpu.msrs)
    crs_before = dict(rig.cpu.crs)
    rig.run_emc(number, rsi=rsi & 0xFFFF, rdx=rdx)
    if number == int(EmcCall.WRITE_MSR):
        msrs_before[rsi & 0xFFFF] = rdx          # the one legitimate effect
    if number == int(EmcCall.WRITE_CR):
        return                                   # handler may set CR4
    assert rig.cpu.msrs[regs.IA32_PKRS] == PKRS_KERNEL
    assert {k: v for k, v in rig.cpu.msrs.items() if k != regs.IA32_PL0_SSP} \
        == {k: v for k, v in msrs_before.items() if k != regs.IA32_PL0_SSP}
    assert rig.cpu.crs == crs_before


def test_denial_storm_leaves_audit_trail(system):
    before = len(system.monitor.audit_log)
    for _ in range(10):
        with pytest.raises(PolicyViolation):
            system.monitor.ops.write_msr(regs.IA32_PKRS, 0)
    denies = [e for e in system.monitor.audit_log[before:] if e.kind == "deny"]
    assert len(denies) == 10
