"""Plane-attribution budget ledger: where every cycle (and second) went.

PR 8's translation cache won 12.6x on the cpu-bound arm but only 1.24x on
the fleet arm, and the reason ("the demand-fault/macro plane dominates")
had to be established by hand. This module makes that attribution a
first-class, conservation-checked artifact: every simulated cycle a run
charged is assigned to exactly one named **plane**, per execution lane
(one lane per logical CPU plus the serial/barrier lane), and the sums are
verified bit-exactly against the clock's own busy/wall ledgers.

The raw material is :attr:`repro.hw.cycles.CycleClock.tags_by_cpu`, which
the clock maintains in the same branch as its busy accounting — so the
invariant

* for every cpu lane ``c``:   ``sum(lane_tags[c]) == busy_by_cpu[c]``
* for the serial lane:        ``sum(lane_tags[SERIAL]) == cycles - Σbusy``
* over all lanes:             ``Σ == cycles`` (the serial total)

holds *by construction*, and :func:`verify_conservation` re-derives it
from the exported dict rather than trusting the capture path.

Planes (the taxonomy DESIGN §8 documents; ``TAG_PLANES`` maps the clock's
charge tags onto it):

==============  =========================================================
plane           what it prices
==============  =========================================================
exec.interpret  interpreted instruction retirement (``instr`` minus the
                superblock carve) plus macro compute loops
exec.superblock superblock-burst retirement (``Cpu._translated_burst``
                charges; carved out of ``instr`` via the per-core
                ``TranslationCache.sb_cycles`` counter)
mmu             checked data movement through :class:`~repro.hw.mmu.Mmu`
                (the walk itself is uncharged; TLB-hit-vs-walk lives in
                the host plane and the ``translation`` summary)
fault           demand-fault and CoW resolution
emc             EMC gate dispatch + monitor-side validation
privop          interposed privileged operations (PTE/CR/MSR/IDT writes,
                cpuid emulation, module loads)
transition      privilege/world transitions: syscalls, #VE, tdcall,
                vmcall, exception/IRQ delivery, #INT gates, exit
                interposition
sandbox         sandbox lifecycle: state save/mask, secure pager,
                uarch disturbance, template fork
sched           scheduler/queue work (fleet driver, libos spin-wait)
scrub           pool scrub on release
verify          byte-scan / CFG verification
io              network + sealed-channel crypto/copy, libos services
mitigation      §12 side-channel mitigations
obs             the observability plane itself — **always 0 simulated
                cycles** (lint rule D2: obs reads the clock, never
                spends it); present so the host-seconds view has a
                first-class slot for tracer-emit cost
other           any tag the taxonomy does not know (future charge sites
                degrade visibly, not silently)
untagged        charges made with ``tag=None``
==============  =========================================================

Like every obs module this one is read-only on the clock (lint rule D2):
capturing a ledger moves no simulated state, so seeded digests are
byte-identical whether or not anyone ever looks at the budget.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hw.cycles import CPU_FREQ_HZ, SERIAL_LANE

#: schema version stamped into every captured ledger
LEDGER_VERSION = 1

#: the full plane taxonomy, in documentation order
PLANES = (
    "exec.interpret", "exec.superblock", "mmu", "fault", "emc", "privop",
    "transition", "sandbox", "sched", "scrub", "verify", "io",
    "mitigation", "obs", "other", "untagged",
)

#: clock charge tag → plane. ``instr`` lands in ``exec.interpret`` first
#: and the superblock carve moves ``sb_cycles`` of it to
#: ``exec.superblock`` (both charge sites use the same tag by design —
#: the cache-on/off ``by_tag`` equality is test-pinned).
TAG_PLANES = {
    "instr": "exec.interpret",
    "compute": "exec.interpret",
    "loop": "exec.interpret",
    "mem": "mmu",
    "pagefault": "fault",
    "cow_copy": "fault",
    "emc": "emc",
    "emc_validate": "emc",
    "mmu_op": "privop",
    "cr_op": "privop",
    "msr_op": "privop",
    "idt_op": "privop",
    "wrmsr": "privop",
    "cpuid": "privop",
    "module_load": "privop",
    "syscall": "transition",
    "syscall_work": "transition",
    "ve": "transition",
    "tdcall": "transition",
    "tdreport": "transition",
    "vmcall": "transition",
    "exc_delivery": "transition",
    "irq": "transition",
    "int_gate": "transition",
    "exit_interpose": "transition",
    "sandbox_state": "sandbox",
    "secure_pager": "sandbox",
    "uarch": "sandbox",
    "fork": "sandbox",
    "sst": "sandbox",
    "sched": "sched",
    "libos_spin": "sched",
    "scrub": "scrub",
    "verify": "verify",
    "verify-cfg": "verify",
    "net": "io",
    "channel_crypto": "io",
    "channel_copy": "io",
    "user_copy": "io",
    "libos": "io",
    "mitigation_flush": "mitigation",
    "mitigation_throttle": "mitigation",
    "mitigation_noise": "mitigation",
    "mitigation_quantize": "mitigation",
    "untagged": "untagged",
}

#: host-profiler subsystem label → plane (the host-seconds half of the
#: budget; see :func:`host_planes`). Labels absent here fall to "other".
HOST_PLANES = {
    "cpu:fetch-decode": "exec.interpret",
    "cpu:run-loop": "exec.interpret",
    "cpu:superblock": "exec.superblock",
    "tcache:acquire": "exec.superblock",
    "tcache:preload": "exec.superblock",
    "mmu:walk": "mmu",
    "mmu:leaf-path": "mmu",
    "mmu:fetch": "mmu",
    "mmu:read": "mmu",
    "mmu:write": "mmu",
    "mmu:touch": "mmu",
    "emc:gate-dispatch": "emc",
    "kernel:syscall": "transition",
    "kernel:page-fault": "fault",
    "crypto:seal": "io",
    "crypto:open": "io",
    "fleet:boot": "sandbox",
    "fleet:template-capture": "sandbox",
    "fleet:fork": "sandbox",
    "pool:scrub": "scrub",
    "fleet:drive": "sched",
    "bench:run": "sched",
    "obs:tracer-emit": "obs",
}


def plane_of(tag: str) -> str:
    """The plane a clock charge tag belongs to (``"other"`` if unknown)."""
    return TAG_PLANES.get(tag, "other")


def _lane_name(lane: int) -> str:
    return "serial" if lane == SERIAL_LANE else f"cpu{lane}"


def _superblock_cycles_by_lane(machine) -> dict[int, int]:
    """Per-lane superblock-executed cycles from each core's tcache.

    ``Cpu.run`` wraps execution in ``on_cpu(cpu_id)``, so a core's
    ``sb_cycles`` counter and its ``instr`` lane charges line up exactly.
    """
    out: dict[int, int] = {}
    if machine is None:
        return out
    for cpu in _machine_cpus(machine):
        tcache = getattr(cpu, "tcache", None)
        if tcache is not None and tcache.sb_cycles:
            lane = getattr(cpu, "cpu_id", 0)
            out[lane] = out.get(lane, 0) + tcache.sb_cycles
    return out


def _machine_cpus(machine) -> list:
    """Every simulated Cpu object a machine carries (today: one)."""
    cpus = getattr(machine, "cpus", None)
    if cpus:
        return list(cpus)
    cpu = getattr(machine, "cpu", None)
    return [cpu] if cpu is not None else []


def capture_ledger(clock, machine=None) -> dict:
    """Snapshot the plane-attribution budget of one clock (read-only).

    Returns a JSON-able dict (``check_ledger``-valid) with one entry per
    execution lane — busy cycles, the plane breakdown, and the raw tag
    breakdown — plus machine-wide plane totals and the verified
    conservation block. Pass the machine to carve superblock-burst
    execution out of the ``instr`` tag and to attach the translation
    summary (TLB hit rate, superblock coverage).
    """
    sb_by_lane = _superblock_cycles_by_lane(machine)
    busy = dict(clock.busy_by_cpu)
    lanes: dict[str, dict] = {}
    planes_total: dict[str, int] = {}
    for lane in sorted(clock.tags_by_cpu):
        tags = dict(clock.tags_by_cpu[lane])
        planes: dict[str, int] = {}
        for tag, cycles in tags.items():
            plane = TAG_PLANES.get(tag, "other")
            planes[plane] = planes.get(plane, 0) + cycles
        carve = sb_by_lane.get(lane, 0)
        if carve:
            # within-lane move: conservation is untouched by construction
            carve = min(carve, planes.get("exec.interpret", 0))
            planes["exec.interpret"] -= carve
            planes["exec.superblock"] = \
                planes.get("exec.superblock", 0) + carve
        lane_total = sum(tags.values())
        lanes[_lane_name(lane)] = {
            "busy": lane_total if lane == SERIAL_LANE else busy.get(lane, 0),
            "planes": {k: v for k, v in sorted(planes.items()) if v},
            "tags": dict(sorted(tags.items())),
        }
        for plane, cycles in planes.items():
            planes_total[plane] = planes_total.get(plane, 0) + cycles
    ledger = {
        "version": LEDGER_VERSION,
        "cycles": clock.cycles,
        "wall_cycles": clock.wall_cycles,
        "wall_seconds": round(clock.wall_cycles / CPU_FREQ_HZ, 9),
        "per_cpu_cycles": list(clock.per_cpu),
        "per_cpu_busy": [clock.cpu_busy(c)
                         for c in range(len(clock.per_cpu))],
        "lanes": lanes,
        "planes": {k: v for k, v in sorted(planes_total.items()) if v},
        # obs is structurally zero (D2) but gets its slot so diff reports
        # and the host-seconds view have a stable key set
        "obs_cycles": 0,
    }
    ledger["conservation"] = verify_conservation(ledger)
    if machine is not None:
        ledger["translation"] = translation_summary(machine, ledger)
    return ledger


def verify_conservation(ledger: dict) -> dict:
    """Re-derive the conservation invariant from an exported ledger.

    Checks, bit-exactly (no tolerance):

    * every ``cpuN`` lane's plane sum == tag sum == the clock's
      ``busy_by_cpu[N]``;
    * the serial lane's sum == ``cycles - Σ busy``;
    * all lanes together == ``cycles`` (the serial total);
    * ``wall_cycles`` == max over ``per_cpu_cycles``.

    Returns ``{"ok": bool, "checked_lanes": n, "violations": [...]}``.
    """
    violations: list[str] = []
    busy = ledger.get("per_cpu_busy", [])
    lanes = ledger.get("lanes", {})
    total = 0
    for name, lane in lanes.items():
        plane_sum = sum(lane.get("planes", {}).values())
        tag_sum = sum(lane.get("tags", {}).values())
        if plane_sum != tag_sum:
            violations.append(
                f"{name}: plane sum {plane_sum} != tag sum {tag_sum}")
        total += tag_sum
        if name.startswith("cpu"):
            idx = int(name[3:])
            expect = busy[idx] if idx < len(busy) else 0
            if tag_sum != expect:
                violations.append(
                    f"{name}: lane sum {tag_sum} != busy ledger {expect}")
    serial_sum = sum(lanes.get("serial", {}).get("tags", {}).values())
    expect_serial = ledger.get("cycles", 0) - sum(busy)
    if serial_sum != expect_serial:
        violations.append(f"serial: lane sum {serial_sum} != "
                          f"cycles - busy {expect_serial}")
    if total != ledger.get("cycles", 0):
        violations.append(f"lanes total {total} != "
                          f"cycles {ledger.get('cycles', 0)}")
    per_cpu = ledger.get("per_cpu_cycles", [])
    if per_cpu and ledger.get("wall_cycles") != max(per_cpu):
        violations.append("wall_cycles != max(per_cpu_cycles)")
    return {"ok": not violations, "checked_lanes": len(lanes),
            "violations": violations}


def translation_summary(machine, ledger: dict | None = None) -> dict:
    """Translation-cache effectiveness, host-plane only.

    TLB hit rate plus the superblock coverage fraction — the share of
    execution-plane cycles retired through superblock bursts. Derived
    from the same counters the fleet exports as
    ``erebor_sim_tlb_hits_total`` / ``erebor_sim_superblock_exec_total``;
    never part of any digest preimage.
    """
    tlb = {"tlb_hits": 0, "tlb_misses": 0, "tlb_hit_rate": 0.0}
    sb = {"sb_exec": 0, "sb_builds": 0, "sb_hits": 0, "sb_cycles": 0}
    for cpu in _machine_cpus(machine):
        mmu = getattr(cpu, "mmu", None)
        if mmu is not None:
            for key, value in mmu.stats().items():
                if key != "tlb_hit_rate":
                    tlb[key] += value
        tcache = getattr(cpu, "tcache", None)
        if tcache is not None:
            for key, value in tcache.stats().items():
                sb[key] += value
    walks = tlb["tlb_hits"] + tlb["tlb_misses"]
    tlb["tlb_hit_rate"] = round(tlb["tlb_hits"] / walks, 6) if walks else 0.0
    coverage = 0.0
    if ledger is not None:
        planes = ledger.get("planes", {})
        execute = (planes.get("exec.interpret", 0)
                   + planes.get("exec.superblock", 0))
        if execute:
            coverage = round(planes.get("exec.superblock", 0) / execute, 6)
    return {**tlb, **sb, "superblock_coverage": coverage}


def host_planes(hostprof_report: dict) -> dict:
    """Fold a :meth:`HostProfiler.report` into host seconds per plane.

    Returns ``{"window_s", "attributed_s", "planes": {plane: seconds}}``;
    subsystems without a :data:`HOST_PLANES` entry land in ``"other"``.
    """
    planes: dict[str, float] = {}
    for row in hostprof_report.get("subsystems", []):
        plane = HOST_PLANES.get(row.get("name", ""), "other")
        planes[plane] = planes.get(plane, 0.0) + float(row.get("self_s", 0))
    return {
        "window_s": hostprof_report.get("window_s", 0.0),
        "attributed_s": hostprof_report.get("attributed_s", 0.0),
        "planes": {k: round(v, 6) for k, v in sorted(planes.items())},
    }


# --------------------------------------------------------------------------- #
# perf-trajectory history (BENCH_history.jsonl)
# --------------------------------------------------------------------------- #

def history_entry(bench: str, ledger: dict, *, digest: str = "",
                  host_seconds: dict | None = None,
                  meta: dict | None = None) -> dict:
    """One ``BENCH_history.jsonl`` record: the min-of-N plane summary.

    ``host_seconds`` maps plane (or arm) names to measured host seconds
    (the noisy half, threshold-gated); everything simulated in the entry
    is deterministic and must reproduce bit-exactly across commits.
    """
    entry = {
        "bench": bench,
        "cycles": ledger.get("cycles", 0),
        "wall_cycles": ledger.get("wall_cycles", 0),
        "planes": dict(ledger.get("planes", {})),
        "digest": digest,
    }
    if host_seconds:
        entry["host_seconds"] = {k: round(float(v), 6)
                                 for k, v in sorted(host_seconds.items())}
    if meta:
        entry["meta"] = dict(meta)
    return entry


def append_history(path, entry: dict) -> None:
    """Append one record to a JSONL history file (created if missing)."""
    line = json.dumps(entry, sort_keys=True)
    with open(path, "a") as fh:
        fh.write(line + "\n")


def load_history(path) -> list[dict]:
    """Parse a JSONL history file into its records (oldest first)."""
    records: list[dict] = []
    text = Path(path).read_text()
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{i + 1}: bad history line: {exc}")
    return records
