"""Flight-recorder overhead bench: obs-on vs obs-off on the llama fleet.

The observability plane's design contract is that it *reads* the cycle
clock and never charges it, so its overhead in simulated cycles is
exactly zero: a fleet run with the flight recorder, windowed SLO
histograms and anomaly detectors all armed must produce the byte-for-byte
same wall cycles (and report digest) as the bare run. This bench pins
that — the acceptance bound is < 10% extra wall cycles, the measured
value is 0% — and reports the *host-side* wall-time cost of recording
informationally in ``BENCH_obs_overhead.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.report import format_table
from repro.fleet import AnomalyConfig, SloConfig, run_fleet
from repro.vm import MIB

CLIENTS = 8
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

FLEET_PARAMS = dict(workload="llama.cpp", clients=CLIENTS, requests=2,
                    pool_size=CLIENTS, tenants=CLIENTS, seed=7, scale=0.1,
                    n_cpus=4, memory_bytes=1024 * MIB, cma_bytes=512 * MIB)

#: acceptance bound on simulated wall-cycle overhead (design value: 0)
MAX_OVERHEAD = 0.10


def _timed_run(**extra):
    t0 = time.perf_counter()
    report, system = run_fleet(**FLEET_PARAMS, **extra)
    host_seconds = time.perf_counter() - t0
    return report, system, host_seconds


@pytest.fixture(scope="module")
def runs():
    bare = _timed_run()
    armed = _timed_run(flight=True,
                       slo=SloConfig(queue_wait_p95=10**12,
                                     service_p95=10**12, e2e_p99=10**12),
                       anomaly=AnomalyConfig())
    return {"off": bare, "on": armed}


def write_artifact(runs) -> dict:
    (bare, _, bare_host) = runs["off"]
    (armed, system, armed_host) = runs["on"]
    recorder = system.machine.clock.tracer
    payload = {
        "workload": FLEET_PARAMS["workload"],
        "clients": CLIENTS,
        "n_cpus": FLEET_PARAMS["n_cpus"],
        "seed": FLEET_PARAMS["seed"],
        "max_overhead_bound": MAX_OVERHEAD,
        "obs_off": {
            "serve_wall_cycles": bare.serve_wall_cycles,
            "total_cycles": bare.total_cycles,
            "digest": bare.digest(),
            "host_seconds": round(bare_host, 4),
        },
        "obs_on": {
            "serve_wall_cycles": armed.serve_wall_cycles,
            "total_cycles": armed.total_cycles,
            "digest": armed.digest(),
            "host_seconds": round(armed_host, 4),
            "trace_events": len(recorder.events),
            "flight_rings": len(recorder.rings),
            "slo_samples": armed.slo["samples"],
        },
        "simulated_overhead": round(
            armed.serve_wall_cycles / bare.serve_wall_cycles - 1.0, 6),
        # host-side recording cost is informational (not asserted: CI
        # machines are noisy); the simulated model is the contract
        "host_overhead": round(armed_host / bare_host - 1.0, 4),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_flight_recorder_overhead_under_bound(benchmark, runs):
    payload = benchmark.pedantic(lambda: write_artifact(runs),
                                 rounds=1, iterations=1)
    overhead = payload["simulated_overhead"]
    assert overhead <= MAX_OVERHEAD
    # the design value is exactly zero: same cycles, same digest
    assert overhead == 0.0
    assert payload["obs_on"]["digest"] == payload["obs_off"]["digest"]
    assert payload["obs_on"]["trace_events"] > 0
    rows = [
        ["off", f"{payload['obs_off']['serve_wall_cycles']:,}", "-",
         f"{payload['obs_off']['host_seconds']:.2f}s"],
        ["on", f"{payload['obs_on']['serve_wall_cycles']:,}",
         f"{overhead * 100:.2f}%",
         f"{payload['obs_on']['host_seconds']:.2f}s"],
    ]
    print("\n" + format_table(
        "Flight-recorder overhead, 8 llama forks x 2 requests on 4 cores",
        ["obs", "serve wall cycles", "overhead", "host time"], rows))
