"""Unikernel-per-client baseline (paper §11) and the memory-saving claim.

The alternative to in-CVM sandboxing is a dedicated Unikernel CVM per
client (Gramine-TDX style): strong isolation, but every instance carries
a full copy of the "common" artifacts (model, database, libraries) plus
its own kernel image, and a host supports only a limited number of
concurrent CVMs. The paper's §9.2 claim: Erebor's read-only common
sharing cuts memory by 0.15-9.2x, up to 89.1% for llama-shaped services.

Two evaluation paths:

* :func:`measured_erebor_footprint` boots N real sandboxes sharing one
  common region and reads the physical-memory ledger;
* :func:`unikernel_footprint` / :func:`paper_scale_comparison` compute
  the replicated footprint analytically (including at the paper's
  full-size Table 5 numbers, where simulation memory would not permit
  actually allocating 8 x 5 GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.boot import erebor_boot
from ..libos.libos import LibOs
from ..vm import CvmMachine, MachineConfig, MIB

GIB = 1024 * MIB

#: resident size of a minimal Unikernel image + its runtime state
UNIKERNEL_BASE_BYTES = 48 * MIB


@dataclass
class MemoryComparison:
    label: str
    clients: int
    unikernel_bytes: int
    erebor_bytes: int

    @property
    def reduction(self) -> float:
        """Fraction of memory saved by Erebor's sharing."""
        return 1.0 - self.erebor_bytes / self.unikernel_bytes

    @property
    def factor(self) -> float:
        """'N x reduction' in the paper's phrasing (ratio - 1)."""
        return self.unikernel_bytes / self.erebor_bytes - 1.0


def unikernel_footprint(clients: int, confined_bytes: int,
                        common_bytes: int,
                        base_bytes: int = UNIKERNEL_BASE_BYTES) -> int:
    """Replicated footprint: every client CVM holds everything privately."""
    return clients * (confined_bytes + common_bytes + base_bytes)


def erebor_footprint(clients: int, confined_bytes: int, common_bytes: int,
                     base_bytes: int = UNIKERNEL_BASE_BYTES) -> int:
    """Shared footprint: one kernel, one common copy, per-client confined."""
    return clients * confined_bytes + common_bytes + base_bytes


def measured_erebor_footprint(workload, clients: int,
                              *, cma_bytes: int | None = None) -> tuple[int, int]:
    """Boot N sandboxes of ``workload`` on one CVM; return (confined, common)
    bytes actually resident, from the physical-memory ledger."""
    manifest = workload.manifest()
    need = clients * (manifest.heap_bytes + 2 * MIB)
    machine = CvmMachine(MachineConfig(
        memory_bytes=max(2 * need, 512 * MIB)))
    system = erebor_boot(machine, cma_bytes=cma_bytes or need + 16 * MIB)
    for i in range(clients):
        LibOs.boot_sandboxed(system, manifest,
                             confined_budget=manifest.heap_bytes + 2 * MIB)
    usage = machine.phys.usage_by_owner()
    confined = sum(v for k, v in usage.items() if k.startswith("sandbox:"))
    common = sum(v for k, v in usage.items() if k.startswith("common:"))
    return confined, common


def paper_scale_comparison(clients: int = 8) -> MemoryComparison:
    """The paper's llama arithmetic: ~4 GB model, ~0.5 GB confined, 8 ways.

    'without memory sharing ... a 4GB model must be replicated across 8
    containers, requiring ~36GB; reduced to ~8GB in our experiments.'
    """
    confined = 501 * MIB       # Table 6 llama.cpp confined
    common = 4 * GIB           # Table 6 llama.cpp common
    return MemoryComparison(
        "llama.cpp (paper scale)", clients,
        unikernel_bytes=unikernel_footprint(clients, confined, common),
        erebor_bytes=erebor_footprint(clients, confined, common),
    )
