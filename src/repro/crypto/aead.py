"""Authenticated encryption (encrypt-then-MAC over an HMAC keystream).

Simulation-grade AEAD built only on :mod:`hashlib`/:mod:`hmac`:
the keystream is HMAC-SHA256(enc_key, nonce ‖ counter) blocks XORed with
the plaintext; the tag is HMAC-SHA256(mac_key, nonce ‖ aad ‖ ciphertext).
Distinct keys for encryption and authentication are derived per
construction. The security-relevant *interface* properties hold: without
the key, ciphertext reveals only its length (which is why the monitor pads
outputs — §6.3), and any bit flip fails authentication.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


class AeadError(Exception):
    """Authentication failed or inputs were malformed."""


NONCE_LEN = 12
TAG_LEN = 32


def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    enc = hmac.new(key, b"enc", hashlib.sha256).digest()
    mac = hmac.new(key, b"mac", hashlib.sha256).digest()
    return enc, mac


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    out = b""
    counter = 0
    while len(out) < length:
        out += hmac.new(enc_key, nonce + counter.to_bytes(4, "big"),
                        hashlib.sha256).digest()
        counter += 1
    return out[:length]


def seal(key: bytes, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Encrypt and authenticate; returns ciphertext ‖ tag."""
    if len(nonce) != NONCE_LEN:
        raise AeadError(f"nonce must be {NONCE_LEN} bytes")
    enc_key, mac_key = _subkeys(key)
    ct = bytes(p ^ k for p, k in zip(plaintext, _keystream(enc_key, nonce, len(plaintext))))
    tag = hmac.new(mac_key, nonce + len(aad).to_bytes(4, "big") + aad + ct,
                   hashlib.sha256).digest()
    return ct + tag


def open_(key: bytes, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt; raises :class:`AeadError` on any tampering."""
    if len(nonce) != NONCE_LEN:
        raise AeadError(f"nonce must be {NONCE_LEN} bytes")
    if len(sealed) < TAG_LEN:
        raise AeadError("sealed blob too short")
    ct, tag = sealed[:-TAG_LEN], sealed[-TAG_LEN:]
    enc_key, mac_key = _subkeys(key)
    good = hmac.new(mac_key, nonce + len(aad).to_bytes(4, "big") + aad + ct,
                    hashlib.sha256).digest()
    if not hmac.compare_digest(good, tag):
        raise AeadError("authentication failed")
    return bytes(c ^ k for c, k in zip(ct, _keystream(enc_key, nonce, len(ct))))


@dataclass
class SealedSession:
    """A unidirectional record channel with sequence-number nonces.

    Sequence numbers both generate unique nonces and enforce ordering: a
    replayed or reordered record fails to open. Every ``rekey_every``
    records the key ratchets forward through HMAC (forward secrecy within
    a session: compromising the current key does not reveal earlier
    traffic). Both ends ratchet in lockstep because they share the
    sequence counter.
    """

    key: bytes
    seq: int = 0
    rekey_every: int = 256
    generations: int = 0

    def _nonce(self, seq: int) -> bytes:
        return seq.to_bytes(NONCE_LEN, "big")

    def _maybe_ratchet(self) -> None:
        if self.rekey_every and self.seq and self.seq % self.rekey_every == 0:
            self.key = hmac.new(self.key, b"ratchet", hashlib.sha256).digest()
            self.generations += 1

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        self._maybe_ratchet()
        record = seal(self.key, self._nonce(self.seq), plaintext, aad)
        self.seq += 1
        return record

    def open(self, record: bytes, aad: bytes = b"") -> bytes:
        self._maybe_ratchet()
        plaintext = open_(self.key, self._nonce(self.seq), record, aad)
        self.seq += 1
        return plaintext


def pad_to_fixed(data: bytes, bucket: int) -> bytes:
    """Length-hiding pad: 4-byte length prefix, zero fill to a bucket size.

    The monitor pads all sandbox output to fixed lengths before returning
    it to the client, closing the output-size covert channel (§6.3).
    """
    if bucket < len(data) + 4:
        raise ValueError(f"bucket {bucket} too small for {len(data)} bytes")
    return len(data).to_bytes(4, "big") + data + b"\x00" * (bucket - 4 - len(data))


def unpad_fixed(padded: bytes) -> bytes:
    if len(padded) < 4:
        raise ValueError("padded blob too short")
    length = int.from_bytes(padded[:4], "big")
    if length > len(padded) - 4:
        raise ValueError("corrupt padding header")
    return padded[4:4 + length]


def fixed_bucket_for(length: int, buckets: tuple[int, ...] = (1024, 16384, 262144, 4194304)) -> int:
    """Pick the smallest configured bucket that fits ``length`` + header."""
    for bucket in buckets:
        if bucket >= length + 4:
            return bucket
    raise ValueError(f"payload of {length} bytes exceeds largest bucket")
