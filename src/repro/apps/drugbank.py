"""Private information retrieval — the reproduction's DrugBank service.

A real in-memory hash index over synthetic drug records (the paper uses a
~400 MB c_hashmap-backed DrugBank; we build a 1/25-scale index with the
same access pattern: hash lookup + record fetch touching a random page of
the *common* database region per query). The client's query stream is the
sensitive input.
"""

from __future__ import annotations

import random

from ..hw.memory import PAGE_SIZE
from ..libos.libos import CommonSpec
from .base import MIB, Workload, WorkloadProfile, register

N_RECORDS = 4000
#: per-query modelled compute (hash, record parse, response append)
CYCLES_PER_QUERY = 560_000


def _make_records(seed: int) -> dict[str, str]:
    rng = random.Random(seed + 17)
    records = {}
    for i in range(N_RECORDS):
        name = f"drug-{i:05d}"
        records[name] = (
            f"{name}|target=GPCR-{rng.randrange(400)}"
            f"|halflife={rng.randrange(1, 48)}h"
            f"|interactions={rng.randrange(12)}"
        )
    return records


@register
class DrugbankWorkload(Workload):
    name = "drugbank"
    description = ("in-memory DrugBank-style database retrieval: hashed "
                   "record lookups over a common read-only database")

    queries = 20_000

    def __init__(self, seed: int = 0, scale: float = 1.0):
        super().__init__(seed, scale)
        self.records = _make_records(seed)
        self.db_pages = (16 * MIB) // PAGE_SIZE

    @property
    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            heap_bytes=8 * MIB,
            threads=4,
            common=[CommonSpec("drugbank-db", 16 * MIB, initializer=True)],
            bg_mmu_ops_per_tick=18,
            bg_copy_ops_per_tick=14,
            bg_faults_per_tick=0.8,
            bg_ve_per_tick=0.7,
            reclaim_pages_per_tick=1,
            common_touch_stride=4096,
            init_compute_cycles=350_000_000,
        )

    def default_request(self) -> bytes:
        rng = random.Random(self.seed + 19)
        n = max(int(self.queries * self.scale), 16)
        wanted = [f"drug-{rng.randrange(N_RECORDS):05d}" for _ in range(n)]
        return ",".join(wanted).encode()

    def serve(self, rt, request: bytes) -> bytes:
        names = request.decode().split(",")
        rng = random.Random(self.seed + 23)
        hits = 0
        sample_answers = []
        batch = 64
        for start in range(0, len(names), batch):
            chunk = names[start:start + batch]
            for name in chunk:
                record = self.records.get(name)   # the real index lookup
                if record is not None:
                    hits += 1
                    if len(sample_answers) < 8:
                        sample_answers.append(record)
                # record fetch touches one random page of the common DB
                page = rng.randrange(self.db_pages)
                rt.touch_common("drugbank-db", PAGE_SIZE,
                                offset=page * PAGE_SIZE)
            rt.parallel_for(len(chunk), CYCLES_PER_QUERY, sync_every=2)
        output = (f"hits={hits}/{len(names)};" + "&".join(sample_answers)).encode()
        rt.send_output(output)
        return output
