"""Unit + property tests for the crypto substrate."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto import (
    AeadError,
    KeyExchangeError,
    SealedSession,
    derive_channel_keys,
    fixed_bucket_for,
    generate_keypair,
    hkdf,
    open_,
    pad_to_fixed,
    seal,
    shared_secret,
    transcript_hash,
    unpad_fixed,
    validate_public,
)

KEY = b"k" * 32
NONCE = b"n" * 12


# --- DH -------------------------------------------------------------------

def test_dh_agreement():
    rng = random.Random(1)
    a, b = generate_keypair(rng), generate_keypair(rng)
    assert shared_secret(a, b.public) == shared_secret(b, a.public)


def test_dh_distinct_keys_distinct_secrets():
    rng = random.Random(2)
    a, b, c = (generate_keypair(rng) for _ in range(3))
    assert shared_secret(a, b.public) != shared_secret(a, c.public)


def test_dh_rejects_degenerate_publics():
    rng = random.Random(3)
    kp = generate_keypair(rng)
    for bad in (0, 1, -5):
        with pytest.raises(KeyExchangeError):
            shared_secret(kp, bad)
    with pytest.raises(KeyExchangeError):
        validate_public(1)


def test_transcript_hash_order_and_boundary_sensitive():
    assert transcript_hash(b"ab", b"c") != transcript_hash(b"a", b"bc")
    assert transcript_hash(b"a", b"b") != transcript_hash(b"b", b"a")


# --- HKDF ------------------------------------------------------------------

def test_hkdf_deterministic_and_info_separated():
    k1 = hkdf(b"ikm", salt=b"s", info=b"one", length=32)
    k2 = hkdf(b"ikm", salt=b"s", info=b"one", length=32)
    k3 = hkdf(b"ikm", salt=b"s", info=b"two", length=32)
    assert k1 == k2 and k1 != k3


def test_hkdf_rfc5869_case1():
    # RFC 5869 test case 1
    ikm = bytes.fromhex("0b" * 22)
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf(ikm, salt=salt, info=info, length=42)
    assert okm == bytes.fromhex(
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
        "34007208d5b887185865")


def test_channel_keys_directional():
    c2m, m2c = derive_channel_keys(b"s" * 32, b"t" * 32)
    assert c2m != m2c and len(c2m) == len(m2c) == 32


# --- AEAD ------------------------------------------------------------------

def test_seal_open_roundtrip():
    assert open_(KEY, NONCE, seal(KEY, NONCE, b"hello", b"aad"), b"aad") == b"hello"


def test_tamper_detected():
    sealed = bytearray(seal(KEY, NONCE, b"hello"))
    sealed[0] ^= 1
    with pytest.raises(AeadError):
        open_(KEY, NONCE, bytes(sealed))


def test_wrong_aad_detected():
    sealed = seal(KEY, NONCE, b"hello", b"aad1")
    with pytest.raises(AeadError):
        open_(KEY, NONCE, sealed, b"aad2")


def test_wrong_key_detected():
    sealed = seal(KEY, NONCE, b"hello")
    with pytest.raises(AeadError):
        open_(b"x" * 32, NONCE, sealed)


def test_bad_nonce_length():
    with pytest.raises(AeadError):
        seal(KEY, b"short", b"hello")


def test_session_sequence_numbers_prevent_replay():
    tx, rx = SealedSession(KEY), SealedSession(KEY)
    r1, r2 = tx.seal(b"one"), tx.seal(b"two")
    assert rx.open(r1) == b"one"
    with pytest.raises(AeadError):
        SealedSession(KEY, seq=1).open(r1)  # replay at wrong seq
    assert rx.open(r2) == b"two"


def test_session_reorder_detected():
    tx, rx = SealedSession(KEY), SealedSession(KEY)
    r1, r2 = tx.seal(b"one"), tx.seal(b"two")
    with pytest.raises(AeadError):
        rx.open(r2)


# --- padding ----------------------------------------------------------------

def test_pad_unpad_roundtrip():
    assert unpad_fixed(pad_to_fixed(b"data", 64)) == b"data"


def test_pad_hides_length():
    assert len(pad_to_fixed(b"a", 1024)) == len(pad_to_fixed(b"a" * 500, 1024)) == 1024


def test_pad_bucket_too_small():
    with pytest.raises(ValueError):
        pad_to_fixed(b"x" * 100, 64)


def test_fixed_bucket_selection():
    assert fixed_bucket_for(10) == 1024
    assert fixed_bucket_for(1020) == 1024
    assert fixed_bucket_for(1021) == 16384
    with pytest.raises(ValueError):
        fixed_bucket_for(10 ** 9)


def test_unpad_rejects_corrupt_header():
    with pytest.raises(ValueError):
        unpad_fixed(b"\xff\xff\xff\xff" + b"x" * 10)
    with pytest.raises(ValueError):
        unpad_fixed(b"\x00")


# --- properties --------------------------------------------------------------

@given(st.binary(max_size=4096), st.binary(max_size=64))
def test_property_aead_roundtrip(plaintext, aad):
    assert open_(KEY, NONCE, seal(KEY, NONCE, plaintext, aad), aad) == plaintext


@given(st.binary(max_size=512), st.integers(0, 3))
def test_property_padding_roundtrip(data, bucket_idx):
    buckets = (1024, 16384, 262144, 4194304)
    bucket = buckets[bucket_idx]
    assert unpad_fixed(pad_to_fixed(data, bucket)) == data


@given(st.binary(min_size=1, max_size=256))
def test_property_ciphertext_never_contains_long_plaintext_runs(plaintext):
    # With an all-distinct keystream the ciphertext should differ from the
    # plaintext somewhere for any non-degenerate message.
    sealed = seal(KEY, NONCE, plaintext)
    assert sealed[:len(plaintext)] != plaintext or len(plaintext) < 4
