"""Command-line harness: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                  # everything (a few minutes)
    python -m repro.bench table3 fig9      # selected experiments
    python -m repro.bench --list
    python -m repro.bench fig9 --scale 0.25

This is a convenience front-end over the same code paths the
``benchmarks/`` pytest suite drives.
"""

from __future__ import annotations

import argparse
import math
import sys

from .lmbench import LmbenchSuite
from .report import format_table, mib, pct
from .runner import WorkloadRunner
from .servers import FILE_SIZES, ServerBench

WORKLOADS = ("llama.cpp", "yolo", "drugbank", "graphchi", "unicorn")


def run_table3(args) -> None:
    from repro.core.emc import EmcCall
    from repro.core.microrig import GateRig
    from repro.hw.cycles import Cost
    emc = GateRig().run_emc(int(EmcCall.NOP))
    rows = [["EMC", emc, "1.00x"],
            ["SYSCALL", Cost.SYSCALL_ROUND_TRIP,
             f"{Cost.SYSCALL_ROUND_TRIP / emc:.2f}x"],
            ["TDCALL", Cost.TDCALL_ROUND_TRIP,
             f"{Cost.TDCALL_ROUND_TRIP / emc:.2f}x"],
            ["VMCALL", Cost.VMCALL_ROUND_TRIP,
             f"{Cost.VMCALL_ROUND_TRIP / emc:.2f}x"]]
    print(format_table("Table 3: privilege transitions (cycles)",
                       ["call", "cycles", "vs EMC"], rows))


def run_table4(args) -> None:
    from repro.hw.cycles import Cost
    rows = [
        ["MMU", Cost.PTE_WRITE_NATIVE, Cost.EREBOR_MMU],
        ["CR", Cost.CR_WRITE_NATIVE, Cost.EREBOR_CR],
        ["SMAP", Cost.STAC_CLAC_NATIVE, Cost.EREBOR_SMAP],
        ["IDT", Cost.LIDT_NATIVE, Cost.EREBOR_IDT],
        ["MSR", Cost.WRMSR_SLOW_NATIVE, Cost.EREBOR_MSR],
        ["GHCI", Cost.TDREPORT_NATIVE, Cost.EREBOR_GHCI],
    ]
    print(format_table("Table 4: privileged operations (cycles)",
                       ["op", "native", "erebor"], rows))


def run_fig8(args) -> None:
    results = LmbenchSuite(iterations=args.iterations).run_all()
    rows = [[r.name, f"{r.native_cycles:.0f}", f"{r.erebor_cycles:.0f}",
             f"{r.ratio:.2f}x", f"{r.emc_per_op:.1f}"] for r in results]
    print(format_table("Figure 8: LMBench", ["bench", "native", "erebor",
                                             "overhead", "EMC/op"], rows))


def run_fig9(args) -> None:
    runner = WorkloadRunner(scale=args.scale)
    rows = []
    full = []
    for name in WORKLOADS:
        runs = runner.run_all_settings(name)
        native = runs["native"].run_seconds
        ovh = {s: runs[s].run_seconds / native - 1 for s in runs}
        full.append(ovh["erebor"])
        rows.append([name, pct(ovh["libos"]), pct(ovh["mmu"]),
                     pct(ovh["exit"]), pct(ovh["erebor"])])
        print(f"  {name}: done")
    geo = math.exp(sum(math.log(1 + v) for v in full) / len(full)) - 1
    rows.append(["geomean", "-", "-", "-", pct(geo)])
    print(format_table("Figure 9: workload overhead vs native",
                       ["workload", "LibOS", "MMU", "Exit", "full"], rows))


def run_table6(args) -> None:
    runner = WorkloadRunner(scale=args.scale)
    rows = []
    for name in WORKLOADS:
        native = runner.run(name, "native")
        r = runner.run(name, "erebor")
        rows.append([name, f"{r.rate('page_fault'):.0f}",
                     f"{r.rate('timer_interrupt'):.0f}",
                     f"{r.rate('ve'):.0f}", f"{r.rate('emc') / 1000:.1f}k",
                     mib(r.confined_bytes),
                     mib(r.common_bytes) if r.common_bytes else "-",
                     pct(r.init_seconds / native.init_seconds - 1)])
    print(format_table("Table 6: execution statistics",
                       ["program", "#PF/s", "#Timer/s", "#VE/s", "EMC/s",
                        "conf", "com", "init ovh"], rows))


def run_fig10(args) -> None:
    bench = ServerBench(requests_per_size=args.requests)
    series = {k: bench.run_series(k) for k in ("ssh", "nginx")}
    rows = [[f"{size // 1024}K",
             f"{series['ssh'].relative_throughput(size):.3f}",
             f"{series['nginx'].relative_throughput(size):.3f}"]
            for size in FILE_SIZES]
    rows.append(["avg loss", pct(series["ssh"].average_reduction()),
                 pct(series["nginx"].average_reduction())])
    print(format_table("Figure 10: server relative throughput",
                       ["size", "ssh", "nginx"], rows))


EXPERIMENTS = {
    "table3": run_table3,
    "table4": run_table4,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table6": run_table6,
    "fig10": run_fig10,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench",
                                     description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help=f"subset of {sorted(EXPERIMENTS)} (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument("--iterations", type=int, default=150,
                        help="LMBench iterations (default 150)")
    parser.add_argument("--requests", type=int, default=16,
                        help="server requests per file size (default 16)")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    selected = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    for name in selected:
        EXPERIMENTS[name](args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
