"""Sandbox exit interposition: the monitor between every exit and the OS.

This is the macro-level realization of Figure 7: the monitor's special
syscall entry, exception vectors and GHCI ownership mean *every* exit is
inspected before the kernel sees it. For non-sandbox tasks the inspection
is a cheap classify-and-forward (the system-wide overhead Fig. 10
measures); for a locked sandbox the monitor

* kills the sandbox on any software-controlled exit (syscalls other than
  the channel ioctl, hypercalls, software exceptions),
* emulates ``cpuid`` from its cache instead of exiting,
* saves and masks the register file at external interrupts and restores
  it on resume (so the kernel never sees live sandbox state).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hw.cycles import Cost
from ..kernel.kernel import ExitPath
from ..obs.metrics import HandleCache, sandbox_label
from ..kernel.process import CowBacking, Task
from .policy import SandboxViolation

if TYPE_CHECKING:
    from .monitor import EreborMonitor

#: the only syscall a locked sandbox may issue: the channel ioctl
LOCKED_ALLOWED_SYSCALLS = frozenset({"ioctl"})

#: interned ``exit:<cls>`` record names (every interposed exit emits one)
_EXIT_EVENT_NAMES: dict[str, str] = {}


class MonitorExitPath(ExitPath):
    """ExitPath implementation wired into the kernel by stage-2 boot."""

    def __init__(self, monitor: "EreborMonitor"):
        self.monitor = monitor
        self.clock = monitor.clock
        self._last_exit_cycle: int | None = None
        #: (cls, owner) → exit-counter write handles; "pkrs" → its handle
        self._metric_handles = HandleCache()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _sandbox_of(self, task: Task | None):
        if task is not None and task.kind == "sandbox":
            return task.sandbox
        return None

    def _charge_exit(self, cls: str = "other", *, sandboxed: bool,
                     sandbox=None, task=None) -> None:
        clock = self.clock
        clock.charge(Cost.EXIT_INSPECT, "exit_interpose")
        if sandboxed:
            clock.count("sandbox_exit")
            if sandbox is not None:
                sandbox.stats["exits"] += 1
            if self.monitor.features.uarch_model:
                clock.charge(Cost.UARCH_PER_SANDBOX_EXIT, "uarch")
            if self.monitor.mitigations is not None:
                self.monitor.mitigations.on_sandbox_exit(sandbox)
        metrics = clock.metrics
        if metrics.enabled:
            owner = sandbox_label(task)
            handles = self._metric_handles.get(metrics, (cls, owner))
            if handles is None:
                handles = self._metric_handles.put((cls, owner), (
                    metrics.counter_handle("erebor_exits_total",
                                           cls=cls, sandbox=owner),
                    metrics.counter_handle("erebor_sandbox_exits_total",
                                           cls=cls, sandbox=owner),
                    metrics.histogram_handle("erebor_exit_gap_cycles"),
                ))
            exits_total, sandbox_exits, exit_gap = handles
            exits_total.inc()
            if sandboxed:
                sandbox_exits.inc()
            # exit-gap histogram: cycles between consecutive interposed
            # exits, the interposition-frequency distribution Fig. 10 keys
            last = self._last_exit_cycle
            if last is not None:
                exit_gap.observe(clock.cycles - last)
            self._last_exit_cycle = clock.cycles
        name = _EXIT_EVENT_NAMES.get(cls)
        if name is None:
            name = _EXIT_EVENT_NAMES[cls] = f"exit:{cls}"
        clock.tracer.event(name, "exit", sandboxed=sandboxed)

    def _pkrs_toggle(self) -> None:
        """Bump the PKRS-write counter through a cached handle."""
        metrics = self.clock.metrics
        if metrics.enabled:
            handle = self._metric_handles.get(metrics, "pkrs")
            if handle is None:
                handle = self._metric_handles.put(
                    "pkrs",
                    metrics.counter_handle("erebor_pkrs_toggles_total"))
            handle.inc(2)

    @property
    def _active(self) -> bool:
        return self.monitor.features.exit_protection

    # ------------------------------------------------------------------ #
    # hook implementations
    # ------------------------------------------------------------------ #

    def on_syscall(self, task: Task, name: str) -> None:
        if not self._active:
            return
        sandbox = self._sandbox_of(task)
        self._charge_exit("syscall", sandboxed=sandbox is not None,
                          sandbox=sandbox, task=task)
        if sandbox is not None:
            self.clock.count("sandbox_syscall_exit")
            sandbox.stats["syscall_exits"] += 1
            if sandbox.locked and name not in LOCKED_ALLOWED_SYSCALLS:
                self.monitor.clock.count("sandbox_kill")
                sandbox.kill(f"syscall {name!r} after client data load")
                raise SandboxViolation(sandbox.sandbox_id,
                                       f"syscall {name!r} while locked")

    def on_secure_pagefault(self, task: Task, va: int, write: bool,
                            vma=None) -> bool:
        """Self-paging (§6.1 future work / Autarky): the monitor resolves
        faults on secure-paged confined memory without exposing the
        faulting address to the OS, closing the controlled channel.
        Copy-on-write confined memory of forked sandboxes is always
        self-paged: reads map the shared template frame, first writes
        duplicate the page into a private confined frame."""
        sandbox = self._sandbox_of(task)
        if sandbox is None:
            return False
        if vma is None:
            vma = task.find_vma(va)
        if vma is not None and vma.kind == "confined":
            if isinstance(vma.backing, CowBacking):
                return sandbox.resolve_cow_fault(vma, va, write)
        if not sandbox.secure_paging:
            return False
        if vma is None or vma.kind != "confined":
            return False
        if write and not vma.prot & 0x2:
            return False      # real protection violation: let the OS kill it
        from ..hw.paging import PTE_NX, PTE_P, PTE_U, PTE_W, make_pte
        page_va = va & ~0xFFF
        fn = vma.backing.frame_for(vma.page_index(va), self.monitor.phys,
                                   task.owner_tag)
        flags = PTE_P | PTE_U | PTE_NX | (PTE_W if vma.prot & 0x2 else 0)
        self.clock.charge(Cost.PF_HANDLER_BASE // 2, "secure_pager")
        self.monitor.vmmu.write_pte(task.aspace, page_va,
                                    make_pte(fn, flags, vma.pkey))
        self.clock.count("secure_fault")
        return True

    def on_pagefault(self, task: Task, va: int, write: bool) -> None:
        if not self._active:
            return
        sandbox = self._sandbox_of(task)
        self._charge_exit("pagefault", sandboxed=sandbox is not None,
                          sandbox=sandbox, task=task)
        self.clock.charge(Cost.INT_GATE_OVERHEAD, "int_gate")
        self._pkrs_toggle()
        if sandbox is not None:
            self.clock.count("sandbox_pf_exit")
            sandbox.stats["pf_exits"] += 1
            if sandbox.locked:
                # exception exits expose state: mask and later restore
                self.clock.charge(Cost.SANDBOX_STATE_SAVE
                                  + Cost.SANDBOX_STATE_RESTORE, "sandbox_state")

    def on_interrupt(self, task: Task, vector: int) -> None:
        if not self._active:
            return
        sandbox = self._sandbox_of(task)
        self._charge_exit("irq", sandboxed=sandbox is not None,
                          sandbox=sandbox, task=task)
        self.clock.charge(Cost.INT_GATE_OVERHEAD, "int_gate")
        self._pkrs_toggle()
        if sandbox is not None:
            self.clock.count("sandbox_irq_exit")
            sandbox.stats["irq_exits"] += 1
            if sandbox.locked:
                # save + mask the register file before the OS handler runs
                self.clock.charge(Cost.SANDBOX_STATE_SAVE, "sandbox_state")
                sandbox.note_masked_entry()

    def on_interrupt_return(self, task: Task, vector: int) -> None:
        if not self._active:
            return
        sandbox = self._sandbox_of(task)
        if sandbox is not None and sandbox.locked:
            self.clock.charge(Cost.SANDBOX_STATE_RESTORE, "sandbox_state")
            sandbox.note_masked_exit()

    def on_context_switch(self, prev: Task | None, nxt: Task) -> None:
        """Task switch: the monitor swaps the per-task kernel shadow stack
        (IA32_PL0_SSP is monitor-owned; the kernel cannot write it)."""
        self.monitor.sst_manager.switch(0, prev, nxt)

    def on_ve(self, task: Task | None, reason: str = "") -> None:
        if not self._active:
            return
        sandbox = self._sandbox_of(task)
        self._charge_exit("ve", sandboxed=sandbox is not None,
                          sandbox=sandbox, task=task)
        self.clock.count("ve_interposed")
        if sandbox is None or not sandbox.locked:
            return
        self.clock.count("sandbox_ve_exit")
        sandbox.stats["ve_exits"] += 1
        if reason == "cpuid":
            # emulated from the monitor's cache: no exit reaches the host
            self.monitor.emulated_cpuid()
            return
        if reason in ("hypercall", "sandbox_hypercall"):
            self.monitor.clock.count("sandbox_kill")
            sandbox.kill(f"VM exit ({reason}) after client data load")
            raise SandboxViolation(sandbox.sandbox_id,
                                   f"hypercall while locked")
