"""Huge-page (2 MiB) mapping and forced-splitting tests (paper §7)."""

import pytest

from repro.core.nested_mmu import NestedMmu
from repro.core.policy import PolicyViolation
from repro.hw import regs
from repro.hw.cycles import CycleClock
from repro.hw.errors import PageFault, SimulatorError
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.mmu import AccessContext, KERNEL_MODE, Mmu
from repro.hw.paging import (
    HUGE_PAGE_FRAMES,
    HUGE_PAGE_SIZE,
    PTE_NX,
    PTE_P,
    PTE_PS,
    PTE_U,
    PTE_W,
    AddressSpace,
    pte_pkey,
)

MIB = 1024 * 1024
HUGE_VA = 0x4000_0000   # 1 GiB, definitely 2 MiB-aligned


@pytest.fixture
def rig():
    phys = PhysicalMemory(128 * MIB)
    aspace = AddressSpace(phys)
    mmu = Mmu(phys, CycleClock())
    # a 2 MiB-aligned physically contiguous block
    frames = phys.alloc_frames(HUGE_PAGE_FRAMES * 2, "data", contiguous=True)
    base = next(f for f in frames if f % HUGE_PAGE_FRAMES == 0)
    return phys, aspace, mmu, base


def kctx(**kw):
    defaults = dict(mode=KERNEL_MODE,
                    cr0=regs.CR0_PE | regs.CR0_PG | regs.CR0_WP,
                    cr4=regs.CR4_PKS)
    defaults.update(kw)
    return AccessContext(**defaults)


def test_huge_map_translates_whole_range(rig):
    phys, aspace, mmu, base = rig
    aspace.map_huge_page(HUGE_VA, base, PTE_P | PTE_W)
    for offset in (0, PAGE_SIZE, 1 * MIB, HUGE_PAGE_SIZE - 1):
        hit = aspace.translate(HUGE_VA + offset)
        assert hit is not None
        pa, pte = hit
        assert pa == (base << 12) + offset
        assert pte & PTE_PS
    assert aspace.translate(HUGE_VA + HUGE_PAGE_SIZE) is None


def test_huge_map_alignment_enforced(rig):
    phys, aspace, mmu, base = rig
    with pytest.raises(SimulatorError):
        aspace.map_huge_page(HUGE_VA + PAGE_SIZE, base, PTE_P)
    with pytest.raises(SimulatorError):
        aspace.map_huge_page(HUGE_VA, base + 1, PTE_P)


def test_huge_map_uses_one_entry(rig):
    phys, aspace, mmu, base = rig
    tables_before = len(aspace.table_frames)
    aspace.map_huge_page(HUGE_VA, base, PTE_P | PTE_W)
    # only the L1 table was created; no 512-entry leaf table
    assert len(aspace.table_frames) == tables_before + 1


def test_mmu_checks_apply_to_huge_mappings(rig):
    phys, aspace, mmu, base = rig
    aspace.map_huge_page(HUGE_VA, base, PTE_P)  # read-only
    mmu.check(aspace, HUGE_VA + 12345, "read", kctx())
    with pytest.raises(PageFault):
        mmu.check(aspace, HUGE_VA + 12345, "write", kctx())


def test_pks_applies_to_huge_mappings(rig):
    phys, aspace, mmu, base = rig
    aspace.map_huge_page(HUGE_VA, base, PTE_P | PTE_W, pkey=1)
    pkrs = regs.pkrs_value(k1=regs.PKR_AD)
    with pytest.raises(PageFault) as exc:
        mmu.check(aspace, HUGE_VA + 5 * PAGE_SIZE, "read", kctx(pkrs=pkrs))
    assert exc.value.pkey_violation


def test_split_preserves_translation_and_attributes(rig):
    phys, aspace, mmu, base = rig
    aspace.map_huge_page(HUGE_VA, base, PTE_P | PTE_W | PTE_NX, pkey=3)
    phys.write((base << 12) + 7 * PAGE_SIZE, b"marker")
    aspace.split_huge_page(HUGE_VA)
    for offset in (0, 7 * PAGE_SIZE, HUGE_PAGE_SIZE - PAGE_SIZE):
        pa, pte = aspace.translate(HUGE_VA + offset)
        assert pa == (base << 12) + offset
        assert not pte & PTE_PS
        assert pte & PTE_NX and pte_pkey(pte) == 3
    assert phys.read((base << 12) + 7 * PAGE_SIZE, 6) == b"marker"


def test_split_non_huge_is_noop(rig):
    phys, aspace, mmu, base = rig
    aspace.map_page(HUGE_VA, base, PTE_P)
    assert aspace.split_huge_page(HUGE_VA) is None


# --------------------------------------------------------------------------- #
# monitor-side: validated huge installs + forced splitting
# --------------------------------------------------------------------------- #

@pytest.fixture
def vrig():
    phys = PhysicalMemory(128 * MIB)
    vmmu = NestedMmu(phys, CycleClock())
    aspace = AddressSpace(phys, "s1")
    vmmu.register_sandbox(1, aspace)
    frames = phys.alloc_frames(HUGE_PAGE_FRAMES * 2, "data", contiguous=True)
    base = next(f for f in frames if f % HUGE_PAGE_FRAMES == 0)
    return phys, vmmu, aspace, base


def test_monitor_validates_every_subframe_of_huge_map(vrig):
    phys, vmmu, aspace, base = vrig
    # poison one frame in the middle: owned by the monitor
    phys.frame(base + 100).owner = "monitor"
    with pytest.raises(PolicyViolation):
        vmmu.write_huge_pte(aspace, HUGE_VA, base, PTE_U | PTE_NX)
    phys.frame(base + 100).owner = "data"
    vmmu.write_huge_pte(aspace, HUGE_VA, base, PTE_U | PTE_NX)
    assert aspace.translate(HUGE_VA + 100 * PAGE_SIZE) is not None


def test_forced_split_then_4k_pkey(vrig):
    """The §7 flow: set a protection key inside a huge page."""
    phys, vmmu, aspace, base = vrig
    vmmu.write_huge_pte(aspace, HUGE_VA, base, PTE_U | PTE_NX)
    target = HUGE_VA + 33 * PAGE_SIZE
    vmmu.set_pkey_4k(aspace, target, pkey=5)
    _, pte = aspace.translate(target)
    assert pte_pkey(pte) == 5 and not pte & PTE_PS
    # neighbours kept their (split) mapping and old key
    _, neighbour = aspace.translate(target + PAGE_SIZE)
    assert pte_pkey(neighbour) == 0
    assert vmmu.clock.events["huge_split"] == 1


def test_forced_split_counts_batched_pte_writes(vrig):
    phys, vmmu, aspace, base = vrig
    vmmu.write_huge_pte(aspace, HUGE_VA, base, PTE_U | PTE_NX)
    before = vmmu.clock.events["pte_write"]
    vmmu.force_split(aspace, HUGE_VA)
    assert vmmu.clock.events["pte_write"] - before == HUGE_PAGE_FRAMES


def test_force_split_unmapped_rejected(vrig):
    phys, vmmu, aspace, base = vrig
    with pytest.raises(PolicyViolation):
        vmmu.force_split(aspace, 0x7000_0000)


def test_huge_map_install_is_one_pte_write(vrig):
    phys, vmmu, aspace, base = vrig
    before = vmmu.clock.events["pte_write"]
    vmmu.write_huge_pte(aspace, HUGE_VA, base, PTE_U | PTE_NX)
    assert vmmu.clock.events["pte_write"] - before == 1
