"""Fixed-capacity ring buffer shared by the trace layer and the audit log.

Long-running and server benchmarks generate unbounded event streams; the
observability layer must never grow without bound (the old monitor
``audit_log`` was a plain ``list`` that did exactly that). A
:class:`RingBuffer` keeps the most recent ``capacity`` items and counts
what it overwrote, so consumers can tell "nothing happened" apart from
"events happened but were dropped".
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Bounded FIFO keeping the newest ``capacity`` items.

    Supports the list-ish read surface the audit log's consumers use:
    ``len``, iteration (oldest → newest), integer and slice indexing.
    Overwritten items are counted by :attr:`dropped`.

    Storage is a ``deque(maxlen=capacity)`` so the append path — the
    tracer emits one append per record, hundreds of thousands per fleet
    run — is a single C call with no index arithmetic, in the wrapped
    regime too. Hot emit paths (see :meth:`Tracer._emit
    <repro.obs.trace.Tracer._emit>`) are allowed to reach through
    :attr:`pushed`/:attr:`_buf` directly to skip the method-call
    overhead; the invariant they must keep is one ``pushed`` increment
    per ``_buf.append``.
    """

    __slots__ = ("capacity", "pushed", "_buf")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: total items ever appended (dropped is derived from this)
        self.pushed = 0
        self._buf: deque[T] = deque(maxlen=capacity)

    def append(self, item: T) -> None:
        self.pushed += 1
        self._buf.append(item)

    def extend(self, items) -> None:
        for item in items:
            self.pushed += 1
            self._buf.append(item)

    def clear(self) -> None:
        self._buf.clear()
        self.pushed = 0

    @property
    def dropped(self) -> int:
        return self.pushed - len(self._buf)

    def to_list(self) -> list[T]:
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def __bool__(self) -> bool:
        return bool(self._buf)

    def __iter__(self) -> Iterator[T]:
        return iter(self._buf)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._buf)[index]
        try:
            return self._buf[index]
        except IndexError:
            raise IndexError(f"ring index {index} out of range "
                             f"({len(self._buf)} items)") from None

    def __repr__(self) -> str:
        return (f"RingBuffer({len(self._buf)}/{self.capacity} items, "
                f"{self.dropped} dropped)")
