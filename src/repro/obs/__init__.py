"""``repro.obs`` — unified observability: tracing, metrics, exporters.

A zero-dependency observability subsystem threaded through the whole
stack. Four pieces:

* :mod:`repro.obs.trace` — structured spans/events timestamped on the
  simulated :class:`~repro.hw.cycles.CycleClock` (never wall-clock), in a
  bounded ring buffer, with nested-span support. Off by default: every
  clock carries the no-op :data:`NULL_TRACER` until :func:`install`.
* :mod:`repro.obs.metrics` — counters/gauges/histograms keyed by
  ``(name, labels)``: per-sandbox EMC counts, exit classes, page-fault
  and PKRS-toggle totals, syscall latency histograms.
* :mod:`repro.obs.export` — Prometheus text, plain JSON, and Chrome
  ``trace_event`` output (loads directly in Perfetto).
* :mod:`repro.obs.profile` — collapsed flamegraph stacks attributing
  every simulated cycle to a call path.
* :mod:`repro.obs.reqtrace` — request-scoped causal tracing: one
  deterministic trace ID per fleet session, bound through every layer,
  rebuilt into per-request span trees (text tree / one-lane-per-request
  Chrome trace / seeded-run-stable digests).
* :mod:`repro.obs.hostprof` — host wall-clock attribution (the one
  deliberate D1 exemption): where real seconds go — fetch/decode, MMU
  walks, EMC dispatch, tracer emit, crypto — as a ranked table and
  collapsed-stack flamegraph.
* :mod:`repro.obs.ledger` — the plane-attribution budget ledger: every
  simulated cycle assigned to a named plane per execution lane, with a
  bit-exact conservation invariant against the clock's busy/wall
  ledgers.
* :mod:`repro.obs.diff` — differential run comparator (``python -m
  repro.obs diff A B``) and the perf-trajectory regression gate over
  ``BENCH_history.jsonl``.

Observability *reads* the clock and never charges it: enabling a tracer
changes no calibrated number (empty EMC stays 1224 cycles, empty syscall
684 — test-enforced).

Quickstart::

    from repro import obs
    tracer, registry = obs.install(machine.clock)
    ... run anything ...
    tracer.finish()
    obs.write_chrome_trace(tracer, "trace.json")   # open in Perfetto
    print(obs.prometheus_text(registry))

Or from the command line::

    python -m repro.obs --workload helloworld --export chrome -o trace.json

This ``__init__`` only imports the stdlib-level leaves (``trace``,
``metrics``, ``ring``) eagerly — :mod:`repro.hw.cycles` imports them, so
anything heavier is loaded lazily via module ``__getattr__``.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_BUCKETS,
    EwmaDetector,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    WindowedHistogram,
    label_key,
    parse_label_key,
    sandbox_label,
    snapshot_counter_total,
    snapshot_delta,
)
from .ring import RingBuffer
from .trace import (
    AUDIT,
    DEFAULT_CAPACITY,
    INSTANT,
    NULL_TRACER,
    NullTracer,
    SPAN,
    TraceEvent,
    Tracer,
)

__all__ = [
    "AUDIT", "DEFAULT_BUCKETS", "DEFAULT_CAPACITY", "EwmaDetector",
    "FlightConfig", "FlightDump", "FlightRecorder", "HostProfiler",
    "INSTANT", "MetricsRegistry", "NULL_METRICS", "NULL_TRACER",
    "NullMetrics", "NullTracer", "RequestTraceIndex", "RingBuffer",
    "SPAN", "TraceEvent", "Tracer", "WindowedHistogram",
    "capture_ledger", "chrome_trace", "check_chrome_trace",
    "check_diff_report", "check_export", "check_flight_dump",
    "check_hostprof_report", "check_ledger", "check_request_trace",
    "collapsed_stacks", "diff_any", "diff_bundles", "diff_digest_maps",
    "gate_history", "gate_report", "hotspots", "host_planes", "install",
    "label_key", "mint_trace_id", "parse_label_key", "profile_fleet",
    "profile_report", "prometheus_text", "run_observed", "sandbox_label",
    "snapshot_counter_total", "snapshot_delta", "total_attributed",
    "trace_json", "uninstall", "utilization_timeline",
    "verify_conservation", "write_chrome_trace",
]

#: lazy re-exports → (module, attribute); avoids import cycles with hw/bench
_LAZY = {
    "chrome_trace": ("export", "chrome_trace"),
    "write_chrome_trace": ("export", "write_chrome_trace"),
    "trace_json": ("export", "trace_json"),
    "prometheus_text": ("export", "prometheus_text"),
    "collapsed_stacks": ("profile", "collapsed_stacks"),
    "total_attributed": ("profile", "total_attributed"),
    "hotspots": ("profile", "hotspots"),
    "profile_report": ("profile", "profile_report"),
    "check_export": ("schema", "check_export"),
    "check_chrome_trace": ("schema", "check_chrome_trace"),
    "check_flight_dump": ("schema", "check_flight_dump"),
    "check_request_trace": ("schema", "check_request_trace"),
    "check_hostprof_report": ("schema", "check_hostprof_report"),
    "run_observed": ("harness", "run_observed"),
    "FlightConfig": ("flight", "FlightConfig"),
    "FlightDump": ("flight", "FlightDump"),
    "FlightRecorder": ("flight", "FlightRecorder"),
    "utilization_timeline": ("flight", "utilization_timeline"),
    "RequestTraceIndex": ("reqtrace", "RequestTraceIndex"),
    "mint_trace_id": ("reqtrace", "mint_trace_id"),
    "HostProfiler": ("hostprof", "HostProfiler"),
    "profile_fleet": ("hostprof", "profile_fleet"),
    "capture_ledger": ("ledger", "capture_ledger"),
    "verify_conservation": ("ledger", "verify_conservation"),
    "host_planes": ("ledger", "host_planes"),
    "diff_any": ("diff", "diff_any"),
    "diff_bundles": ("diff", "diff_bundles"),
    "diff_digest_maps": ("diff", "diff_digest_maps"),
    "gate_history": ("diff", "gate_history"),
    "gate_report": ("diff", "gate_report"),
    "check_ledger": ("schema", "check_ledger"),
    "check_diff_report": ("schema", "check_diff_report"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def install(clock, *, trace: bool = True, metrics: bool = True,
            capacity: int = DEFAULT_CAPACITY, flight=False):
    """Attach observability to a clock; returns ``(tracer, registry)``.

    With ``trace=False`` (or ``metrics=False``) the corresponding no-op
    sink is left in place and returned, so callers can always use the
    return values unconditionally. ``flight`` swaps the plain tracer for
    a :class:`~repro.obs.flight.FlightRecorder` (pass a
    :class:`~repro.obs.flight.FlightConfig` to tune it) — a drop-in
    Tracer that additionally keeps per-CPU black-box rings and freezes a
    dump on every trigger.
    """
    if flight and trace:
        from .flight import FlightConfig, FlightRecorder
        cfg = flight if isinstance(flight, FlightConfig) else None
        tracer = FlightRecorder(clock, cfg, capacity=capacity)
    else:
        tracer = Tracer(clock, capacity=capacity) if trace else clock.tracer
    registry = MetricsRegistry() if metrics else clock.metrics
    clock.tracer = tracer
    clock.metrics = registry
    return tracer, registry


def uninstall(clock) -> None:
    """Detach observability: restore the no-op tracer and registry."""
    clock.tracer = NULL_TRACER
    clock.metrics = NULL_METRICS
