"""Metrics registry: counters, gauges and histograms keyed by (name, labels).

This is the quantitative half of ``repro.obs``: where the trace layer
answers *when*, the registry answers *how many / how much* — per-sandbox
EMC counts, exit-class breakdowns, page-fault and PKRS-toggle totals,
syscall latency histograms. It supersedes the old ``MonitorStats``
dataclass (now a derived view over the clock's event ledger) and the
benchmark harness's ad-hoc counters: the bench runner snapshots the
registry around every run and attaches the delta to ``results.json``.

Label sets are stored as canonical ``"k=v,k2=v2"`` strings (sorted by
key), which keeps snapshots JSON-able with no conversion. Like the
tracer, the registry never touches the cycle clock; it exists purely on
the host side.
"""

from __future__ import annotations

import copy

#: default histogram bucket upper bounds (simulated cycles)
DEFAULT_BUCKETS = (250, 700, 1300, 2500, 5000, 10_000, 30_000,
                   100_000, 1_000_000)


def label_key(labels: dict) -> str:
    """Canonical series key for a label dict: ``"k=v,k2=v2"`` sorted."""
    if not labels:
        return ""
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def parse_label_key(key: str) -> dict:
    """Inverse of :func:`label_key` (empty string → no labels)."""
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))


def labels_match(key: str, match: dict) -> bool:
    """True if the series ``key`` carries every label in ``match``."""
    if not match:
        return True
    labels = parse_label_key(key)
    return all(labels.get(k) == str(v) for k, v in match.items())


def sandbox_label(task) -> str:
    """Metrics label attributing an event to a sandbox (or the kernel)."""
    if (task is not None and getattr(task, "kind", "") == "sandbox"
            and getattr(task, "sandbox", None) is not None):
        return str(task.sandbox.sandbox_id)
    return "kernel"


class NullMetrics:
    """No-op registry: the default on every clock (observability off)."""

    enabled = False
    __slots__ = ()

    def describe(self, name: str, help: str = "",
                 buckets: tuple | None = None) -> None:
        return None

    def inc(self, name: str, value: float = 1, /, **labels) -> None:
        return None

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        return None

    def observe(self, name: str, value: float, /, **labels) -> None:
        return None

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the shared disabled registry
NULL_METRICS = NullMetrics()


class MetricsRegistry(NullMetrics):
    """Live metrics store for one simulated machine."""

    enabled = True
    __slots__ = ("counters", "gauges", "histograms", "_help", "_buckets")

    def __init__(self):
        self.counters: dict[str, dict[str, float]] = {}
        self.gauges: dict[str, dict[str, float]] = {}
        #: name → key → {"buckets": [..], "sum": s, "count": n}
        self.histograms: dict[str, dict[str, dict]] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple] = {}

    # -- registration ---------------------------------------------------- #

    def describe(self, name: str, help: str = "",
                 buckets: tuple | None = None) -> None:
        """Attach help text (Prometheus ``# HELP``) and histogram buckets."""
        if help:
            self._help[name] = help
        if buckets is not None:
            self._buckets[name] = tuple(sorted(buckets))

    # -- writes ---------------------------------------------------------- #

    def inc(self, name: str, value: float = 1, /, **labels) -> None:
        series = self.counters.setdefault(name, {})
        key = label_key(labels)
        series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        self.gauges.setdefault(name, {})[label_key(labels)] = value

    def observe(self, name: str, value: float, /, **labels) -> None:
        bounds = self._buckets.get(name, DEFAULT_BUCKETS)
        series = self.histograms.setdefault(name, {})
        key = label_key(labels)
        hist = series.get(key)
        if hist is None:
            hist = series[key] = {"bounds": list(bounds),
                                  "buckets": [0] * len(bounds),
                                  "sum": 0, "count": 0}
        for i, bound in enumerate(hist["bounds"]):
            if value <= bound:
                hist["buckets"][i] += 1
                break
        hist["sum"] += value
        hist["count"] += 1

    # -- reads ----------------------------------------------------------- #

    def counter_value(self, name: str, /, **labels) -> float:
        return self.counters.get(name, {}).get(label_key(labels), 0)

    def counter_total(self, name: str, /, **match) -> float:
        """Sum a counter across all series matching the label subset."""
        return sum(v for key, v in self.counters.get(name, {}).items()
                   if labels_match(key, match))

    def snapshot(self) -> dict:
        """Deep-copied, JSON-able view of every series."""
        return {
            "counters": {n: dict(s) for n, s in self.counters.items()},
            "gauges": {n: dict(s) for n, s in self.gauges.items()},
            "histograms": copy.deepcopy(self.histograms),
        }

    def delta_since(self, snap: dict) -> dict:
        """Interval view: counters/histograms since ``snap``, gauges live."""
        return snapshot_delta(self.snapshot(), snap)


def snapshot_delta(new: dict, old: dict) -> dict:
    """Subtract two :meth:`MetricsRegistry.snapshot` dicts (new - old)."""
    counters: dict = {}
    for name, series in new["counters"].items():
        base = old["counters"].get(name, {})
        delta = {k: v - base.get(k, 0) for k, v in series.items()
                 if v - base.get(k, 0)}
        if delta:
            counters[name] = delta
    histograms: dict = {}
    for name, series in new["histograms"].items():
        base = old["histograms"].get(name, {})
        out_series = {}
        for key, hist in series.items():
            b = base.get(key)
            if b is None:
                out_series[key] = copy.deepcopy(hist)
                continue
            diff = {
                "bounds": list(hist["bounds"]),
                "buckets": [x - y for x, y in zip(hist["buckets"],
                                                  b["buckets"])],
                "sum": hist["sum"] - b["sum"],
                "count": hist["count"] - b["count"],
            }
            if diff["count"]:
                out_series[key] = diff
        if out_series:
            histograms[name] = out_series
    return {"counters": counters,
            "gauges": {n: dict(s) for n, s in new["gauges"].items()},
            "histograms": histograms}


def snapshot_counter_total(snapshot: dict, name: str, /, **match) -> float:
    """Sum a counter in a snapshot dict across matching label sets."""
    return sum(v for key, v in snapshot.get("counters", {})
               .get(name, {}).items() if labels_match(key, match))
