"""Execution certificates: offline verification + the tamper corpus.

One seeded fleet run (with a tenant-0 EMC-quota eviction, so both the
``completed`` and ``evicted`` arcs are exercised) produces the batch;
everything after that runs the *client's* side: verify against the
published goldens, reject every tamper variant with its own localized
code, and — the import-purity acceptance check — verify the whole
directory in a subprocess that never loads the simulator.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.certs import CertificateError, load_certificate, \
    serialize_certificate
from repro.certs.__main__ import main as certs_main
from repro.certs.issue import published_refs, write_certificates
from repro.certs.tamper import TAMPERS, tamper_certificate
from repro.certs.verify import CertificateVerifier, verify_certificate
from repro.fleet import run_fleet
from repro.fleet.admission import AdmissionConfig, TenantQuota

PARAMS = dict(workload="helloworld", clients=3, requests=2, pool_size=1,
              tenants=2, seed=11, scale=1.0)

#: tenant-0 (client-0, client-2) blows a 1-EMC allowance and is evicted;
#: tenant-1 (client-1) completes — one run covers both certificate arcs
VIOLATING = AdmissionConfig(
    queue_depth=3, quotas={"tenant-0": TenantQuota(max_emc_per_request=1)})

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def batch(tmp_path_factory):
    report, system = run_fleet(admission=VIOLATING, certificates=True,
                               **PARAMS)
    certs = system.fleet_certificates
    cert_dir = tmp_path_factory.mktemp("certs")
    write_certificates(certs, cert_dir)
    return report, certs, cert_dir


@pytest.fixture(scope="module")
def verifier():
    return CertificateVerifier(refs=published_refs())


# --------------------------------------------------------------------------- #
# honest certificates verify — both outcomes, with and without goldens
# --------------------------------------------------------------------------- #

def test_every_session_outcome_is_covered(batch):
    report, certs, _ = batch
    assert report.outcomes == {"completed": 1, "evicted": 2}
    assert sorted(certs) == ["client-0", "client-1", "client-2"]
    outcomes = {n: c["body"]["session"]["outcome"] for n, c in certs.items()}
    assert outcomes == {"client-0": "evicted", "client-1": "completed",
                       "client-2": "evicted"}


def test_all_certificates_verify_against_published_goldens(batch, verifier):
    _, certs, _ = batch
    for name, cert in certs.items():
        result = verifier.verify(cert)
        assert result.ok, f"{name}: [{result.code}] {result.detail}"
        assert result.session == name
        assert "platform" in result.checks
        assert "audit-arc" in result.checks


def test_verification_is_self_contained_without_goldens(batch):
    """No published.json: platform goldens are skipped but the RTMR[3] ↔
    kernel-digest proof, chain, scrub, and trace checks all still run."""
    _, certs, _ = batch
    result = verify_certificate(certs["client-1"])
    assert result.ok
    assert "platform" not in result.checks
    assert "kernel-digest" in result.checks


def test_evicted_certificate_carries_the_kill_arc(batch):
    _, certs, _ = batch
    cert = certs["client-0"]
    assert cert["attachments"]["scrub_record"]["kind"] == "kill-scrub"
    kinds = {e["kind"] for e in cert["attachments"]["audit_segment"]}
    assert "kill" in kinds
    # eviction is post-hoc: the violating request itself completed, so
    # the causal arc is intact — only the outcome records the quota kill
    assert cert["body"]["session"]["served"] == 1
    assert cert["body"]["trace"]["complete"]


def test_completed_certificate_carries_the_full_arc(batch):
    _, certs, _ = batch
    cert = certs["client-1"]
    assert cert["attachments"]["scrub_record"]["kind"] == "scrub-verify"
    kinds = [e["kind"] for e in cert["attachments"]["audit_segment"]]
    assert "admit" in kinds and "response" in kinds and "scrub" in kinds
    assert cert["body"]["trace"]["complete"]
    assert cert["body"]["session"]["served"] == PARAMS["requests"]


def test_expect_trace_binds_the_certificate_to_one_session(batch, verifier):
    report, certs, _ = batch
    cert = certs["client-1"]
    ok = verifier.verify(cert, expect_trace=report.traces["client-1"])
    assert ok and "session-binding" in ok.checks
    swapped = verifier.verify(cert, expect_trace=report.traces["client-0"])
    assert not swapped and swapped.code == "session-binding"


# --------------------------------------------------------------------------- #
# the tamper corpus: every forgery class fails with its own code
# --------------------------------------------------------------------------- #

def test_every_tamper_variant_fails_with_its_own_code(batch, verifier):
    _, certs, _ = batch
    names = sorted(certs)
    for i, name in enumerate(names):
        donor = certs[names[(i + 1) % len(names)]]
        for variant, (expected, _fn, _donor) in sorted(TAMPERS.items()):
            result = verifier.verify(
                tamper_certificate(certs[name], variant, donor))
            assert not result.ok, f"{name} x {variant} verified"
            assert result.code == expected, \
                f"{name} x {variant}: [{result.code}] != [{expected}]"


def test_tampering_never_mutates_the_original(batch, verifier):
    _, certs, _ = batch
    cert = certs["client-1"]
    before = serialize_certificate(cert)
    for variant in TAMPERS:
        tamper_certificate(cert, variant, certs["client-0"])
    assert serialize_certificate(cert) == before
    assert verifier.verify(cert).ok


def test_replay_needs_a_donor_and_unknown_variants_are_errors(batch):
    _, certs, _ = batch
    with pytest.raises(CertificateError):
        tamper_certificate(certs["client-1"], "replayed-quote", None)
    with pytest.raises(CertificateError):
        tamper_certificate(certs["client-1"], "no-such-variant")


# --------------------------------------------------------------------------- #
# the CLI — and the no-simulator import-purity acceptance check
# --------------------------------------------------------------------------- #

def test_cli_verifies_the_batch_directory(batch, capsys):
    _, certs, cert_dir = batch
    assert certs_main(["verify", "--dir", str(cert_dir)]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == len(certs) and "FAIL" not in out


def test_cli_rejects_a_tampered_file_on_disk(batch, tmp_path, capsys):
    _, certs, cert_dir = batch
    bad = tamper_certificate(certs["client-1"], "mutated-claim")
    path = tmp_path / "cert-doctored.json"
    path.write_text(serialize_certificate(bad))
    rc = certs_main(["verify", str(path),
                     "--published", str(cert_dir / "published.json")])
    assert rc == 1
    assert "[body-digest]" in capsys.readouterr().out


def test_cli_check_tamper_matrix_is_fully_rejected(batch, capsys):
    _, certs, cert_dir = batch
    assert certs_main(["check-tamper", "--dir", str(cert_dir)]) == 0
    out = capsys.readouterr().out
    expected = len(certs) * len(TAMPERS)
    assert f"{expected}/{expected} correctly rejected" in out


def test_cli_show_summarizes_claims(batch, capsys):
    _, _, cert_dir = batch
    assert certs_main(["show", str(cert_dir / "cert-client-1.json")]) == 0
    out = capsys.readouterr().out
    assert "client-1" in out and "completed" in out


def test_offline_verifier_never_imports_the_simulator(batch):
    """Acceptance: the whole batch verifies in a fresh process whose
    ``sys.modules`` never contains the machine, kernel, or fleet."""
    _, certs, cert_dir = batch
    code = textwrap.dedent(f"""
        import sys
        from repro.certs.__main__ import main
        rc = main(["verify", "--dir", {str(cert_dir)!r}])
        banned = [m for m in sys.modules if m.startswith(
            ("repro.hw", "repro.kernel", "repro.fleet", "repro.vm",
             "repro.core.boot", "repro.apps", "repro.libos"))]
        assert rc == 0, f"verify failed: rc={{rc}}"
        assert not banned, f"simulator leaked into the client: {{banned}}"
        print("PURE")
    """)
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PURE" in proc.stdout
    assert proc.stdout.count("OK") == len(certs)


# --------------------------------------------------------------------------- #
# on-disk format stability
# --------------------------------------------------------------------------- #

def test_written_files_roundtrip_and_carry_goldens(batch):
    _, certs, cert_dir = batch
    for name, cert in certs.items():
        assert load_certificate(cert_dir / f"cert-{name}.json") == cert
    refs = json.loads((cert_dir / "published.json").read_text())
    assert refs == published_refs()
    assert refs["mrtd"] and refs["rtmrs"]["3"]


# --------------------------------------------------------------------------- #
# the dataflow plane in certificate bodies
# --------------------------------------------------------------------------- #

def test_certificates_commit_the_dataflow_proof(batch, verifier):
    """Every body carries the dataflow digest and the proven budget, and
    the offline kernel-digest check replays the two-extension RTMR[3]
    chain (CFG digest then dataflow digest)."""
    _report, certs, _cert_dir = batch
    for name, cert in certs.items():
        kernel = cert["body"]["kernel"]
        assert kernel["dataflow_digest"], name
        budget = kernel["static_budget"]
        assert budget["exits_per_activation"] == 0
        assert budget["emc_per_activation"] > 0
        result = verifier.verify(cert)
        assert result.ok and "kernel-digest" in result.checks


def test_forged_dataflow_digest_breaks_the_rtmr_chain(batch, verifier):
    _report, certs, _cert_dir = batch
    forged = json.loads(json.dumps(certs["client-1"]))
    forged["body"]["kernel"]["dataflow_digest"] = "00" * 32
    result = verifier.verify(forged)
    assert not result.ok
