"""The LibOS's in-memory stateless filesystem (§6.2, service 2).

All files a sandboxed program needs are preloaded before client data
arrives; afterwards the program operates statelessly on temporary
in-memory files held in confined memory. Nothing here ever issues a
syscall — file data lives in the LibOS heap, and page faults on that heap
are the only kernel interaction (demand paging of confined memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.memory import PAGE_SIZE


class MemFsError(Exception):
    """Missing file / read-only violation inside the LibOS."""


@dataclass
class MemFile:
    """One in-memory file: concrete bytes or a synthetic sized payload."""

    path: str
    data: bytearray = field(default_factory=bytearray)
    synthetic_size: int | None = None
    read_only: bool = False

    @property
    def size(self) -> int:
        if self.synthetic_size is not None:
            return self.synthetic_size
        return len(self.data)


@dataclass
class MemFd:
    file: MemFile
    offset: int = 0


class MemFs:
    """Path-keyed in-memory filesystem bound to one LibOS instance."""

    def __init__(self, libos):
        self._libos = libos
        self._files: dict[str, MemFile] = {}
        self._fds: dict[int, MemFd] = {}
        self._next_fd = 100

    # ------------------------------------------------------------------ #
    # preload (before lock) and runtime API
    # ------------------------------------------------------------------ #

    def preload(self, path: str, data: bytes = b"", *,
                synthetic_size: int | None = None,
                read_only: bool = True) -> MemFile:
        f = MemFile(path, bytearray(data), synthetic_size, read_only)
        self._files[path] = f
        if data:
            self._libos.charge_data_touch(len(data))
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def open(self, path: str, *, create: bool = False) -> int:
        self._libos.charge_emulated_call()
        f = self._files.get(path)
        if f is None:
            if not create:
                raise MemFsError(f"memfs: no such file {path!r}")
            f = MemFile(path)
            self._files[path] = f
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = MemFd(f)
        return fd

    def _fd(self, fd: int) -> MemFd:
        handle = self._fds.get(fd)
        if handle is None:
            raise MemFsError(f"memfs: bad fd {fd}")
        return handle

    def read(self, fd: int, size: int) -> bytes:
        self._libos.charge_emulated_call()
        handle = self._fd(fd)
        f = handle.file
        if f.synthetic_size is not None:
            end = min(handle.offset + size, f.synthetic_size)
            got = max(end - handle.offset, 0)
            pattern = (f.path.encode() + b"|") * 4
            data = (pattern * (got // len(pattern) + 1))[:got]
        else:
            data = bytes(f.data[handle.offset:handle.offset + size])
        handle.offset += len(data)
        self._libos.charge_data_touch(len(data))
        return data

    def write(self, fd: int, data: bytes) -> int:
        self._libos.charge_emulated_call()
        handle = self._fd(fd)
        f = handle.file
        if f.read_only:
            raise MemFsError(f"memfs: {f.path!r} is read-only")
        if f.synthetic_size is not None:
            raise MemFsError(f"memfs: {f.path!r} is synthetic")
        end = handle.offset + len(data)
        if end > len(f.data):
            f.data.extend(b"\x00" * (end - len(f.data)))
        f.data[handle.offset:end] = data
        handle.offset = end
        self._libos.charge_data_touch(len(data))
        return len(data)

    def close(self, fd: int) -> None:
        self._libos.charge_emulated_call()
        self._fds.pop(fd, None)

    def unlink(self, path: str) -> None:
        self._libos.charge_emulated_call()
        if path not in self._files:
            raise MemFsError(f"memfs: no such file {path!r}")
        del self._files[path]

    def wipe(self) -> None:
        """Session cleanup: drop all temporary state."""
        self._files = {p: f for p, f in self._files.items() if f.read_only}
        self._fds.clear()

    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())
