"""Cycle-clock ledger tests: snapshots, rates, tag attribution."""

import pytest

from repro.hw.cycles import CPU_FREQ_HZ, Cost, CycleClock


def test_charge_and_tags():
    clock = CycleClock()
    clock.charge(100, "a")
    clock.charge(50, "b")
    clock.charge(25)
    assert clock.cycles == 175
    assert clock.by_tag["a"] == 100 and clock.by_tag["b"] == 50


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        CycleClock().charge(-1)


def test_seconds_conversion():
    clock = CycleClock()
    clock.charge(CPU_FREQ_HZ)
    assert clock.seconds == 1.0


def test_event_rates():
    clock = CycleClock()
    clock.charge(CPU_FREQ_HZ // 2)
    clock.count("emc", 500)
    assert clock.rate_per_second("emc") == 1000.0
    assert CycleClock().rate_per_second("emc") == 0.0


def test_snapshot_deltas():
    clock = CycleClock()
    clock.charge(100, "x")
    clock.count("e", 3)
    snap = clock.snapshot()
    clock.charge(40, "x")
    clock.charge(10, "y")
    clock.count("e", 2)
    delta = clock.since(snap)
    assert delta.cycles == 50
    assert delta.by_tag == {"x": 40, "y": 10}
    assert delta.events == {"e": 2}
    assert delta.rate_per_second("e") == 2 / (50 / CPU_FREQ_HZ)


def test_table3_constants_composition():
    assert (Cost.TDX_WORLD_SWITCH + Cost.TDX_WORLD_RESUME
            + Cost.TDCALL_DISPATCH) == Cost.TDCALL_ROUND_TRIP
    assert (Cost.VM_WORLD_SWITCH + Cost.VM_WORLD_RESUME
            + Cost.VMCALL_DISPATCH) == Cost.VMCALL_ROUND_TRIP
    assert (Cost.SYSCALL_ENTRY + Cost.SYSRET + Cost.KERNEL_FRAME_SAVE
            + Cost.KERNEL_FRAME_RESTORE) == Cost.SYSCALL_ROUND_TRIP


def test_table4_composites_derive_from_parts():
    assert Cost.EREBOR_MMU == (Cost.EMC_ROUND_TRIP + Cost.VALIDATE_MMU
                               + Cost.PTE_WRITE_NATIVE)
    assert Cost.EREBOR_GHCI == (Cost.EMC_ROUND_TRIP + Cost.VALIDATE_GHCI
                                + Cost.TDREPORT_NATIVE)


# --- snapshot interval semantics (nested attribution + obs sinks) ----------

def test_snapshot_deltas_attribute_nested_tags():
    """Interval deltas keep per-tag attribution exact across nested charges
    (the pattern the runner uses: outer window, inner tagged sub-work)."""
    clock = CycleClock()
    clock.charge(10, "emc")
    outer = clock.snapshot()
    clock.charge(Cost.EMC_ROUND_TRIP, "emc")
    inner = clock.snapshot()
    clock.charge(Cost.VALIDATE_MMU, "emc_validate")
    clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")

    inner_delta = clock.since(inner)
    outer_delta = clock.since(outer)
    assert inner_delta.by_tag == {"emc_validate": Cost.VALIDATE_MMU,
                                  "mmu_op": Cost.PTE_WRITE_NATIVE}
    assert outer_delta.by_tag["emc"] == Cost.EMC_ROUND_TRIP   # 10 predates it
    assert outer_delta.cycles == inner_delta.cycles + Cost.EMC_ROUND_TRIP
    # intervals nest: the outer window contains the inner one exactly
    assert (outer_delta.by_tag["emc_validate"]
            == inner_delta.by_tag["emc_validate"])


def test_snapshot_unaffected_by_later_charges():
    clock = CycleClock()
    clock.charge(5, "a")
    snap = clock.snapshot()
    clock.charge(7, "a")
    assert snap.cycles == 5 and snap.by_tag["a"] == 5


def test_default_sinks_are_noop_and_free():
    """A fresh clock carries the disabled tracer/registry, and recording
    through them adds zero simulated cycles (observability is free)."""
    from repro.obs.metrics import NULL_METRICS
    from repro.obs.trace import NULL_TRACER
    clock = CycleClock()
    assert clock.tracer is NULL_TRACER and clock.metrics is NULL_METRICS
    with clock.tracer.span("gate"):
        clock.metrics.inc("x", cls="y")
        clock.tracer.event("e")
    assert clock.cycles == 0 and clock.events == {}


def test_gate_cost_pinned_with_disabled_tracer():
    """Satellite (c): with the default no-op recorder, the measured EMC
    round trip is the calibrated 1224 — no hidden cycles from obs."""
    from repro.core.emc import EmcCall
    from repro.core.microrig import GateRig
    rig = GateRig()
    assert not rig.clock.tracer.enabled
    assert rig.run_emc(int(EmcCall.NOP)) == Cost.EMC_ROUND_TRIP == 1224
