"""CET supervisor shadow-stack setup helpers.

The branch-tracking and return-checking logic itself lives in the CPU core
(:mod:`repro.hw.cpu`); this module provides the memory plumbing: allocating
shadow-stack pages (marked so the MMU enforces the SDM's rule that they are
writable *only* through shadow-stack operations), writing the supervisor
shadow-stack token, and arming a core's CET MSRs.
"""

from __future__ import annotations

from . import regs
from .cpu import Cpu
from .memory import PAGE_SIZE, PhysicalMemory
from .paging import PTE_P, AddressSpace

#: Token placed at the base of a supervisor shadow stack; encodes the stack's
#: own address so a stack can only be activated where it was created (the
#: one-logical-processor-at-a-time rule from the paper's CET background).
TOKEN_BUSY = 1 << 0


def supervisor_token(base_va: int, busy: bool = False) -> int:
    return base_va | (TOKEN_BUSY if busy else 0)


def allocate_shadow_stack(phys: PhysicalMemory, aspace: AddressSpace,
                          base_va: int, pages: int, owner: str = "monitor") -> int:
    """Create a shadow-stack region; returns the initial SSP value.

    Pages are mapped supervisor, present, *not* writable (the CPU's
    shadow-stack ops bypass PTE.W but require the frame's shadow-stack
    flag), matching the "non-writable-but-dirty" PTE encoding.
    """
    top = base_va + pages * PAGE_SIZE
    for i in range(pages):
        fn = phys.alloc_frame(owner)
        frame = phys.frame(fn)
        frame.is_shadow_stack = True
        frame.materialize()
        aspace.map_page(base_va + i * PAGE_SIZE, fn, PTE_P)
    # supervisor shadow-stack token lives in the top slot
    token_va = top - 8
    token_fn = aspace.mapped_frame(token_va)
    phys.write_u64((token_fn << 12) + (token_va & (PAGE_SIZE - 1)),
                   supervisor_token(token_va))
    return token_va  # SSP starts just below the token


def arm_cet(cpu: Cpu, ssp: int, *, ibt: bool = True, shadow_stack: bool = True) -> None:
    """Enable CET on a core: CR4.CET plus IA32_S_CET feature bits."""
    cpu.crs[4] |= regs.CR4_CET
    s_cet = 0
    if ibt:
        s_cet |= regs.S_CET_ENDBR_EN
    if shadow_stack:
        s_cet |= regs.S_CET_SH_STK_EN
    cpu.msrs[regs.IA32_S_CET] = s_cet
    cpu.msrs[regs.IA32_PL0_SSP] = ssp


class ShadowStackTokenError(Exception):
    """Token verification failed (busy, wrong address, or clobbered)."""


def read_token(phys: PhysicalMemory, aspace: AddressSpace, token_va: int) -> int:
    hit = aspace.translate(token_va)
    if hit is None:
        raise ShadowStackTokenError(f"no shadow stack at {token_va:#x}")
    return phys.read_u64(hit[0])


def _write_token(phys: PhysicalMemory, aspace: AddressSpace, token_va: int,
                 value: int) -> None:
    hit = aspace.translate(token_va)
    phys.write_u64(hit[0], value)


def activate_shadow_stack(cpu: Cpu, aspace: AddressSpace, token_va: int,
                          phys: PhysicalMemory) -> None:
    """``setssbsy``-style activation: claim a stack's token for this core.

    The SDM's rule the paper cites: "each stack possessing a unique token
    to ensure only one logical processor can activate it at a time". The
    token must match the stack's own address and must not be busy.
    """
    token = read_token(phys, aspace, token_va)
    if token & TOKEN_BUSY:
        raise ShadowStackTokenError(
            f"shadow stack {token_va:#x} already active on another core")
    if token & ~TOKEN_BUSY != token_va:
        raise ShadowStackTokenError(
            f"shadow stack token at {token_va:#x} is corrupt "
            f"({token:#x}); refusing activation")
    _write_token(phys, aspace, token_va, token | TOKEN_BUSY)
    cpu.msrs[regs.IA32_PL0_SSP] = token_va


def deactivate_shadow_stack(cpu: Cpu, aspace: AddressSpace, token_va: int,
                            phys: PhysicalMemory) -> None:
    """Release a stack's busy token (the outgoing side of a task switch)."""
    token = read_token(phys, aspace, token_va)
    if not token & TOKEN_BUSY:
        raise ShadowStackTokenError(
            f"shadow stack {token_va:#x} was not active")
    _write_token(phys, aspace, token_va, token & ~TOKEN_BUSY)
