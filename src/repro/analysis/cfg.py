"""Control-flow-graph recovery over the fixed-width simulated ISA.

The ISA encodes every instruction in exactly :data:`~repro.hw.isa.INSTR_SIZE`
bytes, so disassembly is total: every aligned offset either decodes or is a
hard error (there is no self-synchronizing ambiguity as on x86 — which is
precisely why the paper's byte-scan has to check *every* offset, and why the
CFG pass can afford to be exact).

Classification (mirrors what :class:`repro.hw.cpu.Cpu` executes):

* ``jmp`` / ``jz`` / ``jnz`` / ``call`` — direct edges to ``imm``
  (conditionals and calls also fall through);
* ``icall`` / ``ijmp`` — indirect sites: no static edge unless the target
  is recoverable from a ``movi rX, imm`` immediately before the branch
  (the only pattern the instrumentation pass emits);
* ``ret`` / ``hlt`` / ``sysret`` / ``iret`` — terminators (no successor
  inside the section).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.errors import InvalidOpcode
from ..hw.isa import INSTR_SIZE, Instr, decode

#: direct-branch mnemonics and whether each falls through to the next slot
DIRECT_BRANCHES = {"jmp": False, "jz": True, "jnz": True, "call": True}
#: indirect control transfers (target in a register; IBT-checked at runtime)
INDIRECT_BRANCHES = frozenset({"icall", "ijmp"})
#: instructions after which execution never reaches the next slot
TERMINATORS = frozenset({"ret", "hlt", "sysret", "iret"})


@dataclass(frozen=True)
class Edge:
    """One CFG edge between block start VAs."""

    src: int
    dst: int
    kind: str        # "jump" | "branch" | "fall" | "call" | "indirect"


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    va: int
    instrs: list[Instr] = field(default_factory=list)

    @property
    def end_va(self) -> int:
        return self.va + len(self.instrs) * INSTR_SIZE

    @property
    def last(self) -> Instr:
        return self.instrs[-1]

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass
class IndirectSite:
    """One ``icall``/``ijmp`` with its statically-known target, if any.

    ``target`` is recovered from the ``movi rX, imm; icall rX`` peephole
    the instrumentation pass emits; ``None`` means the target register is
    not a visible constant and only runtime IBT can police the landing.
    """

    va: int
    op: str                 # "icall" | "ijmp"
    reg: str
    target: int | None


@dataclass
class ControlFlowGraph:
    """Recovered CFG of one executable section."""

    section_va: int
    instrs: list[Instr]
    blocks: dict[int, BasicBlock]
    edges: list[Edge]
    indirect_sites: list[IndirectSite]

    @property
    def section_end(self) -> int:
        return self.section_va + len(self.instrs) * INSTR_SIZE

    def instr_at(self, va: int) -> Instr | None:
        off = va - self.section_va
        if off < 0 or off % INSTR_SIZE or off >= len(self.instrs) * INSTR_SIZE:
            return None
        return self.instrs[off // INSTR_SIZE]

    def contains(self, va: int) -> bool:
        return self.section_va <= va < self.section_end

    def aligned(self, va: int) -> bool:
        return (va - self.section_va) % INSTR_SIZE == 0

    def block_table(self) -> list[int]:
        """Block-head VAs in ascending order.

        This is the export the hardware translation cache consumes: each
        entry names the start of one verified basic block, ready to be
        pre-decoded into a superblock
        (:meth:`repro.hw.translate.TranslationCache.preload`).
        """
        return sorted(self.blocks)

    def reachable_from(self, entry: int) -> set[int]:
        """Block VAs reachable from ``entry`` along recovered edges."""
        out: dict[int, list[int]] = {}
        for e in self.edges:
            out.setdefault(e.src, []).append(e.dst)
        seen: set[int] = set()
        work = [entry] if entry in self.blocks else []
        while work:
            va = work.pop()
            if va in seen:
                continue
            seen.add(va)
            work.extend(d for d in out.get(va, ()) if d in self.blocks)
        return seen


class CfgDecodeError(InvalidOpcode):
    """The section is not a clean aligned instruction stream."""

    def __init__(self, offset: int, description: str):
        self.offset = offset
        super().__init__(description)


def decode_section(data: bytes, va: int) -> list[Instr]:
    """Decode a whole section as aligned instructions (total or raise)."""
    if len(data) % INSTR_SIZE:
        raise CfgDecodeError(
            len(data) - len(data) % INSTR_SIZE,
            f"section length {len(data)} not a multiple of {INSTR_SIZE}")
    instrs = []
    for off in range(0, len(data), INSTR_SIZE):
        try:
            instrs.append(decode(data, off))
        except InvalidOpcode as exc:
            raise CfgDecodeError(off, f"undecodable slot at {va + off:#x}: "
                                 f"{exc.description}") from exc
    return instrs


def build_cfg(data: bytes, va: int) -> ControlFlowGraph:
    """Recover the CFG of one executable section.

    Block leaders are the section start, every direct branch target that
    lands in-section and aligned (out-of-range targets are left to the
    verifier's V1 check — they simply produce no block), and every slot
    following a control transfer.
    """
    instrs = decode_section(data, va)
    n = len(instrs)

    leaders: set[int] = {va} if n else set()
    for idx, instr in enumerate(instrs):
        here = va + idx * INSTR_SIZE
        if instr.op in DIRECT_BRANCHES:
            target = instr.imm
            if va <= target < va + n * INSTR_SIZE and \
                    (target - va) % INSTR_SIZE == 0:
                leaders.add(target)
            if idx + 1 < n:
                leaders.add(here + INSTR_SIZE)
        elif instr.op in INDIRECT_BRANCHES or instr.op in TERMINATORS:
            if idx + 1 < n:
                leaders.add(here + INSTR_SIZE)

    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for idx, instr in enumerate(instrs):
        here = va + idx * INSTR_SIZE
        if here in leaders or current is None:
            current = BasicBlock(here)
            blocks[here] = current
        current.instrs.append(instr)

    edges: list[Edge] = []
    indirect_sites: list[IndirectSite] = []
    for block in blocks.values():
        last = block.last
        last_va = block.end_va - INSTR_SIZE
        idx = (last_va - va) // INSTR_SIZE
        if last.op in DIRECT_BRANCHES:
            kind = "call" if last.op == "call" else (
                "jump" if last.op == "jmp" else "branch")
            if last.imm in blocks:
                edges.append(Edge(block.va, last.imm, kind))
            if DIRECT_BRANCHES[last.op] and block.end_va in blocks:
                edges.append(Edge(block.va, block.end_va, "fall"))
        elif last.op in INDIRECT_BRANCHES:
            target = None
            prev = instrs[idx - 1] if idx > 0 else None
            if prev is not None and prev.op == "movi" and \
                    prev.dst == last.dst:
                target = prev.imm
            indirect_sites.append(
                IndirectSite(last_va, last.op, last.dst, target))
            if target is not None and target in blocks:
                edges.append(Edge(block.va, target, "indirect"))
            if last.op == "icall" and block.end_va in blocks:
                # an icall returns: execution resumes at the next slot
                edges.append(Edge(block.va, block.end_va, "fall"))
        elif last.op in TERMINATORS:
            pass
        elif block.end_va in blocks:
            edges.append(Edge(block.va, block.end_va, "fall"))

    return ControlFlowGraph(va, instrs, blocks, edges, indirect_sites)
