"""Two-stage verified boot (§5.1) and the drop-in deployment entry point.

Stage 1: only the trusted firmware and the Erebor monitor enter the TD;
both are measured into the MRTD, so any remote client can attest exactly
which monitor is governing the CVM before sending data.

Stage 2: the monitor receives the (instrumented) kernel image, byte-scans
every executable section for sensitive instruction sequences, and boots
the deprivileged kernel with :class:`MonitorOps` as its only route to
privilege.

Nothing here touches the host side: the "drop-in" property is that the
whole flow runs on unmodified VMM/TDX interfaces (and, per §10, the same
code boots on non-TDX platform profiles, with SEV falling back to private
page tables for the missing PKS).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.isa import assemble
from ..kernel.image import SelfImage, build_kernel_image
from ..kernel.instrument import instrument_image
from ..kernel.kernel import GuestKernel, KernelConfig
from ..tdx.attestation import expected_measurement
from ..vm import CvmMachine
from .channel import DEVICE_PATH, EreborDevice
from .gates import build_monitor_code
from .monitor import EreborFeatures, EreborMonitor

#: the published open-source firmware blob (stands in for OVMF)
FIRMWARE_BLOB = b"OVMF-sim-1.0:" + b"\x90" * 256
#: the cloud provider's trusted paravisor (stands in for COCONUT/OpenHCL)
PARAVISOR_BLOB = b"OpenHCL-sim-1.0:" + b"\xCC" * 384
#: RTMR index the paravisor extends with tenant payloads (monitor binary)
PARAVISOR_RTMR_INDEX = 2


def monitor_binary() -> bytes:
    """The monitor's published binary (gates + dispatch), for measurement."""
    return assemble(build_monitor_code().code)


def published_measurement() -> bytes:
    """The golden MRTD clients must expect (firmware ‖ monitor)."""
    return expected_measurement([
        ("firmware", FIRMWARE_BLOB),
        ("erebor-monitor", monitor_binary()),
    ])


def published_kernel_cfg_rtmr(*, dataflow: bool = True) -> bytes:
    """Golden RTMR[3] for a verified boot of the distribution kernel.

    A remote client replays the monitor's stage-2 CFG pass (and, for the
    default full boot, the stage-3 dataflow pass) offline — both
    verifiers are pure and deterministic — over the published
    instrumented kernel image and derives the RTMR value the monitor
    must have extended. A scan-only boot
    (``EreborFeatures(cfg_verifier=False)``) leaves RTMR[3] at its reset
    value and a CFG-only boot (``dataflow_verifier=False``) carries just
    the first extension, so the quote alone distinguishes all three boot
    flavours.
    """
    from ..analysis.verifier import StaticVerifier
    from ..tdx.attestation import expected_rtmr
    image, _ = instrument_image(build_kernel_image())
    report = StaticVerifier().verify_image(image)
    preimages = [report.digest().encode()]
    if dataflow:
        from ..analysis.absint import DataflowVerifier
        preimages.append(DataflowVerifier().verify_image(image)
                         .digest().encode())
    return expected_rtmr(preimages)


def published_paravisor_measurement() -> tuple[bytes, bytes]:
    """Golden values for paravisor deployments (§10).

    Returns ``(mrtd, rtmr2)``: the boot measurement covers firmware +
    paravisor only (the cloud provider's payload); the monitor is loaded
    *later* by the paravisor and recorded in a runtime measurement
    register, which the client verifies in addition to the MRTD.
    """
    from ..tdx.attestation import expected_rtmr
    mrtd = expected_measurement([
        ("firmware", FIRMWARE_BLOB),
        ("paravisor", PARAVISOR_BLOB),
    ])
    return mrtd, expected_rtmr([monitor_binary()])


@dataclass
class EreborSystem:
    """A booted Erebor CVM: machine + monitor + deprivileged kernel."""

    machine: CvmMachine
    monitor: EreborMonitor
    kernel: GuestKernel
    device: EreborDevice


def erebor_boot(machine: CvmMachine, *,
                features: EreborFeatures | None = None,
                kernel_image: SelfImage | None = None,
                kernel_config: KernelConfig | None = None,
                cma_bytes: int | None = None,
                skip_instrumentation: bool = False,
                paravisor: bool = False) -> EreborSystem:
    """Boot Erebor on a machine; returns the running system.

    ``kernel_image`` defaults to the distribution kernel; unless
    ``skip_instrumentation`` it is run through the instrumentation pass
    first (a raw image would be rejected by the stage-2 verifier — which
    is itself a test scenario).

    With ``paravisor`` the §10 deployment shape is used: the boot-time
    measurement covers firmware + the cloud provider's paravisor, and the
    monitor is recorded in RTMR[2] when the paravisor loads it — clients
    must then expect :func:`published_paravisor_measurement`.
    """
    # --- stage 1: measure the trusted payloads, finalize the TD ---------
    if machine.tdx is not None and not machine.tdx.finalized:
        machine.tdx.build_load("firmware", FIRMWARE_BLOB)
        if paravisor:
            machine.tdx.build_load("paravisor", PARAVISOR_BLOB)
            machine.tdx.finalize()
            # the paravisor loads the tenant's monitor at runtime and
            # extends the runtime measurement register
            machine.tdx.measurement.extend_rtmr(PARAVISOR_RTMR_INDEX,
                                                monitor_binary())
        else:
            machine.tdx.build_load("erebor-monitor", monitor_binary())
            machine.tdx.finalize()
    monitor = EreborMonitor(machine, features, cma_bytes=cma_bytes)
    # host-plane fast path (superblock dispatch + MMU TLB): simulated
    # ledgers are byte-identical on or off; the toggle exists for the
    # lockstep oracle tests and A/B speed benchmarks
    fast = monitor.features.translation_cache
    machine.cpu.tcache.enabled = fast
    machine.cpu.mmu.tlb_enabled = fast
    machine.phys.psc_enabled = fast
    if not fast:
        machine.cpu.tcache.flush()
        machine.cpu.mmu.tlb_flush()
    monitor.install()

    # --- stage 2: verify + load the kernel ------------------------------
    image = kernel_image
    if image is None:
        image = build_kernel_image()
    if not skip_instrumentation:
        image, _ = instrument_image(image)
    kernel = monitor.verify_and_load_kernel(image.serialize(),
                                            config=kernel_config)

    # expose the channel device
    device = EreborDevice(monitor)
    kernel.vfs.register(DEVICE_PATH, device)
    return EreborSystem(machine, monitor, kernel, device)
