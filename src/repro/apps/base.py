"""Workload base class + registry (the evaluation's Table 5 programs)."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..libos.libos import CommonSpec, Manifest, PreloadFile

MIB = 1024 * 1024


@dataclass
class WorkloadProfile:
    """System-interaction profile of one workload (scaled from Table 5).

    ``bg_mmu_ops_per_tick`` / ``bg_copy_ops_per_tick`` model the whole-CVM
    privileged-operation traffic the paper's Table 6 EMC/s column counts
    (proxy copies, page-cache churn, per-vCPU housekeeping) — executed
    through the kernel's PrivilegedOps so the native/Erebor cost gap is
    emergent, not painted.
    """

    heap_bytes: int = 16 * MIB
    threads: int = 1
    common: list[CommonSpec] = field(default_factory=list)
    preload: list[PreloadFile] = field(default_factory=list)
    bg_mmu_ops_per_tick: int = 4
    bg_copy_ops_per_tick: int = 2
    #: system-task demand faults per tick (proxy / page-cache churn)
    bg_faults_per_tick: float = 1.0
    #: extra host-emulated #VE per tick (virtio doorbells etc.)
    bg_ve_per_tick: float = 0.7
    #: modelled program start-up work (loading/parsing, cycles)
    init_compute_cycles: int = 400_000_000
    #: common-region pages reclaimed per tick (sustains runtime fault rates)
    reclaim_pages_per_tick: int = 2
    #: stride (bytes) the app streams common memory with; reclaim targets
    #: the same grid so evicted pages actually refault
    common_touch_stride: int = 64 * 1024


class Workload(ABC):
    """One request-response service application."""

    name: str = "workload"
    description: str = ""

    def __init__(self, seed: int = 0, scale: float = 1.0):
        self.seed = seed
        self.scale = scale

    @property
    @abstractmethod
    def profile(self) -> WorkloadProfile: ...

    def manifest(self) -> Manifest:
        p = self.profile
        return Manifest(name=self.name, heap_bytes=p.heap_bytes,
                        threads=p.threads, common=list(p.common),
                        preload=list(p.preload))

    @abstractmethod
    def serve(self, rt, request: bytes) -> bytes:
        """Process one client request on runtime ``rt``; returns the result."""

    def default_request(self) -> bytes:
        """A representative client request for benchmarking."""
        return b"default-request"


REGISTRY: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    REGISTRY[cls.name] = cls
    return cls


def workload(name: str, **kw) -> Workload:
    try:
        return REGISTRY[name](**kw)
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; have {sorted(REGISTRY)}")
