"""Simulator-speed bench: translation cache + TLB on vs fully interpreted.

The superblock translation cache, the memoized TLB and the paging-
structure cache are *host-plane* optimisations: they must change host
seconds and nothing else. This bench pins both halves of that contract
and commits the evidence to ``BENCH_sim_speed.json``:

* **Fidelity** — the seeded 16-request / 4-core llama fleet produces
  byte-identical serve digests, certificate bodies and request
  trace-tree digests with the caches on and off, and the pinned SMP
  digests (1/2/4 cores) are reproduced by both arms.
* **Speed** — on the CPU-bound micro path the caches actually target
  (straight-line superblock execution), the cache-on arm must be at
  least ``SIM_SPEED_FLOOR``× faster (default 5×) with an *identical*
  cycle ledger. The fleet arm is also timed (alternating rounds,
  min-of-N) but not bounded: the llama fleet is dominated by demand
  faults and macro-kernel bookkeeping, which are simulated-observable
  work no cache may remove — its speedup is reported, not asserted.

Set ``SIM_SPEED_FLOOR`` (e.g. ``2.5`` in CI) to derate the micro bound
on noisy shared machines; the committed artifact records the value
measured at generation time.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.report import format_table
from repro.core.monitor import EreborFeatures
from repro.fleet import run_fleet
from repro.hw.isa import INSTR_SIZE, I
from repro.hw.testbench import KERNEL_CODE_VA, KERNEL_DATA_VA, MicroMachine
from repro.obs.reqtrace import RequestTraceIndex
from repro.vm import MIB

_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = _ROOT / "BENCH_sim_speed.json"
HISTORY = _ROOT / "BENCH_history.jsonl"
TABLES = _ROOT / "bench_tables.txt"
TABLES_MARKER = "Simulator speed, translation cache on vs off"

#: micro-path acceptance bound (design target; CI may derate via env)
FLOOR = float(os.environ.get("SIM_SPEED_FLOOR", "5.0"))

#: alternating on/off timing rounds; each arm keeps its fastest round
ROUNDS = 3

#: the seeded 16-request / 4-core llama fleet (8 clients x 2 requests)
FLEET_PARAMS = dict(workload="llama.cpp", clients=8, requests=2,
                    pool_size=8, tenants=8, seed=7, scale=0.1, n_cpus=4,
                    memory_bytes=1024 * MIB, cma_bytes=512 * MIB)

#: pinned per-core-count digests (tests/fleet/test_smp_scaling.py —
#: both cache arms must reproduce them byte-for-byte)
SMP_PARAMS = dict(workload="helloworld", clients=4, requests=2,
                  pool_size=2, tenants=2, seed=2025, scale=1.0)
SMP_PINNED = {
    1: "ac56b4d36619825613ca95d6b8798cf6a5b3514014efd23af3e42bd699661e84",
    2: "b5c4370350c831ad6ec9ac795b5410edbd48cf02f7346793dc197d922da0ae65",
    4: "b214646e8d839a90c3009b6b798166eb32510827d660194249e7d48a6e5e54ff",
}

LOOPS = 20_000


def features(enabled: bool) -> EreborFeatures:
    return EreborFeatures(translation_cache=enabled)


# --------------------------------------------------------------------------- #
# CPU-bound micro arm: the path the superblock cache targets
# --------------------------------------------------------------------------- #

def _micro_program():
    K = KERNEL_CODE_VA
    body = K + 2 * INSTR_SIZE
    return [
        I("movi", "rax", imm=0),              # 0
        I("movi", "rcx", imm=LOOPS),          # 1
        I("addi", "rax", imm=1),              # 2: loop body (9 instrs)
        I("mov", "rbx", "rax"),               # 3
        I("add", "rbx", "rax"),               # 4
        I("cmp", "rbx", "rax"),               # 5
        I("and", "rbx", "rax"),               # 6
        I("xor", "rdx", "rbx"),               # 7
        I("nop"),                             # 8
        I("addi", "rcx", imm=(1 << 64) - 1),  # 9: rcx -= 1
        I("jnz", imm=body),                   # 10
        I("hlt"),                             # 11
    ]


def _micro_run(enabled: bool):
    m = MicroMachine()
    m.cpu.tcache.enabled = enabled
    m.cpu.mmu.tlb_enabled = enabled
    m.phys.psc_enabled = enabled
    m.map_data(KERNEL_DATA_VA)
    m.load_code(KERNEL_CODE_VA, _micro_program())
    m.cpu.rip = KERNEL_CODE_VA
    t0 = time.perf_counter()
    steps = m.cpu.run(max_steps=LOOPS * 12)
    host = time.perf_counter() - t0
    ledger = {"steps": steps, "cycles": m.clock.cycles,
              "by_tag": dict(m.clock.by_tag),
              "events": dict(m.clock.events),
              "regs": dict(m.cpu.regs), "rip": m.cpu.rip}
    return ledger, host, m


@pytest.fixture(scope="module")
def micro():
    on = off = None
    for _ in range(ROUNDS):
        candidate = _micro_run(enabled=False)
        if off is None or candidate[1] < off[1]:
            off = candidate
        candidate = _micro_run(enabled=True)
        if on is None or candidate[1] < on[1]:
            on = candidate
    return {"off": off, "on": on}


# --------------------------------------------------------------------------- #
# fleet arms
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def fleet_timing():
    """Alternating bare-fleet rounds; each arm keeps its fastest."""
    on = off = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        report, _ = run_fleet(features=features(False), **FLEET_PARAMS)
        host = time.perf_counter() - t0
        if off is None or host < off[1]:
            off = (report, host)
        t0 = time.perf_counter()
        report, _ = run_fleet(features=features(True), **FLEET_PARAMS)
        host = time.perf_counter() - t0
        if on is None or host < on[1]:
            on = (report, host)
    return {"off": off, "on": on}


@pytest.fixture(scope="module")
def fleet_fidelity():
    """One certificate-issuing run per arm: serve digest + cert bodies
    + request trace-tree digests, cache-on vs cache-off."""
    arms = {}
    for name, enabled in (("off", False), ("on", True)):
        report, system = run_fleet(features=features(enabled),
                                   certificates=True, **FLEET_PARAMS)
        index = RequestTraceIndex.from_tracer(system.machine.clock.tracer,
                                              names=report.traces)
        arms[name] = {
            "digest": report.digest(),
            "serve_wall_cycles": report.serve_wall_cycles,
            "total_cycles": report.total_cycles,
            "certs": dict(report.certs),
            "trace_digests": index.digests(),
            "tlb_hits": system.machine.cpu.mmu.tlb_hits,
            "sb_exec": system.machine.cpu.tcache.sb_exec,
        }
    return arms


@pytest.fixture(scope="module")
def smp_digests():
    out = {}
    for n_cpus in sorted(SMP_PINNED):
        digests = {}
        for name, enabled in (("off", False), ("on", True)):
            report, _ = run_fleet(features=features(enabled),
                                  n_cpus=n_cpus, **SMP_PARAMS)
            digests[name] = report.digest()
        out[n_cpus] = digests
    return out


# --------------------------------------------------------------------------- #
# artifact
# --------------------------------------------------------------------------- #

def write_artifact(micro, fleet_timing, fleet_fidelity, smp) -> dict:
    (micro_off, off_host, _) = micro["off"]
    (micro_on, on_host, machine) = micro["on"]
    fleet_off, fleet_off_host = fleet_timing["off"]
    fleet_on, fleet_on_host = fleet_timing["on"]
    fid_on, fid_off = fleet_fidelity["on"], fleet_fidelity["off"]
    payload = {
        "floor_speedup": FLOOR,
        "timing_rounds": ROUNDS,
        "cpu_bound": {
            "loops": LOOPS,
            "steps": micro_on["steps"],
            "cycles": micro_on["cycles"],
            "host_seconds_off": round(off_host, 4),
            "host_seconds_on": round(on_host, 4),
            "speedup": round(off_host / on_host, 2),
            "ledger_identical": micro_on == micro_off,
            "superblock_retired": machine.cpu.tcache.sb_exec,
            "tlb_hits": machine.cpu.mmu.tlb_hits,
        },
        "fleet": {
            "params": {k: v for k, v in FLEET_PARAMS.items()
                       if isinstance(v, (int, float, str))},
            "requests": FLEET_PARAMS["clients"] * FLEET_PARAMS["requests"],
            "host_seconds_off": round(fleet_off_host, 4),
            "host_seconds_on": round(fleet_on_host, 4),
            "speedup": round(fleet_off_host / fleet_on_host, 2),
            "digest": fid_on["digest"],
            "serve_wall_cycles": fid_on["serve_wall_cycles"],
            "total_cycles": fid_on["total_cycles"],
            "identical": {
                "serve_digest": fid_on["digest"] == fid_off["digest"],
                "timed_digests": fleet_on.digest() == fleet_off.digest(),
                "cert_bodies": fid_on["certs"] == fid_off["certs"],
                "trace_trees":
                    fid_on["trace_digests"] == fid_off["trace_digests"],
            },
            "certificates": len(fid_on["certs"]),
            "trace_trees": len(fid_on["trace_digests"]),
            "tlb_hits_on": fid_on["tlb_hits"],
            "superblock_retired_on": fid_on["sb_exec"],
        },
        "smp": {
            str(n): {
                "pinned": SMP_PINNED[n],
                "on": digests["on"],
                "off": digests["off"],
                "identical": len({SMP_PINNED[n], digests["on"],
                                  digests["off"]}) == 1,
            } for n, digests in smp.items()
        },
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    # perf-trajectory history: append one min-of-N plane-ledger summary
    # per arm. The simulated half (cycles, planes, digest) must reproduce
    # bit-exactly across commits — `python -m repro.obs gate` fails on
    # any drift; the host seconds are threshold-gated only.
    from repro.obs.ledger import append_history, capture_ledger, history_entry
    micro_led = capture_ledger(machine.clock, machine)
    append_history(HISTORY, history_entry(
        "sim-speed-micro", micro_led,
        host_seconds={"cache_off": off_host, "cache_on": on_host},
        meta={"loops": LOOPS, "steps": micro_on["steps"]}))
    append_history(HISTORY, history_entry(
        "sim-speed-fleet", fleet_on.ledger, digest=fid_on["digest"],
        host_seconds={"cache_off": fleet_off_host,
                      "cache_on": fleet_on_host},
        meta={"requests": payload["fleet"]["requests"],
              "n_cpus": FLEET_PARAMS["n_cpus"]}))
    return payload


def speed_table(payload) -> str:
    micro, fleet = payload["cpu_bound"], payload["fleet"]
    rows = [
        ["cpu-bound loop", f"{micro['steps']:,}",
         f"{micro['host_seconds_off']:.2f}s",
         f"{micro['host_seconds_on']:.2f}s", f"{micro['speedup']:.2f}x"],
        ["llama fleet (16 req)", f"{fleet['serve_wall_cycles']:,} wall",
         f"{fleet['host_seconds_off']:.2f}s",
         f"{fleet['host_seconds_on']:.2f}s", f"{fleet['speedup']:.2f}x"],
    ]
    return format_table(
        TABLES_MARKER,
        ["arm", "work", "cache off", "cache on", "speedup"], rows)


def append_tables(payload) -> str:
    """Own one section of ``bench_tables.txt`` idempotently."""
    table = speed_table(payload)
    existing = TABLES.read_text() if TABLES.exists() else ""
    if TABLES_MARKER in existing:
        head = existing[:existing.index(TABLES_MARKER)].rstrip()
        existing = head + "\n" if head else ""
    text = (existing.rstrip() + "\n\n" + table + "\n").lstrip("\n")
    TABLES.write_text(text)
    return table


# --------------------------------------------------------------------------- #
# the assertions
# --------------------------------------------------------------------------- #

def test_micro_ledger_identical(micro):
    assert micro["on"][0] == micro["off"][0]
    # the fast arm really ran translated: the loop body retires in bursts
    assert micro["on"][2].cpu.tcache.sb_exec > 0
    assert micro["off"][2].cpu.tcache.sb_exec == 0


def test_micro_speedup_meets_floor(micro):
    speedup = micro["off"][1] / micro["on"][1]
    assert speedup >= FLOOR, (
        f"cpu-bound speedup {speedup:.2f}x under the {FLOOR}x floor "
        f"(off {micro['off'][1]:.3f}s, on {micro['on'][1]:.3f}s)")


def test_fleet_outputs_byte_identical(fleet_fidelity, fleet_timing):
    on, off = fleet_fidelity["on"], fleet_fidelity["off"]
    assert on["digest"] == off["digest"]
    assert on["serve_wall_cycles"] == off["serve_wall_cycles"]
    assert on["total_cycles"] == off["total_cycles"]
    assert on["certs"] == off["certs"] and on["certs"]
    assert on["trace_digests"] == off["trace_digests"]
    assert on["trace_digests"]
    # the cache-on arm actually exercised the TLB (the fleet's gate
    # costs are batch-charged on the macro plane, so superblock
    # retirement is a property of the micro arm, not asserted here)
    assert on["tlb_hits"] > 0
    assert off["tlb_hits"] == 0 and off["sb_exec"] == 0
    # the bare timed runs agree with the certificate-issuing runs
    assert fleet_timing["on"][0].digest() == on["digest"]
    assert fleet_timing["off"][0].digest() == on["digest"]


def test_smp_pinned_digests_both_arms(smp_digests):
    for n_cpus, digests in smp_digests.items():
        assert digests["on"] == digests["off"] == SMP_PINNED[n_cpus], (
            f"SMP digest mismatch at n_cpus={n_cpus}: {digests}")


def test_write_artifact(micro, fleet_timing, fleet_fidelity, smp_digests):
    payload = write_artifact(micro, fleet_timing, fleet_fidelity,
                             smp_digests)
    assert payload["cpu_bound"]["ledger_identical"]
    assert all(payload["fleet"]["identical"].values())
    assert all(v["identical"] for v in payload["smp"].values())
    print("\n" + append_tables(payload))
