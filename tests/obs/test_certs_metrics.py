"""Pin: certificate issuance ticks its two registry series, exactly.

``erebor_certs_issued_total{tenant}`` counts one per certifiable session
and ``erebor_certs_bytes`` observes each certificate's serialized size —
the capacity-planning surface for certificate storage. Neither series
exists until issuance is armed, so plain runs export byte-identical
metric snapshots.
"""

from repro.certs import serialize_certificate
from repro.fleet import run_fleet

PARAMS = dict(workload="helloworld", clients=2, requests=1, pool_size=1,
              tenants=2, seed=7, scale=1.0)


def test_issuance_ticks_both_series_with_exact_values():
    report, system = run_fleet(certificates=True, **PARAMS)
    registry = system.machine.clock.metrics
    assert registry.counter_total("erebor_certs_issued_total") == 2
    for tenant in ("tenant-0", "tenant-1"):
        assert registry.counter_value("erebor_certs_issued_total",
                                      tenant=tenant) == 1
    hist = registry.histograms["erebor_certs_bytes"][""]
    assert hist["count"] == 2
    # the observed sizes are exactly the on-disk serializations
    expected = sum(len(serialize_certificate(c))
                   for c in system.fleet_certificates.values())
    assert hist["sum"] == expected
    assert report.certs and len(report.certs) == 2


def test_series_stay_absent_when_issuance_is_off():
    _, system = run_fleet(**PARAMS)
    registry = system.machine.clock.metrics
    assert registry.counter_total("erebor_certs_issued_total") == 0
    assert "erebor_certs_bytes" not in registry.histograms
