"""The EMC entry/exit gates and #INT gate, as executable gate code (Fig. 5).

These are the paper's Figure 5 assembly sequences expressed in the
simulated ISA. They run for real on the micro CPU: the entry gate is the
*only* ``endbr`` landing pad in monitor code (IBT therefore forces all
indirect control transfers to it), it grants the current core access to
monitor memory by rewriting ``IA32_PKRS``, switches to the per-CPU secure
stack, dispatches the requested EMC, and the exit gate reverses everything.

The calibration contract: executing one empty EMC through these gates
costs exactly ``Cost.EMC_ROUND_TRIP`` (1224) cycles — a test pins this, so
any edit to the gate code or instruction costs that breaks Table 3 fails
loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw import regs
from ..hw.isa import I, INSTR_SIZE, Instr
from .emc import EmcCall, ENTRY_GATE_VA, MONITOR_DATA_VA, MONITOR_STACK_TOP

# protection keys (monitor-owned assignment plan, §5.2)
PKEY_DEFAULT = 0
PKEY_MONITOR = 1      # monitor code/data/stacks: kernel has no access
PKEY_PT = 2           # page-table pages: kernel may read, never write
PKEY_KTEXT = 3        # kernel text: write-protected (W^X)

#: PKRS for the monitor (privileged virtual mode): everything accessible.
PKRS_MONITOR = 0
#: PKRS for the deprivileged kernel (normal mode).
PKRS_KERNEL = regs.pkrs_value(
    k1=regs.PKR_AD | regs.PKR_WD,   # monitor memory: no access
    k2=regs.PKR_WD,                 # PTPs: read-only
    k3=regs.PKR_WD,                 # kernel text: no writes
)

#: per-CPU monitor data layout: each core's GS base points at its own
#: 4 KiB page inside the monitor data area (page = MONITOR_DATA_VA +
#: cpu_id * PERCPU_STRIDE); the gates address these slots gs-relative, so
#: the same gate code serves every core with its own secure stack.
PERCPU_STRIDE = 0x1000         # one page of monitor data per logical CPU
PERCPU_STACK_OFFSET = 0        # per-CPU secure stack pointer
PERCPU_PKRS_OFFSET = 8         # #INT gate PKRS spill slot


def percpu_base(cpu_id: int) -> int:
    return MONITOR_DATA_VA + cpu_id * PERCPU_STRIDE


#: CPU 0's slots by absolute VA (legacy names used by tests/rigs)
SECURE_STACK_SLOT = MONITOR_DATA_VA + PERCPU_STACK_OFFSET
SAVED_PKRS_SLOT = MONITOR_DATA_VA + PERCPU_PKRS_OFFSET


def entry_gate() -> list[Instr]:
    """Fig. 5a — the only endbr in the monitor.

    On entry (via ``icall`` from an EMC thunk): rdi = call number, rsi/rdx/
    r8 = arguments. Scratch registers are preserved on the OS stack, PKRS
    is opened, execution moves to the per-CPU secure stack.
    """
    return [
        I("endbr"),                                    # IBT landing pad
        # save scratch registers below the OS stack pointer
        I("store", "rsp", "rax", imm=-8 & (2**64 - 1)),
        I("store", "rsp", "rdx", imm=-16 & (2**64 - 1)),
        I("store", "rsp", "rcx", imm=-24 & (2**64 - 1)),
        # grant monitor memory permissions: IA32_PKRS <- PKRS_MONITOR
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("rdmsr"),                                    # rax = old PKRS
        I("mov", "r10", "rax"),                        # keep old PKRS
        I("movi", "rax", imm=PKRS_MONITOR),
        I("wrmsr"),
        # switch to this core's secure stack (gs-relative per-CPU slot)
        I("mov", "rcx", "rsp"),
        I("gsload", "rsp", imm=PERCPU_STACK_OFFSET),
        I("push", "rcx"),                              # save OS stack pointer
        # restore scratch registers (from the OS stack, via rcx)
        I("load", "rax", "rcx", imm=-8 & (2**64 - 1)),
        I("load", "rdx", "rcx", imm=-16 & (2**64 - 1)),
        I("load", "rcx", "rcx", imm=-24 & (2**64 - 1)),
    ]


def dispatch_chain(call_numbers: list[int], *, base_va: int,
                   handler_vas: dict[int, int], exit_va: int) -> list[Instr]:
    """Monitor-internal EMC dispatch: a direct cmp/jz chain.

    IBT forbids indirect calls without ``endbr`` landing pads, and the
    monitor must contain exactly one ``endbr`` (the entry gate), so
    dispatch is a compare chain of *direct* calls — the shape a compiler
    emits for a small switch. Unknown call numbers fall through to the
    exit gate (denied, no work done).

    Layout: [fence] + per-call (cmpi, jz) pairs + jmp exit + per-call
    call sites (call handler, jmp exit).
    """
    n = len(call_numbers)
    chain: list[Instr] = [I("fence")]
    # call-site block starts after: fence + n*(cmpi,jz) + 1 jmp
    sites_base = base_va + (1 + 2 * n + 1) * INSTR_SIZE
    for idx, number in enumerate(call_numbers):
        chain.append(I("cmpi", "rdi", imm=number))
        chain.append(I("jz", imm=sites_base + idx * 2 * INSTR_SIZE))
    chain.append(I("jmp", imm=exit_va))
    for number in call_numbers:
        chain.append(I("call", imm=handler_vas[number]))
        chain.append(I("jmp", imm=exit_va))
    return chain


def exit_gate() -> list[Instr]:
    """Fig. 5b — revoke permissions and return to the OS."""
    return [
        # switch back to the OS stack (saved at the secure stack top)
        I("load", "rsp", "rsp"),
        # save scratch registers
        I("push", "rax"),
        I("push", "rcx"),
        I("push", "rdx"),
        # revoke kernel access: IA32_PKRS <- PKRS_KERNEL
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("rdmsr"),
        I("movi", "rax", imm=PKRS_KERNEL),
        I("wrmsr"),
        # restore scratch registers
        I("pop", "rdx"),
        I("pop", "rcx"),
        I("pop", "rax"),
        I("ret"),
    ]


def int_gate(os_handler_va: int) -> list[Instr]:
    """Fig. 5c-right — the protected interrupt gate.

    If an interrupt preempts EMC execution, the gate spills the live PKRS
    to monitor memory, revokes permissions, and only then enters the OS
    handler, so a preempting kernel never runs with monitor access.

    The gate must work no matter *when* the interrupt lands — including
    outside any EMC, when permissions are already closed and the spill
    slot is unreachable. It therefore briefly opens PKRS itself (it is
    monitor code and may), spills the *previous* value, then revokes.
    Interrupts are disabled while the gate runs (hardware clears IF on
    gate transit), so the open window cannot itself be preempted.
    """
    saves = [I("push", r) for r in _SAVED_GPRS]
    return saves + [
        # read the interrupted PKRS and hold it
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("rdmsr"),
        I("mov", "rdx", "rax"),
        # open (so the per-CPU spill slot is writable), spill, revoke
        I("movi", "rax", imm=PKRS_MONITOR),
        I("wrmsr"),
        I("gsstore", src="rdx", imm=PERCPU_PKRS_OFFSET),
        I("movi", "rax", imm=PKRS_KERNEL),
        I("wrmsr"),
        # the OS handler runs with the full register file parked on the
        # interrupt stack; it may clobber anything and must come back via
        # the return gate with rsp unchanged
        I("jmp", imm=os_handler_va),
    ]


#: every GPR the #INT gate parks on the interrupt stack (paper: "saves all
#: general-purpose registers"); rsp is carried by the interrupt frame
_SAVED_GPRS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
               "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")


def int_gate_return() -> list[Instr]:
    """Restore the spilled PKRS when the interrupted EMC resumes.

    Permissions are closed at this point, so the gate must re-open PKRS
    *before* it can read the spill slot. It then restores the full GPR
    file the entry side parked on the interrupt stack and ``iret``s. The
    path is safe against a kernel jumping here directly: the concluding
    ``iret`` is shadow-stack-verified, so a forged entry ends in #CP,
    whose vector routes back through the #INT gate and revokes
    permissions again.
    """
    restores = [I("pop", r) for r in reversed(_SAVED_GPRS)]
    return [
        # re-open (monitor code may carry wrmsr; IBT keeps this unreachable
        # as an indirect-branch target), restore the spilled PKRS
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("movi", "rax", imm=PKRS_MONITOR),
        I("wrmsr"),
        I("gsload", "rax", imm=PERCPU_PKRS_OFFSET),
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("wrmsr"),
    ] + restores + [
        I("iret"),
    ]


@dataclass
class MonitorLayout:
    """Virtual addresses of the assembled monitor pieces."""

    entry_gate_va: int
    dispatch_va: int
    exit_gate_va: int
    handlers_va: dict[int, int]
    code: list[Instr]


def build_monitor_code(handlers: dict[int, list[Instr]] | None = None) -> MonitorLayout:
    """Assemble the monitor's gate code into one contiguous program.

    ``handlers`` maps EMC numbers to ISA bodies (each must end in ``ret``);
    unlisted numbers get the empty handler. The layout places the entry
    gate first at the published :data:`ENTRY_GATE_VA` so instrumented
    kernels can target it, with no other ``endbr`` anywhere.

    Layout: entry gate | dispatch chain | exit gate | handlers.
    """
    handlers = dict(handlers or {})
    call_numbers = [int(n) for n in EmcCall]
    # NOP first: the empty-EMC microbenchmark exercises the shortest chain
    call_numbers.sort(key=lambda n: (n != int(EmcCall.NOP), n))

    entry = entry_gate()
    dispatch_va = ENTRY_GATE_VA + len(entry) * INSTR_SIZE
    n = len(call_numbers)
    dispatch_len = 1 + 2 * n + 1 + 2 * n           # fence, chain, jmp, sites
    exit_va = dispatch_va + dispatch_len * INSTR_SIZE
    exit_code = exit_gate()

    # handlers area follows the exit gate
    handlers_va: dict[int, int] = {}
    handler_code: list[Instr] = []
    empty_va = exit_va + len(exit_code) * INSTR_SIZE
    handler_code.append(I("ret"))                  # the empty handler
    for number, body in handlers.items():
        handlers_va[int(number)] = (empty_va
                                    + len(handler_code) * INSTR_SIZE)
        handler_code += body
    for number in call_numbers:
        handlers_va.setdefault(number, empty_va)

    code = (entry
            + dispatch_chain(call_numbers, base_va=dispatch_va,
                             handler_vas=handlers_va, exit_va=exit_va)
            + exit_code
            + handler_code)
    return MonitorLayout(
        entry_gate_va=ENTRY_GATE_VA,
        dispatch_va=dispatch_va,
        exit_gate_va=exit_va,
        handlers_va=handlers_va,
        code=code,
    )
