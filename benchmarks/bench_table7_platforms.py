"""Table 7 — cross-CVM architectural features, plus the SEV fallback cost.

Regenerates the feature matrix for TDX / SEV-SNP / ARM CCA and quantifies
what the paper's §10 argues qualitatively: Erebor's mechanisms exist on
every platform, with SEV's missing PKS replaced by Nested-Kernel-style
private page tables at a modelled permission-switch penalty.
"""

import pytest

from repro.bench.report import format_table
from repro.hw.cycles import Cost
from repro.hw.platform import PROFILES, profile

#: the PKRS-switch portion of one EMC round trip (2x rdmsr + 2x wrmsr)
PKRS_SWITCH_CYCLES = 2 * (Cost.RDMSR + Cost.WRMSR_PKRS)
EMC_REMAINDER = Cost.EMC_ROUND_TRIP - PKRS_SWITCH_CYCLES


def modelled_emc_cost(platform_name: str) -> int:
    """EMC round trip on a platform: permission switches scale by the
    profile's fallback multiplier when protection keys are missing."""
    prof = profile(platform_name)
    return int(EMC_REMAINDER
               + PKRS_SWITCH_CYCLES * prof.permission_switch_multiplier)


def test_print_table7(benchmark):
    def build():
        rows = []
        for name, prof in PROFILES.items():
            rows.append([
                name.upper(), prof.register_interface,
                prof.context_switch_interface, prof.ghci_instruction,
                prof.kernel_user_separation, prof.protection_key_mechanism,
                f"{prof.hw_cfi_forward}/{prof.hw_cfi_backward}",
                modelled_emc_cost(name),
            ])
        return format_table(
            "Table 7: cross-CVM features for Erebor (+modelled EMC cycles)",
            ["platform", "registers", "ctxt switch", "GHCI",
             "kernel/user sep", "prot. key", "HW-CFI", "EMC cyc"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_all_platforms_carry_required_features(benchmark):
    profs = benchmark.pedantic(lambda: list(PROFILES.values()),
                               rounds=1, iterations=1)
    for prof in profs:
        assert prof.register_interface
        assert prof.context_switch_interface
        assert prof.ghci_instruction
        assert prof.kernel_user_separation
        assert prof.hw_cfi_forward and prof.hw_cfi_backward
        # protection keys OR a documented fallback
        assert prof.protection_keys or prof.permission_switch_multiplier > 1


def test_tdx_emc_matches_table3(benchmark):
    assert benchmark.pedantic(lambda: modelled_emc_cost("tdx"),
                              rounds=1, iterations=1) == Cost.EMC_ROUND_TRIP


def test_sev_fallback_is_costlier_but_same_order(benchmark):
    sev = benchmark.pedantic(lambda: modelled_emc_cost("sev"),
                             rounds=1, iterations=1)
    tdx = modelled_emc_cost("tdx")
    assert tdx < sev < 4 * tdx   # "slightly higher cost" (paper §10)


def test_cca_uses_pie_no_fallback(benchmark):
    prof = benchmark.pedantic(lambda: profile("cca"), rounds=1, iterations=1)
    assert prof.protection_keys
    assert modelled_emc_cost("cca") == Cost.EMC_ROUND_TRIP
