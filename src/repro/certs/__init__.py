"""``repro.certs`` — per-session execution certificates, verified offline.

Erebor's pitch is private data processing the client does not have to
trust the host for; the certificate is the *proof after the fact*. At
session close the fleet snapshots every piece of evidence the run
already produced — the attestation quote (MRTD + RTMR[2]/RTMR[3]), the
kernel :class:`~repro.analysis.verifier.VerifierReport` digest, the
session's audit-chain segment with the head it commits to, the request
trace tree digest (:mod:`repro.obs.reqtrace`), and the C8 scrub proof
from pool release — and composes them into one ``ExecutionCertificate``
JSON document a relying party can check **offline, client-side, with no
simulator state**::

    python -m repro.certs verify cert.json --published published.json

The document has three layers:

* ``body`` — the claims, canonically serialized (sorted-key JSON) and
  hashed into ``body_sha256``;
* ``quote`` — a TDREPORT whose ``report_data`` binds ``body_sha256``
  (:func:`bind_report_data`), HMAC-signed by the platform's
  :class:`~repro.tdx.attestation.AttestationAuthority`. Tampering with
  any claim breaks the binding; forging the quote breaks the signature;
  grafting another session's quote breaks the binding too — three
  *distinct* failures;
* ``attachments`` — the raw evidence (audit segment, scrub record,
  trace tree) that is **self-authenticating**: each attachment re-hashes
  or hash-chains into a digest committed inside ``body``, so the
  verifier localizes exactly which piece was doctored instead of
  collapsing every tamper into one generic mismatch.

Everything imported here (and by :mod:`repro.certs.verify`) is
simulator-free: :mod:`repro.core.audit`, :mod:`repro.tdx.attestation`,
and :mod:`repro.obs.reqtrace` are pure, so the verifier process never
loads ``repro.hw`` / ``repro.kernel`` / ``repro.fleet`` (the CI
certs-smoke job asserts this on ``sys.modules``). Only the issuer side
(:mod:`repro.certs.issue`, driven by ``run_fleet(certificates=True)``)
touches the simulator — and it charges **zero** simulated cycles: the
quote is signed directly through the authority, outside the in-CVM
GHCI path, so pinned fleet digests are unchanged by issuance.
"""

from __future__ import annotations

import hashlib
import json

#: certificate document format tag (bump on breaking layout changes)
CERT_FORMAT = "erebor-cert/1"

#: the published golden-values file (``published.json`` in a cert dir)
REFS_FORMAT = "erebor-cert-refs/1"

#: domain separator prefixing the body hash inside the quote's
#: ``report_data`` — a certificate quote can never be confused with a
#: channel-handshake quote (whose report data binds a DH transcript)
REPORT_DATA_PREFIX = b"erebor-cert/1:"

#: TDREPORT report_data width (TDX ABI: 64 caller-controlled bytes)
REPORT_DATA_LEN = 64


class CertificateError(Exception):
    """A certificate failed verification (or could not be issued).

    ``code`` is a short machine-readable locator — every tamper class
    maps to its own code (``quote-signature``, ``audit-segment``,
    ``scrub-evidence``, ``quote-binding``, ...) so a relying party sees
    *which* piece of evidence was doctored, not just "invalid".
    """

    def __init__(self, code: str, detail: str):
        self.code = code
        self.detail = detail
        super().__init__(f"[{code}] {detail}")


def canonical_json(obj) -> str:
    """The one canonical serialization: sorted keys, no whitespace.

    Issuer and offline verifier must agree byte-for-byte, so both call
    this — never ``json.dumps`` with ad-hoc options.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def sha256_hex(data: bytes | str) -> str:
    if isinstance(data, str):
        data = data.encode()
    return hashlib.sha256(data).hexdigest()


def body_digest(body: dict) -> str:
    """``body_sha256``: sha256 over the body's canonical serialization."""
    return sha256_hex(canonical_json(body))


def bind_report_data(body_sha256: str) -> bytes:
    """The 64-byte TDREPORT ``report_data`` binding one certificate body.

    Domain-separated prefix + the raw body hash, zero-padded to the ABI
    width. The quote signs this, so the signed platform evidence and the
    claims are inseparable: replaying a quote under a different body (or
    editing any claim) fails the binding check, not merely a convention.
    """
    raw = REPORT_DATA_PREFIX + bytes.fromhex(body_sha256)
    if len(raw) > REPORT_DATA_LEN:
        raise ValueError("bound report data exceeds the TDREPORT width")
    return raw.ljust(REPORT_DATA_LEN, b"\x00")


def serialize_certificate(cert: dict) -> str:
    """Byte-stable file form: sorted keys, indent 2, trailing newline.

    Two seeded fleet runs must write byte-identical certificate files —
    the CI job diffs them — so the on-disk form is pinned here.
    """
    return json.dumps(cert, indent=2, sort_keys=True) + "\n"


def load_certificate(path) -> dict:
    with open(path) as fh:
        cert = json.load(fh)
    if not isinstance(cert, dict):
        raise CertificateError("format", f"{path}: not a JSON object")
    return cert


#: lazy re-exports → (module, attribute): ``verify``/``tamper`` are pure;
#: ``issue`` imports the simulator only inside its functions, but is kept
#: lazy too so ``import repro.certs`` stays a leaf import
_LAZY = {
    "CertificateVerifier": ("verify", "CertificateVerifier"),
    "VerifyResult": ("verify", "VerifyResult"),
    "verify_certificate": ("verify", "verify_certificate"),
    "CertificateIssuer": ("issue", "CertificateIssuer"),
    "published_refs": ("issue", "published_refs"),
    "write_certificates": ("issue", "write_certificates"),
    "TAMPERS": ("tamper", "TAMPERS"),
    "tamper_certificate": ("tamper", "tamper_certificate"),
}

__all__ = [
    "CERT_FORMAT", "CertificateError", "CertificateIssuer",
    "CertificateVerifier", "REFS_FORMAT", "REPORT_DATA_LEN",
    "REPORT_DATA_PREFIX", "TAMPERS", "VerifyResult", "bind_report_data",
    "body_digest", "canonical_json", "load_certificate", "published_refs",
    "serialize_certificate", "sha256_hex", "tamper_certificate",
    "verify_certificate", "write_certificates",
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
