"""Audit log: bounded ring, drop accounting, trace routing (satellite a)."""

import pytest

from repro.core import erebor_boot
from repro.obs.ring import RingBuffer
from repro.vm import CvmMachine, MachineConfig, MIB
from repro import obs


@pytest.fixture
def system():
    return erebor_boot(CvmMachine(MachineConfig(memory_bytes=512 * MIB)),
                       cma_bytes=32 * MIB)


def test_audit_log_is_a_bounded_ring(system):
    monitor = system.monitor
    assert isinstance(monitor.audit_log, RingBuffer)
    assert monitor.audit_log.capacity == monitor.AUDIT_LOG_CAPACITY


def test_audit_log_drops_oldest_beyond_capacity(system):
    monitor = system.monitor
    monitor.audit_log.clear()
    cap = monitor.AUDIT_LOG_CAPACITY
    for i in range(cap + 10):
        monitor.audit("test", f"event {i}")
    assert len(monitor.audit_log) == cap
    assert monitor.audit_log.dropped == 10
    assert monitor.audit_log[0].detail == "event 10"     # oldest survivor
    assert monitor.audit_log[-1].detail == f"event {cap + 9}"


def test_audit_events_route_through_tracer(system):
    tracer, _ = obs.install(system.machine.clock)
    system.monitor.audit("attest", "quote over 64B")
    (event,) = [e for e in tracer.events if e.kind == "audit"]
    assert event.name == "audit:attest"
    assert event.args["detail"] == "quote over 64B"
    # timestamp matches the ring entry's simulated cycle
    assert event.begin == system.monitor.audit_log[-1].cycle


def test_denials_audit_and_count(system):
    from repro.core.policy import PolicyViolation
    from repro.hw import regs
    tracer, registry = obs.install(system.machine.clock)
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_cr(4, 0)      # clearing pinned bits
    assert system.monitor.stats.policy_denials == 1
    assert registry.counter_value("erebor_policy_denials_total") == 1
    assert any(e.name == "audit:deny" for e in tracer.events)
