"""Benchmark harness: workload runner, LMBench suite, server rigs, reports."""

from .analysis import MECHANISMS, OverheadBreakdown, decompose
from .lmbench import LmbenchResult, LmbenchSuite
from .report import check, format_table, mib, pct, ratio
from .runner import RunResult, SETTINGS, WorkloadRunner
from .servers import FILE_SIZES, ServerBench, ServerPoint, ServerSeries

__all__ = [
    "FILE_SIZES", "LmbenchResult", "LmbenchSuite", "MECHANISMS",
    "OverheadBreakdown", "RunResult", "SETTINGS", "ServerBench",
    "ServerPoint", "ServerSeries", "WorkloadRunner", "check", "decompose",
    "format_table", "mib", "pct", "ratio",
]
