"""Session key-ratchet and channel-robustness fuzz tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AeadError, SealedSession

KEY = b"k" * 32


def test_ratchet_advances_on_schedule():
    tx = SealedSession(KEY, rekey_every=4)
    rx = SealedSession(KEY, rekey_every=4)
    for i in range(10):
        assert rx.open(tx.seal(f"m{i}".encode())) == f"m{i}".encode()
    assert tx.generations == 2          # after records 4 and 8
    assert tx.key == rx.key != KEY


def test_old_key_cannot_open_post_ratchet_records():
    """Forward secrecy: generation-0 key is useless after the ratchet."""
    tx = SealedSession(KEY, rekey_every=2)
    tx.seal(b"a")
    tx.seal(b"b")
    record = tx.seal(b"c")              # generation 1
    stale = SealedSession(KEY, seq=2, rekey_every=0)   # attacker with gen-0 key
    with pytest.raises(AeadError):
        stale.open(record)


def test_mismatched_rekey_schedules_fail():
    tx = SealedSession(KEY, rekey_every=2)
    rx = SealedSession(KEY, rekey_every=0)
    assert rx.open(tx.seal(b"one")) == b"one"
    assert rx.open(tx.seal(b"two")) == b"two"
    with pytest.raises(AeadError):
        rx.open(tx.seal(b"three"))      # tx ratcheted, rx did not


def test_rekey_zero_disables_ratchet():
    tx = SealedSession(KEY, rekey_every=0)
    rx = SealedSession(KEY, rekey_every=0)
    for i in range(600):
        rx.open(tx.seal(b"x"))
    assert tx.generations == 0


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=600))
def test_property_garbage_records_always_rejected_never_crash(blob):
    """Whatever the proxy/host mangles, open() fails closed."""
    rx = SealedSession(KEY)
    with pytest.raises(AeadError):
        rx.open(blob)
    # a rejected record does not consume the sequence slot: the genuine
    # next record still opens
    assert rx.seq == 0
    tx = SealedSession(KEY)
    assert rx.open(tx.seal(b"real")) == b"real"


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 200), st.integers(0, 31), st.integers(1, 255))
def test_property_single_bitflip_anywhere_rejected(n_msgs, byte_idx, flip):
    tx = SealedSession(KEY, rekey_every=16)
    rx = SealedSession(KEY, rekey_every=16)
    for i in range(n_msgs % 20):
        rx.open(tx.seal(b"sync"))
    record = bytearray(tx.seal(b"target-message"))
    record[byte_idx % len(record)] ^= flip
    with pytest.raises(AeadError):
        rx.open(bytes(record))
