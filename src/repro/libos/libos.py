"""The LibOS core: Gramine-like runtime services inside the sandbox.

The LibOS emulates the four services of §6.2 entirely in userspace —
pre-allocated heap, in-memory FS, pre-created threads with spinlock sync,
and monitor-mediated client I/O — so a locked sandbox never needs a
syscall except the channel ioctl. The same LibOS also boots *plain* on a
native kernel (no monitor), which is the paper's ``Erebor-LibOS-only``
ablation setting: services are still emulated, but the channel is an
untrusted DebugFS file and syscalls remain legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..hw.memory import PAGE_SIZE, pages_for
from ..kernel.process import PROT_READ, PROT_WRITE, Task
from .memfs import MemFs
from .threads import ThreadPool

if TYPE_CHECKING:
    from ..core.boot import EreborSystem
    from ..core.sandbox import Sandbox
    from ..kernel.kernel import GuestKernel

#: cycles per LibOS-emulated call (userspace bookkeeping, no transition)
LIBOS_CALL_CYCLES = 160
#: cycles per page of data shuffled inside the LibOS
LIBOS_TOUCH_PER_PAGE = 120

#: DebugFS endpoints used by the plain (non-Erebor) channel emulation,
#: mirroring the paper's /sys/kernel/debug/encos-IO-emulate/{in,out}
DEBUGFS_IN = "/sys/kernel/debug/encos-IO-emulate/in"
DEBUGFS_OUT = "/sys/kernel/debug/encos-IO-emulate/out"


@dataclass
class PreloadFile:
    path: str
    data: bytes = b""
    synthetic_size: int | None = None


@dataclass
class CommonSpec:
    name: str
    size: int
    initializer: bool = False


@dataclass
class Manifest:
    """What a service provider declares for its program (§6.1, §7)."""

    name: str
    heap_bytes: int
    threads: int = 1
    preload: list[PreloadFile] = field(default_factory=list)
    common: list[CommonSpec] = field(default_factory=list)
    io_prefault: bool = True


class LibOs:
    """One LibOS instance wrapping one program."""

    def __init__(self, kernel: "GuestKernel", task: Task, manifest: Manifest,
                 *, sandbox: "Sandbox | None" = None, device_fd: int | None = None):
        self.kernel = kernel
        self.task = task
        self.manifest = manifest
        self.sandbox = sandbox
        self.device_fd = device_fd
        self.fs = MemFs(self)
        self.pool = ThreadPool(self, manifest.threads)
        self.heap_vma = None
        self._heap_cursor = 0
        self.common_vmas: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # boot paths
    # ------------------------------------------------------------------ #

    @classmethod
    def boot_sandboxed(cls, system: "EreborSystem", manifest: Manifest,
                       *, confined_budget: int | None = None) -> "LibOs":
        """Create a sandbox and bring the LibOS up inside it."""
        from ..core.channel import DEVICE_PATH
        budget = confined_budget or (manifest.heap_bytes + 1024 * 1024)
        sandbox = system.monitor.create_sandbox(
            manifest.name, confined_budget=budget, threads=manifest.threads)
        libos = cls(system.kernel, sandbox.task, manifest, sandbox=sandbox)
        # heap: declared + pinned confined memory (service 1)
        libos.heap_vma = sandbox.declare_confined(
            manifest.heap_bytes, prefault=manifest.io_prefault)
        # common regions (models, databases, shared libraries)
        for spec in manifest.common:
            libos.common_vmas[spec.name] = sandbox.attach_common(
                spec.name, spec.size, initializer=spec.initializer)
        # channel device (open is a syscall: legal pre-lock)
        libos.device_fd = system.kernel.syscall(sandbox.task, "open",
                                                DEVICE_PATH)
        # threads: all pre-created (service 3)
        for _ in range(manifest.threads - 1):
            sandbox.spawn_thread()
        # preloaded files (service 2)
        for pf in manifest.preload:
            libos.fs.preload(pf.path, pf.data, synthetic_size=pf.synthetic_size)
        return libos

    @classmethod
    def attach_forked(cls, system: "EreborSystem", manifest: Manifest,
                      sandbox: "Sandbox", *, heap_vma,
                      common_vmas: dict[str, object]) -> "LibOs":
        """Wire a LibOS onto a forked sandbox whose memory already exists.

        The fork engine (``repro.fleet``) maps the template's confined
        image copy-on-write and re-attaches the common regions before
        calling this; what remains of :meth:`boot_sandboxed` is the
        per-instance state — device fd, worker threads, preloaded files —
        none of which touches the expensive prefault/declare path.
        """
        from ..core.channel import DEVICE_PATH
        libos = cls(system.kernel, sandbox.task, manifest, sandbox=sandbox)
        libos.heap_vma = heap_vma
        libos.common_vmas = dict(common_vmas)
        libos.device_fd = system.kernel.syscall(sandbox.task, "open",
                                                DEVICE_PATH)
        for _ in range(manifest.threads - 1):
            sandbox.spawn_thread()
        for pf in manifest.preload:
            libos.fs.preload(pf.path, pf.data, synthetic_size=pf.synthetic_size)
        return libos

    @classmethod
    def boot_plain(cls, kernel: "GuestKernel", manifest: Manifest) -> "LibOs":
        """LibOS-only setting: same emulation, native kernel, no monitor."""
        task = kernel.spawn(manifest.name)
        libos = cls(kernel, task, manifest)
        libos.heap_vma = kernel.syscall(task, "mmap", manifest.heap_bytes,
                                        PROT_READ | PROT_WRITE)
        if manifest.io_prefault:
            kernel.touch_pages(task, libos.heap_vma.start,
                               manifest.heap_bytes, write=True)
        for spec in manifest.common:
            libos.common_vmas[spec.name] = libos._plain_common(spec)
        for _ in range(manifest.threads - 1):
            kernel.syscall(task, "clone")
        for pf in manifest.preload:
            libos.fs.preload(pf.path, pf.data, synthetic_size=pf.synthetic_size)
        for path in (DEBUGFS_IN, DEBUGFS_OUT):
            if not kernel.vfs.exists(path):
                kernel.vfs.create(path)
        return libos

    def _plain_common(self, spec: CommonSpec):
        """Plain-mode sharing: a file mapping through the page cache."""
        from ..kernel.process import FileBacking
        path = f"/shared/{spec.name}"
        if not self.kernel.vfs.exists(path):
            self.kernel.vfs.create(path, synthetic_size=spec.size)
        backing = FileBacking(self.kernel.vfs.lookup(path))
        return self.kernel.mmap(self.task, spec.size,
                                PROT_READ | (PROT_WRITE if spec.initializer else 0),
                                backing=backing, kind="common")

    # ------------------------------------------------------------------ #
    # accounting hooks
    # ------------------------------------------------------------------ #

    def charge_emulated_call(self) -> None:
        self.kernel.clock.charge(LIBOS_CALL_CYCLES, "libos")
        self.kernel.clock.count("libos_call")

    def charge_data_touch(self, nbytes: int) -> None:
        pages = max(pages_for(nbytes), 1)
        self.kernel.clock.charge(pages * LIBOS_TOUCH_PER_PAGE, "libos")

    @property
    def sandboxed_locked(self) -> bool:
        return self.sandbox is not None and self.sandbox.locked

    # ------------------------------------------------------------------ #
    # memory API (service 1)
    # ------------------------------------------------------------------ #

    def malloc(self, size: int) -> int:
        """Bump-allocate from the pre-declared heap; returns a VA."""
        self.charge_emulated_call()
        size = (size + 15) & ~15
        if self._heap_cursor + size > self.manifest.heap_bytes:
            raise MemoryError(
                f"LibOS heap exhausted ({self.manifest.heap_bytes} bytes)")
        va = self.heap_vma.start + self._heap_cursor
        self._heap_cursor += size
        return va

    def touch_range(self, va: int, size: int, *, write: bool = False) -> int:
        """Access a memory range page by page (drives demand paging)."""
        return self.kernel.touch_pages(self.task, va, size, write=write)

    def touch_common(self, name: str, size: int | None = None,
                     *, offset: int = 0, stride: int = PAGE_SIZE) -> int:
        vma = self.common_vmas[name]
        length = size if size is not None else vma.length
        offset = offset % max(vma.length, 1)
        length = min(length, vma.length - offset)
        return self.kernel.touch_pages(self.task, vma.start + offset, length,
                                       stride=stride)

    def compute(self, cycles: int) -> None:
        self.kernel.advance(cycles, self.task)

    # ------------------------------------------------------------------ #
    # client data channel (service 4)
    # ------------------------------------------------------------------ #

    def recv_input(self) -> bytes | None:
        if self.sandbox is not None:
            return self.kernel.syscall(self.task, "ioctl", self.device_fd,
                                       "input")
        fd = self.kernel.syscall(self.task, "open", DEBUGFS_IN)
        data = self.kernel.syscall(self.task, "read", fd, 1 << 30)
        self.kernel.syscall(self.task, "close", fd)
        return data or None

    def send_output(self, data: bytes) -> None:
        if self.sandbox is not None:
            self.kernel.syscall(self.task, "ioctl", self.device_fd,
                                "output", data)
            return
        fd = self.kernel.syscall(self.task, "open", DEBUGFS_OUT, create=True,
                                 write=True)
        self.kernel.syscall(self.task, "write", fd, data)
        self.kernel.syscall(self.task, "close", fd)

    # ------------------------------------------------------------------ #
    # session teardown
    # ------------------------------------------------------------------ #

    def end_session(self) -> None:
        """Stateless reset between clients: wipe temp files (§6.2)."""
        self.fs.wipe()
        self._heap_cursor = 0
