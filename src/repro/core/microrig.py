"""Micro-level rig: the monitor's gate code running on the simulated CPU.

Builds a machine where the assembled monitor (entry gate → dispatch →
exit gate → handlers) is mapped under the monitor protection key, CET is
armed (IBT + supervisor shadow stack), PKRS carries the kernel rights
profile, and a kernel-side caller stub performs real EMCs via ``icall``.

This is where the paper's Figure 5 actually executes: the Table 3
calibration test and every gate-security test (missed endbr → #CP, gate
mid-entry jump, interrupt-gate PKRS revocation, …) run on this rig.
"""

from __future__ import annotations

from ..hw import cet, regs
from ..hw.cpu import Cpu
from ..hw.isa import I, Instr
from ..hw.memory import PAGE_SIZE
from ..hw.testbench import KERNEL_CODE_VA, MicroMachine
from .emc import ENTRY_GATE_VA, EmcCall, MONITOR_DATA_VA, MONITOR_STACK_TOP
from .gates import (
    PERCPU_STACK_OFFSET,
    PKEY_MONITOR,
    PKRS_KERNEL,
    MonitorLayout,
    build_monitor_code,
    percpu_base,
)

SHADOW_STACK_VA = 0x70_C000_0000
CALLER_VA = KERNEL_CODE_VA
#: per-CPU secure stack spacing inside the monitor stack area
STACK_STRIDE = 8 * PAGE_SIZE


def micro_handler_write_msr() -> list[Instr]:
    """EMC WRITE_MSR service body: rsi=msr, rdx=value."""
    return [
        I("mov", "rcx", "rsi"),
        I("mov", "rax", "rdx"),
        I("wrmsr"),
        I("ret"),
    ]


def micro_handler_write_cr4() -> list[Instr]:
    """EMC WRITE_CR service body (CR4 only at micro level): rdx=value."""
    return [
        I("mov", "rax", "rdx"),
        I("mov_cr", 4, "rax"),
        I("ret"),
    ]


class GateRig:
    """One micro machine with the monitor's gates installed and armed."""

    def __init__(self, handlers: dict[int, list[Instr]] | None = None,
                 *, cet_ibt: bool = True, cet_sst: bool = True, tdx=None,
                 n_cpus: int = 1):
        if handlers is None:
            handlers = {
                int(EmcCall.WRITE_MSR): micro_handler_write_msr(),
                int(EmcCall.WRITE_CR): micro_handler_write_cr4(),
            }
        self.machine = MicroMachine(tdx=tdx)
        self.cpu = self.machine.cpu
        self.clock = self.machine.clock
        self.layout: MonitorLayout = build_monitor_code(handlers)

        # monitor code: supervisor, executable, monitor pkey
        self.machine.load_code(ENTRY_GATE_VA, self.layout.code,
                               owner="monitor", pkey=PKEY_MONITOR)
        # per-CPU monitor data pages + secure stacks
        self.machine.map_data(MONITOR_DATA_VA, n_cpus, owner="monitor",
                              pkey=PKEY_MONITOR)
        stack_pages = 4 + (n_cpus - 1) * (STACK_STRIDE // PAGE_SIZE)
        self.machine.map_data(MONITOR_STACK_TOP - stack_pages * PAGE_SIZE,
                              stack_pages, owner="monitor",
                              pkey=PKEY_MONITOR)

        # secondary cores share physical memory, env and the clock
        self.cpus: list[Cpu] = [self.cpu]
        for cpu_id in range(1, n_cpus):
            extra = Cpu(cpu_id, self.machine.phys, self.clock,
                        self.machine.env)
            extra.crs = dict(self.cpu.crs)
            self.cpus.append(extra)
        if n_cpus > 1:
            # extra kernel stacks below the default one
            extra_pages = (n_cpus - 1) * (STACK_STRIDE // PAGE_SIZE)
            from ..hw.paging import PTE_P, PTE_W
            self.machine._map_region(
                0x60_8000_0000 - (4 + extra_pages) * PAGE_SIZE, extra_pages,
                PTE_P | PTE_W, "kernel")

        for cpu_id, cpu in enumerate(self.cpus):
            stack_top = MONITOR_STACK_TOP - cpu_id * STACK_STRIDE - 64
            self._poke_u64(percpu_base(cpu_id) + PERCPU_STACK_OFFSET,
                           stack_top)
            cpu.msrs[regs.IA32_GS_BASE] = percpu_base(cpu_id)
            # CET: shadow stack + IBT, one stack per logical core
            ssp = cet.allocate_shadow_stack(
                self.machine.phys, self.machine.aspace,
                SHADOW_STACK_VA + cpu_id * 16 * PAGE_SIZE, 4)
            cet.arm_cet(cpu, ssp, ibt=cet_ibt, shadow_stack=cet_sst)
            # deprivileged kernel rights
            cpu.msrs[regs.IA32_PKRS] = PKRS_KERNEL
            cpu.regs["rsp"] = 0x60_8000_0000 - 64 - cpu_id * STACK_STRIDE

    def _poke_u64(self, va: int, value: int) -> None:
        hit = self.machine.aspace.translate(va)
        assert hit is not None
        self.machine.phys.write_u64(hit[0], value)

    # ------------------------------------------------------------------ #

    def caller_stub(self, call_number: int, rsi: int = 0, rdx: int = 0,
                    r8: int = 0) -> list[Instr]:
        """Kernel-side EMC invocation (what an instrumented thunk does)."""
        return [
            I("movi", "rdi", imm=call_number),
            I("movi", "rsi", imm=rsi),
            I("movi", "rdx", imm=rdx),
            I("movi", "r8", imm=r8),
            I("movi", "rax", imm=ENTRY_GATE_VA),
            I("icall", "rax"),
            I("hlt"),
        ]

    def run_emc(self, call_number: int = int(EmcCall.NOP), *, rsi: int = 0,
                rdx: int = 0, r8: int = 0, cpu: Cpu | None = None,
                caller_va: int | None = None) -> int:
        """Execute one EMC from kernel mode; returns the gate-path cycles.

        The measurement covers exactly the transition: from the ``icall``
        into the entry gate to the exit gate's ``ret`` landing back in the
        caller — the paper's "empty EMC round trip". ``cpu`` selects the
        core (per-CPU stacks/PKRS apply).
        """
        cpu = cpu or self.cpu
        caller_va = caller_va if caller_va is not None else (
            CALLER_VA + cpu.cpu_id * 0x10000)
        stub = self.caller_stub(call_number, rsi, rdx, r8)
        self.machine.load_code(caller_va, stub)
        cpu.mode = "kernel"
        cpu.rip = caller_va
        # execute the register set-up on the chosen core, then snapshot
        # before the icall; the whole gate path lands on that core's
        # cycle counter (cpu.run scopes itself), so concurrent EMCs on
        # different cores overlap on the wall clock
        with self.clock.on_cpu(cpu.cpu_id):
            for _ in range(5):
                cpu.step()
        before = self.clock.cycles
        with self.clock.tracer.span("gate:micro", "gate",
                                    call=call_number, cpu=cpu.cpu_id):
            cpu.run(max_steps=10_000)
        after = self.clock.cycles
        # the final hlt costs 1 cycle; exclude it
        return after - before - 1
