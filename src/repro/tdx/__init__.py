"""TDX substrate: trusted module, host VMM, attestation authority.

:mod:`repro.tdx.attestation` is simulator-free and imported eagerly —
it is what the offline certificate verifier needs. The trusted module
and host VMM (which pull in the hardware model) resolve lazily
(PEP 562), so ``import repro.tdx`` stays pure.
"""

from __future__ import annotations

from .attestation import (
    AttestationAuthority,
    Quote,
    QuoteVerificationError,
    TdReport,
    expected_measurement,
)

__all__ = [
    "AttestationAuthority", "HostVmm", "LEAF_ACCEPT_PAGE", "LEAF_TDREPORT",
    "LEAF_VMCALL", "PRIVATE", "PrivateMemoryError", "Quote",
    "QuoteVerificationError", "SHARED", "TdReport", "TdxModule",
    "VMCALL_CPUID", "VMCALL_GETQUOTE", "VMCALL_HLT", "VMCALL_IO",
    "VMCALL_MAPGPA", "expected_measurement",
]

#: lazy re-exports → (module, attribute); module/vmm load the simulator
_LAZY = {
    "LEAF_ACCEPT_PAGE": ("module", "LEAF_ACCEPT_PAGE"),
    "LEAF_TDREPORT": ("module", "LEAF_TDREPORT"),
    "LEAF_VMCALL": ("module", "LEAF_VMCALL"),
    "PRIVATE": ("module", "PRIVATE"),
    "SHARED": ("module", "SHARED"),
    "VMCALL_CPUID": ("module", "VMCALL_CPUID"),
    "VMCALL_GETQUOTE": ("module", "VMCALL_GETQUOTE"),
    "VMCALL_HLT": ("module", "VMCALL_HLT"),
    "VMCALL_IO": ("module", "VMCALL_IO"),
    "VMCALL_MAPGPA": ("module", "VMCALL_MAPGPA"),
    "TdxModule": ("module", "TdxModule"),
    "HostVmm": ("vmm", "HostVmm"),
    "PrivateMemoryError": ("vmm", "PrivateMemoryError"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
