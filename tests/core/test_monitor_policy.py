"""Monitor policy + MonitorOps tests: Table 4 direct costs and denials."""

import pytest

from repro.core import PolicyViolation, erebor_boot
from repro.core.policy import validate_cr_write, validate_msr_write
from repro.hw import regs
from repro.hw.cycles import Cost
from repro.tdx.module import VMCALL_IO
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def system():
    return erebor_boot(CvmMachine(MachineConfig(memory_bytes=512 * MIB)),
                       cma_bytes=32 * MIB)


def direct_cost(system, fn) -> int:
    """Cycles excluding the macro uarch-disturbance model."""
    clock = system.machine.clock
    before = clock.snapshot()
    fn()
    delta = clock.since(before)
    return delta.cycles - delta.by_tag.get("uarch", 0)


# --- Table 4: direct op costs through MonitorOps ---------------------------

def test_erebor_pte_write_cost(system):
    task = system.kernel.spawn("t")
    from repro.hw.paging import PTE_P, PTE_U, make_pte
    fn = system.machine.phys.alloc_frame("task:99")
    cost = direct_cost(system, lambda: system.monitor.ops.write_pte(
        task.aspace, 0x40_0000, make_pte(fn, PTE_P | PTE_U)))
    assert cost == Cost.EREBOR_MMU == 1345


def test_erebor_cr_write_cost(system):
    cpu = system.machine.cpu
    value = cpu.crs[4]
    cost = direct_cost(system, lambda: system.monitor.ops.write_cr(4, value))
    assert cost == Cost.EREBOR_CR == 1593


def test_erebor_msr_write_cost(system):
    cost = direct_cost(system, lambda: system.monitor.ops.write_msr(0x999, 1))
    assert cost == Cost.EREBOR_MSR == 1613


def test_erebor_idt_cost(system):
    idt = system.machine.cpu.idt
    cost = direct_cost(system, lambda: system.monitor.ops.load_idt(idt))
    assert cost == Cost.EREBOR_IDT == 1369


def test_erebor_ghci_tdreport_cost(system):
    cost = direct_cost(system, lambda: system.monitor.attest(b"x" * 32))
    assert cost == Cost.EREBOR_GHCI == 128081


def test_erebor_user_copy_cost(system):
    system.kernel.spawn("t")
    cost = direct_cost(system,
                       lambda: system.monitor.ops.user_copy(100, to_user=True))
    assert cost == (Cost.EMC_ROUND_TRIP + Cost.VALIDATE_SMAP
                    + Cost.STAC_CLAC_NATIVE + Cost.USER_COPY_PER_PAGE)


# --- policy validators -------------------------------------------------------

def test_cr4_pinned_bits_enforced():
    with pytest.raises(PolicyViolation):
        validate_cr_write(4, 0)  # clears SMEP/SMAP/PKS/CET
    validate_cr_write(4, regs.CR4_SMEP | regs.CR4_SMAP | regs.CR4_PKS
                      | regs.CR4_CET)


def test_cr0_wp_pinned():
    with pytest.raises(PolicyViolation):
        validate_cr_write(0, regs.CR0_PE | regs.CR0_PG)  # WP cleared
    validate_cr_write(0, regs.CR0_PE | regs.CR0_PG | regs.CR0_WP)


def test_unsupported_cr_rejected():
    with pytest.raises(PolicyViolation):
        validate_cr_write(8, 0)


def test_monitor_owned_msrs_denied_to_kernel():
    for msr in (regs.IA32_PKRS, regs.IA32_S_CET, regs.IA32_PL0_SSP,
                regs.IA32_UINTR_TT):
        with pytest.raises(PolicyViolation):
            validate_msr_write(msr, 0)
    validate_msr_write(0x1234, 0)  # arbitrary MSRs are fine


def test_kernel_cr_write_clearing_protections_denied(system):
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_cr(4, 0)
    assert system.monitor.stats.policy_denials == 1
    # hardware state unchanged
    assert system.machine.cpu.crs[4] & regs.CR4_SMEP


def test_kernel_pkrs_write_denied(system):
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_msr(regs.IA32_PKRS, 0)


def test_kernel_lstar_write_is_interposed_not_installed(system):
    from repro.core.gates import PKRS_KERNEL
    before = system.machine.cpu.msrs.get(regs.IA32_LSTAR, 0)
    system.monitor.ops.write_msr(regs.IA32_LSTAR, 0xDEAD_BEEF)
    # the monitor records the kernel's entry but keeps its own interposer
    assert system.monitor.kernel_syscall_entry == 0xDEAD_BEEF
    assert system.machine.cpu.msrs.get(regs.IA32_LSTAR, 0) == before


def test_kernel_tdreport_denied(system):
    with pytest.raises(PolicyViolation):
        system.monitor.ops.tdreport(b"fake")


def test_mapgpa_outside_io_window_denied(system):
    task = system.kernel.spawn("t")
    secret_fn = system.machine.phys.alloc_frame(task.owner_tag)
    with pytest.raises(PolicyViolation):
        system.monitor.ops.map_gpa(secret_fn, 1, shared=True)
    assert not system.machine.tdx.is_shared(secret_fn)


def test_mapgpa_inside_io_window_allowed(system):
    window = system.monitor.shared_io_window()
    system.monitor.ops.map_gpa(window[0], 2, shared=True)
    assert system.machine.tdx.is_shared(window[0])


def test_vmcall_io_allowed_for_kernel(system):
    result = system.monitor.ops.vmcall(VMCALL_IO, b"ciphertext")
    assert result == 0


def test_cpuid_emulation_uses_cache(system):
    vmm = system.machine.vmm
    before = len([o for o in vmm.observations if o[0] == "vmcall"])
    first = system.monitor.emulated_cpuid()
    second = system.monitor.emulated_cpuid()
    after = len([o for o in vmm.observations if o[0] == "vmcall"])
    assert first == second
    assert after == before + 1  # only one host round trip ever


def test_emc_counting(system):
    before = system.monitor.stats.emc_calls
    system.monitor.ops.write_msr(0x777, 1)
    assert system.monitor.stats.emc_calls == before + 1
    assert system.machine.clock.events["emc"] >= before + 1
