"""Figure 9 — runtime overhead of real-world workloads (+Table 5 inputs).

Regenerates the five-workload bar groups: Native-relative runtime under
LibOS-only, Erebor-LibOS-MMU, Erebor-LibOS-Exit, and full Erebor. Shape
targets from the paper: full-Erebor overheads span ~4.5-13.2% with
llama.cpp worst (13.15%) and a geometric mean of ~8.1%; LibOS-only stays
small (1.7% geomean) except llama's sync-heavy 4.5%.
"""

import math

import pytest

from repro.bench.report import format_table, pct

PAPER_FULL = {"llama.cpp": 13.15, "yolo": None, "drugbank": None,
              "graphchi": None, "unicorn": None}


def overhead(matrix, name, setting) -> float:
    native = matrix[name]["native"].run_seconds
    return matrix[name][setting].run_seconds / native - 1.0


def geomean(values) -> float:
    return math.exp(sum(math.log(1.0 + v) for v in values) / len(values)) - 1.0


def test_print_fig9(benchmark, workload_matrix):
    def build():
        rows = []
        for name in workload_matrix:
            rows.append([
                name,
                pct(overhead(workload_matrix, name, "libos")),
                pct(overhead(workload_matrix, name, "mmu")),
                pct(overhead(workload_matrix, name, "exit")),
                pct(overhead(workload_matrix, name, "erebor")),
            ])
        full = [overhead(workload_matrix, n, "erebor")
                for n in workload_matrix]
        rows.append(["geomean", "-", "-", "-", pct(geomean(full))])
        return format_table(
            "Figure 9: workload runtime overhead vs native "
            "(paper: geomean 8.1%, range 4.5-13.2%, llama worst 13.15%)",
            ["workload", "LibOS-only", "LibOS-MMU", "LibOS-Exit",
             "full Erebor"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_full_erebor_range_matches_paper(benchmark, workload_matrix):
    full = benchmark.pedantic(
        lambda: {n: overhead(workload_matrix, n, "erebor")
                 for n in workload_matrix}, rounds=1, iterations=1)
    assert 0.03 <= min(full.values()) <= 0.06        # paper floor 4.5%
    assert 0.11 <= max(full.values()) <= 0.15        # paper ceiling 13.2%
    assert max(full, key=full.get) == "llama.cpp"    # llama is worst
    assert 0.06 <= geomean(list(full.values())) <= 0.10   # paper 8.1%


def test_llama_libos_overhead_from_sync(benchmark, workload_matrix):
    libos = benchmark.pedantic(
        lambda: {n: overhead(workload_matrix, n, "libos")
                 for n in workload_matrix}, rounds=1, iterations=1)
    assert 0.035 <= libos["llama.cpp"] <= 0.06       # paper: 4.5%
    others = [v for n, v in libos.items() if n != "llama.cpp"]
    assert all(v < 0.02 for v in others)


def test_ablations_compose(benchmark, workload_matrix):
    """MMU-only and Exit-only each sit between LibOS-only and full."""
    data = benchmark.pedantic(lambda: workload_matrix, rounds=1, iterations=1)
    for name in data:
        lib = overhead(data, name, "libos")
        mmu = overhead(data, name, "mmu")
        exit_ = overhead(data, name, "exit")
        full = overhead(data, name, "erebor")
        assert lib <= mmu <= full + 0.005
        assert lib <= exit_ <= full + 0.005


def test_print_overhead_decomposition(benchmark, workload_matrix):
    """§9.2 discussion, programmatically: where each workload's full-
    Erebor overhead comes from (EMC gates, state masking, spin sync...)."""
    from repro.bench.analysis import decompose

    def build():
        tables = []
        for name, runs in workload_matrix.items():
            tables.append(decompose(runs["native"], runs["erebor"]).table())
        return "\n\n".join(tables)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_llama_decomposition_shows_spin_sync(benchmark, workload_matrix):
    from repro.bench.analysis import decompose
    breakdown = benchmark.pedantic(
        lambda: decompose(workload_matrix["llama.cpp"]["native"],
                          workload_matrix["llama.cpp"]["erebor"]),
        rounds=1, iterations=1)
    # the paper: llama's LibOS-only overhead (sync) is the outlier
    assert breakdown.by_mechanism["LibOS spin sync"] >= 0.03
    assert breakdown.by_mechanism["EMC gates"] > 0


def test_outputs_identical_across_settings(benchmark, workload_matrix):
    """The sandbox changes cost, never results."""
    data = benchmark.pedantic(lambda: workload_matrix, rounds=1, iterations=1)
    for name, runs in data.items():
        outputs = {setting: r.output for setting, r in runs.items()}
        assert len(set(outputs.values())) == 1, name
