"""§9.2 memory-sharing claim — Erebor vs unikernel-per-client footprints.

Regenerates both halves of the paper's claim: a *measured* footprint of N
real sandboxes sharing one common region on one CVM, and the paper-scale
llama arithmetic (8 clients, 4 GB model) reproducing the headline
"~36 GB -> ~8 GB, up to 89.1% saved".
"""

import pytest

from repro.apps.base import workload as make_workload
from repro.baselines.unikernel import (
    MemoryComparison,
    erebor_footprint,
    measured_erebor_footprint,
    paper_scale_comparison,
    unikernel_footprint,
)
from repro.bench.report import format_table, mib, pct
from repro.vm import MIB

CLIENTS = 8


@pytest.fixture(scope="module")
def measured():
    work = make_workload("llama.cpp", scale=0.25)
    confined, common = measured_erebor_footprint(work, CLIENTS)
    manifest = work.manifest()
    replicated = unikernel_footprint(
        CLIENTS, confined // CLIENTS, sum(s.size for s in manifest.common))
    shared = erebor_footprint(
        CLIENTS, confined // CLIENTS, sum(s.size for s in manifest.common))
    return confined, common, replicated, shared


def test_print_memory_table(benchmark, measured):
    confined, common, replicated, shared = measured
    paper = paper_scale_comparison(CLIENTS)

    def build():
        rows = [
            ["llama (sim scale, measured)", CLIENTS, mib(replicated),
             mib(shared), pct(1 - shared / replicated)],
            [paper.label, paper.clients, mib(paper.unikernel_bytes),
             mib(paper.erebor_bytes), pct(paper.reduction)],
        ]
        return format_table(
            "Memory: unikernel-per-client vs Erebor common sharing "
            "(paper: ~36GB -> ~8GB, up to 89.1% saved)",
            ["configuration", "clients", "unikernel", "erebor", "saved"],
            rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_common_region_stored_once(benchmark, measured):
    confined, common, _, _ = measured
    work = make_workload("llama.cpp", scale=0.25)
    expected_common = sum(s.size for s in work.manifest().common)
    got = benchmark.pedantic(lambda: common, rounds=1, iterations=1)
    assert got == expected_common      # one copy for all 8 sandboxes


def test_paper_scale_reduction_headline(benchmark):
    cmp = benchmark.pedantic(lambda: paper_scale_comparison(8),
                             rounds=1, iterations=1)
    # ~36GB -> ~8GB
    assert 34 * 1024 * MIB <= cmp.unikernel_bytes <= 38 * 1024 * MIB
    assert 7 * 1024 * MIB <= cmp.erebor_bytes <= 9 * 1024 * MIB
    assert 0.75 <= cmp.reduction <= 0.92   # paper: up to 89.1%


def test_reduction_grows_with_clients(benchmark):
    def reductions():
        out = []
        for n in (1, 2, 4, 8, 16):
            cmp = paper_scale_comparison(n)
            out.append(cmp.reduction)
        return out

    values = benchmark.pedantic(reductions, rounds=1, iterations=1)
    assert values == sorted(values)
    assert values[0] < 0.1 < values[-1]
