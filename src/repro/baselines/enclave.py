"""Enclave-style CVM baseline (Veil / NestedSGX; paper §3.3, Table 1).

These systems instantiate a privileged monitor via AMD VMPL partitioning
and carve out SGX-like *enclaves*: one-way isolation that stops the OS
from reading program memory (AV1), but deliberately keeps the syscall and
hypercall interfaces open — the enclave's code is trusted in their model.
Under Erebor's threat model the provider's program is the adversary, so
those open interfaces are the leak (AV2/AV3).

The baseline is modelled faithfully enough for the Table 1 matrix to be
*measured*, not asserted: enclave memory reads are blocked by a real
partition check, while an enclave program's ``write``/hypercall calls
genuinely deliver the secret to the host's observation log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.memory import PAGE_SIZE
from ..vm import CvmMachine, MachineConfig, MIB


class EnclaveAccessError(Exception):
    """OS attempted to read enclave-private memory (blocked by VMPL)."""


@dataclass
class Enclave:
    """One enclave partition: frames + an open syscall interface."""

    enclave_id: int
    frames: list[int]
    data: bytearray = field(default_factory=bytearray)

    def store_secret(self, secret: bytes) -> None:
        self.data = bytearray(secret)


class EnclaveBaselineSystem:
    """A Veil/NestedSGX-shaped deployment on one CVM.

    Deployment prerequisites (Table 1's right half): the VMPL-based
    monitor needs hypervisor scheduling support and, in paravisor
    deployments, paravisor cooperation — recorded as facts the bench
    reports alongside the measured protection columns.
    """

    requires_hypervisor_changes = True
    requires_paravisor_changes = True
    approach = "enclave"

    def __init__(self, name: str = "veil", machine: CvmMachine | None = None):
        self.name = name
        self.machine = machine or CvmMachine(MachineConfig(memory_bytes=256 * MIB))
        self.kernel = self.machine.boot_native_kernel()
        self._enclaves: dict[int, Enclave] = {}
        self._protected_frames: set[int] = set()
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # enclave lifecycle
    # ------------------------------------------------------------------ #

    def create_enclave(self, pages: int = 16) -> Enclave:
        frames = self.machine.phys.alloc_frames(pages, "enclave")
        enclave = Enclave(self._next_id, frames)
        self._next_id += 1
        self._enclaves[enclave.enclave_id] = enclave
        self._protected_frames.update(frames)
        return enclave

    # ------------------------------------------------------------------ #
    # the OS-side attack surface (AV1)
    # ------------------------------------------------------------------ #

    def os_read_memory(self, fn: int) -> bytes:
        """The untrusted OS reads a guest frame (VMPL check applies)."""
        if fn in self._protected_frames:
            raise EnclaveAccessError(
                f"frame {fn:#x} is enclave-private (lower VMPL)")
        return self.machine.phys.read(fn << 12, PAGE_SIZE)

    # ------------------------------------------------------------------ #
    # the program-side attack surface (AV2/AV3): interfaces stay open
    # ------------------------------------------------------------------ #

    def enclave_syscall_write(self, enclave: Enclave, path: str,
                              data: bytes) -> int:
        """OCALL-style file write: enclaves may talk to the OS."""
        task = self.kernel.spawn(f"enclave-{enclave.enclave_id}")
        fd = self.kernel.syscall(task, "open", path, create=True, write=True)
        written = self.kernel.syscall(task, "write", fd, data)
        self.kernel.syscall(task, "close", fd)
        # the filesystem is OS-controlled: the provider can read it out
        self.machine.vmm.observe("os_fs_file", data)
        return written

    def enclave_hypercall(self, enclave: Enclave, payload: bytes) -> None:
        """Enclave-initiated hypercall: data reaches the host verbatim."""
        from ..tdx.module import VMCALL_IO
        if self.machine.tdx is not None:
            self.machine.tdx.guest_vmcall(VMCALL_IO, payload)
        else:
            self.machine.vmm.observe("vmcall", (VMCALL_IO, payload))

    def enclave_covert_syscall_pattern(self, enclave: Enclave,
                                       secret: bytes) -> None:
        """AV3: encode the secret into syscall argument patterns."""
        task = self.kernel.spawn(f"enclave-{enclave.enclave_id}-covert")
        for bit_source in secret:
            # the argument value itself carries the data; the OS (provider-
            # controlled) simply records it
            self.kernel.syscall(task, "nanosleep", 1000 + bit_source)
            self.machine.vmm.observe("syscall_arg", bytes([bit_source]))
