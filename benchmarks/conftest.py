"""Shared fixtures for the benchmark suite.

The workload matrix (5 programs x 5 settings) is expensive, and both the
Fig. 9 and Table 6 benches consume it — so it is computed once per
session and cached here.
"""

import pytest

from repro.bench.runner import SETTINGS, WorkloadRunner

WORKLOADS = ("llama.cpp", "yolo", "drugbank", "graphchi", "unicorn")


@pytest.fixture(scope="session")
def workload_matrix():
    """{workload: {setting: RunResult}} for the full evaluation matrix."""
    runner = WorkloadRunner(scale=0.5)
    return {name: runner.run_all_settings(name) for name in WORKLOADS}
