"""Machine assembly: wire the simulated hardware into a bootable CVM.

:class:`CvmMachine` is the top of the substrate stack — physical memory,
cycle clock, host VMM, TDX module, attestation authority, one CPU core,
and a virtio NIC — everything the paper's testbed provides before any
guest software runs. Guests are booted onto it either natively
(:meth:`boot_native_kernel`) or under Erebor
(:func:`repro.core.boot.erebor_boot`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .hw.cpu import Cpu, CpuEnv
from .hw.cycles import CycleClock
from .hw.devices import DmaEngine, VirtualNic
from .hw.memory import PhysicalMemory
from .hw.platform import PlatformProfile, TDX, profile
from .hw.uintr import UintrFabric
from .kernel.kernel import GuestKernel, KernelConfig
from .tdx.attestation import AttestationAuthority
from .tdx.module import TdxModule
from .tdx.vmm import HostVmm

MIB = 1024 * 1024
GIB = 1024 * MIB


@dataclass
class MachineConfig:
    """Knobs mirroring the paper's CVM assignment (8 vCPU, 24 GB)."""

    memory_bytes: int = 4 * GIB          # scaled-down default; benches override
    vcpus: int = 8                        # modelled for thread-level parallelism
    hz: int = 1000
    td: bool = True                       # confidential (TDX) vs plain guest
    platform: str = "tdx"
    seed: int = 2025


class CvmMachine:
    """One simulated host + guest-VM hardware instance."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self.platform: PlatformProfile = profile(self.config.platform)
        self.rng = random.Random(self.config.seed)
        self.clock = CycleClock()
        self.phys = PhysicalMemory(self.config.memory_bytes)
        self.vmm = HostVmm(self.phys, self.clock)
        self.authority = AttestationAuthority()
        self.tdx: TdxModule | None = None
        if self.config.td:
            self.tdx = TdxModule(self.phys, self.clock, self.vmm, self.authority)
            self.vmm.shared_oracle = self.tdx
        self.uintr = UintrFabric()
        self.env = CpuEnv(tdx=self.tdx, uintr=self.uintr)
        self.cpu = Cpu(0, self.phys, self.clock, self.env)
        shared_oracle = self.tdx if self.tdx is not None else _AllShared()
        self.dma = DmaEngine(self.phys, shared_oracle)
        self.nic = VirtualNic(self.dma)
        self.kernel: GuestKernel | None = None

    def boot_native_kernel(self) -> GuestKernel:
        """Boot an unmodified kernel with direct privileged access."""
        kernel = GuestKernel(self.phys, self.clock, self.cpu, self.tdx,
                             config=KernelConfig(hz=self.config.hz))
        kernel.boot()
        self.vmm.interrupt_sink = lambda vector: kernel.pump()
        self.kernel = kernel
        return kernel


class _AllShared:
    """Non-TD guests have no private memory: DMA may touch anything."""

    def is_shared(self, fn: int) -> bool:
        return True
