"""Deterministic load generator and the top-level fleet driver.

:class:`LoadGenerator` derives every client identity, key seed, and
request payload from one integer seed (no wall-clock, no ambient RNG), so
two runs with the same parameters produce byte-identical
:class:`FleetReport` JSON — the property the determinism tests and the CI
smoke job pin with a digest comparison.

:func:`run_fleet` is the whole §9.2 story in one call: boot a CVM, cold
boot + seal a template, stand up a warm pool, push N attested clients ×
M requests through admission and the scheduler, and account cold vs fork
vs warm start cycles and per-client marginal memory against the
unikernel-per-client baseline.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from ..apps.base import workload as make_workload
from ..baselines.unikernel import UNIKERNEL_BASE_BYTES, unikernel_footprint
from ..core.boot import erebor_boot
from ..hw.cycles import CPU_FREQ_HZ
from ..obs.trace import gc_batched_recording
from ..vm import CvmMachine, MachineConfig, MIB
from .admission import AdmissionConfig, AdmissionController
from .pool import PoolConfig, WarmPool
from .scheduler import ClientSession, FleetScheduler
from .template import SandboxTemplate


class LoadGenerator:
    """Seeded client population: identities, payloads, per-client secrets."""

    def __init__(self, *, clients: int, requests: int, seed: int = 2025,
                 tenants: int = 2, filler_bytes: int = 24):
        self.clients = clients
        self.requests = requests
        self.seed = seed
        self.tenants = max(tenants, 1)
        self.filler_bytes = filler_bytes

    def sessions(self) -> list[ClientSession]:
        rng = random.Random(self.seed)
        out: list[ClientSession] = []
        for i in range(self.clients):
            secret = (f"client-{i}-secret-"
                      f"{rng.getrandbits(64):016x}").encode()
            payloads = [
                secret + b"|req-%d|" % j
                + bytes(rng.randrange(256) for _ in range(self.filler_bytes))
                for j in range(self.requests)
            ]
            out.append(ClientSession(
                name=f"client-{i}", tenant=f"tenant-{i % self.tenants}",
                seed=rng.randrange(1 << 30), payloads=payloads,
                secret=secret))
        return out


@dataclass
class FleetReport:
    """Everything one fleet run produced, JSON-able and seed-stable."""

    workload: str
    clients: int
    requests_per_client: int
    pool_size: int
    tenants: int
    seed: int
    scale: float
    cold_start_cycles: int
    fork_start_cycles: list[int]
    warm_start_cycles: list[int]
    counts: dict[str, int]
    outcomes: dict[str, int]
    requests_served: int
    serve_cycles: int
    total_cycles: int
    cow_breaks: int
    scrub_verifications: int
    template_bytes: int
    common_bytes: int
    marginal_bytes_mean: int
    marginal_bytes_max: int
    fleet_bytes: int
    unikernel_bytes: int
    sessions: list[dict] = field(default_factory=list)
    n_cpus: int = 1
    #: wall-clock cycles of the serve phase (max over cores); with one
    #: core this equals ``serve_cycles``, the serial total
    serve_wall_cycles: int = 0
    #: cycles each core spent executing fleet work during the run
    core_busy_cycles: list[int] = field(default_factory=list)
    #: autoscale outcome: grown / retired / peak / final slot counts
    pool_scaling: dict = field(default_factory=dict)
    #: tamper-evident audit chain head + length (see core.monitor)
    audit_head: str = ""
    audit_events: int = 0
    #: SLO / anomaly / flight-recorder summaries (empty = feature off)
    slo: dict = field(default_factory=dict)
    anomaly: dict = field(default_factory=dict)
    flight: dict = field(default_factory=dict)
    #: session name → request trace ID (reqtrace); rides OUTSIDE the
    #: digest preimage like the audit head: the IDs are deterministic
    #: (seed+name) but adding them to `_base_dict` would invalidate every
    #: historical pinned digest for zero information gain
    traces: dict = field(default_factory=dict)
    #: session name → certificate body hash (repro.certs); OUTSIDE the
    #: digest preimage for the same reason — issuance charges no cycles
    #: and the hashes are themselves derived from the run
    certs: dict = field(default_factory=dict)
    #: plane-attribution budget ledger (repro.obs.ledger): where every
    #: simulated cycle went, conservation-verified. OUTSIDE the digest
    #: preimage — capture reads the clock, never moves it
    ledger: dict = field(default_factory=dict)
    #: translation-cache effectiveness (TLB hit rate, superblock
    #: coverage): host-plane counters, metrics-only, never digested
    translation: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Requests per simulated wall-clock second (SMP-aware)."""
        wall = self.serve_wall_cycles or self.serve_cycles
        if wall <= 0:
            return 0.0
        return self.requests_served / (wall / CPU_FREQ_HZ)

    @property
    def requests_per_wall_kcycle(self) -> float:
        """Throughput in requests per 1000 wall cycles (scaling metric)."""
        wall = self.serve_wall_cycles or self.serve_cycles
        if wall <= 0:
            return 0.0
        return 1000.0 * self.requests_served / wall

    @property
    def memory_reduction(self) -> float:
        """Fraction of memory the fleet saves vs unikernel-per-client."""
        return 1.0 - self.fleet_bytes / self.unikernel_bytes

    def fork_speedup(self) -> float:
        """Cold boot+init cycles over the mean fork cost."""
        if not self.fork_start_cycles:
            return 0.0
        mean = sum(self.fork_start_cycles) / len(self.fork_start_cycles)
        return self.cold_start_cycles / mean

    def warm_speedup(self) -> float:
        if not self.warm_start_cycles:
            return 0.0
        mean = sum(self.warm_start_cycles) / len(self.warm_start_cycles)
        return self.cold_start_cycles / mean

    def to_dict(self) -> dict:
        out = self._base_dict()
        out["audit"] = {"head": self.audit_head, "events": self.audit_events}
        # observability planes appear only when enabled, so reports from
        # plain runs are byte-identical to pre-SLO-era ones
        if self.slo:
            out["slo"] = dict(self.slo)
        if self.anomaly:
            out["anomaly"] = dict(self.anomaly)
        if self.flight:
            out["flight"] = dict(self.flight)
        if self.traces:
            out["traces"] = dict(self.traces)
        if self.certs:
            out["certs"] = dict(self.certs)
        if self.ledger:
            out["ledger"] = dict(self.ledger)
        if self.translation:
            out["translation"] = dict(self.translation)
        return out

    def _base_dict(self) -> dict:
        return {
            "workload": self.workload, "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "pool_size": self.pool_size, "tenants": self.tenants,
            "seed": self.seed, "scale": self.scale,
            "cold_start_cycles": self.cold_start_cycles,
            "fork_start_cycles": self.fork_start_cycles,
            "warm_start_cycles": self.warm_start_cycles,
            "counts": dict(self.counts), "outcomes": dict(self.outcomes),
            "requests_served": self.requests_served,
            "serve_cycles": self.serve_cycles,
            "total_cycles": self.total_cycles,
            "throughput_rps": round(self.throughput_rps, 6),
            "cow_breaks": self.cow_breaks,
            "scrub_verifications": self.scrub_verifications,
            "template_bytes": self.template_bytes,
            "common_bytes": self.common_bytes,
            "marginal_bytes_mean": self.marginal_bytes_mean,
            "marginal_bytes_max": self.marginal_bytes_max,
            "fleet_bytes": self.fleet_bytes,
            "unikernel_bytes": self.unikernel_bytes,
            "memory_reduction": round(self.memory_reduction, 6),
            "n_cpus": self.n_cpus,
            "serve_wall_cycles": self.serve_wall_cycles,
            "core_busy_cycles": list(self.core_busy_cycles),
            "pool_scaling": dict(self.pool_scaling),
            "sessions": self.sessions,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def digest(self) -> str:
        """Stable fingerprint: identical seeds must produce identical runs.

        Hashes the execution-shaped sections only — the audit head is
        itself a fingerprint of the same run (chained over every audited
        decision), so it rides in ``to_dict()`` for verification but is
        excluded here to keep historical pinned digests valid.
        """
        canonical = json.dumps(self._base_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def run_fleet(*, workload: str = "llama.cpp", clients: int = 4,
              requests: int = 2, pool_size: int = 2, low_watermark: int = 1,
              tenants: int = 2, seed: int = 2025, scale: float = 0.1,
              n_cpus: int = 1, queue_depth: int | None = None,
              admission: AdmissionConfig | None = None,
              pool_config: PoolConfig | None = None,
              memory_bytes: int = 768 * MIB, cma_bytes: int = 256 * MIB,
              instrument=None, system=None, slo=None, anomaly=None,
              flight=None, certificates: bool = False,
              cert_dir=None, features=None,
              static_budget_admission: bool = False
              ) -> tuple[FleetReport, object]:
    """Run one multi-tenant fleet; returns ``(report, system)``.

    ``instrument`` is called with the freshly built machine before any
    cycle is charged (the ``repro.obs`` attach point); pass ``system`` to
    reuse an already-booted CVM instead. ``n_cpus`` spreads sessions over
    that many simulated cores (deterministic at any count); pass a full
    ``pool_config`` to turn on demand-driven pool autoscaling.

    ``slo`` (:class:`~repro.fleet.scheduler.SloConfig`) arms per-tenant
    latency objectives, ``anomaly``
    (:class:`~repro.fleet.scheduler.AnomalyConfig`) the EWMA exit/EMC
    detectors, and ``flight`` (:class:`~repro.obs.flight.FlightConfig`
    or ``True``) installs an always-on flight recorder that freezes a
    black-box dump on any trigger. All three read the cycle clock but
    never charge it, so enabling them cannot move a seeded digest.

    ``certificates`` issues one :mod:`repro.certs` execution certificate
    per admitted session after the fleet drains (arming a request tracer
    if none is installed); ``cert_dir`` additionally writes the batch —
    plus the ``published.json`` golden values — to a directory for
    offline verification, and implies ``certificates``. Issuance signs
    through the platform authority directly and charges zero simulated
    cycles, so seeded report digests are identical with it on or off.

    ``features`` (:class:`~repro.core.monitor.EreborFeatures`) is passed
    through to :func:`~repro.core.boot.erebor_boot` when this call boots
    its own system — e.g. ``translation_cache=False`` runs the fully
    interpreted simulator for A/B digest checks.

    ``static_budget_admission`` plugs the boot-time V10
    :class:`~repro.analysis.absint.StaticBudget` into the admission
    config (see :mod:`repro.fleet.admission`): every tenant's EMC quota
    is clamped to the image's proven per-request bound. Requires a
    dataflow-verified boot.
    """
    import repro.apps  # noqa: F401  (populates the workload registry)

    certificates = bool(certificates) or cert_dir is not None

    if system is None:
        machine = CvmMachine(MachineConfig(memory_bytes=memory_bytes,
                                           seed=seed))
        if instrument is not None:
            instrument(machine)
        if not machine.clock.metrics.enabled:
            from ..obs.metrics import MetricsRegistry
            machine.clock.metrics = MetricsRegistry()
        if flight and not machine.clock.tracer.enabled:
            from ..obs.flight import FlightConfig, FlightRecorder
            cfg = flight if isinstance(flight, FlightConfig) else None
            machine.clock.tracer = FlightRecorder(machine.clock, cfg)
        system = erebor_boot(machine, cma_bytes=cma_bytes,
                             features=features)
    clock = system.machine.clock

    # certificates attach the request's causal span tree: arm a tracer
    # before any fleet work if the caller didn't install one (reading
    # the clock only — arming never moves a seeded digest)
    if certificates and not clock.tracer.enabled:
        from ..obs.trace import Tracer
        clock.tracer = Tracer(clock, capacity=1 << 19)

    # an armed recorder retains one tuple per record; batch the host
    # collector for the duration so it doesn't rescan the ring hundreds
    # of times (host-only tuning — no simulated state is touched)
    with gc_batched_recording(clock.tracer.enabled):
        work = make_workload(workload, seed=seed, scale=scale)
        template = SandboxTemplate.capture(system, work)
        pool = WarmPool(system, template,
                        pool_config or PoolConfig(size=pool_size,
                                                  low_watermark=low_watermark))
        pool_size = len(pool.slots)
        config = admission or AdmissionConfig(
            queue_depth=queue_depth if queue_depth is not None else clients)
        if static_budget_admission:
            report = system.monitor.kernel_dataflow_report
            if report is None:
                raise ValueError(
                    "static_budget_admission requires a dataflow-verified "
                    "boot (EreborFeatures.dataflow_verifier)")
            config.static_budget = report.budget
        scheduler = FleetScheduler(system, pool, work,
                                   AdmissionController(config), n_cpus=n_cpus,
                                   slo=slo, anomaly=anomaly)
        sessions = LoadGenerator(clients=clients, requests=requests,
                                 seed=seed, tenants=tenants).sessions()

        serve_t0 = clock.cycles
        wall_t0 = clock.wall_cycles
        busy_t0 = [clock.cpu_busy(c) for c in range(scheduler.n_cpus)]
        cpu0 = system.machine.cpu
        tlb_t0, sb_t0 = cpu0.mmu.tlb_hits, cpu0.tcache.sb_exec
        finished = scheduler.run(sessions)
        serve_cycles = clock.cycles - serve_t0
        serve_wall_cycles = clock.wall_cycles - wall_t0
        # host-plane cache statistics: exported as metrics only, never
        # part of the report digest preimage
        if cpu0.mmu.tlb_hits > tlb_t0:
            clock.metrics.inc("erebor_sim_tlb_hits_total",
                              cpu0.mmu.tlb_hits - tlb_t0)
        if cpu0.tcache.sb_exec > sb_t0:
            clock.metrics.inc("erebor_sim_superblock_exec_total",
                              cpu0.tcache.sb_exec - sb_t0)
        core_busy = [clock.cpu_busy(c) - busy_t0[c]
                     for c in range(scheduler.n_cpus)]

    usage = system.monitor.phys.usage_by_owner()
    template_bytes = sum(v for k, v in usage.items()
                         if k.startswith("template:"))
    common_bytes = sum(v for k, v in usage.items()
                       if k.startswith("common:"))
    peaks = [s.private_bytes_peak for s in finished
             if s.outcome == "completed"]
    marginal_mean = int(sum(peaks) / len(peaks)) if peaks else 0
    marginal_max = max(peaks, default=0)
    # steady-state fleet: one shared guest image, one template, one common
    # copy, plus a private delta per concurrently-live instance
    fleet_bytes = (UNIKERNEL_BASE_BYTES + template_bytes + common_bytes
                   + pool_size * marginal_mean)
    unikernel_bytes = unikernel_footprint(pool_size,
                                          template.confined_bytes,
                                          common_bytes)

    outcomes: dict[str, int] = {}
    for s in finished:
        outcomes[s.outcome] = outcomes.get(s.outcome, 0) + 1
    report = FleetReport(
        workload=workload, clients=clients, requests_per_client=requests,
        pool_size=pool_size, tenants=tenants, seed=seed, scale=scale,
        cold_start_cycles=template.cold_start_cycles,
        fork_start_cycles=list(pool.fork_cycles),
        warm_start_cycles=list(pool.warm_reset_cycles),
        counts=dict(scheduler.counts), outcomes=outcomes,
        requests_served=scheduler.requests_served,
        serve_cycles=serve_cycles, total_cycles=clock.cycles,
        cow_breaks=clock.events.get("cow_break", 0),
        scrub_verifications=pool.scrub_verifications,
        template_bytes=template_bytes, common_bytes=common_bytes,
        marginal_bytes_mean=marginal_mean, marginal_bytes_max=marginal_max,
        fleet_bytes=fleet_bytes, unikernel_bytes=unikernel_bytes,
        sessions=[s.summary() for s in finished],
        n_cpus=scheduler.n_cpus, serve_wall_cycles=serve_wall_cycles,
        core_busy_cycles=core_busy,
        pool_scaling={"grown": pool.grown, "retired": pool.retired,
                      "peak": pool.peak_size, "final": len(pool.slots)},
        audit_head=system.monitor.audit_head,
        audit_events=system.monitor.audit_seq,
        slo=scheduler.slo.summary() if scheduler.slo else {},
        anomaly=scheduler.anomaly.summary() if scheduler.anomaly else {},
        # every submitted session minted an ID (even rejected ones), so
        # each report row resolves to its causal span tree by name
        traces={s.name: s.trace_id for s in finished if s.trace_id},
    )
    recorder = clock.tracer
    if getattr(recorder, "dumps", None) is not None:
        report.flight = {"triggers": recorder.triggers,
                         "dumps": len(recorder.dumps)}
    # plane-attribution budget + translation-cache effectiveness: both
    # read-only on the clock/counters, both outside the digest preimage
    from ..obs.ledger import capture_ledger
    report.ledger = capture_ledger(clock, system.machine)
    report.translation = report.ledger.get("translation", {})
    if certificates:
        from ..certs.issue import CertificateIssuer, write_certificates
        issuer = CertificateIssuer(system, workload=workload,
                                   fleet_seed=seed)
        certs = issuer.issue_all(finished, traces=report.traces)
        report.certs = {name: cert["body_sha256"]
                        for name, cert in certs.items()}
        system.fleet_certificates = certs
        if cert_dir is not None:
            write_certificates(certs, cert_dir)
    # postmortem handles: callers holding the system can inspect the
    # drained pool's slots (scrub state) and the admission decision log
    system.fleet_pool = pool
    system.fleet_scheduler = scheduler
    return report, system
