"""Count-based ratchet for grandfathered lint findings.

A ratchet entry ``"D4|repro/baselines/sfi.py": 1`` waives up to one D4
finding in that file — existing debt is tolerated, *new* debt is not, and
regenerating the file (``python -m repro.analysis lint --update-ratchet``)
can only shrink entries in CI review.  Determinism rule: within one
(rule, file) group the waiver applies to the lowest line numbers first,
so the same tree always yields the same kept/waived split.

Policy: D1 (wall-clock) and D2 (obs-read-only) findings are *never*
ratchetable — those two rules guard the determinism and calibration
invariants everything else is pinned against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: rules whose findings may never be grandfathered
UNRATCHETABLE = frozenset({"D1", "D2"})


def default_ratchet_path() -> Path:
    """The in-tree ratchet file shipped next to this module."""
    return Path(__file__).resolve().parent / "ratchet.json"


@dataclass
class Ratchet:
    """Allowed finding counts, keyed ``"RULE|path"``."""

    entries: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Ratchet":
        if not Path(path).exists():
            return cls()
        data = json.loads(Path(path).read_text())
        entries = {str(k): int(v) for k, v in data.items()}
        bad = sorted(k for k in entries if k.split("|", 1)[0]
                     in UNRATCHETABLE)
        if bad:
            raise ValueError(
                f"ratchet file {path} grandfathers unratchetable rules: "
                f"{', '.join(bad)} (D1/D2 findings must be fixed)")
        return cls(entries)

    def save(self, path: Path) -> None:
        Path(path).write_text(json.dumps(
            dict(sorted(self.entries.items())), indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings) -> "Ratchet":
        """Build the smallest ratchet waiving exactly ``findings``."""
        entries: dict[str, int] = {}
        for f in findings:
            if f.rule in UNRATCHETABLE:
                continue
            key = f"{f.rule}|{f.path}"
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)


def apply_ratchet(findings, ratchet: Ratchet):
    """Split findings into ``(kept, waived)`` under the ratchet budget."""
    budget = dict(ratchet.entries)
    kept, waived = [], []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = f"{f.rule}|{f.path}"
        if f.rule not in UNRATCHETABLE and budget.get(key, 0) > 0:
            budget[key] -= 1
            waived.append(f)
        else:
            kept.append(f)
    return kept, waived
