"""Erebor reproduction: drop-in CVM sandboxing on a simulated platform.

Reproduces *Erebor: A Drop-In Sandbox Solution for Private Data Processing
in Untrusted Confidential Virtual Machines* (EuroSys 2025) as a pure-Python
system: a simulated confidential-VM hardware platform (``repro.hw``,
``repro.tdx``), an untrusted guest kernel (``repro.kernel``), the Erebor
monitor/sandbox/channel (``repro.core``), a Gramine-like LibOS
(``repro.libos``), the evaluation's workloads (``repro.apps``), comparison
baselines (``repro.baselines``), the remote client (``repro.client``), and
the benchmark harness regenerating every table and figure (``repro.bench``
+ the ``benchmarks/`` directory).

Quickstart::

    from repro import CvmMachine, MachineConfig, erebor_boot
    from repro.core import SecureChannel, UntrustedProxy, published_measurement
    from repro.client import RemoteClient

    machine = CvmMachine(MachineConfig(memory_bytes=512 * 1024 * 1024))
    system = erebor_boot(machine, cma_bytes=64 * 1024 * 1024)
    sandbox = system.monitor.create_sandbox("svc", confined_budget=8 << 20)
    sandbox.declare_confined(1 << 20)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(UntrustedProxy(system.monitor),
                   SecureChannel(system.monitor, sandbox))

This ``__init__`` resolves its re-exports lazily (PEP 562): the offline
certificate verifier (``python -m repro.certs``) runs in a process that
imports ``repro`` purely as a namespace and must never load the hardware
simulator, so ``import repro`` on its own pulls in nothing.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = [
    "CvmMachine", "EreborFeatures", "EreborMonitor", "EreborSystem", "GIB",
    "MIB", "MachineConfig", "PolicyViolation", "Sandbox", "SandboxViolation",
    "erebor_boot", "published_measurement", "__version__",
]

#: lazy re-exports → (module, attribute); keeps ``import repro`` free of
#: the simulator so pure leaves (core.audit, tdx.attestation, certs) can
#: load in attestation-verifier processes
_LAZY = {
    "EreborSystem": ("core.boot", "EreborSystem"),
    "erebor_boot": ("core.boot", "erebor_boot"),
    "published_measurement": ("core.boot", "published_measurement"),
    "EreborFeatures": ("core.monitor", "EreborFeatures"),
    "EreborMonitor": ("core.monitor", "EreborMonitor"),
    "PolicyViolation": ("core.policy", "PolicyViolation"),
    "SandboxViolation": ("core.policy", "SandboxViolation"),
    "Sandbox": ("core.sandbox", "Sandbox"),
    "CvmMachine": ("vm", "CvmMachine"),
    "GIB": ("vm", "GIB"),
    "MIB": ("vm", "MIB"),
    "MachineConfig": ("vm", "MachineConfig"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
