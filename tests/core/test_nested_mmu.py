"""Nested MMU mapping-policy tests (C2/C3/C6/C7 memory side)."""

import pytest

from repro.core.nested_mmu import NestedMmu
from repro.core.policy import PolicyViolation
from repro.hw.cycles import CycleClock
from repro.hw.memory import PhysicalMemory
from repro.hw.paging import PTE_NX, PTE_P, PTE_U, PTE_W, AddressSpace, make_pte

MIB = 1024 * 1024


@pytest.fixture
def rig():
    phys = PhysicalMemory(128 * MIB)
    vmmu = NestedMmu(phys, CycleClock())
    kernel_as = AddressSpace(phys, "kernel")
    sandbox_as = AddressSpace(phys, "sandbox1")
    other_as = AddressSpace(phys, "other")
    vmmu.register_aspace(kernel_as)
    vmmu.register_sandbox(1, sandbox_as)
    vmmu.register_aspace(other_as)
    return phys, vmmu, kernel_as, sandbox_as, other_as


def test_unregistered_aspace_rejected(rig):
    phys, vmmu, *_ = rig
    rogue = AddressSpace(phys, "rogue")
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(rogue, 0x1000, make_pte(5, PTE_P))


def test_monitor_frames_unmappable(rig):
    phys, vmmu, kernel_as, *_ = rig
    fn = phys.alloc_frame("monitor")
    for flags in (PTE_P, PTE_P | PTE_W, PTE_P | PTE_U):
        with pytest.raises(PolicyViolation):
            vmmu.write_pte(kernel_as, 0x7000_0000, make_pte(fn, flags))


def test_page_table_frames_never_writable(rig):
    phys, vmmu, kernel_as, *_ = rig
    ptp = next(iter(kernel_as.table_frames))
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(kernel_as, 0x8000_0000, make_pte(ptp, PTE_P | PTE_W))
    # read-only aliasing of a PTP is tolerated (kernel may read its tables)
    vmmu.write_pte(kernel_as, 0x8000_0000, make_pte(ptp, PTE_P | PTE_NX))


def test_shadow_stack_frames_never_writable(rig):
    phys, vmmu, kernel_as, *_ = rig
    fn = phys.alloc_frame("monitor-ss")
    phys.frame(fn).is_shadow_stack = True
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(kernel_as, 0x8100_0000, make_pte(fn, PTE_P | PTE_W))


def test_kernel_text_wx(rig):
    phys, vmmu, kernel_as, *_ = rig
    fn = phys.alloc_frame("ktext")
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(kernel_as, 0x8200_0000, make_pte(fn, PTE_P | PTE_W))
    vmmu.write_pte(kernel_as, 0x8200_0000, make_pte(fn, PTE_P))  # X-only ok


def test_supervisor_wx_generally(rig):
    phys, vmmu, kernel_as, *_ = rig
    fn = phys.alloc_frame("kdata")
    with pytest.raises(PolicyViolation):
        # writable + executable supervisor page
        vmmu.write_pte(kernel_as, 0x8300_0000, make_pte(fn, PTE_P | PTE_W))
    vmmu.write_pte(kernel_as, 0x8300_0000, make_pte(fn, PTE_P | PTE_W | PTE_NX))


def test_confined_single_mapping(rig):
    phys, vmmu, kernel_as, sandbox_as, other_as = rig
    fn = phys.alloc_frame("sandbox:1")
    vmmu.declare_confined(1, [fn])
    pte = make_pte(fn, PTE_P | PTE_W | PTE_U | PTE_NX)
    vmmu.write_pte(sandbox_as, 0x40_0000, pte)
    # second mapping at a different VA: refused
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(sandbox_as, 0x50_0000, pte)
    # remap at the same VA (PTE update): allowed
    vmmu.write_pte(sandbox_as, 0x40_0000, pte)


def test_confined_frame_foreign_aspace_refused(rig):
    phys, vmmu, kernel_as, sandbox_as, other_as = rig
    fn = phys.alloc_frame("sandbox:1")
    vmmu.declare_confined(1, [fn])
    pte = make_pte(fn, PTE_P | PTE_U | PTE_NX)
    for aspace in (kernel_as, other_as):
        with pytest.raises(PolicyViolation):
            vmmu.write_pte(aspace, 0x40_0000, pte)


def test_confined_double_declare_refused(rig):
    phys, vmmu, *_ = rig
    fn = phys.alloc_frame("sandbox:1")
    vmmu.declare_confined(1, [fn])
    with pytest.raises(PolicyViolation):
        vmmu.declare_confined(2, [fn])


def test_release_confined_allows_redeclare(rig):
    phys, vmmu, *_ = rig
    fn = phys.alloc_frame("sandbox:1")
    vmmu.declare_confined(1, [fn])
    assert vmmu.release_confined(1) == [fn]
    vmmu.declare_confined(2, [fn])  # now legal


def test_unmap_clears_single_mapping_tracking(rig):
    phys, vmmu, _, sandbox_as, _ = rig
    fn = phys.alloc_frame("sandbox:1")
    vmmu.declare_confined(1, [fn])
    pte = make_pte(fn, PTE_P | PTE_U | PTE_NX)
    vmmu.write_pte(sandbox_as, 0x40_0000, pte)
    vmmu.write_pte(sandbox_as, 0x40_0000, 0)   # unmap
    vmmu.write_pte(sandbox_as, 0x50_0000, pte)  # can map elsewhere now


def test_common_region_lifecycle(rig):
    phys, vmmu, _, sandbox_as, other_as = rig
    frames = phys.alloc_frames(4, "tmp")
    vmmu.create_common_region("model", frames, initializer=1)
    w_pte = make_pte(frames[0], PTE_P | PTE_W | PTE_U | PTE_NX)
    r_pte = make_pte(frames[0], PTE_P | PTE_U | PTE_NX)
    vmmu.write_pte(sandbox_as, 0x40_0000, w_pte)   # init window: writable ok
    rewritten = vmmu.seal_common_region("model")
    assert rewritten == 1
    # after sealing: no new writable mappings anywhere
    with pytest.raises(PolicyViolation):
        vmmu.write_pte(other_as, 0x40_0000, w_pte)
    vmmu.write_pte(other_as, 0x40_0000, r_pte)
    # the pre-existing mapping lost its W bit
    _, pte = sandbox_as.translate(0x40_0000)
    assert not pte & PTE_W


def test_duplicate_common_region_refused(rig):
    phys, vmmu, *_ = rig
    frames = phys.alloc_frames(1, "tmp")
    vmmu.create_common_region("db", frames, None)
    with pytest.raises(PolicyViolation):
        vmmu.create_common_region("db", frames, None)
