"""Comparison systems: enclave-style (Veil/NestedSGX) and unikernel-per-client."""

from .enclave import Enclave, EnclaveAccessError, EnclaveBaselineSystem
from .sfi import (
    SfiRegion,
    SfiVerifyError,
    sfi_instrument,
    sfi_overhead,
    sfi_verify,
)
from .unikernel import (
    GIB,
    MemoryComparison,
    UNIKERNEL_BASE_BYTES,
    erebor_footprint,
    measured_erebor_footprint,
    paper_scale_comparison,
    unikernel_footprint,
)

__all__ = [
    "Enclave", "EnclaveAccessError", "EnclaveBaselineSystem", "GIB",
    "MemoryComparison", "UNIKERNEL_BASE_BYTES", "erebor_footprint",
    "measured_erebor_footprint", "paper_scale_comparison",
    "SfiRegion", "SfiVerifyError", "sfi_instrument", "sfi_overhead",
    "sfi_verify", "unikernel_footprint",
]
