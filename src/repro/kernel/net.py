"""Kernel network stack: loopback sockets and the external NIC path.

Two transports, matching the evaluation's two traffic patterns:

* **loopback** — kernel-internal message queues between tasks on the same
  CVM (the Fig. 10 client/server rigs, the proxy↔kernel hop);
* **external** — packets leaving the CVM: data is staged into *shared*
  guest memory and handed to the virtio NIC by a GHCI hypercall; each
  doorbell costs a #VE + tdcall round trip and everything crossing it is
  observable by the host (the secure-channel tests rely on this).

The stack charges per-segment costs so server throughput (Fig. 10)
degrades with Erebor's system-wide interposition exactly the way the
paper measures: small files pay proportionally more transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..hw.cycles import Cost
from ..hw.memory import PAGE_SIZE, pages_for

if TYPE_CHECKING:
    from .kernel import GuestKernel

#: Model MTU: one doorbell moves up to this many bytes of payload.
SEGMENT_BYTES = 16 * 1024
#: per-segment in-kernel protocol work (checksum, queues), cycles
SEGMENT_PROTO_COST = 2600


class NetError(Exception):
    """Socket misuse (bad endpoint, closed peer, ...)."""


@dataclass
class Socket:
    """One endpoint of a loopback stream."""

    port: int
    rx: list[bytes] = field(default_factory=list)
    peer: "Socket | None" = None
    closed: bool = False


class NetStack:
    """Per-kernel network state."""

    def __init__(self, kernel: "GuestKernel"):
        self.kernel = kernel
        self.listeners: dict[int, Socket] = {}
        #: log of (direction, nbytes) external transfers, for tests
        self.external_log: list[tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    # loopback streams
    # ------------------------------------------------------------------ #

    def listen(self, port: int) -> Socket:
        if port in self.listeners:
            raise NetError(f"port {port} already bound")
        sock = Socket(port)
        self.listeners[port] = sock
        return sock

    def connect(self, port: int) -> Socket:
        server = self.listeners.get(port)
        if server is None:
            raise NetError(f"connection refused on port {port}")
        client = Socket(port)
        # model an accepted per-connection endpoint pair
        conn = Socket(port)
        client.peer, conn.peer = conn, client
        server.rx.append(conn)  # pending-accept queue entry
        return client

    def accept(self, server: Socket) -> Socket:
        if not server.rx:
            raise NetError("no pending connection")
        return server.rx.pop(0)

    def send(self, sock: Socket, data: bytes = b"", *,
             nbytes: int | None = None, kernel_internal: bool = False) -> int:
        """Loopback send: charges segmented protocol work on the kernel.

        ``nbytes`` sends a size-only payload (benchmark bulk data without
        materialising bytes). ``kernel_internal`` models sendfile-style
        transmission straight from the page cache: the kernel copies pages
        internally but never crosses the user boundary (no ``stac`` /
        monitor-emulated copy involved).
        """
        if sock.peer is None or sock.peer.closed:
            raise NetError("send on unconnected/closed socket")
        size = nbytes if nbytes is not None else len(data)
        clock = self.kernel.clock
        segments = max(1, (size + SEGMENT_BYTES - 1) // SEGMENT_BYTES)
        clock.charge(segments * SEGMENT_PROTO_COST, "net")
        if kernel_internal:
            pages = max(pages_for(size), 1)
            clock.charge(pages * Cost.COPY_PER_PAGE_NATIVE, "net")
        else:
            # data crosses the user/kernel boundary on both sides
            self.kernel.ops.user_copy(size, to_user=False)
            self.kernel.ops.user_copy(size, to_user=True)
        sock.peer.rx.append(data if nbytes is None else b"\x00" * min(size, 64))
        clock.count("net_segments", segments)
        return size

    def recv(self, sock: Socket) -> bytes:
        if not sock.rx:
            return b""
        return sock.rx.pop(0)

    def close(self, sock: Socket) -> None:
        sock.closed = True
        if sock.peer is not None:
            sock.peer.closed = True

    # ------------------------------------------------------------------ #
    # external path (via shared memory + GHCI doorbell)
    # ------------------------------------------------------------------ #

    def external_send(self, data: bytes) -> None:
        """Transmit off-CVM: stage into shared memory, ring the doorbell.

        Charges a #VE + vmcall per segment and gives the host the bytes
        (observed via the NIC). The caller is responsible for having
        encrypted anything secret — the host sees this verbatim.
        """
        kernel = self.kernel
        for off in range(0, max(len(data), 1), SEGMENT_BYTES):
            segment = data[off:off + SEGMENT_BYTES]
            kernel.clock.charge(Cost.EXC_DELIVERY + Cost.IRET, "ve")
            kernel.clock.count("ve")
            kernel.raise_ve_interposition()
            from ..tdx.module import VMCALL_IO
            kernel.ops.vmcall(VMCALL_IO, segment)
            self.external_log.append(("tx", len(segment)))

    def external_receive(self, nbytes: int) -> bytes:
        """Host-injected inbound data (already staged in shared memory)."""
        kernel = self.kernel
        segments = max(1, pages_for(nbytes) * PAGE_SIZE // SEGMENT_BYTES or 1)
        kernel.clock.charge(segments * (Cost.EXC_DELIVERY + Cost.IRET), "ve")
        kernel.clock.count("ve", segments)
        self.external_log.append(("rx", nbytes))
        return b""
