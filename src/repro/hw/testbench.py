"""Micro-machine builder: a minimal bootable core for gate and attack code.

Security tests, the calibration benchmarks, and the attack demos all need
the same scaffolding — a physical memory, one core, an address space with
code/data/stack regions, and a way to load ISA programs. This module keeps
that in one place so tests read as scenarios, not plumbing.
"""

from __future__ import annotations

from . import regs
from .cpu import Cpu, CpuEnv, Idt
from .cycles import CycleClock
from .errors import InvalidOpcode
from .isa import Instr, assemble
from .memory import PAGE_SIZE, PhysicalMemory, pages_for
from .mmu import KERNEL_MODE, USER_MODE
from .paging import PTE_NX, PTE_P, PTE_U, PTE_W, AddressSpace

# Default layout for micro programs
USER_CODE_VA = 0x0040_0000
USER_DATA_VA = 0x0080_0000
USER_STACK_TOP = 0x00F0_0000
KERNEL_CODE_VA = 0x60_0000_0000
KERNEL_DATA_VA = 0x60_4000_0000
KERNEL_STACK_TOP = 0x60_8000_0000
MONITOR_CODE_VA = 0x70_0000_0000
IDT_VA = 0x60_A000_0000
#: dedicated interrupt (IST) stack, disjoint from task kernel stacks so
#: gate register spills can never clobber an interrupted stack frame
IST_STACK_TOP = 0x60_B000_0000


class MicroMachine:
    """One core + one address space with conventional regions."""

    def __init__(self, phys_bytes: int = 64 * 1024 * 1024, *, tdx=None, uintr=None):
        self.phys = PhysicalMemory(phys_bytes)
        self.clock = CycleClock()
        self.env = CpuEnv(tdx=tdx, uintr=uintr)
        self.cpu = Cpu(0, self.phys, self.clock, self.env)
        self.aspace = AddressSpace(self.phys, "micro")
        self.env.aspace_by_root[self.aspace.root_fn] = self.aspace
        self.cpu.crs[3] = self.aspace.root_fn
        # default protections on: SMEP, SMAP, PKS
        self.cpu.crs[4] |= regs.CR4_SMEP | regs.CR4_SMAP | regs.CR4_PKS
        self._map_region(KERNEL_STACK_TOP - 4 * PAGE_SIZE, 4, PTE_P | PTE_W, "kernel")
        self._map_region(USER_STACK_TOP - 4 * PAGE_SIZE, 4, PTE_P | PTE_W | PTE_U, "user")
        self.cpu.regs["rsp"] = KERNEL_STACK_TOP - 64

    # ------------------------------------------------------------------ #

    def _map_region(self, va: int, pages: int, flags: int, owner: str,
                    pkey: int = 0) -> None:
        for i in range(pages):
            fn = self.phys.alloc_frame(owner)
            self.phys.frame(fn).materialize()
            self.aspace.map_page(va + i * PAGE_SIZE, fn, flags, pkey)

    def load_code(self, va: int, program: list[Instr] | bytes, *,
                  user: bool = False, owner: str | None = None, pkey: int = 0) -> int:
        """Assemble (if needed) and map ``program`` at ``va``; returns its size."""
        blob = program if isinstance(program, bytes) else assemble(program)
        flags = PTE_P | (PTE_U if user else 0)
        self._map_region(va, max(pages_for(len(blob)), 1), flags,
                         owner or ("user" if user else "kernel"), pkey)
        self.write_phys(va, blob)
        if self.cpu.tcache.enabled:
            # Pre-translate the image's basic blocks (best effort: attack
            # corpora load deliberately undecodable bytes, which simply
            # stay on the interpreted path).
            try:
                self.cpu.tcache.preload(self.aspace, va, blob)
            except InvalidOpcode:
                pass
        return len(blob)

    def map_data(self, va: int, pages: int = 1, *, user: bool = False,
                 writable: bool = True, pkey: int = 0, owner: str | None = None) -> None:
        flags = PTE_P | PTE_NX | (PTE_W if writable else 0) | (PTE_U if user else 0)
        self._map_region(va, pages, flags, owner or ("user" if user else "kernel"), pkey)

    def write_phys(self, va: int, data: bytes) -> None:
        """Write through the translation without permission checks (loader)."""
        off = 0
        while off < len(data):
            hit = self.aspace.translate(va + off)
            if hit is None:
                raise RuntimeError(f"loader: {va + off:#x} unmapped")
            pa, _ = hit
            chunk = min(len(data) - off, PAGE_SIZE - (pa & (PAGE_SIZE - 1)))
            self.phys.write(pa, data[off:off + chunk])
            off += chunk

    def install_idt(self, vectors: dict[int, int] | None = None,
                    py_handlers: dict[int, object] | None = None) -> Idt:
        """Create and immediately activate an IDT (bypassing lidt).

        Interrupts run on a dedicated IST stack (mapped here), mirroring
        x86-64 IST semantics: delivery never pushes onto the interrupted
        context's stack.
        """
        if self.aspace.translate(IST_STACK_TOP - PAGE_SIZE) is None:
            self._map_region(IST_STACK_TOP - 4 * PAGE_SIZE, 4,
                             PTE_P | PTE_W, "kernel")
        idt = Idt(IDT_VA, kernel_stack_top=IST_STACK_TOP - 8)
        for vector, handler_va in (vectors or {}).items():
            idt.set_vector(vector, handler_va)
        for vector, fn in (py_handlers or {}).items():
            idt.set_vector(vector, 0, py_handler=fn)
        self.env.idt_tables[IDT_VA] = idt
        self.cpu.idt = idt
        return idt

    def run_user(self, code_va: int = USER_CODE_VA, max_steps: int = 10_000,
                 deliver_faults: bool = False) -> int:
        self.cpu.mode = USER_MODE
        self.cpu.rip = code_va
        self.cpu.regs["rsp"] = USER_STACK_TOP - 64
        return self.cpu.run(max_steps, deliver_faults=deliver_faults)

    def run_kernel(self, code_va: int = KERNEL_CODE_VA, max_steps: int = 10_000,
                   deliver_faults: bool = False) -> int:
        self.cpu.mode = KERNEL_MODE
        self.cpu.rip = code_va
        return self.cpu.run(max_steps, deliver_faults=deliver_faults)
