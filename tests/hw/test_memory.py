"""Unit tests for simulated physical memory."""

import pytest

from repro.hw.memory import PAGE_SIZE, PhysicalMemory, page_align_down, page_align_up, pages_for


@pytest.fixture
def phys():
    return PhysicalMemory(64 * 1024 * 1024)  # 64 MiB


def test_alignment_helpers():
    assert page_align_down(0x1234) == 0x1000
    assert page_align_up(0x1234) == 0x2000
    assert page_align_up(0x1000) == 0x1000
    assert pages_for(1) == 1
    assert pages_for(PAGE_SIZE) == 1
    assert pages_for(PAGE_SIZE + 1) == 2
    assert pages_for(0) == 0


def test_frames_are_lazy(phys):
    f = phys.frame(5)
    assert f.data is None
    assert phys.read(5 * PAGE_SIZE, 16) == b"\x00" * 16  # still lazy
    assert phys.frame(5).data is None
    phys.write(5 * PAGE_SIZE + 8, b"hi")
    assert phys.frame(5).data is not None
    assert phys.read(5 * PAGE_SIZE + 8, 2) == b"hi"


def test_cross_page_read_write(phys):
    addr = 3 * PAGE_SIZE - 4
    phys.write(addr, b"abcdefgh")
    assert phys.read(addr, 8) == b"abcdefgh"
    assert phys.read(3 * PAGE_SIZE, 4) == b"efgh"


def test_u64_roundtrip(phys):
    phys.write_u64(0x2000, 0xDEADBEEFCAFEBABE)
    assert phys.read_u64(0x2000) == 0xDEADBEEFCAFEBABE


def test_alloc_assigns_owner_and_skips_used(phys):
    a = phys.alloc_frame("kernel")
    b = phys.alloc_frame("monitor")
    assert a != b
    assert phys.frame(a).owner == "kernel"
    assert phys.frame(b).owner == "monitor"
    assert a in phys.owned_by("kernel")


def test_alloc_contiguous(phys):
    phys.alloc_frames(3, "x")
    got = phys.alloc_frames(4, "y", contiguous=True)
    assert got == list(range(got[0], got[0] + 4))


def test_free_makes_frames_reusable(phys):
    fns = phys.alloc_frames(10, "tmp")
    phys.free_frames(fns)
    again = phys.alloc_frames(10, "tmp2")
    assert set(again) & set(fns), "freed frames should be reused"


def test_free_clears_contents_flags(phys):
    fn = phys.alloc_frame("tmp")
    phys.write(fn * PAGE_SIZE, b"secret")
    phys.frame(fn).is_shadow_stack = True
    phys.free_frames([fn])
    assert phys.frame(fn).data is None
    assert not phys.frame(fn).is_shadow_stack
    assert phys.frame(fn).owner == "free"


def test_out_of_memory(phys):
    with pytest.raises(MemoryError):
        phys.alloc_frames(phys.num_frames + 1, "too-much")


def test_frame_bounds(phys):
    from repro.hw.errors import SimulatorError
    with pytest.raises(SimulatorError):
        phys.frame(phys.num_frames)


def test_usage_by_owner(phys):
    phys.alloc_frames(4, "kernel")
    phys.alloc_frames(2, "monitor")
    usage = phys.usage_by_owner()
    assert usage["kernel"] == 4 * PAGE_SIZE
    assert usage["monitor"] == 2 * PAGE_SIZE


def test_zero_frame(phys):
    fn = phys.alloc_frame("tmp")
    phys.write(fn * PAGE_SIZE, b"x" * 32)
    phys.zero_frame(fn)
    assert phys.read(fn * PAGE_SIZE, 32) == b"\x00" * 32
