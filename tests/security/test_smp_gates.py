"""SMP gate security: per-CPU secure stacks and per-core permissions.

The paper's gates are explicitly per-logical-core: the entry gate
switches to "the monitor's per-core stack" and PKRS is "the IA32_PKRS MSR
of the current core". These tests run EMCs on multiple simulated cores of
one machine and check the per-core isolation that design buys.
"""

import pytest

from repro.core.emc import EmcCall, MONITOR_DATA_VA
from repro.core.gates import PKRS_KERNEL, percpu_base, PERCPU_STACK_OFFSET
from repro.core.microrig import STACK_STRIDE, GateRig
from repro.hw import regs
from repro.hw.cycles import Cost
from repro.hw.errors import PageFault


@pytest.fixture
def rig():
    return GateRig(n_cpus=3)


def test_emc_cost_identical_on_every_core(rig):
    for cpu in rig.cpus:
        assert rig.run_emc(int(EmcCall.NOP), cpu=cpu) == Cost.EMC_ROUND_TRIP


def test_each_core_has_its_own_secure_stack(rig):
    """Gate stack switches land on distinct per-core stacks."""
    tops = []
    for cpu_id in range(3):
        slot = percpu_base(cpu_id) + PERCPU_STACK_OFFSET
        hit = rig.machine.aspace.translate(slot)
        tops.append(rig.machine.phys.read_u64(hit[0]))
    assert len(set(tops)) == 3
    assert tops[0] - tops[1] == STACK_STRIDE


def test_emc_on_one_core_does_not_open_others(rig):
    """Mid-EMC on CPU 1, CPU 0's rights stay closed: the grant is per-core."""
    cpu1 = rig.cpus[1]
    stub = rig.caller_stub(int(EmcCall.NOP))
    caller = 0x60_0000_0000 + 0x20000
    rig.machine.load_code(caller, stub)
    cpu1.mode = "kernel"
    cpu1.rip = caller
    for _ in range(200):
        if cpu1.step().op == "wrmsr":
            break
    assert cpu1.msrs[regs.IA32_PKRS] == 0            # cpu1: open (in gate)
    cpu0 = rig.cpus[0]
    assert cpu0.msrs[regs.IA32_PKRS] == PKRS_KERNEL  # cpu0: still closed
    # and cpu0 genuinely cannot touch monitor memory right now
    from repro.hw.isa import I
    rig.machine.load_code(0x60_0000_0000 + 0x30000, [
        I("movi", "rbx", imm=MONITOR_DATA_VA),
        I("load", "rax", "rbx"),
        I("hlt"),
    ])
    cpu0.mode = "kernel"
    cpu0.rip = 0x60_0000_0000 + 0x30000
    with pytest.raises(PageFault) as exc:
        cpu0.run(max_steps=10, deliver_faults=False)
    assert exc.value.pkey_violation
    # cpu1 finishes its EMC cleanly afterwards
    cpu1.run(max_steps=10_000)
    assert cpu1.msrs[regs.IA32_PKRS] == PKRS_KERNEL


def test_concurrent_emcs_use_disjoint_stacks(rig):
    """Interleaved EMCs on two cores never share stack memory."""
    cpu0, cpu1 = rig.cpus[0], rig.cpus[1]
    stubs = {}
    for cpu, base in ((cpu0, 0x60_0000_0000 + 0x40000),
                      (cpu1, 0x60_0000_0000 + 0x50000)):
        rig.machine.load_code(base, rig.caller_stub(int(EmcCall.WRITE_MSR),
                                                    rsi=0x700 + cpu.cpu_id,
                                                    rdx=cpu.cpu_id + 1))
        cpu.mode = "kernel"
        cpu.rip = base
    # lock-step interleave both cores through their EMCs
    sps = {0: set(), 1: set()}
    done = {0: False, 1: False}
    from repro.hw.cpu import CpuHalt
    for _ in range(400):
        for cpu in (cpu0, cpu1):
            if done[cpu.cpu_id]:
                continue
            try:
                cpu.step()
            except CpuHalt:
                done[cpu.cpu_id] = True
                continue
            sp = cpu.regs["rsp"]
            if 0x70_0000_0000 <= sp:          # on a monitor stack
                sps[cpu.cpu_id].add(sp & ~(STACK_STRIDE - 1))
        if all(done.values()):
            break
    assert all(done.values())
    assert not (sps[0] & sps[1]), "cores shared a secure stack region!"
    assert cpu0.msrs[0x700] == 1
    assert cpu1.msrs[0x701] == 2


def test_per_core_gs_bases_point_into_monitor_memory(rig):
    for cpu_id, cpu in enumerate(rig.cpus):
        assert cpu.msrs[regs.IA32_GS_BASE] == MONITOR_DATA_VA + cpu_id * 0x1000
