"""Thunk-shape templates derived from the instrumentation pass itself.

The verifier's V3 ("gate-provenance") and V7 ("thunk-liveness") checks need
to recognize the thunks :mod:`repro.kernel.instrument` emits.  Rather than
hard-coding the shapes here — which would silently drift the moment the
pass changes — we *derive* templates at import time by asking the pass for
two representative thunks per sensitive mnemonic
(:func:`repro.kernel.instrument.thunk_shape`) and diffing them: fields that
agree between the two variants are structural and must match exactly;
fields that differ are per-call-site operands and become wildcards.

A matched call site is decomposed by :func:`parse_gate_call_site` into
``pushes / body / gate icall / pops / ret`` so the liveness check can
reason about the save bracket separately from the marshalling body.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..hw.isa import Instr
from ..kernel.instrument import thunk_shape

#: sentinel gate VA used only for template derivation (stripped before use)
_DERIVE_GATE_VA = 0x7_F00D_0000


@dataclass(frozen=True)
class TemplateSlot:
    """One marshalling-body instruction with per-field wildcard flags."""

    op: str
    dst: str | int | None
    src: str | None
    imm: int
    src_fixed: bool
    imm_fixed: bool

    def matches(self, instr: Instr) -> bool:
        if instr.op != self.op or instr.dst != self.dst:
            return False
        if self.src_fixed and instr.src != self.src:
            return False
        if self.imm_fixed and instr.imm != self.imm:
            return False
        return True


@dataclass(frozen=True)
class ThunkTemplate:
    """The recognizable shape of one sensitive mnemonic's thunk."""

    op: str                          # sensitive mnemonic this thunk serves
    call_number: int                 # EMC call number marshalled into rdi
    body: tuple[TemplateSlot, ...]   # marshalling body (no save bracket)
    saves: tuple[str, ...]           # registers the current pass brackets

    def matches_body(self, instrs: list[Instr]) -> bool:
        return len(instrs) == len(self.body) and all(
            slot.matches(instr) for slot, instr in zip(self.body, instrs))


@dataclass
class GateCallSite:
    """A decomposed ``icall``-to-the-entry-gate site.

    ``start_index`` is the index of the first instruction belonging to the
    site (its first ``push``, or the first body instruction when there is
    no save bracket); ``icall_index`` is the index of the ``icall`` itself.
    """

    start_index: int
    icall_index: int
    pushes: list[str]
    body: list[Instr]
    pops: list[str]
    ret_ok: bool

    @property
    def written(self) -> list[str]:
        """Registers the site overwrites, in first-write order."""
        regs: list[str] = []
        for instr in self.body:
            if isinstance(instr.dst, str) and instr.dst not in regs:
                regs.append(instr.dst)
        if "rax" not in regs:
            regs.append("rax")       # the gate pointer always lands in rax
        return regs

    @property
    def saved(self) -> set[str]:
        """Registers correctly bracketed by matching push/pop pairs."""
        if self.pops != list(reversed(self.pushes)):
            return set()
        return set(self.pushes)

    @property
    def clobbered(self) -> list[str]:
        """Registers written but not restored before the ``ret``."""
        saved = self.saved
        return [r for r in self.written if r not in saved]


def _strip(thunk: list[Instr]) -> tuple[list[str], list[Instr], list[str]]:
    """Split a generated thunk into (pushes, body, pops).

    The tail is always ``movi rax, gate; icall rax; [pops...]; ret`` —
    anything else means the pass changed shape in a way this module does
    not understand, which must fail loudly, not fuzzily.
    """
    i = 0
    pushes: list[str] = []
    while i < len(thunk) and thunk[i].op == "push":
        pushes.append(thunk[i].dst)
        i += 1
    if thunk[-1].op != "ret":
        raise ValueError("thunk does not end in ret")
    j = len(thunk) - 2
    pops: list[str] = []
    while j >= 0 and thunk[j].op == "pop":
        pops.insert(0, thunk[j].dst)
        j -= 1
    if j < 1 or thunk[j].op != "icall" or thunk[j - 1].op != "movi" or \
            thunk[j - 1].dst != thunk[j].dst or \
            thunk[j - 1].imm != _DERIVE_GATE_VA:
        raise ValueError("thunk gate tail has unexpected shape")
    return pushes, thunk[i:j - 1], pops


@lru_cache(maxsize=1)
def thunk_templates() -> dict[str, ThunkTemplate]:
    """Derive one :class:`ThunkTemplate` per sensitive mnemonic."""
    from ..hw.isa import SENSITIVE_NAMES

    templates: dict[str, ThunkTemplate] = {}
    for _, op in sorted(SENSITIVE_NAMES.items()):
        a = thunk_shape(op, gate_va=_DERIVE_GATE_VA, variant=0)
        b = thunk_shape(op, gate_va=_DERIVE_GATE_VA, variant=1)
        pushes_a, body_a, _ = _strip(a)
        pushes_b, body_b, _ = _strip(b)
        if len(body_a) != len(body_b):
            raise ValueError(f"{op}: representative thunks disagree on "
                             "body length")
        slots = []
        for x, y in zip(body_a, body_b):
            if x.op != y.op or x.dst != y.dst:
                raise ValueError(f"{op}: representative thunks disagree on "
                                 "body structure")
            slots.append(TemplateSlot(
                op=x.op, dst=x.dst, src=x.src, imm=x.imm,
                src_fixed=x.src == y.src, imm_fixed=x.imm == y.imm))
        if not (slots and slots[0].op == "movi" and slots[0].dst == "rdi"
                and slots[0].imm_fixed):
            raise ValueError(f"{op}: thunk body does not start with a "
                             "fixed EMC call number in rdi")
        # the save bracket may legitimately differ per variant only if the
        # bodies write different registers — ours never do
        if pushes_a != pushes_b:
            raise ValueError(f"{op}: representative thunks disagree on "
                             "save bracket")
        templates[op] = ThunkTemplate(
            op=op, call_number=slots[0].imm, body=tuple(slots),
            saves=tuple(pushes_a))
    return templates


def parse_gate_call_site(instrs: list[Instr], icall_index: int,
                         gate_va: int) -> GateCallSite:
    """Decompose the code around an ``icall`` whose target is ``gate_va``.

    Walks back from the ``icall`` through the ``movi rX, gate`` that feeds
    it, then through any run of ``mov``/``movi`` marshalling writes, then
    through any ``push`` prefix; walks forward through any ``pop`` run to
    the ``ret``.  Works on arbitrary code — a site that is *not* a real
    thunk simply yields an empty/odd decomposition that no template
    matches.
    """
    i = icall_index
    j = i - 1                                  # the movi feeding the icall
    body_end = j
    k = body_end - 1
    while k >= 0 and instrs[k].op in ("mov", "movi"):
        k -= 1
    body_start = k + 1
    pushes: list[str] = []
    while k >= 0 and instrs[k].op == "push":
        pushes.insert(0, instrs[k].dst)
        k -= 1
    start = k + 1
    pops: list[str] = []
    m = i + 1
    while m < len(instrs) and instrs[m].op == "pop":
        pops.append(instrs[m].dst)
        m += 1
    ret_ok = m < len(instrs) and instrs[m].op == "ret"
    return GateCallSite(
        start_index=start, icall_index=i, pushes=pushes,
        body=list(instrs[body_start:body_end]), pops=pops, ret_ok=ret_ok)
