"""Fleet scheduler: attested sessions interleaved across N simulated cores.

Each admitted session is a *real* Erebor session — ephemeral-DH
handshake, quote verification against the published measurement, sealed
records through the untrusted proxy — bound to one pool slot and placed
on one logical CPU by a least-loaded policy. Every scheduling round
interleaves one request per active session, core by core: all the work a
request triggers (gate transitions, EMC validation, CoW faults, channel
crypto, scrub-on-release) is charged to the executing core's cycle
counter, so sessions on different cores overlap on the machine's wall
clock and fleet throughput scales with ``n_cpus``. Commit order is
core-ordered (core 0's sessions first, then core 1's, ...), which keeps
seeded runs byte-identical at any core count; ordering within a core is
placement order, and the wait queue drains FIFO.

Quota enforcement has two halves: admission (pre-slot, in
:mod:`repro.fleet.admission`, charged against each tenant's *actual*
private CoW footprint, not the template's virtual size) and the post-hoc
EMC allowance — a request that drives more EMC gate invocations than its
tenant's ``max_emc_per_request`` gets the session *evicted*: the sandbox
is killed (which scrubs it), the slot replaced by a fresh fork. EMC use
is metered from the executing core's private event ledger, so concurrent
sessions never race on a shared counter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..client import RemoteClient
from ..core.boot import published_measurement
from ..core.channel import SecureChannel, UntrustedProxy
from ..core.mitigations import MitigationConfig
from ..obs.metrics import EwmaDetector, WindowedHistogram
from ..obs.reqtrace import mint_trace_id
from .admission import AdmissionController, Decision
from .pool import PoolSlot, WarmPool


@dataclass
class ClientSession:
    """One client's workload: identity, secrets, and progress."""

    name: str
    tenant: str
    seed: int
    payloads: list[bytes]
    #: distinctive plaintext the scrub verifier scans frames for
    secret: bytes = b""
    outcome: str | None = None    # completed | rejected | evicted
    reason: str = ""
    served: int = 0
    start_kind: str = ""
    start_cycles: int = 0
    session_cycles: int = 0
    emc_used: int = 0
    private_bytes_peak: int = 0
    core: int = -1                # logical CPU the session is placed on
    responses: list[bytes] = field(default_factory=list)
    slot: PoolSlot | None = None
    channel: SecureChannel | None = None
    client: RemoteClient | None = None
    _t0: int = 0
    #: serial-clock cycle the session was submitted (SLO queue-wait base)
    submit_cycle: int = 0
    #: deterministic request trace ID minted at admission (reqtrace).
    #: Deliberately NOT part of :meth:`summary`: the report digest
    #: preimage must stay byte-identical whether tracing is armed or not,
    #: so IDs ride in ``FleetReport.to_dict()["traces"]`` outside it.
    trace_id: str = ""
    #: execution-certificate evidence anchors (repro.certs). Like
    #: ``trace_id``, none of these enter :meth:`summary`: certificates
    #: ride outside the report digest preimage.
    sandbox_id: int = -1
    #: monitor audit-chain window covering the session's lifetime
    #: (``[seq_start, seq_end)``; start is snapshotted at submission,
    #: end + committed head at slot release, after the scrub audit)
    audit_seq_start: int = 0
    audit_seq_end: int = 0
    audit_head_end: str = ""
    #: the pool's C8 scrub record returned by ``WarmPool.release``
    scrub_record: dict | None = None

    def summary(self) -> dict:
        return {
            "name": self.name, "tenant": self.tenant,
            "outcome": self.outcome, "reason": self.reason,
            "served": self.served, "start_kind": self.start_kind,
            "start_cycles": self.start_cycles,
            "session_cycles": self.session_cycles,
            "emc_used": self.emc_used,
            "private_bytes_peak": self.private_bytes_peak,
            "core": self.core,
        }


@dataclass
class SloConfig:
    """Per-tenant latency objectives in simulated cycles (None = no SLO).

    ``queue_wait`` and ``service`` are judged at p95, ``e2e`` (submit to
    finish, queue included) at p99, each over a cycle-time sliding
    window, so a transient spike inside one window can breach while a
    long-gone cold start cannot.
    """

    queue_wait_p95: int | None = None
    service_p95: int | None = None
    e2e_p99: int | None = None
    window_cycles: int = 2_000_000
    windows: int = 4
    #: quantiles are meaningless over a couple of samples; hold fire
    min_samples: int = 4


class SloMonitor:
    """Watches per-tenant latency percentiles; emits breach events.

    Keeps its own deterministic :class:`WindowedHistogram` per
    ``(tenant, metric)`` (and mirrors every sample into the metrics
    registry's windowed series for export). The first breach of each
    ``(tenant, metric)`` pair raises a trace event, bumps the breach
    counter, and fires the flight-recorder trigger; later samples keep
    counting but don't re-dump.
    """

    #: metric → (config attribute, quantile, label)
    RULES = {
        "queue_wait": ("queue_wait_p95", 0.95, "p95"),
        "service": ("service_p95", 0.95, "p95"),
        "e2e": ("e2e_p99", 0.99, "p99"),
    }

    def __init__(self, clock, config: SloConfig):
        self.clock = clock
        self.config = config
        self.hists: dict[tuple[str, str], WindowedHistogram] = {}
        self.breaches: list[dict] = []
        self._breached: set[tuple[str, str]] = set()
        self.samples = 0
        clock.metrics.describe_window(
            "erebor_fleet_latency_cycles",
            "Per-tenant fleet latency (windowed, cycles)",
            window_cycles=config.window_cycles, windows=config.windows)

    def observe(self, tenant: str, metric: str, value: int) -> None:
        cycle = self.clock.cycles
        self.samples += 1
        key = (tenant, metric)
        hist = self.hists.get(key)
        if hist is None:
            hist = self.hists[key] = WindowedHistogram(
                self.config.window_cycles, self.config.windows)
        hist.observe(value, cycle)
        self.clock.metrics.observe_window(
            "erebor_fleet_latency_cycles", value, cycle,
            tenant=tenant, metric=metric)
        attr, q, label = self.RULES[metric]
        threshold = getattr(self.config, attr)
        if threshold is None or hist.count < self.config.min_samples:
            return
        observed = hist.quantile(q, cycle)
        if observed is None or observed <= threshold:
            return
        self.clock.metrics.inc("erebor_fleet_slo_breaches_total",
                               tenant=tenant, metric=metric)
        # the request whose sample crossed the line is the exemplar: the
        # on-call flow resolves it to a full causal span tree (reqtrace)
        trace_id = self.clock.tracer.current_trace or ""
        self.clock.metrics.exemplar("erebor_fleet_slo_breaches_total",
                                    trace_id, tenant=tenant, metric=metric)
        if key in self._breached:
            return
        self._breached.add(key)
        breach = {"tenant": tenant, "metric": metric, "quantile": label,
                  "observed": observed, "threshold": threshold,
                  "cycle": cycle, "trace_id": trace_id}
        self.breaches.append(breach)
        self.clock.tracer.event("slo:breach", "slo", tenant=tenant,
                                metric=metric, quantile=label,
                                observed=observed, threshold=threshold)
        self.clock.tracer.trigger(
            "slo_breach",
            f"{tenant}/{metric} {label}={observed} > {threshold}"
            + (f" [trace {trace_id}]" if trace_id else ""))

    def summary(self) -> dict:
        return {"samples": self.samples,
                "breaches": [dict(b) for b in self.breaches]}


@dataclass
class AnomalyConfig:
    """EWMA anomaly detection over per-request exit/EMC rates."""

    alpha: float = 0.3
    threshold: float = 3.0
    min_samples: int = 4
    #: arm the offending tenant's §12 knobs on its first alert
    arm: bool = True
    #: the knobs armed (per tenant, via the monitor's mitigation router)
    mitigation: MitigationConfig = field(
        default_factory=lambda: MitigationConfig(
            flush_on_exit=True, exit_rate_limit_per_sec=2000))


class AnomalyMonitor:
    """Per-tenant EWMA baselines over exit and EMC rates.

    Every served request feeds two detectors keyed by tenant — sandbox
    exits per request and EMCs per request. A sample far above a
    tenant's own baseline raises an alert and (when configured) arms
    that tenant's §12 mitigation knobs through the monitor's
    :class:`~repro.core.mitigations.TenantMitigationRouter` — the
    ROADMAP side-channel-budget item's sensing layer. Other tenants keep
    the default (usually absent) engine, so their cycle accounting never
    pays for a noisy neighbour.
    """

    METRICS = ("exit_rate", "emc_rate")

    def __init__(self, clock, monitor, config: AnomalyConfig):
        self.clock = clock
        self.monitor = monitor
        self.config = config
        self.detectors: dict[tuple[str, str], EwmaDetector] = {}
        self.alerts: list[dict] = []
        self.armed: list[str] = []

    def observe_request(self, tenant: str, *, exits: int, emc: int) -> None:
        for metric, value in (("exit_rate", exits), ("emc_rate", emc)):
            key = (tenant, metric)
            det = self.detectors.get(key)
            if det is None:
                det = self.detectors[key] = EwmaDetector(
                    self.config.alpha, self.config.threshold,
                    self.config.min_samples)
            if det.update(value):
                self._alert(tenant, metric, value, det)

    def _alert(self, tenant: str, metric: str, value: int,
               det: EwmaDetector) -> None:
        self.alerts.append({"tenant": tenant, "metric": metric,
                            "value": value,
                            "baseline": round(det.mean, 6),
                            "cycle": self.clock.cycles})
        self.clock.tracer.event("anomaly:alert", "anomaly",
                                tenant=tenant, metric=metric, value=value,
                                baseline=round(det.mean, 6))
        self.clock.metrics.inc("erebor_fleet_anomalies_total",
                               tenant=tenant, metric=metric)
        if self.config.arm and tenant not in self.armed:
            router = self.monitor.mitigation_router()
            router.arm(tenant, self.config.mitigation)
            self.armed.append(tenant)
            self.clock.tracer.event("anomaly:arm", "anomaly",
                                    tenant=tenant, metric=metric)
            self.monitor.audit(
                "anomaly", f"armed §12 mitigations for tenant {tenant} "
                f"({metric}={value} vs baseline {det.mean:.1f})")

    def summary(self) -> dict:
        return {"alerts": [dict(a) for a in self.alerts],
                "armed": list(self.armed)}


class FleetScheduler:
    """Drives N sessions through M pool slots over ``n_cpus`` cores."""

    def __init__(self, system, pool: WarmPool, work,
                 controller: AdmissionController | None = None,
                 *, n_cpus: int = 1, slo: SloConfig | None = None,
                 anomaly: AnomalyConfig | None = None):
        self.system = system
        self.monitor = system.monitor
        self.kernel = system.kernel
        self.clock = system.machine.clock
        self.pool = pool
        self.work = work
        self.controller = controller or AdmissionController()
        self.proxy = UntrustedProxy(self.monitor)
        self.n_cpus = max(1, n_cpus)
        self.clock.ensure_cpus(self.n_cpus)
        self.clock.metrics.describe(
            "erebor_fleet_core_busy_cycles",
            "Cycles each logical CPU spent executing fleet work")
        self.queue: deque[ClientSession] = deque()
        self.active: list[ClientSession] = []
        #: placement: sessions currently running on each logical CPU
        self.cores: list[list[ClientSession]] = [
            [] for _ in range(self.n_cpus)]
        self.finished: list[ClientSession] = []
        self.requests_served = 0
        self.rounds = 0
        self.counts = {"admit": 0, "queue": 0, "reject": 0, "evict": 0}
        #: per-tenant SLO / anomaly planes (None = feature off: no
        #: histograms allocated, no extra metrics series, digests frozen)
        self.slo = SloMonitor(self.clock, slo) if slo else None
        self.anomaly = (AnomalyMonitor(self.clock, self.monitor, anomaly)
                        if anomaly else None)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _active_by_tenant(self) -> dict[str, tuple[int, int]]:
        """Tenant -> (live sessions, *actual* private bytes in use).

        Memory quotas charge what a slot really holds — the CoW pages the
        session dirtied (plus pinned confined frames) — not the
        template's full virtual image, so a read-mostly tenant is not
        billed for pages it physically shares with the template.
        """
        per: dict[str, tuple[int, int]] = {}
        for s in self.active:
            n, b = per.get(s.tenant, (0, 0))
            per[s.tenant] = (n + 1, b + s.slot.instance.private_bytes)
        return per

    def submit(self, session: ClientSession) -> Decision:
        """Route one session: admit to a slot, queue it, or turn it away.

        Admission is where the session's request trace ID is minted —
        deterministically, from the session's seed and name, whether or
        not a tracer is armed — and bound over the decision, so the
        causal tree starts at the very first thing that happened to the
        request.
        """
        session.submit_cycle = self.clock.cycles
        session.audit_seq_start = self.monitor.audit_seq
        if not session.trace_id:
            session.trace_id = mint_trace_id(session.seed, session.name)
        with self.clock.tracer.bind(session.trace_id):
            with self.clock.tracer.span("fleet:admit", "fleet",
                                        session=session.name,
                                        tenant=session.tenant):
                decision = self.controller.decide(
                    session.tenant,
                    requested_bytes=self.pool.template.confined_bytes,
                    active=self._active_by_tenant(),
                    queued=len(self.queue),
                    free_slots=len(self.pool.free_slots()),
                    trace_id=session.trace_id)
            self.counts[decision.action] = \
                self.counts.get(decision.action, 0) + 1
            metrics = self.clock.metrics
            metrics.inc("erebor_fleet_admissions_total",
                        action=decision.action, tenant=session.tenant)
            self.clock.tracer.event(f"fleet:{decision.action}", "fleet",
                                    session=session.name,
                                    tenant=session.tenant,
                                    reason=decision.reason)
            if decision.action == "admit":
                self._start(session)
            elif decision.action == "queue":
                session.reason = decision.reason
                self.queue.append(session)
                metrics.set_gauge("erebor_fleet_queue_depth",
                                  len(self.queue))
            else:
                self._reject(session, decision.reason)
        return decision

    def _reject(self, session: ClientSession, reason: str) -> None:
        session.outcome = "rejected"
        session.reason = reason
        self.finished.append(session)
        self.clock.metrics.inc("erebor_fleet_sessions_total",
                               tenant=session.tenant, outcome="rejected")
        self.clock.metrics.inc("erebor_fleet_rejections_total",
                               tenant=session.tenant, reason=reason)

    def _place(self) -> int:
        """Least-loaded core: fewest live sessions, then the core whose
        cycle counter trails, then lowest id (deterministic tie-break)."""
        return min(
            range(self.n_cpus),
            key=lambda c: (len(self.cores[c]), self.clock.cpu_cycles(c), c))

    def _start(self, session: ClientSession) -> None:
        with self.clock.tracer.bind(session.trace_id or None):
            self._start_bound(session)

    def _start_bound(self, session: ClientSession) -> None:
        slot = self.pool.acquire()
        assert slot is not None, "admission admitted with no free slot"
        core = self._place()
        session.slot = slot
        session.core = core
        session.start_kind = slot.instance.start_kind
        session.start_cycles = slot.instance.start_cycles
        session._t0 = self.clock.cycles
        # the sandbox carries its tenant so per-tenant mitigation routing
        # (and any future tenant-keyed policy) can see it on the exit path
        slot.instance.sandbox.tenant = session.tenant
        # ... and the request trace context, so channel-side records and
        # the AEAD trace binding see it; scrub-on-release clears it (C8)
        slot.instance.sandbox.trace_context = session.trace_id or None
        session.sandbox_id = slot.instance.sandbox.sandbox_id
        self.monitor.audit(
            "admit", f"session {session.name} (tenant {session.tenant}) "
            f"bound to sandbox #{session.sandbox_id} core {core}")
        if self.slo is not None:
            self.slo.observe(session.tenant, "queue_wait",
                             self.clock.cycles - session.submit_cycle)
        # causality: this session only became runnable *now* (its slot
        # freed / the admission round happened at the current wall), so
        # a trailing core idles forward before doing the bring-up —
        # otherwise queued work would start in the placed core's past
        # and the wall clock would undercount queue waits
        self.clock.fast_forward(core)
        # session bring-up (channel handshake, quote verification) runs
        # on the placed core, concurrent with other cores' traffic
        with self.clock.on_cpu(core):
            channel = SecureChannel(self.monitor, slot.instance.sandbox)
            client = RemoteClient(self.system.machine.authority,
                                  published_measurement(), seed=session.seed)
            # both ends of the sealed channel authenticate the same trace
            # context (AEAD associated data): a mismatch fails open()
            client.trace_context = session.trace_id or None
            client.connect(self.proxy, channel)
        session.channel, session.client = channel, client
        self.active.append(session)
        self.cores[core].append(session)
        self.clock.tracer.event("fleet:session_start", "fleet",
                                session=session.name,
                                sandbox=slot.instance.sandbox.sandbox_id,
                                start_kind=session.start_kind, core=core)

    # ------------------------------------------------------------------ #
    # the request rounds
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One scheduling round: every active session serves one request.

        Cores commit in id order and each core serves its sessions in
        placement order — a fixed interleaving, so seeded runs stay
        byte-identical no matter how the wall clock advances.
        """
        self.rounds += 1
        for core in range(self.n_cpus):
            for session in list(self.cores[core]):
                self._step_session(session)
        if self.pool.config.autoscale:
            grown = self.pool.autoscale(len(self.queue))
            if grown:
                self._drain_queue()

    def _step_session(self, session: ClientSession) -> None:
        with self.clock.tracer.bind(session.trace_id or None):
            self._step_session_bound(session)

    def _step_session_bound(self, session: ClientSession) -> None:
        instance = session.slot.instance
        payload = session.payloads[session.served]
        core = session.core
        t0 = self.clock.cycles
        emc0 = self.clock.cpu_events(core).get("emc", 0)
        exits0 = self.clock.cpu_events(core).get("sandbox_exit", 0)
        with self.clock.tracer.span("fleet:request", "fleet",
                                    session=session.name,
                                    tenant=session.tenant,
                                    index=session.served, core=core):
            with self.clock.on_cpu(core):
                session.client.request(self.proxy, session.channel, payload)
                self.kernel.current = instance.libos.task
                request = instance.runtime.recv_input()
                output = self.work.serve(instance.runtime, request)
                blob = session.client.fetch_result(self.proxy,
                                                   session.channel)
        if blob != output:
            raise RuntimeError(f"response mismatch for {session.name}")
        session.responses.append(output)
        session.served += 1
        self.requests_served += 1
        self.monitor.audit(
            "response", f"session {session.name} request "
            f"{session.served}/{len(session.payloads)} "
            f"({len(output)} B) via sandbox #{instance.sandbox.sandbox_id}")
        # EMC metering reads the executing core's private event ledger,
        # so concurrent cores never contend on one shared counter
        request_emc = self.clock.cpu_events(core).get("emc", 0) - emc0
        request_exits = (self.clock.cpu_events(core).get("sandbox_exit", 0)
                         - exits0)
        session.emc_used += request_emc
        self.clock.metrics.inc("erebor_fleet_requests_total",
                               tenant=session.tenant)
        if self.slo is not None:
            self.slo.observe(session.tenant, "service",
                             self.clock.cycles - t0)
        if self.anomaly is not None:
            self.anomaly.observe_request(session.tenant,
                                         exits=request_exits,
                                         emc=request_emc)
        quota = self.controller.quota_for(session.tenant)
        if request_emc > quota.max_emc_per_request:
            self._evict(session, request_emc)
        elif session.served == len(session.payloads):
            self._finish(session, "completed")

    # ------------------------------------------------------------------ #
    # completion paths
    # ------------------------------------------------------------------ #

    def _finalize(self, session: ClientSession, outcome: str) -> None:
        session.outcome = outcome
        session.session_cycles = self.clock.cycles - session._t0
        session.private_bytes_peak = session.slot.instance.private_bytes
        if self.slo is not None:
            self.slo.observe(session.tenant, "e2e",
                             self.clock.cycles - session.submit_cycle)
        self.active.remove(session)
        self.cores[session.core].remove(session)
        self.finished.append(session)
        self.clock.metrics.inc("erebor_fleet_sessions_total",
                               tenant=session.tenant, outcome=outcome)
        self.clock.metrics.observe("erebor_fleet_session_cycles",
                                   session.session_cycles, outcome=outcome)

    def _evict(self, session: ClientSession, request_emc: int) -> None:
        """Post-hoc EMC-rate enforcement: kill the sandbox, drop the slot."""
        self.counts["evict"] += 1
        session.reason = "emc-quota"
        sandbox = session.slot.instance.sandbox
        self._finalize(session, "evicted")
        self.clock.tracer.event("fleet:evict", "fleet",
                                session=session.name, tenant=session.tenant,
                                emc=request_emc)
        self.clock.metrics.inc("erebor_fleet_evictions_total",
                               tenant=session.tenant)
        with self.clock.on_cpu(session.core):
            sandbox.kill(f"tenant {session.tenant} exceeded EMC allowance "
                         f"({request_emc} per request)")
            # dead slot: replaced by a fork; the kill path scrubbed it
            record = self.pool.release(session.slot)
        self._seal_evidence(session, record)
        self._drain_queue()

    def _finish(self, session: ClientSession, outcome: str) -> None:
        self._finalize(session, outcome)
        self.clock.tracer.event("fleet:session_end", "fleet",
                                session=session.name, outcome=outcome)
        # the scrub + verify on release is the departing session's cost:
        # it runs on the core that served it
        with self.clock.on_cpu(session.core):
            record = self.pool.release(
                session.slot,
                patterns=[session.secret, *session.payloads,
                          *session.responses])
        self._seal_evidence(session, record)
        self._drain_queue()

    def _seal_evidence(self, session: ClientSession, record: dict) -> None:
        """Snapshot the closing session's certificate evidence anchors.

        Taken right after the slot released — the scrub's own audit
        event has committed, so ``audit_head_end`` covers the full
        admit → … → scrub (or kill) arc and the audit window
        ``[audit_seq_start, audit_seq_end)`` is closed.
        """
        session.scrub_record = record
        session.audit_seq_end = self.monitor.audit_seq
        session.audit_head_end = self.monitor.audit_head

    def _drain_queue(self) -> None:
        """FIFO re-admission after slots free up: one single-pass sweep.

        Each waiting session is popped once, re-decided, and either
        started or parked on the survivors list (order preserved). The
        sweep visits every session at most once per drain — O(queue) —
        instead of rescanning the whole list after every admission.

        Drains run inside the *finishing* session's trace binding
        (``_finish``/``_evict`` call here), so the sweep first clears the
        context — a dequeued session's bring-up must never inherit the
        departing request's trace ID — then rebinds per session.
        """
        with self.clock.tracer.bind(None):
            if self.queue and self.pool.free_slots():
                survivors: deque[ClientSession] = deque()
                while self.queue:
                    session = self.queue.popleft()
                    if not self.pool.free_slots():
                        survivors.append(session)
                        continue
                    decision = self.controller.decide(
                        session.tenant,
                        requested_bytes=self.pool.template.confined_bytes,
                        active=self._active_by_tenant(),
                        queued=0,             # already queued: re-admission
                        free_slots=len(self.pool.free_slots()),
                        trace_id=session.trace_id)
                    if decision.action == "admit":
                        with self.clock.tracer.bind(session.trace_id
                                                    or None):
                            self.clock.tracer.event("fleet:dequeue", "fleet",
                                                    session=session.name)
                        self._start(session)
                    else:
                        survivors.append(session)
                self.queue = survivors
            self.clock.metrics.set_gauge("erebor_fleet_queue_depth",
                                         len(self.queue))

    # ------------------------------------------------------------------ #
    # top-level drive
    # ------------------------------------------------------------------ #

    def _core_gauges(self) -> None:
        for core in range(self.n_cpus):
            self.clock.metrics.set_gauge("erebor_fleet_core_busy_cycles",
                                         self.clock.cpu_busy(core),
                                         core=str(core))

    def run(self, sessions: list[ClientSession]) -> list[ClientSession]:
        """Submit everything, then run rounds until the fleet drains."""
        for session in sessions:
            self.submit(session)
        while self.active:
            self.step()
        # anything still queued can never be unblocked (no session left
        # to release a slot): reject deterministically rather than hang
        while self.queue:
            self._reject(self.queue.popleft(), "starved")
        self.clock.metrics.set_gauge("erebor_fleet_queue_depth", 0)
        self._core_gauges()
        return self.finished
