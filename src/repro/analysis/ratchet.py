"""Count-based ratchet for grandfathered lint findings.

A ratchet entry ``"D4|repro/baselines/sfi.py": 1`` waives up to one D4
finding in that file — existing debt is tolerated, *new* debt is not, and
regenerating the file (``python -m repro.analysis lint --update``, alias
``--update-ratchet``) can only shrink entries in CI review.  Entries are
keyed per rule *and* per file, so one grandfathered finding in one module
never buys slack anywhere else: a new finding in a previously-clean file
fails CI even when the same rule is ratcheted elsewhere.  Determinism
rules: the file is written with stable sorted keys, and within one
(rule, file) group the waiver applies to the lowest line numbers first,
so the same tree always yields the same kept/waived split and the same
bytes on disk.

An entry may also carry a rationale —
``"D4|...": {"count": 1, "rationale": "legacy SFI shim"}`` — which
``--update`` preserves across regenerations, so the *why* of each piece
of grandfathered debt survives count churn.

Policy: D1 (wall-clock) and D2 (obs-read-only) findings are *never*
ratchetable — those two rules guard the determinism and calibration
invariants everything else is pinned against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: rules whose findings may never be grandfathered
UNRATCHETABLE = frozenset({"D1", "D2"})


def default_ratchet_path() -> Path:
    """The in-tree ratchet file shipped next to this module."""
    return Path(__file__).resolve().parent / "ratchet.json"


@dataclass
class Ratchet:
    """Allowed finding counts, keyed ``"RULE|path"``.

    ``rationales`` holds the optional per-entry justification text; it
    never affects which findings are waived, only how the file reads.
    """

    entries: dict[str, int] = field(default_factory=dict)
    rationales: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Ratchet":
        if not Path(path).exists():
            return cls()
        data = json.loads(Path(path).read_text())
        entries: dict[str, int] = {}
        rationales: dict[str, str] = {}
        for key, value in data.items():
            key = str(key)
            if isinstance(value, dict):
                entries[key] = int(value["count"])
                rationale = str(value.get("rationale", ""))
                if rationale:
                    rationales[key] = rationale
            else:
                entries[key] = int(value)
        bad = sorted(k for k in entries if k.split("|", 1)[0]
                     in UNRATCHETABLE)
        if bad:
            raise ValueError(
                f"ratchet file {path} grandfathers unratchetable rules: "
                f"{', '.join(bad)} (D1/D2 findings must be fixed)")
        return cls(entries, rationales)

    def save(self, path: Path) -> None:
        payload: dict = {}
        for key in sorted(self.entries):
            rationale = self.rationales.get(key, "")
            payload[key] = ({"count": self.entries[key],
                             "rationale": rationale} if rationale
                            else self.entries[key])
        Path(path).write_text(json.dumps(payload, indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def from_findings(cls, findings, previous: "Ratchet | None" = None
                      ) -> "Ratchet":
        """Build the smallest ratchet waiving exactly ``findings``.

        Rationales from ``previous`` are carried over for keys that
        still have debt (``--update`` regeneration keeps the why).
        """
        entries: dict[str, int] = {}
        for f in findings:
            if f.rule in UNRATCHETABLE:
                continue
            key = f"{f.rule}|{f.path}"
            entries[key] = entries.get(key, 0) + 1
        rationales = {}
        if previous is not None:
            rationales = {k: v for k, v in previous.rationales.items()
                          if k in entries}
        return cls(entries, rationales)


def apply_ratchet(findings, ratchet: Ratchet):
    """Split findings into ``(kept, waived)`` under the ratchet budget."""
    budget = dict(ratchet.entries)
    kept, waived = [], []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        key = f"{f.rule}|{f.path}"
        if f.rule not in UNRATCHETABLE and budget.get(key, 0) > 0:
            budget[key] -= 1
            waived.append(f)
        else:
            kept.append(f)
    return kept, waived
