"""Seeded attack images: kernels the byte scan accepts but the CFG rejects.

Each builder packages a small malicious ``.text`` as a SELF image that
contains *no* sensitive byte sequence — Erebor's §5.1 scan passes it —
yet violates a structural property only :class:`repro.analysis.verifier.
StaticVerifier` can see.  One attack per check ID keeps failures
attributable; the CLI self-check and ``tests/security`` both consume
:func:`attack_corpus`.

Two extra builders cover the ERIM-style *unaligned* sensitive sequences
(a ``0xF0 + sub-opcode`` pair hidden inside an immediate, and one
spanning two adjacent instructions).  Those are caught by the byte scan
itself — they exist to pin the scan's every-byte-offset property and the
verifier's V6 reporting of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emc_abi import ENTRY_GATE_VA, EmcCall
from ..hw.isa import INSTR_SIZE, I, assemble
from ..kernel.image import (
    KERNEL_TEXT_VA,
    SEC_EXEC,
    SEC_SENSITIVE,
    SEC_WRITE,
    Section,
    SelfImage,
)

_VA = KERNEL_TEXT_VA

#: where the dataflow attacks stash their private bytes (any non-exec
#: VA works; the V8 taint domain keys on the SEC_SENSITIVE flag)
_SECRET_VA = _VA + 0x2000_0000


@dataclass(frozen=True)
class AttackImage:
    """One adversarial kernel image with its expected verdict."""

    name: str
    image: SelfImage
    expected_check: str      # the CHECKS id that must reject it
    passes_byte_scan: bool
    description: str


def _image(name: str, instrs, *, flags: int = SEC_EXEC,
           entry: int = _VA) -> SelfImage:
    return SelfImage(name, entry, [
        Section(".text", _VA, assemble(instrs), flags),
        Section(".data", _VA + 0x4000_0000, b"\x00" * 64, SEC_WRITE),
    ])


def rogue_gate_icall() -> AttackImage:
    """Non-thunk code icalls the entry gate — a forged EMC request."""
    instrs = [
        I("push", "rax"),
        I("movi", "rax", imm=ENTRY_GATE_VA),
        I("icall", "rax"),
        I("pop", "rax"),
        I("ret"),
    ]
    return AttackImage(
        "rogue-gate-icall", _image("rogue-gate-icall", instrs), "V3", True,
        "icall of the entry-gate VA with no instrumentation marshalling "
        "body: the kernel forges an EMC with attacker-controlled "
        "registers")


def non_endbr_indirect() -> AttackImage:
    """Statically-known indirect branch to a non-endbr landing pad."""
    instrs = [
        I("movi", "rbx", imm=_VA + 3 * INSTR_SIZE),
        I("icall", "rbx"),
        I("ret"),
        I("nop"),            # the landing pad: not an endbr
        I("ret"),
    ]
    return AttackImage(
        "non-endbr-indirect", _image("non-endbr-indirect", instrs), "V2",
        True,
        "movi+icall to an in-image target that is not an endbr — relies "
        "on runtime IBT instead of being provably safe at load time")


def wx_section() -> AttackImage:
    """A section mapped writable AND executable."""
    instrs = [I("nop"), I("ret")]
    return AttackImage(
        "wx-section", _image("wx-section", instrs,
                             flags=SEC_EXEC | SEC_WRITE), "V4", True,
        "benign-looking code in a W|X section: the kernel could rewrite "
        "its own verified text after the scan")


def jump_into_immediate() -> AttackImage:
    """Direct jump landing mid-instruction, inside an immediate."""
    instrs = [
        I("jmp", imm=_VA + INSTR_SIZE + 4),   # into slot 1's immediate
        I("movi", "rax", imm=0x1122_3344),
        I("ret"),
    ]
    return AttackImage(
        "jump-into-immediate", _image("jump-into-immediate", instrs),
        "V1", True,
        "jmp targets byte offset 16 — between instruction boundaries, "
        "inside the movi immediate")


def section_fallthrough() -> AttackImage:
    """Executable section whose last instruction falls off the end."""
    instrs = [I("nop"), I("nop")]
    return AttackImage(
        "section-fallthrough", _image("section-fallthrough", instrs),
        "V5", True,
        "section ends in a nop: execution runs off the mapped text into "
        "whatever is adjacent")


def clobber_thunk() -> AttackImage:
    """A pre-fix-shaped gate thunk with no save/restore bracket."""
    thunk_va = _VA + 2 * INSTR_SIZE
    instrs = [
        I("call", imm=thunk_va),
        I("hlt"),
        # the thunk: correct wrmsr marshalling, but the live values of
        # rdi/rsi/rdx/rax at the call site are destroyed
        I("movi", "rdi", imm=int(EmcCall.WRITE_MSR)),
        I("mov", "rsi", "rcx"),
        I("mov", "rdx", "rax"),
        I("movi", "rax", imm=ENTRY_GATE_VA),
        I("icall", "rax"),
        I("ret"),
    ]
    return AttackImage(
        "clobber-thunk", _image("clobber-thunk", instrs), "V7", True,
        "template-shaped gate thunk that overwrites rdi/rsi/rdx/rax "
        "without push/pop — silent kernel state corruption per EMC")


def erim_unaligned_immediate() -> AttackImage:
    """0xF0+sub-opcode hidden inside a movi's 8-byte immediate."""
    # imm = 0x5F000 → little-endian bytes 00 F0 05 ... : the (F0, 05)
    # pair sits at byte offsets 5..6 of the instruction — an unaligned
    # tdcall encoding reachable by a mid-instruction jump
    instrs = [
        I("movi", "rax", imm=0x5F000),
        I("ret"),
    ]
    return AttackImage(
        "erim-unaligned-immediate",
        _image("erim-unaligned-immediate", instrs), "V6", False,
        "sensitive sequence inside an immediate (ERIM-style): only an "
        "every-byte-offset scan finds it")


def erim_spanning_instructions() -> AttackImage:
    """0xF0 ending one instruction, sub-opcode starting the next."""
    # instr 0's top immediate byte is 0xF0 (offset 11); instr 1's opcode
    # byte is hlt = 0x02 (offset 12) → an unaligned wrmsr at offset 11
    instrs = [
        I("movi", "rax", imm=0xF0 << 56),
        I("hlt"),
    ]
    return AttackImage(
        "erim-spanning-instructions",
        _image("erim-spanning-instructions", instrs), "V6", False,
        "sensitive sequence spanning two adjacent instructions "
        "(ERIM-style straddle)")


# --- dataflow attacks: pass V0-V7, each trips exactly one of V8-V10 ----

def tainted_gate_argument() -> AttackImage:
    """A byte-perfect wrmsr thunk fed a secret through ``rcx``.

    Structurally impeccable — the thunk is exactly what the
    instrumentation pass emits, so V3/V7 accept it — but the caller
    loads a ``SEC_SENSITIVE`` byte into ``rcx`` first, and the thunk's
    marshalling (``mov rsi, rcx``) exfiltrates it as an EMC argument.
    Only the taint domain sees the flow.
    """
    from ..kernel.instrument import thunk_shape
    thunk = thunk_shape("wrmsr", gate_va=ENTRY_GATE_VA)
    entry = [
        I("movi", "rbx", imm=_SECRET_VA),
        I("load", "rcx", "rbx", imm=0),       # rcx <- secret byte
        I("call", imm=_VA + 4 * INSTR_SIZE),  # the (perfect) thunk
        I("hlt"),
    ]
    image = SelfImage("tainted-gate-argument", _VA, [
        Section(".text", _VA, assemble(entry + thunk), SEC_EXEC),
        Section(".secret", _SECRET_VA, b"\x2a" * 64, SEC_SENSITIVE),
        Section(".data", _VA + 0x4000_0000, b"\x00" * 64, SEC_WRITE),
    ])
    return AttackImage(
        "tainted-gate-argument", image, "V8", True,
        "template-exact gate thunk whose marshalling forwards a value "
        "loaded from a SEC_SENSITIVE section — a declassification-free "
        "secret flow into an EMC argument register")


def unbalanced_stack_paths() -> AttackImage:
    """Push/pop balance that depends on which branch executes.

    One path pops the saved register, the other skips the pop; the two
    join before ``ret`` with unequal frame depths, so the popped return
    address can disagree with the hardware shadow stack. Every check up
    to V7 passes — only path-sensitive stack accounting (V9) sees it.
    """
    instrs = [
        I("push", "rbx"),
        I("cmpi", "rax", imm=0),
        I("jz", imm=_VA + 4 * INSTR_SIZE),    # skip the pop when zf
        I("pop", "rbx"),
        I("ret"),                             # join: depth 0 vs depth 1
    ]
    return AttackImage(
        "unbalanced-stack-paths", _image("unbalanced-stack-paths", instrs),
        "V9", True,
        "conditionally-skipped pop: paths join at ret with unequal frame "
        "depths, corrupting the return/shadow-stack discipline")


def looped_gate_thunk() -> AttackImage:
    """A perfect gate thunk called from a data-dependent loop.

    Each call is individually legal (V3/V7 pass), but the loop's trip
    count is unprovable, so the worst-case EMC invocation count is
    unbounded — an exit-burn side channel no per-site check can see.
    Only the V10 call-graph fold rejects it.
    """
    from ..kernel.instrument import thunk_shape
    thunk = thunk_shape("stac", gate_va=ENTRY_GATE_VA)
    entry = [
        I("call", imm=_VA + 4 * INSTR_SIZE),  # one EMC per iteration
        I("cmpi", "rax", imm=0),
        I("jnz", imm=_VA),                    # data-dependent back edge
        I("hlt"),
    ]
    return AttackImage(
        "looped-gate-thunk",
        _image("looped-gate-thunk", entry + thunk), "V10", True,
        "template-exact gate thunk inside an unbounded loop: per-site "
        "checks pass, but the worst-case EMC rate is unprovable")


def dataflow_attack_corpus() -> list[AttackImage]:
    """Attacks for the V8-V10 plane: each passes the whole V0-V7 battery
    and is rejected by exactly one dataflow check (stable order)."""
    return [
        tainted_gate_argument(),
        unbalanced_stack_paths(),
        looped_gate_thunk(),
    ]


def attack_corpus() -> list[AttackImage]:
    """Every seeded attack, byte-scan-passing ones first (stable order)."""
    return [
        rogue_gate_icall(),
        non_endbr_indirect(),
        wx_section(),
        jump_into_immediate(),
        section_fallthrough(),
        clobber_thunk(),
        erim_unaligned_immediate(),
        erim_spanning_instructions(),
    ]
