"""Cross-CVM platform profiles (paper Table 7).

Erebor's drop-in monitor needs five guest-controlled capabilities; Table 7
maps them across Intel TDX, AMD SEV-SNP and ARM CCA. This module encodes
those profiles so the boot code (and the Table 7 benchmark) can select the
concrete mechanism per platform — including SEV's one gap: no supervisor
protection keys, for which the monitor falls back to Nested-Kernel-style
*private page-table mappings* with write protection (at a modelled extra
cost, quantified in the ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformProfile:
    """Hardware capabilities of one confidential-VM platform."""

    name: str
    register_interface: str           # CR/MSR vs EL1 system registers
    context_switch_interface: str     # IDT vs VBAR
    ghci_instruction: str             # tdcall / vmgexit / smc
    kernel_user_separation: str       # SMEP+SMAP vs PXN+PAN
    protection_keys: bool             # supervisor memory keys available?
    protection_key_mechanism: str     # PKS / PIE / page-table fallback
    hw_cfi_forward: str               # IBT / BTI
    hw_cfi_backward: str              # SST / GCS
    #: relative cycle multiplier for monitor memory-permission switches when
    #: protection keys are unavailable and private mappings are used instead
    permission_switch_multiplier: float = 1.0


TDX = PlatformProfile(
    name="tdx",
    register_interface="CR/MSR",
    context_switch_interface="IDT",
    ghci_instruction="tdcall",
    kernel_user_separation="SMEP/SMAP",
    protection_keys=True,
    protection_key_mechanism="PKS",
    hw_cfi_forward="IBT",
    hw_cfi_backward="SST",
)

SEV = PlatformProfile(
    name="sev",
    register_interface="CR/MSR",
    context_switch_interface="IDT",
    ghci_instruction="vmgexit",
    kernel_user_separation="SMEP/SMAP",
    protection_keys=False,                   # SEV lacks PKS (PKU only)
    protection_key_mechanism="private page tables + CR0.WP",
    hw_cfi_forward="IBT",
    hw_cfi_backward="SST",
    # Nested-Kernel-style fallback: permission flips are page-table walks +
    # TLB shootdowns instead of one serializing wrmsr. Modelled at ~3x.
    permission_switch_multiplier=3.0,
)

CCA = PlatformProfile(
    name="cca",
    register_interface="EL1 sysregs",
    context_switch_interface="VBAR",
    ghci_instruction="smc",
    kernel_user_separation="PXN/PAN",
    protection_keys=True,
    protection_key_mechanism="PIE",
    hw_cfi_forward="BTI",
    hw_cfi_backward="GCS",
)

PROFILES = {p.name: p for p in (TDX, SEV, CCA)}


def profile(name: str) -> PlatformProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(f"unknown platform {name!r}; choose from {sorted(PROFILES)}")
