"""Fleet scheduler: attested sessions, round-robin over warm pool slots.

Each admitted session is a *real* Erebor session — ephemeral-DH
handshake, quote verification against the published measurement, sealed
records through the untrusted proxy — bound to one pool slot. Sessions
advance one request per scheduling round, so pool occupancy, queueing
and backpressure are genuine concurrent behaviour, not sequential
bookkeeping; ordering is fully deterministic (submission order within a
round, FIFO queue drain on release).

Quota enforcement has two halves: admission (pre-slot, in
:mod:`repro.fleet.admission`) and the post-hoc EMC allowance — a request
that drives more EMC gate invocations than its tenant's
``max_emc_per_request`` gets the session *evicted*: the sandbox is
killed (which scrubs it), the slot replaced by a fresh fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..client import RemoteClient
from ..core.boot import published_measurement
from ..core.channel import SecureChannel, UntrustedProxy
from .admission import AdmissionController, Decision
from .pool import PoolSlot, WarmPool


@dataclass
class ClientSession:
    """One client's workload: identity, secrets, and progress."""

    name: str
    tenant: str
    seed: int
    payloads: list[bytes]
    #: distinctive plaintext the scrub verifier scans frames for
    secret: bytes = b""
    outcome: str | None = None    # completed | rejected | evicted
    reason: str = ""
    served: int = 0
    start_kind: str = ""
    start_cycles: int = 0
    session_cycles: int = 0
    emc_used: int = 0
    private_bytes_peak: int = 0
    responses: list[bytes] = field(default_factory=list)
    slot: PoolSlot | None = None
    channel: SecureChannel | None = None
    client: RemoteClient | None = None
    _t0: int = 0

    def summary(self) -> dict:
        return {
            "name": self.name, "tenant": self.tenant,
            "outcome": self.outcome, "reason": self.reason,
            "served": self.served, "start_kind": self.start_kind,
            "start_cycles": self.start_cycles,
            "session_cycles": self.session_cycles,
            "emc_used": self.emc_used,
            "private_bytes_peak": self.private_bytes_peak,
        }


class FleetScheduler:
    """Drives N sessions through M pool slots, one request per round."""

    def __init__(self, system, pool: WarmPool, work,
                 controller: AdmissionController | None = None):
        self.system = system
        self.monitor = system.monitor
        self.kernel = system.kernel
        self.clock = system.machine.clock
        self.pool = pool
        self.work = work
        self.controller = controller or AdmissionController()
        self.proxy = UntrustedProxy(self.monitor)
        self.queue: list[ClientSession] = []
        self.active: list[ClientSession] = []
        self.finished: list[ClientSession] = []
        self.requests_served = 0
        self.counts = {"admit": 0, "queue": 0, "reject": 0, "evict": 0}

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _active_by_tenant(self) -> dict[str, tuple[int, int]]:
        per: dict[str, tuple[int, int]] = {}
        bytes_per_slot = self.pool.template.confined_bytes
        for s in self.active:
            n, b = per.get(s.tenant, (0, 0))
            per[s.tenant] = (n + 1, b + bytes_per_slot)
        return per

    def submit(self, session: ClientSession) -> Decision:
        """Route one session: admit to a slot, queue it, or turn it away."""
        with self.clock.tracer.span("fleet:admit", cat="fleet",
                                    session=session.name,
                                    tenant=session.tenant):
            decision = self.controller.decide(
                session.tenant,
                requested_bytes=self.pool.template.confined_bytes,
                active=self._active_by_tenant(),
                queued=len(self.queue),
                free_slots=len(self.pool.free_slots()))
        self.counts[decision.action] = self.counts.get(decision.action, 0) + 1
        metrics = self.clock.metrics
        metrics.inc("erebor_fleet_admissions_total",
                    action=decision.action, tenant=session.tenant)
        self.clock.tracer.event(f"fleet:{decision.action}", cat="fleet",
                                session=session.name, tenant=session.tenant,
                                reason=decision.reason)
        if decision.action == "admit":
            self._start(session)
        elif decision.action == "queue":
            session.reason = decision.reason
            self.queue.append(session)
            metrics.set_gauge("erebor_fleet_queue_depth", len(self.queue))
        else:
            self._reject(session, decision.reason)
        return decision

    def _reject(self, session: ClientSession, reason: str) -> None:
        session.outcome = "rejected"
        session.reason = reason
        self.finished.append(session)
        self.clock.metrics.inc("erebor_fleet_sessions_total",
                               tenant=session.tenant, outcome="rejected")
        self.clock.metrics.inc("erebor_fleet_rejections_total",
                               tenant=session.tenant, reason=reason)

    def _start(self, session: ClientSession) -> None:
        slot = self.pool.acquire()
        assert slot is not None, "admission admitted with no free slot"
        session.slot = slot
        session.start_kind = slot.instance.start_kind
        session.start_cycles = slot.instance.start_cycles
        session._t0 = self.clock.cycles
        channel = SecureChannel(self.monitor, slot.instance.sandbox)
        client = RemoteClient(self.system.machine.authority,
                              published_measurement(), seed=session.seed)
        client.connect(self.proxy, channel)
        session.channel, session.client = channel, client
        self.active.append(session)
        self.clock.tracer.event("fleet:session_start", cat="fleet",
                                session=session.name,
                                sandbox=slot.instance.sandbox.sandbox_id,
                                start_kind=session.start_kind)

    # ------------------------------------------------------------------ #
    # the request rounds
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One scheduling round: every active session serves one request."""
        for session in list(self.active):
            self._step_session(session)

    def _step_session(self, session: ClientSession) -> None:
        instance = session.slot.instance
        payload = session.payloads[session.served]
        emc0 = self.clock.events.get("emc", 0)
        with self.clock.tracer.span("fleet:request", cat="fleet",
                                    session=session.name,
                                    tenant=session.tenant,
                                    index=session.served):
            session.client.request(self.proxy, session.channel, payload)
            self.kernel.current = instance.libos.task
            request = instance.runtime.recv_input()
            output = self.work.serve(instance.runtime, request)
            blob = session.client.fetch_result(self.proxy, session.channel)
        if blob != output:
            raise RuntimeError(f"response mismatch for {session.name}")
        session.responses.append(output)
        session.served += 1
        self.requests_served += 1
        request_emc = self.clock.events.get("emc", 0) - emc0
        session.emc_used += request_emc
        self.clock.metrics.inc("erebor_fleet_requests_total",
                               tenant=session.tenant)
        quota = self.controller.quota_for(session.tenant)
        if request_emc > quota.max_emc_per_request:
            self._evict(session, request_emc)
        elif session.served == len(session.payloads):
            self._finish(session, "completed")

    # ------------------------------------------------------------------ #
    # completion paths
    # ------------------------------------------------------------------ #

    def _finalize(self, session: ClientSession, outcome: str) -> None:
        session.outcome = outcome
        session.session_cycles = self.clock.cycles - session._t0
        session.private_bytes_peak = session.slot.instance.private_bytes
        self.active.remove(session)
        self.finished.append(session)
        self.clock.metrics.inc("erebor_fleet_sessions_total",
                               tenant=session.tenant, outcome=outcome)
        self.clock.metrics.observe("erebor_fleet_session_cycles",
                                   session.session_cycles, outcome=outcome)

    def _evict(self, session: ClientSession, request_emc: int) -> None:
        """Post-hoc EMC-rate enforcement: kill the sandbox, drop the slot."""
        self.counts["evict"] += 1
        session.reason = "emc-quota"
        sandbox = session.slot.instance.sandbox
        self._finalize(session, "evicted")
        self.clock.tracer.event("fleet:evict", cat="fleet",
                                session=session.name, tenant=session.tenant,
                                emc=request_emc)
        self.clock.metrics.inc("erebor_fleet_evictions_total",
                               tenant=session.tenant)
        sandbox.kill(f"tenant {session.tenant} exceeded EMC allowance "
                     f"({request_emc} per request)")
        self.pool.release(session.slot)     # dead slot: replaced by a fork
        self._drain_queue()

    def _finish(self, session: ClientSession, outcome: str) -> None:
        self._finalize(session, outcome)
        self.clock.tracer.event("fleet:session_end", cat="fleet",
                                session=session.name, outcome=outcome)
        self.pool.release(session.slot,
                          patterns=[session.secret, *session.payloads,
                                    *session.responses])
        self._drain_queue()

    def _drain_queue(self) -> None:
        """FIFO re-admission after a slot frees up; deterministic order."""
        while self.queue and self.pool.free_slots():
            started = False
            for session in list(self.queue):
                decision = self.controller.decide(
                    session.tenant,
                    requested_bytes=self.pool.template.confined_bytes,
                    active=self._active_by_tenant(),
                    queued=0,                 # already queued: re-admission
                    free_slots=len(self.pool.free_slots()))
                if decision.action == "admit":
                    self.queue.remove(session)
                    self.clock.tracer.event("fleet:dequeue", cat="fleet",
                                            session=session.name)
                    self._start(session)
                    started = True
                    break
            if not started:
                break
        self.clock.metrics.set_gauge("erebor_fleet_queue_depth",
                                     len(self.queue))

    # ------------------------------------------------------------------ #
    # top-level drive
    # ------------------------------------------------------------------ #

    def run(self, sessions: list[ClientSession]) -> list[ClientSession]:
        """Submit everything, then round-robin until the fleet drains."""
        for session in sessions:
            self.submit(session)
        while self.active:
            self.step()
        # anything still queued can never be unblocked (no session left
        # to release a slot): reject deterministically rather than hang
        for session in list(self.queue):
            self.queue.remove(session)
            self._reject(session, "starved")
        self.clock.metrics.set_gauge("erebor_fleet_queue_depth", 0)
        return self.finished
