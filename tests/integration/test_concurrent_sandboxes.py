"""Concurrency: multiple sandboxes time-sharing one CVM with isolation."""

import pytest

from repro.apps import LibOsRuntime, workload
from repro.client import RemoteClient
from repro.core import SandboxViolation, erebor_boot, published_measurement
from repro.core.channel import SecureChannel, UntrustedProxy
from repro.libos import LibOs
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def system():
    machine = CvmMachine(MachineConfig(memory_bytes=1024 * MIB))
    return erebor_boot(machine, cma_bytes=128 * MIB)


def spawn_session(system, name, secret, seed):
    work = workload("helloworld")
    manifest = work.manifest()
    manifest.name = name
    libos = LibOs.boot_sandboxed(system, manifest, confined_budget=2 * MIB)
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(system.machine.authority, published_measurement(),
                          seed=seed)
    client.connect(proxy, channel)
    client.request(proxy, channel, secret)
    return work, libos, proxy, channel, client


def test_interleaved_execution_with_scheduler(system):
    """Two locked sandboxes alternate on the CPU; both finish correctly."""
    s1 = spawn_session(system, "svc-a", b"secret-A", 70)
    s2 = spawn_session(system, "svc-b", b"secret-B", 71)
    kernel = system.kernel
    outputs = []
    for work, libos, proxy, channel, client in (s1, s2):
        rt = LibOsRuntime(libos)
        kernel.current = libos.task
        rt.recv_input()
        work.serve(rt, b"")
        outputs.append(client.fetch_result(proxy, channel))
    assert outputs == [b"A" * 10, b"A" * 10]
    # the scheduler actually context-switched between runnable tasks
    assert system.machine.clock.events["context_switch"] > 0


def test_killing_one_sandbox_leaves_the_other_intact(system):
    s1 = spawn_session(system, "victim", b"secret-A", 72)
    s2 = spawn_session(system, "survivor", b"secret-B", 73)
    _, libos1, proxy1, chan1, client1 = s1
    work2, libos2, proxy2, chan2, client2 = s2
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(libos1.task, "getpid")
    assert libos1.sandbox.dead
    assert not libos2.sandbox.dead
    # the survivor still completes its session
    rt = LibOsRuntime(libos2)
    system.kernel.current = libos2.task
    rt.recv_input()
    work2.serve(rt, b"")
    assert client2.fetch_result(proxy2, chan2) == b"A" * 10


def test_no_cross_sandbox_secret_visibility(system):
    s1 = spawn_session(system, "a", b"TOP-SECRET-ALPHA", 74)
    s2 = spawn_session(system, "b", b"TOP-SECRET-BRAVO", 75)
    machine = system.machine
    # each sandbox's confined frames hold only its own secret
    for (_, libos, *_), own, other in (
            (s1, b"TOP-SECRET-ALPHA", b"TOP-SECRET-BRAVO"),
            (s2, b"TOP-SECRET-BRAVO", b"TOP-SECRET-ALPHA")):
        blob = b"".join(
            bytes(machine.phys.frames[fn].data or b"")
            for fn in libos.sandbox.confined_frames)
        assert own in blob
        assert other not in blob
    assert b"TOP-SECRET-ALPHA" not in machine.vmm.observed_blob()


def test_confined_pools_accounted_separately(system):
    s1 = spawn_session(system, "a", b"x", 76)
    s2 = spawn_session(system, "b", b"y", 77)
    usage = system.machine.phys.usage_by_owner()
    ids = [s[1].sandbox.sandbox_id for s in (s1, s2)]
    for sid in ids:
        assert usage[f"sandbox:{sid}"] > 0
    assert usage[f"sandbox:{ids[0]}"] == usage[f"sandbox:{ids[1]}"]
