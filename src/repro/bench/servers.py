"""System-intensive background servers (paper Fig. 10 / §9.3).

OpenSSH- and Nginx-shaped file servers running as *normal* (non-sandbox)
programs on the CVM, measuring how Erebor's system-wide interposition
taxes ordinary workloads. The model captures what differentiates the two
servers in the paper:

* **OpenSSH (scp)** — every chunk crosses userspace twice (decrypt /
  re-encrypt), so each chunk costs two monitor-emulated user copies plus
  per-byte crypto;
* **Nginx** — static files go out via ``sendfile``: the kernel moves page
  cache pages internally, so the monitor only sees the syscall entries.

Small files are dominated by per-request fixed costs (handshake, open,
stat, log) where Erebor's per-exit inspection bites hardest; large files
amortize it — the paper's observed shape (max ~18% loss at 1 KB, <5%
beyond a few MB).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.boot import erebor_boot
from ..hw.cycles import CPU_FREQ_HZ
from ..vm import CvmMachine, MachineConfig, MIB

KIB = 1024

FILE_SIZES = (1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB,
              1 * MIB, 4 * MIB, 16 * MIB)

#: per-request fixed application work (cycles)
SSH_REQUEST_WORK = 26_000      # key schedule, packet framing, auth check
NGINX_REQUEST_WORK = 10_000    # parsing, routing, access log
#: per-byte application work (cycles/byte)
SSH_CRYPTO_PER_BYTE = 2.0      # AES+MAC in userspace
NGINX_CHECKSUM_PER_BYTE = 0.35
#: transfer chunking
SSH_CHUNK = 64 * KIB
NGINX_CHUNK = 256 * KIB


@dataclass
class ServerPoint:
    server: str
    file_size: int
    setting: str
    bytes_per_second: float
    requests: int


@dataclass
class ServerSeries:
    server: str
    points: dict[tuple[int, str], ServerPoint]

    def relative_throughput(self, file_size: int) -> float:
        native = self.points[(file_size, "native")].bytes_per_second
        erebor = self.points[(file_size, "erebor")].bytes_per_second
        return erebor / native

    def average_reduction(self) -> float:
        rels = [self.relative_throughput(s) for s in FILE_SIZES]
        return 1.0 - sum(rels) / len(rels)

    def max_reduction(self) -> float:
        return 1.0 - min(self.relative_throughput(s) for s in FILE_SIZES)


class ServerBench:
    """Drives request loops against one server model on one machine."""

    def __init__(self, *, seed: int = 11, requests_per_size: int = 40):
        self.seed = seed
        self.requests_per_size = requests_per_size

    def _rig(self, setting: str):
        machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB,
                                           seed=self.seed))
        if setting == "native":
            kernel = machine.boot_native_kernel()
        else:
            kernel = erebor_boot(machine, cma_bytes=16 * MIB).kernel
        server = kernel.spawn("server")
        client = kernel.spawn("client")
        sfd = kernel.syscall(server, "socket")
        kernel.syscall(server, "listen", sfd, 443)
        cfd = kernel.syscall(client, "socket")
        kernel.syscall(client, "connect", cfd, 443)
        conn = kernel.syscall(server, "accept", sfd)
        for size in FILE_SIZES:
            kernel.vfs.create(f"/srv/file-{size}", synthetic_size=size)
        return machine, kernel, server, client, conn

    # ------------------------------------------------------------------ #
    # one request under each server model
    # ------------------------------------------------------------------ #

    def _ssh_request(self, kernel, server, conn_fd, size: int) -> None:
        fd = kernel.syscall(server, "open", f"/srv/file-{size}")
        kernel.syscall(server, "stat", f"/srv/file-{size}")
        kernel.advance(SSH_REQUEST_WORK, server)
        offset = 0
        while offset < size:
            chunk = min(SSH_CHUNK, size - offset)
            kernel.syscall(server, "pread", fd, chunk, offset)   # user copy in
            kernel.advance(int(chunk * SSH_CRYPTO_PER_BYTE), server)
            kernel.syscall(server, "send", conn_fd, b"", nbytes=chunk)
            offset += chunk
        kernel.syscall(server, "close", fd)

    def _nginx_request(self, kernel, server, conn_fd, size: int) -> None:
        fd = kernel.syscall(server, "open", f"/srv/file-{size}")
        kernel.syscall(server, "stat", f"/srv/file-{size}")
        kernel.advance(NGINX_REQUEST_WORK, server)
        # request-header read: the one user copy nginx pays per request
        kernel.ops.user_copy(512, to_user=False)
        offset = 0
        while offset < size:
            chunk = min(NGINX_CHUNK, size - offset)
            kernel.syscall(server, "sendfile", conn_fd, fd, chunk)
            kernel.advance(int(chunk * NGINX_CHECKSUM_PER_BYTE), server)
            offset += chunk
        kernel.syscall(server, "close", fd)

    # ------------------------------------------------------------------ #

    def run_point(self, server_kind: str, setting: str,
                  file_size: int) -> ServerPoint:
        machine, kernel, server, client, conn = self._rig(setting)
        body = self._ssh_request if server_kind == "ssh" else self._nginx_request
        # patch the kernel's syscall current-task plumbing: the server task
        # is the one doing the work
        kernel.current = server
        requests = self.requests_per_size
        # cap total modelled bytes to keep big-file runs snappy
        while requests * file_size > 256 * MIB and requests > 4:
            requests //= 2
        before = machine.clock.snapshot()
        for _ in range(requests):
            body(kernel, server, conn, file_size)
        delta = machine.clock.since(before)
        return ServerPoint(server_kind, file_size, setting,
                           bytes_per_second=requests * file_size
                           / (delta.cycles / CPU_FREQ_HZ),
                           requests=requests)

    def run_series(self, server_kind: str) -> ServerSeries:
        points = {}
        for size in FILE_SIZES:
            for setting in ("native", "erebor"):
                points[(size, setting)] = self.run_point(server_kind,
                                                         setting, size)
        return ServerSeries(server_kind, points)
