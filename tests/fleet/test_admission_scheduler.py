"""Admission control, scheduling, quotas, eviction, and determinism."""

import pytest

from repro.fleet import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
    run_fleet,
)

MIB = 1024 * 1024


# --------------------------------------------------------------------------- #
# controller unit behaviour (pure policy, no machine)
# --------------------------------------------------------------------------- #

def test_admit_when_inside_quota_and_slot_free():
    ctl = AdmissionController()
    d = ctl.decide("t0", requested_bytes=MIB, active={}, queued=0,
                   free_slots=2)
    assert (d.action, d.reason) == ("admit", "")


def test_queue_when_pool_exhausted_then_reject_on_backpressure():
    ctl = AdmissionController(AdmissionConfig(queue_depth=1))
    d = ctl.decide("t0", requested_bytes=MIB, active={}, queued=0,
                   free_slots=0)
    assert (d.action, d.reason) == ("queue", "pool-exhausted")
    d = ctl.decide("t0", requested_bytes=MIB, active={}, queued=1,
                   free_slots=0)
    assert (d.action, d.reason) == ("reject", "backpressure")


def test_tenant_session_quota_queues():
    ctl = AdmissionController(AdmissionConfig(
        quotas={"t0": TenantQuota(max_active_sessions=1)}))
    d = ctl.decide("t0", requested_bytes=MIB, active={"t0": (1, MIB)},
                   queued=0, free_slots=4)
    assert (d.action, d.reason) == ("queue", "tenant-quota")
    # other tenants are unaffected
    assert ctl.decide("t1", requested_bytes=MIB, active={"t0": (1, MIB)},
                      queued=0, free_slots=4).action == "admit"


def test_memory_quota_rejects_impossible_and_queues_transient():
    ctl = AdmissionController(AdmissionConfig(
        quotas={"t0": TenantQuota(max_confined_bytes=2 * MIB)}))
    # more than the tenant ceiling: can never be satisfied
    d = ctl.decide("t0", requested_bytes=3 * MIB, active={}, queued=0,
                   free_slots=4)
    assert (d.action, d.reason) == ("reject", "memory-quota")
    # over the ceiling only because of current usage: wait it out
    d = ctl.decide("t0", requested_bytes=MIB, active={"t0": (1, 2 * MIB)},
                   queued=0, free_slots=4)
    assert (d.action, d.reason) == ("queue", "memory-quota")


def test_decisions_are_deterministic():
    ctl = AdmissionController()
    args = dict(requested_bytes=MIB, active={"t0": (1, MIB)}, queued=2,
                free_slots=0)
    assert all(ctl.decide("t0", **args) == ctl.decide("t0", **args)
               for _ in range(3))


# --------------------------------------------------------------------------- #
# full fleet behaviour (helloworld: cheap, still end-to-end attested)
# --------------------------------------------------------------------------- #

def fleet(**kw):
    defaults = dict(workload="helloworld", clients=3, requests=2,
                    pool_size=1, tenants=3, seed=11, scale=1.0)
    defaults.update(kw)
    report, _system = run_fleet(**defaults)
    return report


def test_queue_drains_when_slots_free_up():
    report = fleet()
    # one slot, three clients: 1 admitted up front, 2 queued, all served
    assert report.counts["admit"] == 1
    assert report.counts["queue"] == 2
    assert report.outcomes == {"completed": 3}
    assert report.requests_served == 6
    # the recycled slot produced warm starts for the queued sessions
    kinds = sorted(s["start_kind"] for s in report.sessions)
    assert kinds == ["fork", "warm", "warm"]


def test_backpressure_rejects_beyond_queue_depth():
    report = fleet(queue_depth=1)
    assert report.counts["reject"] == 1
    assert report.outcomes == {"completed": 2, "rejected": 1}
    rejected = [s for s in report.sessions if s["outcome"] == "rejected"]
    assert rejected[0]["reason"] == "backpressure"


def test_emc_quota_evicts_and_pool_recovers():
    admission = AdmissionConfig(
        queue_depth=8,
        quotas={"tenant-0": TenantQuota(max_emc_per_request=1)})
    report = fleet(clients=2, tenants=2, pool_size=2, admission=admission)
    # tenant-0's first request blows the EMC allowance -> evicted;
    # tenant-1 is untouched and completes
    assert report.counts["evict"] == 1
    assert report.outcomes == {"completed": 1, "evicted": 1}
    evicted = [s for s in report.sessions if s["outcome"] == "evicted"]
    assert evicted[0]["tenant"] == "tenant-0"
    assert evicted[0]["reason"] == "emc-quota"


def test_fork_and_warm_starts_beat_cold_by_5x():
    report = fleet()
    assert report.fork_speedup() >= 5
    assert report.warm_speedup() >= 5


def test_large_queue_drains_in_fifo_order():
    # 24 clients against one slot: the deque-based queue admits exactly
    # one up front, parks 23, and re-admits them strictly FIFO as the
    # slot recycles — nobody is starved, reordered, or double-visited
    report = fleet(clients=24, requests=1, tenants=24, pool_size=1,
                   seed=9, queue_depth=24)
    assert report.counts["admit"] == 1
    assert report.counts["queue"] == 23
    assert report.counts["reject"] == 0
    assert report.outcomes == {"completed": 24}
    names = [s["name"] for s in report.sessions]
    assert names == [f"client-{i}" for i in range(24)]


def test_memory_quota_charges_actual_private_bytes(system, template):
    """CoW-aware quotas: tenants are billed for pages they dirtied.

    The tenant ceiling leaves 64 KiB of headroom beyond one template
    image. Under the old accounting — every active session billed the
    template's full virtual size — a second session could never admit;
    charging the actual private CoW footprint (a few dirtied pages)
    admits it.
    """
    from repro.fleet.pool import PoolConfig, WarmPool
    from repro.fleet.scheduler import ClientSession, FleetScheduler

    quota = template.confined_bytes + 64 * 1024
    ctl = AdmissionController(AdmissionConfig(
        quotas={"t0": TenantQuota(max_confined_bytes=quota)}))
    pool = WarmPool(system, template, PoolConfig(size=2))
    sched = FleetScheduler(system, pool, template.work, ctl)

    first = ClientSession(name="c0", tenant="t0", seed=1,
                          payloads=[b"req-a", b"req-b"], secret=b"s0")
    assert sched.submit(first).action == "admit"
    sched.step()                    # serve one request: dirties CoW pages
    used = sched._active_by_tenant()["t0"][1]
    assert 0 < used <= 64 * 1024    # a handful of pages, not the image

    # template-sized accounting would bust the ceiling and queue...
    stale = ctl.decide("t0", requested_bytes=template.confined_bytes,
                       active={"t0": (1, template.confined_bytes)},
                       queued=0, free_slots=1)
    assert stale.action == "queue"
    # ...actual-footprint accounting admits the second session
    second = ClientSession(name="c1", tenant="t0", seed=2,
                           payloads=[b"req-c"], secret=b"s1")
    assert sched.submit(second).action == "admit"

    while sched.active:
        sched.step()
    assert all(s.outcome == "completed" for s in sched.finished)


def test_two_seeded_repeats_are_byte_identical():
    r1 = fleet(seed=77)
    r2 = fleet(seed=77)
    assert r1.to_json() == r2.to_json()
    assert r1.digest() == r2.digest()


def test_different_seed_changes_the_run():
    assert fleet(seed=77).digest() != fleet(seed=78).digest()
