"""Superblock translation cache: lockstep oracle + invalidation matrix.

Two obligations from the design:

* **Lockstep oracle equivalence** — for every ISA opcode, a program run
  with the translation cache / TLB / paging-structure cache *on* must be
  observationally identical to the same program interpreted one `step()`
  at a time with everything *off*: same registers, rip, flags, mode,
  retired-step count, cycle total, per-tag ledger, event counters and
  memory image. Faults (including faults delivered mid-superblock) must
  land on the same instruction with the same state.

* **Invalidation** — a cached translation must never outlive the bytes
  that justified it: PTE rewrites (mprotect-style downgrades, template
  seals), PTE clears, CoW-style frame replacement, pool scrub / slot
  reuse, raw direct-map scribbles on paging structures, shadow-stack
  flag flips and code-byte writes must all miss or fault exactly as a
  fresh page walk would.
"""

import pytest

from repro.hw import regs
from repro.hw.cpu import CpuHalt  # noqa: F401 - imported for doc cross-refs
from repro.hw.errors import (
    ControlProtectionFault,
    DivideError,
    GeneralProtectionFault,
    PageFault,
    SimulatorError,
)
from repro.hw.isa import INSTR_SIZE, OPCODES, SENSITIVE_OPS, I
from repro.hw.mmu import AccessContext, USER_MODE
from repro.hw.paging import PTE_P, PTE_W
from repro.hw.testbench import (
    IDT_VA,
    KERNEL_CODE_VA,
    KERNEL_DATA_VA,
    USER_CODE_VA,
    MicroMachine,
)

K = KERNEL_CODE_VA
D = KERNEL_DATA_VA
STUB_VA = KERNEL_CODE_VA + 0x10_0000      # syscall entry stub
HANDLER_VA = KERNEL_CODE_VA + 0x20_0000   # interrupt handler code
NEG1 = (1 << 64) - 1


def at(i):
    """VA of instruction index ``i`` in a program loaded at K."""
    return K + i * INSTR_SIZE


def make_machine(enabled, **kw):
    m = MicroMachine(**kw)
    m.cpu.tcache.enabled = enabled
    m.cpu.mmu.tlb_enabled = enabled
    m.phys.psc_enabled = enabled
    return m


def snapshot(m):
    """Everything architecturally observable about a machine."""
    return {
        "rip": m.cpu.rip,
        "regs": dict(m.cpu.regs),
        "zf": m.cpu.zf,
        "ac": m.cpu.ac,
        "mode": m.cpu.mode,
        "crs": dict(m.cpu.crs),
        "msrs": dict(m.cpu.msrs),
        "ibt_wait": m.cpu._ibt_wait,
        "cycles": m.clock.cycles,
        "by_tag": dict(m.clock.by_tag),
        "events": dict(m.clock.events),
        "per_cpu": list(m.clock.per_cpu),
        "busy": dict(m.clock.busy_by_cpu),
        "mem": {fn: bytes(f.data) for fn, f in sorted(m.phys.frames.items())
                if f.data is not None},
    }


def lockstep(setup, *, run=None, expect=None):
    """Run ``setup`` on a cache-off and a cache-on machine and compare.

    ``run`` defaults to ``m.cpu.run()`` (to hlt, faults raised).
    ``expect`` is an exception type both runs must raise.
    Returns the (identical) snapshots' cache-on machine for extra asserts.
    """
    run = run or (lambda m: m.cpu.run(deliver_faults=False))
    results = []
    for enabled in (False, True):
        m = make_machine(enabled)
        setup(m)
        if expect is None:
            steps = run(m)
        else:
            with pytest.raises(expect) as exc_info:
                run(m)
            steps = str(exc_info.value)
        results.append((m, steps))
    (off, off_steps), (on, on_steps) = results
    assert off_steps == on_steps
    assert snapshot(off) == snapshot(on)
    return on


def load_at_k(program):
    """Standard setup: program at K, data pages at D, GS base armed."""
    def setup(m):
        m.map_data(D, pages=2)
        m.cpu.msrs[regs.IA32_GS_BASE] = D + 4096
        m.load_code(K, program)
        m.cpu.rip = K
    return setup


# --------------------------------------------------------------------------- #
# lockstep oracle: straight-line programs, one per opcode family
# --------------------------------------------------------------------------- #

PROGRAMS = {
    "alu": [
        I("movi", "rax", imm=7), I("movi", "rbx", imm=3),
        I("mov", "rcx", "rax"), I("add", "rax", "rbx"),
        I("sub", "rcx", "rbx"), I("and", "rax", "rcx"),
        I("or", "rax", "rbx"), I("xor", "rdx", "rax"),
        I("movi", "r8", imm=2), I("shl", "rax", "r8"),
        I("shr", "rbx", "r8"), I("mul", "rax", "rbx"),
        I("addi", "rdx", imm=5), I("cmp", "rax", "rbx"),
        I("cmpi", "rdx", imm=9), I("nop"), I("hlt"),
    ],
    "div": [
        I("movi", "rax", imm=144), I("movi", "rbx", imm=12),
        I("div", "rax", "rbx"), I("hlt"),
    ],
    "memory": [
        I("movi", "rax", imm=D), I("movi", "rbx", imm=0xDEAD),
        I("store", "rax", "rbx", imm=16), I("load", "rcx", "rax", imm=16),
        I("push", "rcx"), I("pop", "rdx"), I("hlt"),
    ],
    "gs_percpu": [
        I("movi", "rax", imm=0x77), I("gsstore", None, "rax", imm=8),
        I("gsload", "rbx", imm=8), I("hlt"),
    ],
    "branches": [
        I("movi", "rax", imm=1),            # 0
        I("cmpi", "rax", imm=1),            # 1: zf := True
        I("jz", imm=at(4)),                 # 2: taken
        I("hlt"),                           # 3: skipped
        I("cmpi", "rax", imm=2),            # 4: zf := False
        I("jnz", imm=at(7)),                # 5: taken
        I("hlt"),                           # 6: skipped
        I("jmp", imm=at(9)),                # 7
        I("hlt"),                           # 8: skipped
        I("hlt"),                           # 9
    ],
    "back_loop": [
        I("movi", "rcx", imm=5),            # 0
        I("addi", "rcx", imm=NEG1),         # 1: rcx -= 1, sets zf
        I("jnz", imm=at(1)),                # 2
        I("hlt"),                           # 3
    ],
    "call_ret": [
        I("call", imm=at(2)),               # 0
        I("hlt"),                           # 1
        I("ret"),                           # 2
    ],
    "icall": [
        I("movi", "rax", imm=at(3)),        # 0
        I("icall", "rax"),                  # 1
        I("hlt"),                           # 2
        I("ret"),                           # 3
    ],
    "ijmp": [
        I("movi", "rbx", imm=at(3)),        # 0
        I("ijmp", "rbx"),                   # 1
        I("hlt"),                           # 2 (skipped)
        I("hlt"),                           # 3
    ],
    "endbr_plain": [
        I("endbr"), I("nop"), I("hlt"),
    ],
    "sys_misc": [
        I("fence"), I("cpuid"),
        I("rdcr", "rax", imm=4),
        I("movi", "rcx", imm=regs.IA32_PKRS), I("rdmsr"),
        I("clac"), I("hlt"),
    ],
    "stac_clac": [
        I("stac"), I("clac"), I("hlt"),
    ],
    "wrmsr_rdmsr": [
        I("movi", "rcx", imm=regs.IA32_GS_BASE),
        I("movi", "rax", imm=0x1234), I("wrmsr"),
        I("rdmsr"), I("hlt"),
    ],
    "mov_cr": [
        I("rdcr", "rbx", imm=4), I("mov_cr", 4, "rbx"),
        I("rdcr", "rax", imm=0), I("mov_cr", 0, "rax"),
        I("hlt"),
    ],
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_lockstep_program(name):
    lockstep(load_at_k(PROGRAMS[name]))


#: ops exercised by the scaffolded / faulting tests below, not PROGRAMS
EXTRA_COVERED = frozenset({
    "lidt", "int", "iret", "syscall", "sysret", "tdcall", "senduipi",
})


def test_every_opcode_has_a_lockstep_test():
    covered = {i.op for prog in PROGRAMS.values() for i in prog}
    covered |= EXTRA_COVERED
    missing = (set(OPCODES) | set(SENSITIVE_OPS)) - covered
    assert missing == set()


# --------------------------------------------------------------------------- #
# lockstep oracle: scaffolded ops (IDT, syscall entry, fault equivalence)
# --------------------------------------------------------------------------- #

def test_lockstep_lidt():
    def setup(m):
        m.install_idt({})          # registers the table at IDT_VA
        m.cpu.idt = None           # ...but force the program to lidt it
        m.load_code(K, [
            I("movi", "rax", imm=IDT_VA), I("lidt", None, "rax"), I("hlt"),
        ])
        m.cpu.rip = K
    on = lockstep(setup)
    assert on.cpu.idt is not None


def test_lockstep_int_iret_roundtrip():
    def setup(m):
        m.load_code(HANDLER_VA, [I("addi", "rbx", imm=1), I("iret")])
        m.install_idt({33: HANDLER_VA})
        m.load_code(K, [
            I("movi", "rax", imm=5),
            I("int", imm=33),
            I("addi", "rax", imm=1),
            I("hlt"),
        ])
        m.cpu.rip = K
    on = lockstep(setup)
    assert on.cpu.regs["rax"] == 6 and on.cpu.regs["rbx"] == 1


def test_lockstep_syscall_sysret():
    def setup(m):
        m.load_code(STUB_VA, [I("addi", "rdx", imm=1), I("hlt")])
        m.load_code(USER_CODE_VA, [I("nop"), I("syscall")], user=True)
        m.cpu.msrs[regs.IA32_LSTAR] = STUB_VA
        m.load_code(K, [
            I("movi", "rcx", imm=USER_CODE_VA),
            I("sysret"),
        ])
        m.cpu.rip = K
    on = lockstep(setup)
    assert on.cpu.regs["rdx"] == 1
    # syscall stashed the user return address in rcx
    assert on.cpu.regs["rcx"] == USER_CODE_VA + 2 * INSTR_SIZE


def test_lockstep_tdcall_outside_td_faults():
    lockstep(load_at_k([I("nop"), I("tdcall"), I("hlt")]),
             expect=GeneralProtectionFault)


def test_lockstep_senduipi_without_table_faults():
    lockstep(load_at_k([I("nop"), I("senduipi", "rax"), I("hlt")]),
             expect=GeneralProtectionFault)


def test_lockstep_hlt_from_user_mode_faults():
    def setup(m):
        m.load_code(USER_CODE_VA, [I("nop"), I("hlt")], user=True)
        m.cpu.mode = USER_MODE
        m.cpu.rip = USER_CODE_VA
    on = lockstep(setup, expect=GeneralProtectionFault)
    # the fault rip points at the hlt itself, mid-block
    assert on.cpu.rip == USER_CODE_VA + INSTR_SIZE


# --------------------------------------------------------------------------- #
# lockstep oracle: faults delivered mid-superblock
# --------------------------------------------------------------------------- #

MID_BLOCK_DIV0 = [
    I("movi", "rax", imm=9),
    I("movi", "rbx", imm=0),
    I("movi", "rdx", imm=7),
    I("div", "rax", "rbx"),       # faults after the fused pure run
    I("hlt"),
]

MID_BLOCK_BAD_LOAD = [
    I("movi", "rax", imm=0xDEAD_0000),   # unmapped
    I("movi", "rbx", imm=1),
    I("load", "rcx", "rax"),             # #PF mid-block
    I("addi", "rbx", imm=2),
    I("hlt"),
]


def test_divide_error_mid_superblock_raised():
    on = lockstep(load_at_k(MID_BLOCK_DIV0), expect=DivideError)
    assert on.cpu.rip == at(3)           # rip parked on the div


def test_divide_error_mid_superblock_delivered():
    def setup(m):
        m.load_code(HANDLER_VA, [I("addi", "r15", imm=1), I("hlt")])
        m.install_idt({0: HANDLER_VA})
        m.load_code(K, MID_BLOCK_DIV0)
        m.cpu.rip = K
    on = lockstep(setup, run=lambda m: m.cpu.run(deliver_faults=True))
    assert on.cpu.regs["r15"] == 1


def test_page_fault_mid_superblock_raised():
    on = lockstep(load_at_k(MID_BLOCK_BAD_LOAD), expect=PageFault)
    assert on.cpu.rip == at(2)           # rip parked on the load
    assert on.cpu.regs["rbx"] == 1       # earlier pure run retired


def test_page_fault_mid_superblock_delivered():
    def setup(m):
        m.load_code(HANDLER_VA, [I("addi", "r15", imm=1), I("hlt")])
        m.install_idt({14: HANDLER_VA})
        m.load_code(K, MID_BLOCK_BAD_LOAD)
        m.cpu.rip = K
    on = lockstep(setup, run=lambda m: m.cpu.run(deliver_faults=True))
    assert on.cpu.regs["r15"] == 1


def test_fetch_fault_at_block_entry():
    def setup(m):
        m.load_code(K, [I("jmp", imm=0xBAD_000)])  # jump into the void
        m.cpu.rip = K
    on = lockstep(setup, expect=PageFault)
    assert on.cpu.rip == 0xBAD_000


# --------------------------------------------------------------------------- #
# lockstep oracle: CET / IBT interactions with the burst path
# --------------------------------------------------------------------------- #

def arm_ibt(m):
    m.cpu.crs[4] |= regs.CR4_CET
    m.cpu.msrs[regs.IA32_S_CET] = regs.S_CET_ENDBR_EN


def test_lockstep_ibt_landing_pad():
    def setup(m):
        arm_ibt(m)
        m.load_code(K, [
            I("movi", "rax", imm=at(4)),   # 0
            I("icall", "rax"),             # 1: arms _ibt_wait
            I("hlt"),                      # 2
            I("nop"),                      # 3 (pad)
            I("endbr"),                    # 4: landing pad
            I("ret"),                      # 5
        ])
        m.cpu.rip = K
    lockstep(setup)


def test_lockstep_ibt_violation():
    def setup(m):
        arm_ibt(m)
        m.load_code(K, [
            I("movi", "rax", imm=at(3)),
            I("icall", "rax"),
            I("hlt"),
            I("nop"),                      # 3: not endbr -> #CP
        ])
        m.cpu.rip = K
    on = lockstep(setup, expect=ControlProtectionFault)
    assert on.cpu.rip == at(3)


# --------------------------------------------------------------------------- #
# lockstep oracle: step budgets bisecting a superblock
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("budget", [1, 2, 3, 4])
def test_budget_tail_bisects_block(budget):
    """run(max_steps=k) inside a block retires exactly k steps on both."""
    program = PROGRAMS["alu"]

    def partial(m):
        with pytest.raises(SimulatorError):
            m.cpu.run(max_steps=budget)
        return budget

    on = lockstep(load_at_k(program), run=partial)
    assert on.cpu.rip == at(budget)
    # and resuming finishes identically (re-entry mid-block)
    snaps = []
    for enabled in (False, True):
        m = make_machine(enabled)
        load_at_k(program)(m)
        with pytest.raises(SimulatorError):
            m.cpu.run(max_steps=budget)
        m.cpu.run()
        snaps.append(snapshot(m))
    assert snaps[0] == snaps[1]


def test_page_straddling_program_falls_back():
    """A code run crossing the page boundary stays bit-exact."""
    # 4096 % 12 == 4, so instruction 341 straddles pages 0 and 1
    program = [I("addi", "rax", imm=1) for _ in range(345)] + [I("hlt")]
    on = lockstep(load_at_k(program))
    assert on.cpu.regs["rax"] == 345


# --------------------------------------------------------------------------- #
# lockstep oracle: self-modifying code through a mutator segment
# --------------------------------------------------------------------------- #

def test_self_modifying_store_mid_block():
    """A store into the block's own later bytes must be honoured.

    The store rewrites the imm field of a movi further down the same
    superblock; the witness (code-frame version) dies, the burst stops
    at the mutator segment and the rebuilt block decodes the new bytes —
    exactly what the interpreter's per-instruction fetch sees.
    """
    w_va = 0x0050_0000
    patch_va = w_va + 4 * INSTR_SIZE + 4    # imm field of instruction 4

    def setup(m):
        fn = m.phys.alloc_frame("kernel")
        m.phys.frame(fn).materialize()
        m.aspace.map_page(w_va, fn, PTE_P | PTE_W, 0)
        program = [
            I("movi", "rax", imm=2),            # 0: the new immediate
            I("movi", "rbx", imm=patch_va),     # 1
            I("store", "rbx", "rax"),           # 2: rewrite instr 4's imm
            I("nop"),                           # 3
            I("movi", "rcx", imm=1),            # 4: becomes movi rcx, 2
            I("hlt"),                           # 5
        ]
        m.write_phys(w_va, b"".join(i.encode() for i in program))
        m.cpu.rip = w_va

    on = lockstep(setup)
    assert on.cpu.regs["rcx"] == 2


# --------------------------------------------------------------------------- #
# superblock invalidation: code/PTE witnesses
# --------------------------------------------------------------------------- #

def test_preload_builds_and_run_hits():
    m = make_machine(True)
    m.load_code(K, PROGRAMS["back_loop"])
    assert m.cpu.tcache.sb_builds > 0
    m.cpu.rip = K
    m.cpu.run()
    assert m.cpu.tcache.sb_hits > 0
    assert m.cpu.tcache.sb_exec > 0


def test_disabled_cache_retires_nothing_from_blocks():
    m = make_machine(False)
    m.load_code(K, PROGRAMS["back_loop"])
    m.cpu.rip = K
    m.cpu.run()
    assert m.cpu.tcache.sb_exec == 0
    assert m.cpu.mmu.tlb_hits == 0


def test_code_byte_write_invalidates_block():
    m = make_machine(True)
    m.load_code(K, [I("movi", "rax", imm=1), I("hlt")])
    m.cpu.rip = K
    m.cpu.run()
    assert m.cpu.regs["rax"] == 1
    # hot-patch the immediate through the loader (bumps Frame.version)
    m.write_phys(K, I("movi", "rax", imm=99).encode())
    m.cpu.rip = K
    m.cpu.run()
    assert m.cpu.regs["rax"] == 99


def test_code_page_remap_invalidates_block():
    m = make_machine(True)
    m.load_code(K, [I("movi", "rax", imm=1), I("hlt")])
    m.cpu.rip = K
    m.cpu.run()
    # CoW-style replacement: a different frame with different code
    new_fn = m.phys.alloc_frame("kernel")
    buf = m.phys.frame(new_fn).materialize()
    blob = b"".join(i.encode() for i in [I("movi", "rax", imm=7), I("hlt")])
    buf[:len(blob)] = blob
    m.aspace.map_page(K, new_fn, PTE_P, 0)
    m.cpu.rip = K
    m.cpu.run()
    assert m.cpu.regs["rax"] == 7


# --------------------------------------------------------------------------- #
# TLB invalidation matrix (MMU-level)
# --------------------------------------------------------------------------- #

VA = 0x0070_0000


class TestTlbInvalidation:
    def setup_method(self):
        self.m = make_machine(True)
        self.mmu = self.m.cpu.mmu
        self.ctx = AccessContext()

    def map_rw(self, va=VA):
        fn = self.m.phys.alloc_frame("kernel")
        self.m.phys.frame(fn).materialize()
        self.m.aspace.map_page(va, fn, PTE_P | PTE_W, 0)
        return fn

    def check(self, access="read", va=VA):
        return self.mmu.check(self.m.aspace, va, access, self.ctx)

    def assert_hit(self, access="read", va=VA):
        before = self.mmu.tlb_hits
        pa, _ = self.check(access, va)
        assert self.mmu.tlb_hits == before + 1
        return pa

    def test_hit_after_walk(self):
        self.map_rw()
        self.check("write")
        self.assert_hit("write")

    def test_mprotect_downgrade_misses(self):
        fn = self.map_rw()
        self.check("write")
        self.assert_hit("write")
        slot = self.m.aspace.leaf_slot(VA)
        pte = self.m.phys.read_u64(slot.pa)
        self.m.aspace.set_pte(VA, pte & ~PTE_W)   # mprotect / template seal
        with pytest.raises(PageFault):
            self.check("write")
        pa, _ = self.check("read")                # read-only still maps
        assert pa >> 12 == fn

    def test_clear_pte_unmaps(self):
        self.map_rw()
        self.check("read")
        self.assert_hit("read")
        self.m.aspace.clear_pte(VA)
        with pytest.raises(PageFault) as exc:
            self.check("read")
        assert not exc.value.present

    def test_cow_frame_replacement_retargets(self):
        fn_a = self.map_rw()
        self.m.phys.write(fn_a << 12, b"A" * 8)
        assert self.check("read")[0] >> 12 == fn_a
        self.assert_hit("read")
        # CoW resolution: same VA, new frame, new contents
        fn_b = self.m.phys.alloc_frame("kernel")
        self.m.phys.frame(fn_b).materialize()
        self.m.phys.write(fn_b << 12, b"B" * 8)
        self.m.aspace.map_page(VA, fn_b, PTE_P | PTE_W, 0)
        pa, _ = self.check("read")
        assert pa >> 12 == fn_b
        assert self.m.phys.read(pa, 8) == b"B" * 8

    def test_pool_scrub_slot_reuse_never_stale(self):
        """A freed + reallocated + remapped slot must re-walk, not hit."""
        fn_a = self.map_rw()
        self.check("write")
        self.assert_hit("write")
        self.m.aspace.clear_pte(VA)
        self.m.phys.free_frames([fn_a])
        fn_new = self.m.phys.alloc_frame("tenant-2")
        self.m.phys.frame(fn_new).materialize()
        self.m.phys.zero_frame(fn_new)            # pool scrub
        self.m.aspace.map_page(VA, fn_new, PTE_P | PTE_W, 0)
        pa, _ = self.check("write")
        assert pa >> 12 == fn_new
        assert self.m.phys.frame(pa >> 12).owner == "tenant-2"

    def test_direct_map_pte_scribble_misses(self):
        """A raw write to the PTE's physical bytes defeats the cache."""
        self.map_rw()
        self.check("write")
        self.assert_hit("write")
        slot = self.m.aspace.leaf_slot(VA)
        pte = self.m.phys.read_u64(slot.pa)
        self.m.phys.write_u64(slot.pa, pte & ~PTE_W)
        with pytest.raises(PageFault):
            self.check("write")

    def test_shadow_stack_flip_without_byte_write(self):
        fn = self.map_rw()
        self.check("write")
        self.assert_hit("write")
        self.m.phys.frame(fn).is_shadow_stack = True
        with pytest.raises(PageFault):
            self.check("write")                   # normal write now denied
        ss_ctx = AccessContext(shadow_stack_op=True)
        pa, _ = self.mmu.check(self.m.aspace, VA, "write", ss_ctx)
        assert pa >> 12 == fn

    def test_interior_entry_scribble_misses(self):
        """Zeroing the root entry kills hits even with the leaf intact."""
        self.map_rw()
        self.check("read")
        self.assert_hit("read")
        root_pa = (self.m.aspace.root_fn << 12) + ((VA >> 30) & 511) * 8
        saved = self.m.phys.read_u64(root_pa)
        self.m.phys.write_u64(root_pa, 0)
        with pytest.raises(PageFault) as exc:
            self.check("read")
        assert not exc.value.present
        self.m.phys.write_u64(root_pa, saved)
        self.check("read")                        # walk works again

    def test_flush_then_rewalk_same_answer(self):
        fn = self.map_rw()
        pa1, _ = self.check("read")
        self.mmu.tlb_flush()
        before = self.mmu.tlb_hits
        pa2, _ = self.check("read")
        assert pa1 == pa2 == ((fn << 12) | (VA & 0xFFF))
        assert self.mmu.tlb_hits == before        # it was a miss
        self.assert_hit("read")

    def test_neighbour_ad_traffic_keeps_entry(self):
        """A/D updates on a *neighbouring* PTE don't evict this entry."""
        self.map_rw()
        self.map_rw(VA + 4096)
        self.check("read")
        self.check("read", va=VA + 4096)          # sets A on the neighbour
        self.assert_hit("read")
