"""Gramine-like Library OS for Erebor sandboxes (and the LibOS-only baseline)."""

from .libos import (
    CommonSpec,
    DEBUGFS_IN,
    DEBUGFS_OUT,
    LibOs,
    Manifest,
    PreloadFile,
)
from .loader import (
    LoadedProgram,
    LoaderError,
    build_user_program,
    load_program,
    run_program,
)
from .memfs import MemFile, MemFs, MemFsError
from .threads import SPIN_SYNC_CYCLES, SyncStats, ThreadPool

__all__ = [
    "CommonSpec", "DEBUGFS_IN", "DEBUGFS_OUT", "LibOs", "LoadedProgram",
    "LoaderError", "Manifest", "MemFile", "MemFs", "MemFsError",
    "PreloadFile", "SPIN_SYNC_CYCLES", "SyncStats", "ThreadPool",
    "build_user_program", "load_program", "run_program",
]
