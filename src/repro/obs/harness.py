"""Observed benchmark runs: workload execution with obs attached.

:func:`run_observed` drives one ``(workload, setting)`` execution through
the regular :class:`~repro.bench.runner.WorkloadRunner`, but installs a
:class:`~repro.obs.trace.Tracer` and :class:`~repro.obs.metrics.MetricsRegistry`
on the machine's clock the moment the machine is created — before the
first cycle is charged — and wraps the whole run in a single root span.
Because the root opens at cycle 0 and :meth:`Tracer.finish` closes it at
the end, the folded profile attributes *every* simulated cycle to exactly
one call path (the conservation property the profiler tests pin).

:func:`export_bundle` turns an observed run into the self-describing JSON
payload emitted by ``python -m repro.obs`` and validated by
:func:`repro.obs.schema.check_export`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.runner import RunResult, WorkloadRunner
from .metrics import MetricsRegistry
from .trace import DEFAULT_CAPACITY, Tracer


@dataclass
class ObservedRun:
    """One instrumented execution and everything it recorded."""

    workload: str
    setting: str
    tracer: Tracer
    registry: MetricsRegistry
    result: RunResult
    clock: object          # the machine's CycleClock
    #: the machine itself, when the harness saw it — lets the budget
    #: ledger carve superblock cycles and attach translation stats
    machine: object = None


def run_observed(workload: str = "helloworld", setting: str = "erebor", *,
                 scale: float = 0.25, seed: int = 2025,
                 capacity: int = DEFAULT_CAPACITY,
                 trace: bool = True, flight=False) -> ObservedRun:
    """Run one workload with tracing + metrics attached; returns the run.

    ``flight`` installs a :class:`~repro.obs.flight.FlightRecorder`
    instead of the plain tracer (pass a
    :class:`~repro.obs.flight.FlightConfig` to tune its rings).
    """
    from . import install                      # late: avoid import cycle

    state: dict = {}

    def instrument(machine) -> None:
        tracer, registry = install(machine.clock, trace=trace,
                                   capacity=capacity, flight=flight)
        if tracer.enabled:
            # keep the root span open for the whole run; finish() closes it
            tracer.span(f"run:{workload}", "run",
                        setting=setting).__enter__()
        state["tracer"] = tracer
        state["registry"] = registry
        state["clock"] = machine.clock
        state["machine"] = machine

    runner = WorkloadRunner(scale=scale, seed=seed, instrument=instrument)
    result = runner.run(workload, setting)
    tracer = state["tracer"]
    tracer.finish()
    return ObservedRun(workload, setting, tracer, state["registry"],
                       result, state["clock"], state["machine"])


def export_bundle(run: ObservedRun) -> dict:
    """The JSON payload for one observed run (schema-checked in CI)."""
    from .export import trace_json
    from .profile import collapsed_stacks, total_attributed

    if run.tracer.enabled:
        trace = trace_json(run.tracer)
        profile = {
            "total_cycles": total_attributed(run.tracer),
            "collapsed": collapsed_stacks(run.tracer),
        }
    else:
        trace = {"clock": "simulated-cycles", "capacity": 0,
                 "dropped": 0, "events": []}
        profile = {"total_cycles": 0, "collapsed": []}

    from .ledger import capture_ledger

    return {
        "meta": {
            "workload": run.workload,
            "setting": run.setting,
            "cycles": run.clock.cycles,
            "seconds": run.clock.seconds,
            # SMP view: wall clock = furthest-ahead core; per-CPU
            # positions and busy (executing-core) cycles for each core
            "wall_cycles": run.clock.wall_cycles,
            "per_cpu_cycles": list(run.clock.per_cpu),
            "per_cpu_busy": [run.clock.cpu_busy(c)
                             for c in range(len(run.clock.per_cpu))],
            "dropped": trace["dropped"],
            # tamper-evident audit chain head at export time (see
            # core.monitor.verify_audit_chain); "" if nothing audited
            "audit_head": getattr(run.clock, "audit_head", ""),
            # boot-time CFG VerifierReport digest (repro.analysis);
            # "" on scan-only boots
            "cfg_report_digest": getattr(run.clock, "cfg_report_digest",
                                         ""),
            # boot-time dataflow DataflowReport digest (V8-V10);
            # "" when the plane is off
            "dataflow_report_digest": getattr(run.clock,
                                              "dataflow_report_digest", ""),
        },
        "trace": trace,
        "metrics": run.registry.snapshot(),
        "profile": profile,
        # plane-attribution budget: conservation-checked, read-only on
        # the clock, and outside every digest preimage
        "ledger": capture_ledger(run.clock, run.machine),
    }
