"""Exporters: Chrome trace_event JSON, Prometheus text, plain JSON.

The Chrome format (``chrome_trace``) loads directly in Perfetto or
``chrome://tracing``: spans become complete (``"X"``) events, instants
become ``"i"`` events, and timestamps are converted from simulated cycles
to microseconds at the modelled 2.1 GHz core frequency (the raw cycle
values ride along in ``args``). The Prometheus exposition
(``prometheus_text``) renders the live metrics registry — counters,
gauges and cumulative histogram buckets — in the standard text format.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hw.cycles import CPU_FREQ_HZ
from .metrics import MetricsRegistry, parse_label_key
from .trace import INSTANT, SPAN, Tracer

#: microseconds per simulated cycle at the modelled core frequency
_US_PER_CYCLE = 1e6 / CPU_FREQ_HZ


def cycles_to_us(cycles: int) -> float:
    return cycles * _US_PER_CYCLE


# --------------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------------- #

def chrome_trace(tracer: Tracer, *, pid: int = 1, tid: int = 1,
                 process_name: str = "erebor-sim") -> dict:
    """Render the ring buffer as a Chrome/Perfetto ``trace_event`` dict.

    Events recorded while a logical CPU was executing (``TraceEvent.cpu``
    set) land on their own thread lane (``tid = cpu + 1 + tid``), so an
    SMP run renders one swim-lane per core; serial-section events stay on
    the base ``tid``.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": process_name},
    }]
    cpus = sorted({e.cpu for e in tracer.events if e.cpu is not None})
    for cpu in cpus:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid + cpu + 1, "args": {"name": f"cpu{cpu}"}})
    for e in tracer.events:
        args = dict(e.args)
        args["cycles_begin"] = e.begin
        if e.trace is not None:            # bound request trace ID
            args["trace"] = e.trace
        record = {
            "name": e.name,
            "cat": e.cat or "trace",
            "pid": pid,
            "tid": tid if e.cpu is None else tid + e.cpu + 1,
            "ts": cycles_to_us(e.begin),
            "args": args,
        }
        if e.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = cycles_to_us(e.duration)
            args["cycles_dur"] = e.duration
        else:
            record["ph"] = "i"
            record["s"] = "t"
            if e.kind != INSTANT:          # audit events keep their kind
                args["kind"] = e.kind
        events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-cycles",
            "cpu_freq_hz": CPU_FREQ_HZ,
            "dropped_events": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | Path, **kw) -> dict:
    """Write a Perfetto-loadable trace file; returns the dict written."""
    trace = chrome_trace(tracer, **kw)
    Path(path).write_text(json.dumps(trace))
    return trace


# --------------------------------------------------------------------------- #
# plain JSON
# --------------------------------------------------------------------------- #

def trace_json(tracer: Tracer) -> dict:
    """The ring buffer as a self-describing JSON-able dict."""
    return {
        "clock": "simulated-cycles",
        "capacity": tracer.events.capacity,
        "dropped": tracer.dropped,
        "events": [e.to_dict() for e in tracer.events],
    }


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #

def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _fmt_labels(key: str, extra: dict | None = None) -> str:
    labels = parse_label_key(key)
    if extra:
        labels.update(extra)
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(v: float) -> str:
    return str(int(v)) if float(v).is_integer() else repr(float(v))


def prometheus_text(registry: MetricsRegistry,
                    tracer: Tracer | None = None) -> str:
    """Render the registry in the Prometheus text exposition format.

    Pass the live ``tracer`` to additionally expose its ring-buffer
    health — how many events the bounded ring has discarded — so
    scrapers can alarm on silent trace loss.
    """
    lines: list[str] = []
    help_texts = getattr(registry, "_help", {})

    if tracer is not None:
        lines.append("# HELP erebor_obs_trace_dropped_events_total "
                     "Events discarded by the bounded trace ring")
        lines.append("# TYPE erebor_obs_trace_dropped_events_total counter")
        lines.append(f"erebor_obs_trace_dropped_events_total "
                     f"{tracer.dropped}")

    exemplars = getattr(registry, "exemplars", {})

    for name in sorted(registry.counters):
        if name in help_texts:
            lines.append(f"# HELP {name} {help_texts[name]}")
        lines.append(f"# TYPE {name} counter")
        for key in sorted(registry.counters[name]):
            line = (f"{name}{_fmt_labels(key)} "
                    f"{_fmt_value(registry.counters[name][key])}")
            exemplar = exemplars.get(name, {}).get(key)
            if exemplar:
                # OpenMetrics exemplar: name one offending request so the
                # series links back to its causal span tree (reqtrace)
                line += f' # {{trace_id="{_escape(exemplar)}"}} 1'
            lines.append(line)

    for name in sorted(registry.gauges):
        if name in help_texts:
            lines.append(f"# HELP {name} {help_texts[name]}")
        lines.append(f"# TYPE {name} gauge")
        for key in sorted(registry.gauges[name]):
            lines.append(f"{name}{_fmt_labels(key)} "
                         f"{_fmt_value(registry.gauges[name][key])}")

    for name in sorted(registry.histograms):
        if name in help_texts:
            lines.append(f"# HELP {name} {help_texts[name]}")
        lines.append(f"# TYPE {name} histogram")
        for key in sorted(registry.histograms[name]):
            hist = registry.histograms[name][key]
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["buckets"]):
                cumulative += count
                lines.append(f"{name}_bucket{_fmt_labels(key, {'le': bound})} "
                             f"{cumulative}")
            lines.append(f"{name}_bucket{_fmt_labels(key, {'le': '+Inf'})} "
                         f"{hist['count']}")
            lines.append(f"{name}_sum{_fmt_labels(key)} "
                         f"{_fmt_value(hist['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(key)} {hist['count']}")

    return "\n".join(lines) + "\n"
