"""LibOS tests: both sandboxed and plain boots, all four services."""

import pytest

from repro.core import SandboxViolation, erebor_boot
from repro.hw.memory import PAGE_SIZE
from repro.libos import CommonSpec, LibOs, Manifest, MemFsError, PreloadFile
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def system():
    return erebor_boot(CvmMachine(MachineConfig(memory_bytes=512 * MIB)),
                       cma_bytes=64 * MIB)


def manifest(**kw):
    defaults = dict(name="app", heap_bytes=2 * MIB, threads=4,
                    preload=[PreloadFile("/lib/libc.so", b"\x7fELF" + b"x" * 100),
                             PreloadFile("/data/model.bin", synthetic_size=1 * MIB)],
                    common=[CommonSpec("weights", 1 * MIB, initializer=True)])
    defaults.update(kw)
    return Manifest(**defaults)


def test_boot_sandboxed_declares_everything(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    sb = libos.sandbox
    assert sb.state == "ready"
    assert libos.heap_vma.kind == "confined"
    assert len(sb.threads) == 4
    assert libos.fs.exists("/lib/libc.so")
    assert "weights" in libos.common_vmas
    assert libos.device_fd is not None


def test_heap_is_prefaulted_at_boot(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    # all heap pages already mapped: touching them faults zero times
    assert libos.touch_range(libos.heap_vma.start, 2 * MIB, write=True) == 0


def test_malloc_bump_allocation(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    a = libos.malloc(100)
    b = libos.malloc(100)
    assert b > a >= libos.heap_vma.start
    with pytest.raises(MemoryError):
        libos.malloc(10 * MIB)


def test_memfs_roundtrip_and_wipe(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    fd = libos.fs.open("/tmp/scratch", create=True)
    libos.fs.write(fd, b"hello")
    libos.fs.close(fd)
    fd = libos.fs.open("/tmp/scratch")
    assert libos.fs.read(fd, 5) == b"hello"
    libos.end_session()
    assert not libos.fs.exists("/tmp/scratch")      # temp file gone
    assert libos.fs.exists("/lib/libc.so")          # preloads survive


def test_memfs_preloads_read_only(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    fd = libos.fs.open("/lib/libc.so")
    with pytest.raises(MemFsError):
        libos.fs.write(fd, b"patch")


def test_memfs_synthetic_reads(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    fd = libos.fs.open("/data/model.bin")
    chunk = libos.fs.read(fd, 4096)
    assert len(chunk) == 4096


def test_locked_sandbox_memfs_needs_no_syscalls(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    libos.sandbox.install_input(b"data")
    assert libos.sandbox.locked
    # memfs operations still work: pure userspace
    fd = libos.fs.open("/tmp/out", create=True)
    libos.fs.write(fd, b"result")
    assert libos.sandbox.locked and not libos.sandbox.dead


def test_libos_sync_always_spins_no_syscalls(system):
    """§6.2: the LibOS uses its own spinlock — futex would be a covert
    channel once locked, so no sync ever issues a syscall."""
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    before = system.machine.clock.events["syscall"]
    libos.pool.sync()
    assert libos.pool.stats.spin_cycles > 0
    libos.sandbox.install_input(b"go")
    libos.pool.sync()
    assert libos.pool.stats.sync_points == 2
    assert system.machine.clock.events["syscall"] == before
    assert not libos.sandbox.dead


def test_parallel_for_scales_with_threads(system):
    libos = LibOs.boot_sandboxed(system, manifest(threads=8),
                                 confined_budget=8 * MIB)
    libos.sandbox.install_input(b"go")
    before = system.machine.clock.cycles
    libos.pool.parallel_for(80, 10_000, sync_every=10)
    wall = system.machine.clock.cycles - before
    assert wall < 80 * 10_000  # 8-way split beats serial


def test_channel_ioctl_flow_when_locked(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    libos.sandbox.install_input(b"prompt")
    assert libos.recv_input() == b"prompt"
    libos.send_output(b"answer")
    assert libos.sandbox.take_output() == b"answer"
    assert not libos.sandbox.dead   # ioctl is the one legal syscall


def test_plain_boot_uses_debugfs_channel():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    kernel = machine.boot_native_kernel()
    libos = LibOs.boot_plain(kernel, manifest())
    from repro.libos import DEBUGFS_IN
    kernel.vfs.lookup(DEBUGFS_IN).write_at(0, b"plain-input")
    assert libos.recv_input() == b"plain-input"
    libos.send_output(b"plain-output")
    from repro.libos import DEBUGFS_OUT
    assert kernel.vfs.lookup(DEBUGFS_OUT).read_at(0, 100) == b"plain-output"


def test_plain_common_memory_shared_through_page_cache():
    machine = CvmMachine(MachineConfig(memory_bytes=256 * MIB))
    kernel = machine.boot_native_kernel()
    m = manifest(common=[CommonSpec("weights", 1 * MIB)])
    l1 = LibOs.boot_plain(kernel, m)
    l2 = LibOs.boot_plain(kernel, Manifest(name="app2", heap_bytes=1 * MIB,
                                           common=[CommonSpec("weights", 1 * MIB)]))
    l1.touch_common("weights", PAGE_SIZE)
    l2.touch_common("weights", PAGE_SIZE)
    f1 = l1.task.aspace.mapped_frame(l1.common_vmas["weights"].start)
    f2 = l2.task.aspace.mapped_frame(l2.common_vmas["weights"].start)
    assert f1 == f2


def test_sandboxed_syscall_after_lock_still_kills(system):
    libos = LibOs.boot_sandboxed(system, manifest(), confined_budget=8 * MIB)
    libos.sandbox.install_input(b"go")
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(libos.task, "getpid")
