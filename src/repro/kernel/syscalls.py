"""Syscall handlers (Linux-flavoured, macro level).

Each handler charges in-kernel work and uses the kernel's subsystems; the
syscall transition cost itself (Table 3's 684 cycles) plus any Erebor
interposition is charged by :meth:`GuestKernel.syscall` before dispatch.
Handlers deliberately mirror the subset Gramine forwards or emulates:
file I/O, memory, tasking, synchronization, sockets, and ioctl.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..hw.cycles import Cost
from .process import PROT_READ, PROT_WRITE, Task
from .vfs import FsError, OpenFile

if TYPE_CHECKING:
    from .kernel import GuestKernel

# modelled in-kernel handler work (beyond the transition), cycles
HANDLER_WORK = {
    "open": 1200, "close": 300, "read": 900, "write": 950, "stat": 700,
    "mmap": 1400, "munmap": 1100, "brk": 600, "clone": 9000, "futex": 850,
    "ioctl": 500, "getpid": 60, "sched_yield": 400, "nanosleep": 700,
    "socket": 900, "bind": 500, "listen": 450, "connect": 1300,
    "accept": 1100, "send": 1000, "recv": 950, "exit": 2000, "unlink": 800,
    "sendfile": 1100, "pread": 900, "waitpid": 1200, "lseek": 350,
    "dup": 400,
}

TABLE: dict[str, Callable] = {}


def syscall(fn: Callable) -> Callable:
    name = fn.__name__.removeprefix("sys_")
    TABLE[name] = fn
    return fn


def _work(kernel: "GuestKernel", name: str) -> None:
    kernel.clock.charge(HANDLER_WORK.get(name, 500), "syscall_work")


# --------------------------------------------------------------------------- #
# files
# --------------------------------------------------------------------------- #

@syscall
def sys_open(kernel, task: Task, path: str, *, create: bool = False,
             write: bool = False, truncate: bool = False) -> int:
    _work(kernel, "open")
    handle = kernel.vfs.open(path, create=create, write=write, truncate=truncate)
    return task.alloc_fd(handle)


@syscall
def sys_close(kernel, task: Task, fd: int) -> int:
    _work(kernel, "close")
    task.fds.pop(fd, None)
    return 0


def _file(task: Task, fd: int) -> OpenFile:
    handle = task.fds.get(fd)
    if not isinstance(handle, OpenFile):
        raise FsError(f"bad file descriptor {fd}")
    return handle


@syscall
def sys_read(kernel, task: Task, fd: int, size: int) -> bytes:
    _work(kernel, "read")
    handle = _file(task, fd)
    data = handle.inode.read_at(handle.offset, size)
    handle.offset += len(data)
    kernel.ops.user_copy(len(data), to_user=True)
    return data


@syscall
def sys_write(kernel, task: Task, fd: int, data: bytes) -> int:
    _work(kernel, "write")
    handle = _file(task, fd)
    kernel.ops.user_copy(len(data), to_user=False)
    written = handle.inode.write_at(handle.offset, data)
    handle.offset += written
    return written


@syscall
def sys_stat(kernel, task: Task, path: str) -> dict:
    _work(kernel, "stat")
    inode = kernel.vfs.lookup(path)
    return {"size": inode.size}


@syscall
def sys_unlink(kernel, task: Task, path: str) -> int:
    _work(kernel, "unlink")
    kernel.vfs.unlink(path)
    return 0


# --------------------------------------------------------------------------- #
# memory
# --------------------------------------------------------------------------- #

@syscall
def sys_mmap(kernel, task: Task, length: int, prot: int = PROT_READ | PROT_WRITE,
             **kw):
    _work(kernel, "mmap")
    return kernel.mmap(task, length, prot, **kw)


@syscall
def sys_munmap(kernel, task: Task, vma) -> int:
    _work(kernel, "munmap")
    kernel.munmap(task, vma)
    return 0


@syscall
def sys_brk(kernel, task: Task, new_brk: int) -> int:
    _work(kernel, "brk")
    return kernel.brk(task, new_brk)


# --------------------------------------------------------------------------- #
# tasking / sync
# --------------------------------------------------------------------------- #

@syscall
def sys_clone(kernel, task: Task, name: str | None = None) -> Task:
    """Spawn a sibling task sharing the VFS (thread-like)."""
    _work(kernel, "clone")
    child = kernel.spawn(name or f"{task.name}-child", kind=task.kind)
    child.sandbox = task.sandbox
    return child


@syscall
def sys_futex(kernel, task: Task, op: str = "wait") -> int:
    _work(kernel, "futex")
    kernel.clock.count("futex")
    return 0


@syscall
def sys_getpid(kernel, task: Task) -> int:
    _work(kernel, "getpid")
    return task.pid


@syscall
def sys_sched_yield(kernel, task: Task) -> int:
    _work(kernel, "sched_yield")
    kernel._pick_next()
    return 0


@syscall
def sys_nanosleep(kernel, task: Task, cycles: int) -> int:
    _work(kernel, "nanosleep")
    kernel.advance(cycles, task)
    return 0


@syscall
def sys_exit(kernel, task: Task, code: int = 0) -> int:
    _work(kernel, "exit")
    kernel.exit_task(task, code)
    return 0


@syscall
def sys_waitpid(kernel, task: Task, pid: int, *, max_ticks: int = 1000) -> int:
    """Wait for a child to exit; the caller burns timeslices until then."""
    _work(kernel, "waitpid")
    child = kernel.tasks.get(pid)
    if child is None:
        raise ValueError(f"waitpid: no such task {pid}")
    ticks = 0
    while child.state != "dead" and ticks < max_ticks:
        kernel.advance(kernel.tick_period, task)
        ticks += 1
    if child.state != "dead":
        raise TimeoutError(f"waitpid: task {pid} still running "
                           f"after {max_ticks} ticks")
    return child.exit_code or 0


@syscall
def sys_lseek(kernel, task: Task, fd: int, offset: int) -> int:
    _work(kernel, "lseek")
    handle = _file(task, fd)
    handle.offset = offset
    return offset


@syscall
def sys_dup(kernel, task: Task, fd: int) -> int:
    _work(kernel, "dup")
    handle = task.fds.get(fd)
    if handle is None:
        raise FsError(f"dup: bad fd {fd}")
    return task.alloc_fd(handle)


# --------------------------------------------------------------------------- #
# sockets
# --------------------------------------------------------------------------- #

@syscall
def sys_socket(kernel, task: Task) -> int:
    _work(kernel, "socket")
    return task.alloc_fd(None)  # bound on listen/connect


@syscall
def sys_listen(kernel, task: Task, fd: int, port: int) -> int:
    _work(kernel, "listen")
    task.fds[fd] = kernel.net.listen(port)
    return 0


@syscall
def sys_connect(kernel, task: Task, fd: int, port: int) -> int:
    _work(kernel, "connect")
    task.fds[fd] = kernel.net.connect(port)
    return 0


@syscall
def sys_accept(kernel, task: Task, fd: int) -> int:
    _work(kernel, "accept")
    conn = kernel.net.accept(task.fds[fd])
    return task.alloc_fd(conn)


@syscall
def sys_send(kernel, task: Task, fd: int, data: bytes = b"", *,
             nbytes: int | None = None) -> int:
    _work(kernel, "send")
    return kernel.net.send(task.fds[fd], data, nbytes=nbytes)


@syscall
def sys_pread(kernel, task: Task, fd: int, size: int, offset: int) -> bytes:
    """Positional read: same copy path as read, explicit offset."""
    _work(kernel, "pread")
    handle = _file(task, fd)
    data = handle.inode.read_at(offset, size)
    kernel.ops.user_copy(len(data), to_user=True)
    return data


@syscall
def sys_sendfile(kernel, task: Task, sock_fd: int, file_fd: int,
                 nbytes: int) -> int:
    """Zero-user-copy transmit from the page cache to a socket.

    The kernel moves pages internally, so no stac/user-copy is involved —
    which is why nginx-style servers keep most of their throughput under
    Erebor (Fig. 10): the monitor only sees the syscall entry itself.
    """
    _work(kernel, "sendfile")
    return kernel.net.send(task.fds[sock_fd], nbytes=nbytes,
                           kernel_internal=True)


@syscall
def sys_recv(kernel, task: Task, fd: int) -> bytes:
    _work(kernel, "recv")
    data = kernel.net.recv(task.fds[fd])
    kernel.ops.user_copy(len(data), to_user=True)
    return data


# --------------------------------------------------------------------------- #
# ioctl (the Erebor channel rides on this)
# --------------------------------------------------------------------------- #

@syscall
def sys_ioctl(kernel, task: Task, fd: int, request: str, payload=None):
    _work(kernel, "ioctl")
    handle = task.fds.get(fd)
    target = handle
    if isinstance(handle, OpenFile):
        target = handle.inode
    if target is None or not hasattr(target, "ioctl"):
        raise FsError(f"fd {fd} does not support ioctl")
    return target.ioctl(kernel, task, request, payload)
