"""Hardware fault and exception types raised by the simulated platform.

Faults mirror the x86 exceptions the Erebor paper relies on:

* ``#PF`` (:class:`PageFault`) — paging permission or presence violations.
* ``#GP`` (:class:`GeneralProtectionFault`) — privileged instruction from
  user mode, malformed descriptor loads, etc.
* ``#CP`` (:class:`ControlProtectionFault`) — CET violations (a missed
  ``endbr64`` landing pad or a shadow-stack return mismatch).
* ``#VE`` (:class:`VirtualizationException`) — TDX-injected exception for
  synchronous guest exits the host must emulate.

All faults derive from :class:`HardwareFault` so callers can uniformly trap
"the CPU faulted" without enumerating vectors.
"""

from __future__ import annotations


class SimulatorError(Exception):
    """Internal simulator misuse (a bug in calling code, not a guest fault)."""


class HardwareFault(Exception):
    """Base class for faults the simulated CPU can raise.

    Attributes:
        vector: x86-style exception vector number.
        description: human-readable cause.
    """

    vector = -1

    def __init__(self, description: str = ""):
        super().__init__()
        self.description = description

    def __str__(self) -> str:
        # formatted lazily: fault delivery is a hot simulated path and the
        # message is only ever rendered for unhandled faults and test output
        return f"{type(self).__name__}(vector={self.vector}): {self.description}"


class DivideError(HardwareFault):
    """#DE — divide by zero."""

    vector = 0


class InvalidOpcode(HardwareFault):
    """#UD — undefined or malformed instruction encoding."""

    vector = 6


class DoubleFault(HardwareFault):
    """#DF — a fault occurred while delivering another fault."""

    vector = 8


class GeneralProtectionFault(HardwareFault):
    """#GP — privilege or segmentation violation."""

    vector = 13


class PageFault(HardwareFault):
    """#PF — raised by the MMU on translation or permission failure.

    Attributes:
        address: faulting virtual address.
        is_write: the access was a write.
        is_exec: the access was an instruction fetch.
        is_user: the access originated from user mode.
        present: the mapping existed but permissions failed (vs. not-present).
        pkey_violation: the failure came from a protection-key check.
    """

    vector = 14

    def __init__(
        self,
        address: int,
        *,
        is_write: bool = False,
        is_exec: bool = False,
        is_user: bool = False,
        present: bool = False,
        pkey_violation: bool = False,
        description: str = "",
    ):
        Exception.__init__(self)
        self.address = address
        self.is_write = is_write
        self.is_exec = is_exec
        self.is_user = is_user
        self.present = present
        self.pkey_violation = pkey_violation
        self._description = description

    @property
    def description(self) -> str:
        return self._description or (
            f"addr={self.address:#x} write={self.is_write} "
            f"exec={self.is_exec} user={self.is_user} "
            f"present={self.present} pkey={self.pkey_violation}"
        )

    @description.setter
    def description(self, value: str) -> None:
        self._description = value


class ControlProtectionFault(HardwareFault):
    """#CP — CET control-flow integrity violation."""

    vector = 21

    def __init__(self, description: str = "", *, missing_endbranch: bool = False,
                 shadow_stack_mismatch: bool = False):
        self.missing_endbranch = missing_endbranch
        self.shadow_stack_mismatch = shadow_stack_mismatch
        super().__init__(description)


class VirtualizationException(HardwareFault):
    """#VE — TDX virtualization exception for synchronous exits.

    Attributes:
        exit_reason: symbolic reason (e.g. ``"cpuid"``, ``"wrmsr"``, ``"hypercall"``).
        exit_qualification: reason-specific payload.
    """

    vector = 20

    def __init__(self, exit_reason: str, exit_qualification: object = None,
                 description: str = ""):
        self.exit_reason = exit_reason
        self.exit_qualification = exit_qualification
        super().__init__(description or f"reason={exit_reason}")


class MachineCheck(HardwareFault):
    """#MC — fatal hardware integrity error (e.g. TDX memory poisoning)."""

    vector = 18
