"""The artifact's minimal sandbox program: no input, outputs "AA..A".

Mirrors the paper's Helloworld demo (artifact experiment E2): it needs no
client input and emits ``0x4141..41`` through the monitor's output
channel — the smallest program exercising the whole sandbox pipeline.
"""

from __future__ import annotations

from .base import MIB, Workload, WorkloadProfile, register


@register
class HelloworldWorkload(Workload):
    name = "helloworld"
    description = "minimal demo sandbox: outputs ten 'A' bytes"

    @property
    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(heap_bytes=1 * MIB, threads=1,
                               bg_mmu_ops_per_tick=2, bg_copy_ops_per_tick=1)

    def default_request(self) -> bytes:
        return b""

    def serve(self, rt, request: bytes) -> bytes:
        buf = rt.malloc(4096)
        rt.touch_range(buf, 4096, write=True)
        rt.compute(1_000_000)
        output = b"A" * 10
        rt.send_output(output)
        return output
