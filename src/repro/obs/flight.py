"""Flight recorder: always-on bounded per-CPU rings + black-box dumps.

A :class:`FlightRecorder` is a :class:`~repro.obs.trace.Tracer` (every
exporter, the profiler, and the bundle harness work on it unchanged) that
additionally mirrors each record into a small bounded ring *per logical
CPU*. When a trigger fires — a security violation, a C1–C8 check failure,
an SLO breach (see :meth:`~repro.obs.trace.NullTracer.trigger` call sites
in ``core/monitor.py``, ``core/sandbox.py``, ``fleet/pool.py`` and the
SLO monitor) — the recorder freezes the last ``lookback_kcycles``
kilocycles of every core's ring into a :class:`FlightDump`: a
self-describing JSON payload that also carries a Chrome ``traceEvents``
view (one thread lane per CPU), the audit-chain head digest at the
moment of the trigger, and a per-CPU utilization timeline.

Like every obs component the recorder only *reads* the cycle clock; it
never charges it, so the simulated timeline is byte-identical with the
recorder on or off (the overhead benchmark pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .ring import RingBuffer
from .trace import DEFAULT_CAPACITY, SPAN, TraceEvent, Tracer

#: ring key used for records charged in serial sections (no executing CPU)
SERIAL = -1


@dataclass
class FlightConfig:
    """Bounds of the always-on recorder and its dumps."""

    #: per-CPU ring capacity (events); small by design — recent history only
    ring_capacity: int = 4096
    #: dump window: keep events ending within the last N kilocycles
    lookback_kcycles: int = 50
    #: freeze at most this many dumps (later triggers only count)
    max_dumps: int = 4
    #: buckets in the per-CPU utilization timeline of each dump
    timeline_buckets: int = 20


class FlightRecorder(Tracer):
    """Recording tracer with per-CPU recent-history rings and dumps."""

    __slots__ = ("config", "rings", "dumps", "triggers")

    def __init__(self, clock, config: FlightConfig | None = None,
                 capacity: int = DEFAULT_CAPACITY):
        super().__init__(clock, capacity=capacity)
        self.config = config or FlightConfig()
        #: cpu id (SERIAL for serial sections) → bounded recent-event ring
        self.rings: dict[int, RingBuffer[TraceEvent]] = {}
        self.dumps: list[FlightDump] = []
        self.triggers = 0

    # -- recording ------------------------------------------------------- #

    def _emit(self, event: TraceEvent) -> None:
        # hot path: every record passes through here; the event is a bare
        # tuple (cpu = slot 8) and is mirrored by reference, not copied.
        # Both ring appends are inlined (increment + C append) — two
        # method calls per record is measurable at fleet scale.
        events = self.events
        events.pushed += 1
        events._buf.append(event)
        cpu = event[8]
        if cpu is None:
            cpu = SERIAL
        ring = self.rings.get(cpu)
        if ring is None:
            ring = self.rings[cpu] = RingBuffer(self.config.ring_capacity)
        ring.pushed += 1
        ring._buf.append(event)

    def trigger(self, reason: str, detail: str = "") -> None:
        """Record the trigger event, then freeze a black-box dump.

        The dump names the request trace ID bound at the moment of the
        trigger (when any) — the offending request is the exemplar the
        on-call flow starts from (``repro.obs.reqtrace`` resolves it to
        the full causal span tree).
        """
        super().trigger(reason, detail)       # instant flight:<reason> event
        self.triggers += 1
        if len(self.dumps) < self.config.max_dumps:
            self.dumps.append(self._freeze(reason, detail))

    # -- freezing -------------------------------------------------------- #

    def _freeze(self, reason: str, detail: str) -> "FlightDump":
        from .ledger import capture_ledger   # late: ledger imports hw.cycles

        now = self.clock.cycles
        window_start = max(0, now - self.config.lookback_kcycles * 1000)
        events_by_cpu: dict[int, list[TraceEvent]] = {}
        dropped_by_cpu: dict[int, int] = {}
        for cpu in sorted(self.rings):
            ring = self.rings[cpu]
            events_by_cpu[cpu] = [e for e in ring if e.end >= window_start]
            dropped_by_cpu[cpu] = ring.dropped
        return FlightDump(
            reason=reason, detail=detail, cycle=now,
            window_start=window_start,
            lookback_kcycles=self.config.lookback_kcycles,
            audit_head=getattr(self.clock, "audit_head", ""),
            wall_cycles=self.clock.wall_cycles,
            per_cpu_cycles=list(self.clock.per_cpu),
            events_by_cpu=events_by_cpu,
            dropped_by_cpu=dropped_by_cpu,
            timeline_buckets=self.config.timeline_buckets,
            trace_id=self._trace or "",
            # where the budget stood when the box froze: the postmortem
            # can see which plane was eating the machine at the trigger
            ledger=capture_ledger(self.clock),
        )

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self.events)} events, "
                f"{len(self.rings)} rings, {self.triggers} triggers, "
                f"{len(self.dumps)} dumps)")


@dataclass
class FlightDump:
    """One frozen black box: the recent past of every core at a trigger."""

    reason: str
    detail: str
    cycle: int                      # trigger timestamp (serial clock)
    window_start: int               # oldest cycle retained in the dump
    lookback_kcycles: int
    audit_head: str                 # audit-chain head at freeze time
    wall_cycles: int
    per_cpu_cycles: list[int]
    events_by_cpu: dict[int, list[TraceEvent]]
    dropped_by_cpu: dict[int, int] = field(default_factory=dict)
    timeline_buckets: int = 20
    #: request trace ID bound when the trigger fired ("" = none bound)
    trace_id: str = ""
    #: plane-attribution budget snapshot at freeze time (repro.obs.ledger)
    ledger: dict = field(default_factory=dict)

    def event_count(self) -> int:
        return sum(len(v) for v in self.events_by_cpu.values())

    def to_dict(self) -> dict:
        per_cpu = {}
        for cpu, events in sorted(self.events_by_cpu.items()):
            key = "serial" if cpu == SERIAL else str(cpu)
            per_cpu[key] = {
                "events": [e.to_dict() for e in events],
                "dropped": self.dropped_by_cpu.get(cpu, 0),
            }
        return {
            "reason": self.reason,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "cycle": self.cycle,
            "window": {
                "start": self.window_start,
                "end": self.cycle,
                "lookback_kcycles": self.lookback_kcycles,
            },
            "audit_head": self.audit_head,
            "wall_cycles": self.wall_cycles,
            "per_cpu_cycles": list(self.per_cpu_cycles),
            "per_cpu": per_cpu,
            "ledger": dict(self.ledger),
            "utilization": utilization_timeline(
                self.events_by_cpu, self.window_start, self.cycle,
                buckets=self.timeline_buckets),
            "traceEvents": self._chrome_events(),
        }

    def _chrome_events(self) -> list[dict]:
        """Chrome ``trace_event`` view: one thread lane per CPU."""
        from .export import cycles_to_us   # late: export imports hw.cycles

        events: list[dict] = [{
            "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
            "args": {"name": f"erebor-flight:{self.reason}"},
        }]
        lanes = sorted(self.events_by_cpu)
        for cpu in lanes:
            tid = 0 if cpu == SERIAL else cpu + 1
            name = "serial" if cpu == SERIAL else f"cpu{cpu}"
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": name}})
        for cpu in lanes:
            tid = 0 if cpu == SERIAL else cpu + 1
            for e in self.events_by_cpu[cpu]:
                args = dict(e.args)
                args["cycles_begin"] = e.begin
                if e.trace is not None:
                    args["trace"] = e.trace
                record = {
                    "name": e.name, "cat": e.cat or "trace",
                    "pid": 1, "tid": tid,
                    "ts": cycles_to_us(e.begin), "args": args,
                }
                if e.kind == SPAN:
                    record["ph"] = "X"
                    record["dur"] = cycles_to_us(e.duration)
                    args["cycles_dur"] = e.duration
                else:
                    record["ph"] = "i"
                    record["s"] = "t"
                events.append(record)
        return events

    def write(self, path: str | Path) -> dict:
        """Serialize the dump to ``path``; returns the dict written."""
        payload = self.to_dict()
        Path(path).write_text(json.dumps(payload, indent=2))
        return payload


def utilization_timeline(events_by_cpu: dict[int, list[TraceEvent]],
                         start: int, end: int, *,
                         buckets: int = 20) -> dict:
    """Per-CPU busy fraction over ``buckets`` equal slices of [start, end].

    Busy time is the interval *union* of span events per core (nested
    spans never double-count), clipped to the window. Serial-section
    records (cpu ``SERIAL``) are excluded: barrier work belongs to no
    single core.
    """
    span = max(end - start, 1)
    buckets = max(buckets, 1)
    width = span / buckets
    timeline: dict[str, list[float]] = {}
    for cpu, events in sorted(events_by_cpu.items()):
        if cpu == SERIAL:
            continue
        intervals = sorted(
            (max(e.begin, start), min(e.end, end))
            for e in events if e.kind == SPAN and e.end > start)
        merged: list[list[int]] = []
        for lo, hi in intervals:
            if hi <= lo:
                continue
            if merged and lo <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        fractions = []
        for b in range(buckets):
            b_lo = start + b * width
            b_hi = start + (b + 1) * width
            covered = sum(max(0.0, min(hi, b_hi) - max(lo, b_lo))
                          for lo, hi in merged)
            fractions.append(round(covered / width, 6))
        timeline[str(cpu)] = fractions
    return {
        "start": start, "end": end, "buckets": buckets,
        "bucket_cycles": round(width, 6), "cpus": timeline,
    }
