"""Chunked channel transfers, monitor audit log, and determinism tests."""

import pytest

from repro.client import RemoteClient
from repro.core import PolicyViolation, SandboxViolation, erebor_boot, published_measurement
from repro.core.channel import SecureChannel, UntrustedProxy
from repro.crypto import AeadError
from repro.vm import CvmMachine, MachineConfig, MIB


@pytest.fixture
def rig():
    machine = CvmMachine(MachineConfig(memory_bytes=512 * MIB))
    system = erebor_boot(machine, cma_bytes=64 * MIB)
    sandbox = system.monitor.create_sandbox("svc", confined_budget=8 * MIB)
    sandbox.declare_confined(2 * MIB)
    channel = SecureChannel(system.monitor, sandbox)
    proxy = UntrustedProxy(system.monitor)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    return machine, system, sandbox, channel, proxy, client


# --- chunked transfers -------------------------------------------------------

def test_chunked_request_reassembles(rig):
    machine, system, sandbox, channel, proxy, client = rig
    payload = bytes(range(256)) * 1500          # 384 kB
    n = client.request_chunked(proxy, channel, payload, chunk_size=64 * 1024)
    assert n == 6
    assert sandbox.locked
    assert sandbox.take_input() == payload


def test_chunked_request_single_chunk(rig):
    machine, system, sandbox, channel, proxy, client = rig
    client.request_chunked(proxy, channel, b"small", chunk_size=1024)
    assert sandbox.take_input() == b"small"


def test_chunk_reorder_rejected(rig):
    machine, system, sandbox, channel, proxy, client = rig
    from repro.core.channel import SecureChannel as SC
    r1 = client.tx.seal(bytes([SC.CHUNK_MORE]) + b"a", aad=b"chunk")
    r2 = client.tx.seal(bytes([SC.CHUNK_FINAL]) + b"b", aad=b"chunk")
    with pytest.raises(AeadError):
        channel.deliver_chunk(r2)     # out of order: seq mismatch


def test_chunk_plaintext_never_visible(rig):
    machine, system, sandbox, channel, proxy, client = rig
    secret = b"CHUNKED-SECRET-PAYLOAD" * 100
    client.request_chunked(proxy, channel, secret, chunk_size=512)
    assert b"CHUNKED-SECRET" not in machine.vmm.observed_blob()
    assert not proxy.log.saw(b"CHUNKED-SECRET")


def test_bad_chunk_flag_rejected(rig):
    machine, system, sandbox, channel, proxy, client = rig
    record = client.tx.seal(bytes([0x7F]) + b"x", aad=b"chunk")
    with pytest.raises(PolicyViolation):
        channel.deliver_chunk(record)


# --- audit log -----------------------------------------------------------------

def test_audit_records_lifecycle_and_denials(rig):
    machine, system, sandbox, channel, proxy, client = rig
    client.request(proxy, channel, b"data")
    with pytest.raises(PolicyViolation):
        system.monitor.ops.write_cr(4, 0)
    with pytest.raises(SandboxViolation):
        system.kernel.syscall(sandbox.task, "getpid")
    kinds = [e.kind for e in system.monitor.audit_log]
    assert "verify" in kinds       # stage-2 kernel scan
    assert "sandbox" in kinds      # creation + lock
    assert "attest" in kinds       # handshake quote
    assert "deny" in kinds         # the CR write
    assert "kill" in kinds         # the syscall violation
    lock_events = [e for e in system.monitor.audit_log
                   if e.kind == "sandbox" and "locked" in e.detail]
    assert len(lock_events) == 1


def test_audit_events_are_ordered_by_cycle(rig):
    machine, system, *_ = rig
    cycles = [e.cycle for e in system.monitor.audit_log]
    assert cycles == sorted(cycles)


def test_audit_event_renders(rig):
    machine, system, *_ = rig
    line = str(system.monitor.audit_log[0])
    assert "verify" in line or "sandbox" in line


# --- determinism -----------------------------------------------------------------

def test_identical_seeds_identical_simulations():
    """The whole stack is deterministic: same seed, same everything."""
    from repro.bench.runner import WorkloadRunner

    def run():
        return WorkloadRunner(scale=0.25, seed=777).run("drugbank", "erebor")

    a, b = run(), run()
    assert a.run_seconds == b.run_seconds
    assert a.init_seconds == b.init_seconds
    assert a.events == b.events
    assert a.output == b.output


def test_different_seeds_differ():
    from repro.bench.runner import WorkloadRunner
    a = WorkloadRunner(scale=0.25, seed=1).run("drugbank", "erebor")
    b = WorkloadRunner(scale=0.25, seed=2).run("drugbank", "erebor")
    assert a.output != b.output   # different query streams
