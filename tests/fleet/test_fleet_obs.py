"""Fleet observability: every orchestration event is visible in obs.

Pins the ``erebor_fleet_*`` metric surface, the fleet span/event names in
the trace, and the schema-validity of the ``python -m repro.fleet``
bundle export (the CI ``fleet-smoke`` contract, without a subprocess).
"""

import json

import pytest

from repro.fleet import run_fleet
from repro.fleet.__main__ import main as fleet_main
from repro.obs import install
from repro.obs.harness import ObservedRun, export_bundle
from repro.obs.schema import check_export


@pytest.fixture(scope="module")
def observed_fleet():
    """One traced helloworld fleet: 3 clients over 1 slot (forces reuse)."""
    state: dict = {}

    def instrument(machine):
        tracer, registry = install(machine.clock)
        tracer.span("run:fleet", cat="run", workload="helloworld").__enter__()
        state.update(tracer=tracer, registry=registry, clock=machine.clock)

    report, _system = run_fleet(workload="helloworld", clients=3, requests=2,
                                pool_size=1, tenants=3, seed=11, scale=1.0,
                                instrument=instrument)
    state["tracer"].finish()
    return report, state["tracer"], state["registry"], state["clock"]


def counters(registry):
    return registry.snapshot()["counters"]


def test_fleet_metrics_surface(observed_fleet):
    report, _tracer, registry, _clock = observed_fleet
    c = counters(registry)
    assert c["erebor_templates_sealed_total"] == {
        "template=helloworld-template": 1}
    assert c["erebor_fleet_forks_total"] == {
        "template=helloworld-template": 1}
    assert sum(c["erebor_fleet_admissions_total"].values()) == 3
    assert sum(c["erebor_fleet_requests_total"].values()) == 6
    assert (sum(c["erebor_fleet_sessions_total"].values())
            == len(report.sessions) == 3)
    # the reused slot: 3 resets, each one counted and scrub-verified
    assert sum(c["erebor_sandbox_reuse_total"].values()) == 3
    assert sum(c["erebor_fleet_scrub_verified_total"].values()) == 3


def test_fleet_histograms_and_gauges(observed_fleet):
    _report, _tracer, registry, _clock = observed_fleet
    snap = registry.snapshot()
    start = snap["histograms"]["erebor_fleet_start_cycles"]
    kinds = {k for k in start}
    assert kinds == {"kind=cold", "kind=fork", "kind=warm"}
    assert "erebor_fleet_session_cycles" in snap["histograms"]
    assert snap["gauges"]["erebor_fleet_pool_size"] == {"": 1}
    assert snap["gauges"]["erebor_fleet_queue_depth"] == {"": 0}


def test_fleet_trace_spans_and_events(observed_fleet):
    _report, tracer, _registry, _clock = observed_fleet
    names = {e.name for e in tracer.events}
    for wanted in ("fleet:capture", "fleet:fork", "fleet:admit",
                   "fleet:request", "fleet:warm_reset", "fleet:queue",
                   "fleet:dequeue", "fleet:session_start",
                   "fleet:session_end", "fleet:scrub_verified"):
        assert wanted in names, f"missing trace name {wanted}"


def test_fleet_bundle_is_schema_valid(observed_fleet):
    report, tracer, registry, clock = observed_fleet
    run = ObservedRun("helloworld", "fleet", tracer, registry, None, clock)
    bundle = export_bundle(run)
    bundle["meta"]["fleet"] = report.to_dict()
    check_export(bundle)
    assert bundle["meta"]["setting"] == "fleet"
    assert bundle["meta"]["fleet"]["requests_served"] == 6


def test_fleet_cli_report_and_bundle(tmp_path, capsys):
    out = tmp_path / "fleet.json"
    assert fleet_main(["--workload", "helloworld", "--clients", "2",
                       "--requests", "1", "--tenants", "2",
                       "--scale", "1.0", "-o", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["requests_served"] == 2
    assert report["outcomes"] == {"completed": 2}

    bundle_out = tmp_path / "bundle.json"
    assert fleet_main(["--workload", "helloworld", "--clients", "2",
                       "--requests", "1", "--tenants", "2", "--scale", "1.0",
                       "--export", "bundle", "-o", str(bundle_out)]) == 0
    bundle = json.loads(bundle_out.read_text())
    check_export(bundle)
    assert bundle["meta"]["fleet"]["requests_served"] == 2
