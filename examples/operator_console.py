#!/usr/bin/env python3
"""Operator console: what running Erebor looks like from the outside.

Serves a session, then prints the operational surfaces the reproduction
exposes: the monitor's audit log (every security decision), global and
per-sandbox statistics, the cycle ledger's mechanism breakdown, and the
host's view (all ciphertext). Useful as a template for integrating the
library into monitoring.

Run:  python examples/operator_console.py
"""

from repro import CvmMachine, MachineConfig, MIB, erebor_boot
from repro.apps import LibOsRuntime, workload
from repro.client import RemoteClient
from repro.core import (
    MitigationConfig,
    PolicyViolation,
    SecureChannel,
    UntrustedProxy,
    published_measurement,
)
from repro.libos import LibOs


def main() -> None:
    machine = CvmMachine(MachineConfig(memory_bytes=768 * MIB))
    system = erebor_boot(machine, cma_bytes=96 * MIB)
    system.monitor.arm_mitigations(MitigationConfig(flush_on_exit=True))

    work = workload("drugbank", scale=0.05)
    libos = LibOs.boot_sandboxed(system, work.manifest(),
                                 confined_budget=12 * MIB)
    rt = LibOsRuntime(libos)
    proxy = UntrustedProxy(system.monitor)
    channel = SecureChannel(system.monitor, libos.sandbox)
    client = RemoteClient(machine.authority, published_measurement())
    client.connect(proxy, channel)
    client.request(proxy, channel, work.default_request())
    work.serve(rt, rt.recv_input())
    client.fetch_result(proxy, channel)

    # provoke one denial for the log
    try:
        system.monitor.ops.write_cr(4, 0)
    except PolicyViolation:
        pass

    print("== audit log (last 8 events) ==")
    for event in system.monitor.audit_log[-8:]:
        print(f"  {event}")

    stats = system.monitor.stats
    print("\n== monitor stats ==")
    print(f"  EMC calls: {stats.emc_calls}   policy denials: "
          f"{stats.policy_denials}   verified blobs: "
          f"{stats.verified_code_blobs}")
    print(f"  sandboxes: created {stats.sandboxes_created}, "
          f"killed {stats.sandboxes_killed}")

    sb = libos.sandbox
    print(f"\n== sandbox #{sb.sandbox_id} ({sb.name}) ==")
    print(f"  state={sb.state}  confined={sb.confined_bytes >> 20} MiB  "
          f"common={sb.common_names}")
    print(f"  exits={sb.stats['exits']} (pf={sb.stats['pf_exits']} "
          f"irq={sb.stats['irq_exits']} ve={sb.stats['ve_exits']})  "
          f"io={sb.stats['inputs']}in/{sb.stats['outputs']}out")

    clock = machine.clock
    print("\n== cycle ledger (top mechanisms) ==")
    for tag, cycles in sorted(clock.by_tag.items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {tag:20s} {cycles / clock.cycles * 100:5.1f}%")
    print(f"  simulated time: {clock.seconds * 1000:.1f} ms, "
          f"mitigation flushes: {clock.events.get('mitigation_flush', 0)}")

    print(f"\n== host view ==")
    print(f"  events observed: {len(machine.vmm.observations)}; "
          f"plaintext query names visible: "
          f"{b'drug-' in machine.vmm.observed_blob()}")
    print("OK")


if __name__ == "__main__":
    main()
