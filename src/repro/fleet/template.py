"""Template capture and copy-on-write sandbox forking (§9.2 at fleet scale).

One sandbox is booted the expensive way — LibOS load, confined prefault,
common-region population, program init compute — and then *sealed* as a
golden template: its confined frames become immutable fork images that
any number of client sandboxes map copy-on-write. A fork pays only for
sandbox creation plus the CoW mappings; pages it never writes stay
physically shared with the template, pages it does write are duplicated
into fresh confined frames by the monitor's self-pager (so the guest OS
never learns which pages diverged).

The capture deliberately measures the cold path *before* sealing: the
``cold_start_cycles`` it reports is an honest full boot+init, the number
every fork and warm start is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..apps.base import Workload
from ..apps.runtime import LibOsRuntime
from ..hw.memory import PAGE_SIZE
from ..kernel.process import PROT_WRITE
from ..libos.libos import LibOs, Manifest

if TYPE_CHECKING:
    from ..core.boot import EreborSystem
    from ..core.sandbox import Sandbox

MIB = 1024 * 1024


@dataclass
class TemplateVma:
    """One confined region of the sealed image, in declaration order."""

    label: str
    frames: list[int]
    is_io: bool


@dataclass
class FleetInstance:
    """One runnable forked (or template-derived) sandbox + its LibOS."""

    sandbox: "Sandbox"
    libos: LibOs
    runtime: LibOsRuntime
    template: "SandboxTemplate"
    start_kind: str            # "fork" at birth; "warm" after a reuse
    start_cycles: int          # cycles the current start path cost

    @property
    def private_bytes(self) -> int:
        """Marginal physical memory: frames this instance owns itself."""
        return len(self.sandbox.confined_frames) * PAGE_SIZE


class SandboxTemplate:
    """A sealed golden sandbox image that clients fork copy-on-write."""

    def __init__(self, system: "EreborSystem", work: Workload,
                 manifest: Manifest, *, name: str, layout: list[TemplateVma],
                 confined_bytes: int, cold_start_cycles: int,
                 capture_cycles: int):
        self.system = system
        self.work = work
        self.manifest = manifest
        self.name = name
        self.layout = layout
        self.confined_bytes = confined_bytes
        self.cold_start_cycles = cold_start_cycles
        self.capture_cycles = capture_cycles
        self.forks = 0

    # ------------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------------ #

    @classmethod
    def capture(cls, system: "EreborSystem", work: Workload, *,
                name: str | None = None,
                init_compute: bool = True) -> "SandboxTemplate":
        """Boot one sandbox cold, run its init, seal it as a template.

        The boot+init portion is timed before :meth:`seal_as_template`
        flips the image immutable, so ``cold_start_cycles`` is exactly
        what a non-forking deployment pays per client.
        """
        clock = system.machine.clock
        manifest = work.manifest()
        name = name or f"{manifest.name}-template"
        t0 = clock.cycles
        with clock.tracer.span("fleet:capture", "fleet", template=name):
            libos = LibOs.boot_sandboxed(
                system, manifest,
                confined_budget=manifest.heap_bytes + 2 * MIB)
            rt = LibOsRuntime(libos)
            kernel = system.kernel
            for spec in manifest.common:
                vma = libos.common_vmas[spec.name]
                kernel.touch_pages(rt.task, vma.start, vma.length,
                                   write=bool(vma.prot & PROT_WRITE))
            if init_compute:
                rt.compute(work.profile.init_compute_cycles)
            cold_cycles = clock.cycles - t0
            sandbox = libos.sandbox
            layout = [
                TemplateVma("io" if vma is sandbox.io_vma else "heap",
                            list(vma.backing.frames),
                            vma is sandbox.io_vma)
                for vma in sandbox.confined_vmas
            ]
            confined_bytes = sandbox.confined_bytes
            system.monitor.seal_as_template(sandbox, name)
        clock.metrics.observe("erebor_fleet_start_cycles", cold_cycles,
                              kind="cold")
        return cls(system, work, manifest, name=name, layout=layout,
                   confined_bytes=confined_bytes,
                   cold_start_cycles=cold_cycles,
                   capture_cycles=clock.cycles - t0)

    # ------------------------------------------------------------------ #
    # fork
    # ------------------------------------------------------------------ #

    def fork(self, name: str | None = None) -> FleetInstance:
        """Spin up a new client sandbox sharing this template's image.

        No frames are copied and no page table is populated: the child
        maps every template region copy-on-write, re-attaches the common
        regions, and wires a LibOS onto the existing memory. First reads
        map shared frames; first writes duplicate pages lazily.
        """
        system = self.system
        clock = system.machine.clock
        self.forks += 1
        name = name or f"{self.name}-fork{self.forks}"
        t0 = clock.cycles
        with clock.tracer.span("fleet:fork", "fleet",
                               template=self.name, child=name):
            sandbox = system.monitor.create_sandbox(
                name, confined_budget=self.confined_bytes,
                threads=self.manifest.threads)
            heap_vma = None
            for tvma in self.layout:
                vma = sandbox.adopt_cow_vma(tvma.frames, self.name,
                                            io=tvma.is_io)
                if not tvma.is_io and heap_vma is None:
                    heap_vma = vma
            common_vmas = {
                spec.name: sandbox.attach_common(spec.name, spec.size)
                for spec in self.manifest.common
            }
            libos = LibOs.attach_forked(system, self.manifest, sandbox,
                                        heap_vma=heap_vma,
                                        common_vmas=common_vmas)
        cycles = clock.cycles - t0
        clock.metrics.inc("erebor_fleet_forks_total", template=self.name)
        clock.metrics.observe("erebor_fleet_start_cycles", cycles,
                              kind="fork")
        return FleetInstance(sandbox=sandbox, libos=libos,
                             runtime=LibOsRuntime(libos), template=self,
                             start_kind="fork", start_cycles=cycles)
