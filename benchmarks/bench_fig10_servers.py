"""Figure 10 — relative throughput of background (non-sandboxed) servers.

Regenerates the OpenSSH and Nginx throughput-vs-file-size series under
full Erebor, relative to native. Paper targets: average reductions of
8.2% (ssh) and 5.1% (nginx), worst cases ~18% / ~17.6% on small files,
and <5% loss on large files where interposition amortizes.
"""

import pytest

from repro.bench.report import format_table, pct
from repro.bench.servers import FILE_SIZES, ServerBench


@pytest.fixture(scope="module")
def series():
    bench = ServerBench(requests_per_size=16)
    return {kind: bench.run_series(kind) for kind in ("ssh", "nginx")}


def _size_label(size: int) -> str:
    return f"{size // 1024}K" if size < 1024 * 1024 else f"{size // (1024 * 1024)}M"


def test_print_fig10(benchmark, series):
    def build():
        rows = []
        for size in FILE_SIZES:
            rows.append([_size_label(size),
                         f"{series['ssh'].relative_throughput(size):.3f}",
                         f"{series['nginx'].relative_throughput(size):.3f}"])
        rows.append(["avg loss",
                     pct(series["ssh"].average_reduction()),
                     pct(series["nginx"].average_reduction())])
        rows.append(["max loss",
                     pct(series["ssh"].max_reduction()),
                     pct(series["nginx"].max_reduction())])
        return format_table(
            "Figure 10: relative throughput under Erebor "
            "(paper: ssh avg -8.2% max -18%; nginx avg -5.1% max -17.6%)",
            ["file size", "OpenSSH", "Nginx"], rows)

    print("\n" + benchmark.pedantic(build, rounds=1, iterations=1))


def test_small_files_hurt_most(benchmark, series):
    data = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    for kind in ("ssh", "nginx"):
        s = data[kind]
        assert s.relative_throughput(1024) == min(
            s.relative_throughput(sz) for sz in FILE_SIZES)


def test_large_files_amortize_below_5pct(benchmark, series):
    data = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    for kind in ("ssh", "nginx"):
        for size in (4 * 1024 * 1024, 16 * 1024 * 1024):
            assert data[kind].relative_throughput(size) >= 0.94, (kind, size)


def test_average_and_max_reductions_in_band(benchmark, series):
    data = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    assert 0.05 <= data["ssh"].average_reduction() <= 0.12     # paper 8.2%
    assert 0.03 <= data["nginx"].average_reduction() <= 0.09   # paper 5.1%
    assert 0.13 <= data["ssh"].max_reduction() <= 0.22         # paper 18%
    assert 0.10 <= data["nginx"].max_reduction() <= 0.20       # paper 17.6%


def test_ssh_worse_than_nginx_on_average(benchmark, series):
    data = benchmark.pedantic(lambda: series, rounds=1, iterations=1)
    assert data["ssh"].average_reduction() > data["nginx"].average_reduction()
