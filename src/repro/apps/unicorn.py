"""Intrusion detection — the reproduction's Unicorn APT detector (Table 5).

Real provenance-graph analysis: the client submits a parsed system log
(process/file/socket events); the service builds a streaming provenance
graph, computes windowed WL-style label histograms (Unicorn's graph
sketches), and scores anomalies against a baseline profile. Scaled from
the paper's 20 MB log to ~1 MB with the same shape: 8 threads, 2 GB→16 MiB
confined analysis cache, no common memory.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter

from ..hw.memory import PAGE_SIZE
from .base import MIB, Workload, WorkloadProfile, register

EVENT_TYPES = ("exec", "open", "write", "connect", "fork", "chmod")
WINDOW = 500
#: per-barrier-item compute within a window's sketch computation
CYCLES_PER_ITEM = 96_000_000


def synth_log(seed: int, events: int, *, attack: bool = False) -> bytes:
    """Generate a synthetic parsed audit log (optionally with an APT)."""
    rng = random.Random(seed)
    lines = []
    for i in range(events):
        etype = rng.choice(EVENT_TYPES)
        src = f"proc{rng.randrange(64)}"
        dst = f"obj{rng.randrange(256)}"
        if attack and i % 29 == 0:
            # low-and-slow exfil pattern: one process fanning out widely
            etype, src, dst = "connect", "proc7", f"exfil{i}"
        lines.append(f"{i},{etype},{src},{dst}")
    return "\n".join(lines).encode()


@register
class UnicornWorkload(Workload):
    name = "unicorn"
    description = ("Unicorn-style provenance-graph APT detector over a "
                   "parsed audit log, windowed WL sketch histograms")

    events = 12_000

    @property
    def profile(self) -> WorkloadProfile:
        return WorkloadProfile(
            heap_bytes=16 * MIB,
            threads=8,
            common=[],
            bg_mmu_ops_per_tick=13,
            bg_copy_ops_per_tick=6,
            bg_faults_per_tick=0.7,
            bg_ve_per_tick=1.0,
            reclaim_pages_per_tick=0,
            init_compute_cycles=250_000_000,
        )

    def default_request(self) -> bytes:
        return synth_log(self.seed + 31, max(int(self.events * self.scale), 500),
                         attack=True)

    # ------------------------------------------------------------------ #

    def _sketch(self, edges: list[tuple[str, str, str]]) -> Counter:
        """WL-style behavior histogram: (event type, source) labels."""
        sketch: Counter = Counter()
        for etype, src, dst in edges:
            label = hashlib.sha1(f"{etype}|{src}".encode()).hexdigest()[:6]
            sketch[label] += 1
        return sketch

    @staticmethod
    def _max_fanout(edges: list[tuple[str, str, str]]) -> tuple[str, int]:
        """Widest (source, event-type) fan-out to distinct destinations —
        the low-and-slow exfiltration signature Unicorn's provenance
        graphs surface."""
        fanout: dict[tuple[str, str], set[str]] = {}
        for etype, src, dst in edges:
            fanout.setdefault((src, etype), set()).add(dst)
        (src, etype), dsts = max(fanout.items(), key=lambda kv: len(kv[1]))
        return f"{src}/{etype}", len(dsts)

    #: distinct destinations per (src, etype) per window above which a
    #: window counts as anomalous
    FANOUT_THRESHOLD = 10

    def serve(self, rt, request: bytes) -> bytes:
        lines = request.decode().splitlines()
        cache_va = rt.malloc(4 * MIB)
        baseline: Counter = Counter()
        anomalies = []
        for w_start in range(0, len(lines), WINDOW):
            window = lines[w_start:w_start + WINDOW]
            edges = []
            for line in window:
                _, etype, src, dst = line.split(",", 3)
                edges.append((etype, src, dst))
            baseline.update(self._sketch(edges))
            who, width = self._max_fanout(edges)
            # analysis cache writes (confined memory)
            rt.touch_range(cache_va + (w_start % (3 * MIB)), 256 * 1024,
                           write=True)
            rt.parallel_for(8, CYCLES_PER_ITEM, sync_every=4)
            if width > self.FANOUT_THRESHOLD:
                anomalies.append((w_start // WINDOW, width))
        verdict = "ALERT" if anomalies else "clean"
        output = (f"{verdict};windows={len(lines) // WINDOW};"
                  + ",".join(f"w{w}:{s}" for w, s in anomalies[:10])).encode()
        rt.send_output(output)
        return output
