"""Nested-kernel MMU virtualization: the monitor as sole page-table writer.

Following the Nested Kernel principles the paper adopts (§5.2), every PTE
mutation in the system flows through :class:`NestedMmu.write_pte`, which
enforces the mapping policies that make Erebor's claims hold:

* **monitor self-protection** (C3) — monitor-owned frames and page-table
  pages may never be mapped writable into any address space;
* **W⊕X** (C2) — kernel-text frames never map writable, writable frames
  never map executable in supervisor mode;
* **single-mapping confined memory** (C6) — a frame declared confined to
  a sandbox maps into exactly that sandbox's address space, at most once;
  double-mapping attacks are refused;
* **common-memory write revocation** (§6.1) — frames of a common region
  map writable only while the region is still in its initialization
  window; after lock the monitor flips every mapping read-only;
* **template immutability** (§9.2 warm start) — frames of a sealed fork
  template are golden images shared read-only across forked sandboxes;
  a writable mapping of one is refused everywhere, forever;
* **shadow-stack discipline** — CET shadow-stack frames are never mapped
  into kernel-writable space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.cycles import Cost, CycleClock
from ..hw.memory import PAGE_SHIFT, PhysicalMemory
from ..hw.paging import (
    HUGE_PAGE_FRAMES,
    PTE_NX,
    PTE_P,
    PTE_PS,
    PTE_U,
    PTE_W,
    AddressSpace,
    make_pte,
    pte_frame,
    pte_pkey,
)
from .policy import PolicyViolation


@dataclass
class CommonRegion:
    """A named, shareable read-only memory region (model/database)."""

    name: str
    frames: list[int]
    writable: bool = True                 # initialization window open?
    initializer: int | None = None        # sandbox id that may populate it
    #: (aspace, va) of every live mapping, for write-revocation at lock
    mappings: list[tuple[AddressSpace, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.frames) << PAGE_SHIFT


class NestedMmu:
    """Monitor-owned MMU state and the validating PTE writer."""

    def __init__(self, phys: PhysicalMemory, clock: CycleClock):
        self.phys = phys
        self.clock = clock
        #: confined frame -> owning sandbox id
        self.confined_owner: dict[int, int] = {}
        #: confined frame -> (aspace identity, va) of its single mapping
        self.confined_mapping: dict[int, tuple[int, int]] = {}
        #: sandbox id -> its (only) registered address space
        self.sandbox_aspace: dict[int, AddressSpace] = {}
        self.common_regions: dict[str, CommonRegion] = {}
        #: template frame -> template name (golden fork images; read-only
        #: shareable across sandboxes, like common memory, never writable)
        self.template_frames: dict[int, str] = {}
        #: address spaces whose PTPs the monitor manages
        self.registered_roots: set[int] = set()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register_aspace(self, aspace: AddressSpace) -> None:
        self.registered_roots.add(aspace.root_fn)

    def register_sandbox(self, sandbox_id: int, aspace: AddressSpace) -> None:
        self.sandbox_aspace[sandbox_id] = aspace
        self.register_aspace(aspace)

    def declare_confined(self, sandbox_id: int, frames: list[int]) -> None:
        for fn in frames:
            prior = self.confined_owner.get(fn)
            if prior is not None and prior != sandbox_id:
                raise PolicyViolation(
                    f"frame {fn:#x} already confined to sandbox {prior}")
            self.confined_owner[fn] = sandbox_id

    def release_confined(self, sandbox_id: int) -> list[int]:
        frames = [fn for fn, sid in self.confined_owner.items()
                  if sid == sandbox_id]
        for fn in frames:
            del self.confined_owner[fn]
            self.confined_mapping.pop(fn, None)
        return frames

    def release_confined_frames(self, frames: list[int]) -> None:
        """Release specific frames from confined tracking (CoW un-break)."""
        for fn in frames:
            self.confined_owner.pop(fn, None)
            self.confined_mapping.pop(fn, None)

    def adopt_template(self, name: str, frames: list[int]) -> None:
        """Re-classify a sealed sandbox image as a named fork template.

        Template frames behave like common memory from the mapping
        policy's point of view: any sandbox may map them read-only, no
        one may ever map them writable again. They are *not* confined
        (the single-mapping rule would forbid sharing them), which is
        safe because a template is sealed before any client data exists.
        """
        for fn in frames:
            prior = self.template_frames.get(fn)
            if prior is not None and prior != name:
                raise PolicyViolation(
                    f"frame {fn:#x} already belongs to template {prior!r}")
            if fn in self.confined_owner:
                raise PolicyViolation(
                    f"frame {fn:#x} still confined to sandbox "
                    f"{self.confined_owner[fn]}; release before sealing")
            self.template_frames[fn] = name
            self.phys.frame(fn).owner = f"template:{name}"

    def release_template(self, name: str) -> list[int]:
        """Drop a template's frames from the registry; returns them."""
        frames = [fn for fn, t in self.template_frames.items() if t == name]
        for fn in frames:
            del self.template_frames[fn]
        return frames

    def create_common_region(self, name: str, frames: list[int],
                             initializer: int | None) -> CommonRegion:
        if name in self.common_regions:
            raise PolicyViolation(f"common region {name!r} already exists")
        region = CommonRegion(name, frames, initializer=initializer)
        self.common_regions[name] = region
        for fn in frames:
            self.phys.frame(fn).owner = f"common:{name}"
        return region

    # ------------------------------------------------------------------ #
    # the single validated PTE writer
    # ------------------------------------------------------------------ #

    def write_pte(self, aspace: AddressSpace, va: int, pte: int) -> None:
        """Validate and install one PTE (the body of the WRITE_PTE EMC)."""
        if aspace.root_fn not in self.registered_roots:
            raise PolicyViolation(
                f"address space root {aspace.root_fn:#x} not registered "
                "with the monitor")
        if pte & PTE_P:
            self._validate_mapping(aspace, va, pte)
        self.clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")
        self.clock.count("pte_write")
        if pte:
            aspace.set_pte(va, pte)
            fn = pte_frame(pte)
            frame = self.phys.frame(fn)
            if frame.owner.startswith("confined") or fn in self.confined_owner:
                self.confined_mapping[fn] = (aspace.root_fn, va)
        else:
            old = aspace.get_pte(va)
            if old & PTE_P:
                self.confined_mapping.pop(pte_frame(old), None)
            aspace.clear_pte(va)

    def _validate_mapping(self, aspace: AddressSpace, va: int, pte: int) -> None:
        fn = pte_frame(pte)
        frame = self.phys.frame(fn)
        writable = bool(pte & PTE_W)
        user = bool(pte & PTE_U)
        executable = not pte & PTE_NX

        if frame.owner == "monitor":
            raise PolicyViolation(
                f"mapping monitor frame {fn:#x} into {aspace.name} refused")
        if frame.is_page_table and writable:
            raise PolicyViolation(
                f"writable mapping of page-table frame {fn:#x} refused")
        if frame.is_shadow_stack and writable:
            raise PolicyViolation(
                f"writable mapping of shadow-stack frame {fn:#x} refused")
        if frame.owner == "ktext":
            if writable:
                raise PolicyViolation(
                    f"W^X: writable mapping of kernel text frame {fn:#x} refused")
        elif executable and not user and writable:
            raise PolicyViolation(
                f"W^X: writable+executable supervisor mapping of {fn:#x} refused")

        if fn in self.template_frames and writable:
            raise PolicyViolation(
                f"template frame {fn:#x} ({self.template_frames[fn]!r}) is "
                f"a sealed fork image; writable mapping refused")

        owner_sandbox = self.confined_owner.get(fn)
        if owner_sandbox is not None:
            expected = self.sandbox_aspace.get(owner_sandbox)
            if expected is None or aspace.root_fn != expected.root_fn:
                raise PolicyViolation(
                    f"confined frame {fn:#x} (sandbox {owner_sandbox}) cannot "
                    f"map into foreign address space {aspace.name}")
            existing = self.confined_mapping.get(fn)
            if existing is not None and existing != (aspace.root_fn, va):
                raise PolicyViolation(
                    f"double mapping of confined frame {fn:#x} refused "
                    f"(already mapped at {existing[1]:#x})")

        owner = frame.owner
        region = (self.common_regions.get(owner[7:])
                  if owner.startswith("common:") else None)
        if region is not None and writable and not region.writable:
            raise PolicyViolation(
                f"common region {region.name!r} is sealed read-only; "
                f"writable mapping of frame {fn:#x} refused")
        if region is not None and pte & PTE_P:
            region.mappings.append((aspace, va & ~0xFFF))

    def _region_of(self, fn: int) -> CommonRegion | None:
        owner = self.phys.frame(fn).owner
        if owner.startswith("common:"):
            return self.common_regions.get(owner.split(":", 1)[1])
        return None

    # ------------------------------------------------------------------ #
    # huge pages and forced splitting (paper §7 future work)
    # ------------------------------------------------------------------ #

    def write_huge_pte(self, aspace: AddressSpace, va: int, fn_start: int,
                       flags: int, pkey: int = 0) -> None:
        """Install one validated 2 MiB mapping.

        Every 4 KiB frame under the mapping passes the same policy as a
        small mapping (monitor frames, PTPs, confined ownership); the
        whole install is one EMC-visible operation with a single PTE
        write, which is exactly why huge pages make prefaulting cheap.
        """
        if aspace.root_fn not in self.registered_roots:
            raise PolicyViolation(
                f"address space root {aspace.root_fn:#x} not registered")
        for i in range(HUGE_PAGE_FRAMES):
            self._validate_mapping(aspace, va + (i << 12),
                                   make_pte(fn_start + i, flags | PTE_P, pkey))
        self.clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")
        self.clock.count("pte_write")
        self.clock.count("huge_map")
        aspace.map_huge_page(va, fn_start, flags, pkey)

    def force_split(self, aspace: AddressSpace, va: int) -> None:
        """Shatter a huge mapping so 4 KiB-granular policy can apply.

        PKS keys and read-only sealing operate per 4 KiB PTE; when policy
        must change for a subrange of a 2 MiB mapping, the monitor splits
        it first (one batched operation: 512 PTE writes)."""
        if aspace.translate(va) is None:
            raise PolicyViolation(f"force_split: {va:#x} not mapped")
        slot = aspace.split_huge_page(va)
        if slot is None:
            return  # already 4 KiB-mapped
        self.clock.charge(HUGE_PAGE_FRAMES * Cost.PTE_WRITE_NATIVE, "mmu_op")
        self.clock.count("pte_write", HUGE_PAGE_FRAMES)
        self.clock.count("huge_split")

    def set_pkey_4k(self, aspace: AddressSpace, va: int, pkey: int) -> None:
        """Assign a protection key to one 4 KiB page, splitting if needed."""
        hit = aspace.translate(va)
        if hit is None:
            raise PolicyViolation(f"set_pkey: {va:#x} not mapped")
        _, pte = hit
        if pte & PTE_PS:
            self.force_split(aspace, va)
            _, pte = aspace.translate(va)
        page_va = va & ~0xFFF
        new = make_pte(pte_frame(pte), pte & ~(0xF << 59), pkey)
        self.write_pte(aspace, page_va, new)

    # ------------------------------------------------------------------ #
    # common-memory write revocation (at sandbox lock)
    # ------------------------------------------------------------------ #

    def seal_common_region(self, name: str) -> int:
        """Close the initialization window: flip all mappings read-only.

        Returns the number of PTEs rewritten. Batched: one EMC covers the
        sweep (the paper's batched-MMU-update optimization), with per-PTE
        native write costs.
        """
        region = self.common_regions[name]
        region.writable = False
        rewritten = 0
        seen = set()
        for aspace, va in region.mappings:
            key = (aspace.root_fn, va)
            if key in seen:
                continue
            seen.add(key)
            pte = aspace.get_pte(va)
            if pte & PTE_P and pte & PTE_W:
                aspace.set_pte(va, pte & ~PTE_W)
                self.clock.charge(Cost.PTE_WRITE_NATIVE, "mmu_op")
                rewritten += 1
        return rewritten
