"""Linux syscall shim: unmodified-application support (paper §7).

Gramine "supports POSIX APIs and over 170 Linux system calls ... allowing
it to natively run complex Linux applications". This shim is that
compatibility surface for the reproduction: applications written against
Linux syscall names call :meth:`SyscallShim.call`, and the shim routes
each one to the LibOS's in-sandbox emulation (memfs, pre-allocated heap,
spinlock sync, the monitor channel) — *never* to the kernel once the
sandbox is locked, except the single permitted channel ioctl.

Unsupported syscalls raise :class:`ShimUnsupported` with the Gramine-like
"consider adding to the manifest" hint rather than killing the sandbox at
development time.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..kernel.process import PROT_READ, PROT_WRITE
from ..obs.metrics import HandleCache

#: interned ``libos:<name>`` span names shared by every shim instance
_SHIM_SPAN_NAMES: dict[str, str] = {}

if TYPE_CHECKING:
    from .libos import LibOs


class ShimError(Exception):
    """An emulated syscall failed (carries an errno)."""

    def __init__(self, err: int, message: str):
        self.errno = err
        super().__init__(f"[errno {err}] {message}")


class ShimUnsupported(ShimError):
    """The syscall has no in-sandbox emulation."""

    def __init__(self, name: str):
        super().__init__(errno.ENOSYS,
                         f"syscall {name!r} is not emulated by the LibOS")


@dataclass
class ShimStats:
    emulated: int = 0
    forwarded: int = 0      # pre-lock kernel forwards
    by_name: dict = field(default_factory=dict)


class SyscallShim:
    """Per-LibOS syscall router."""

    def __init__(self, libos: "LibOs"):
        self.libos = libos
        self.stats = ShimStats()
        self._metric_handles = HandleCache()
        self._table: dict[str, Callable] = {}
        for name in dir(self):
            if name.startswith("sys_"):
                self._table[name[4:]] = getattr(self, name)

    @property
    def supported(self) -> list[str]:
        return sorted(self._table)

    def call(self, name: str, *args, **kwargs):
        handler = self._table.get(name)
        if handler is None:
            raise ShimUnsupported(name)
        self.stats.emulated += 1
        self.stats.by_name[name] = self.stats.by_name.get(name, 0) + 1
        clock = self.libos.kernel.clock
        span_name = _SHIM_SPAN_NAMES.get(name)
        if span_name is None:
            span_name = _SHIM_SPAN_NAMES[name] = f"libos:{name}"
        with clock.tracer.span(span_name, "libos"):
            self.libos.charge_emulated_call()
            result = handler(*args, **kwargs)
        metrics = clock.metrics
        if metrics.enabled:
            handle = self._metric_handles.get(metrics, name)
            if handle is None:
                handle = self._metric_handles.put(
                    name, metrics.counter_handle("libos_calls_total",
                                                 name=name))
            handle.inc()
        return result

    # ------------------------------------------------------------------ #
    # files (in-memory stateless FS)
    # ------------------------------------------------------------------ #

    def sys_open(self, path: str, flags: str = "r"):
        return self.libos.fs.open(path, create="w" in flags or "c" in flags)

    def sys_openat(self, dirfd, path: str, flags: str = "r"):
        return self.sys_open(path, flags)

    def sys_read(self, fd: int, count: int) -> bytes:
        return self.libos.fs.read(fd, count)

    def sys_write(self, fd: int, data: bytes) -> int:
        return self.libos.fs.write(fd, data)

    def sys_close(self, fd: int) -> None:
        self.libos.fs.close(fd)

    def sys_unlink(self, path: str) -> None:
        self.libos.fs.unlink(path)

    def sys_stat(self, path: str) -> dict:
        if not self.libos.fs.exists(path):
            raise ShimError(errno.ENOENT, f"stat: {path}")
        fd = self.libos.fs.open(path)
        try:
            return {"size": self.libos.fs._fd(fd).file.size}
        finally:
            self.libos.fs.close(fd)

    def sys_access(self, path: str) -> int:
        return 0 if self.libos.fs.exists(path) else -errno.ENOENT

    # ------------------------------------------------------------------ #
    # memory (pre-allocated confined heap)
    # ------------------------------------------------------------------ #

    def sys_mmap(self, length: int, prot: int = PROT_READ | PROT_WRITE) -> int:
        return self.libos.malloc(length)

    def sys_brk(self, increment: int) -> int:
        return self.libos.malloc(max(increment, 16))

    def sys_munmap(self, addr: int, length: int) -> int:
        return 0   # bump allocator: munmap is a no-op (freed at session end)

    def sys_mprotect(self, addr: int, length: int, prot: int) -> int:
        # in-sandbox protection changes would be monitor EMCs; the LibOS
        # declares everything up front, so this is a validated no-op
        return 0

    # ------------------------------------------------------------------ #
    # tasking / sync (pre-created threads, spinlocks)
    # ------------------------------------------------------------------ #

    def sys_clone(self):
        raise ShimError(errno.EPERM,
                        "threads must be pre-created before lock (§6.2); "
                        "declare `threads` in the manifest")

    def sys_futex(self, op: str = "wait") -> int:
        self.libos.pool.sync()
        return 0

    def sys_sched_yield(self) -> int:
        self.libos.compute(400)
        return 0

    def sys_nanosleep(self, cycles: int) -> int:
        self.libos.compute(cycles)   # spin-sleep: no kernel timer access
        return 0

    def sys_getpid(self) -> int:
        return self.libos.task.pid

    def sys_gettid(self) -> int:
        return self.libos.task.pid

    def sys_exit(self, code: int = 0) -> int:
        self.libos.end_session()
        return code

    def sys_exit_group(self, code: int = 0) -> int:
        return self.sys_exit(code)

    # ------------------------------------------------------------------ #
    # time / identity (no kernel, no covert clock)
    # ------------------------------------------------------------------ #

    def sys_clock_gettime(self) -> float:
        # a coarse, monitor-quantized clock: real CVMs expose rdtsc, but
        # the LibOS quantizes it to resist timing channels (§12)
        quantum = 1_000_000
        return (self.libos.kernel.clock.cycles // quantum) * quantum

    def sys_uname(self) -> dict:
        return {"sysname": "Linux", "release": "6.6.0-erebor-sim",
                "machine": "x86_64-sim"}

    def sys_getuid(self) -> int:
        return 1000

    def sys_getcpu(self) -> int:
        return 0

    # ------------------------------------------------------------------ #
    # the channel (the one real syscall: the monitor ioctl)
    # ------------------------------------------------------------------ #

    def sys_ioctl(self, fd: int, request: str, payload=None):
        self.stats.forwarded += 1
        return self.libos.kernel.syscall(self.libos.task, "ioctl",
                                         self.libos.device_fd, request,
                                         payload)

    # ------------------------------------------------------------------ #
    # explicitly refused (would be AV2 leaks)
    # ------------------------------------------------------------------ #

    def sys_socket(self):
        raise ShimError(errno.EPERM,
                        "sandboxes have no network; use the monitor channel")

    def sys_connect(self, *a):
        return self.sys_socket()

    def sys_sendto(self, *a):
        return self.sys_socket()

    def sys_execve(self, *a):
        raise ShimError(errno.EPERM, "no exec inside a sandbox")

    def sys_fork(self):
        raise ShimError(errno.EPERM,
                        "single-address-space model: fork unsupported "
                        "(use pre-created threads / spawn, §7)")
