"""MMU: address translation plus the full x86 permission-check pipeline.

Every memory access from the simulated CPU (and every *modelled* access
from the macro-level kernel/monitor/sandbox code) funnels through
:class:`Mmu.check`, which applies, in order:

1. presence (``#PF`` not-present otherwise),
2. user/supervisor split (``PTE.U``),
3. SMEP — supervisor fetches from user pages fault,
4. SMAP — supervisor data access to user pages faults unless ``EFLAGS.AC``
   (set by ``stac``) is on,
5. NX — fetches from no-execute pages fault,
6. writability — ``PTE.W``, honoured in supervisor mode when ``CR0.WP``,
   with the CET shadow-stack carve-out (shadow-stack pages are
   written *only* by shadow-stack operations),
7. PKS — supervisor pages carry a protection key; the accessing core's
   ``IA32_PKRS`` may deny access (AD) or write (WD).

This ordering is what makes Erebor's mechanisms meaningful: the monitor's
pages are supervisor pages under a protection key the kernel's PKRS denies,
page-table pages are write-denied the same way, and sandbox user pages are
unreachable from the kernel because SMAP is always on and ``stac`` has been
removed from kernel code.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import regs
from .cycles import Cost, CycleClock
from .errors import PageFault, SimulatorError
from .memory import PAGE_SIZE, PhysicalMemory
from .paging import (
    HUGE_PAGE_SIZE,
    PTE_A,
    PTE_D,
    PTE_NX,
    PTE_P,
    PTE_PS,
    PTE_U,
    PTE_W,
    AddressSpace,
    pte_frame,
    pte_pkey,
)

USER_MODE = "user"
KERNEL_MODE = "kernel"


@dataclass
class AccessContext:
    """The CPU state relevant to a permission check."""

    mode: str = KERNEL_MODE
    cr0: int = regs.CR0_PE | regs.CR0_PG | regs.CR0_WP
    cr4: int = 0
    pkrs: int = 0
    ac: bool = False          # EFLAGS.AC, set by stac
    shadow_stack_op: bool = False  # access is a CET shadow-stack push/pop


class Mmu:
    """Translation + permission engine bound to one physical memory."""

    def __init__(self, phys: PhysicalMemory, clock: CycleClock):
        self.phys = phys
        self.clock = clock

    # ------------------------------------------------------------------ #
    # the permission pipeline
    # ------------------------------------------------------------------ #

    def check(self, aspace: AddressSpace, va: int, access: str,
              ctx: AccessContext) -> tuple[int, int]:
        """Validate one access; return ``(pa, pte)`` or raise :class:`PageFault`."""
        if access not in ("read", "write", "exec"):
            raise SimulatorError(f"bad access type {access!r}")
        user = ctx.mode == USER_MODE

        slot = aspace.leaf_slot(va)
        pte = 0 if slot is None else self.phys.read_u64(slot.pa)
        if not pte & PTE_P:
            raise PageFault(va, is_write=access == "write", is_exec=access == "exec",
                            is_user=user, present=False)

        def fault(pkey: bool = False, why: str = "") -> PageFault:
            return PageFault(va, is_write=access == "write", is_exec=access == "exec",
                             is_user=user, present=True, pkey_violation=pkey,
                             description=why or None and "")

        is_user_page = bool(pte & PTE_U)
        if user and not is_user_page:
            raise fault(why=f"user access to supervisor page {va:#x}")

        if not user and is_user_page:
            if access == "exec" and ctx.cr4 & regs.CR4_SMEP:
                raise fault(why=f"SMEP: supervisor fetch from user page {va:#x}")
            if access != "exec" and ctx.cr4 & regs.CR4_SMAP and not ctx.ac:
                raise fault(why=f"SMAP: supervisor data access to user page {va:#x}")

        if access == "exec" and pte & PTE_NX:
            raise fault(why=f"NX: fetch from no-execute page {va:#x}")

        # for huge mappings, flags are checked on the 4 KiB frame hit
        if pte & PTE_PS:
            hit_fn = pte_frame(pte) + ((va & (HUGE_PAGE_SIZE - 1)) >> 12)
        else:
            hit_fn = pte_frame(pte)
        frame = self.phys.frame(hit_fn)
        if access == "write":
            if frame.is_shadow_stack != ctx.shadow_stack_op:
                raise fault(why=f"shadow-stack write discipline violated at {va:#x}")
            if not pte & PTE_W and not ctx.shadow_stack_op:
                if user or ctx.cr0 & regs.CR0_WP:
                    raise fault(why=f"write to read-only page {va:#x}")
        elif ctx.shadow_stack_op and not frame.is_shadow_stack:
            raise fault(why=f"shadow-stack read from normal page {va:#x}")

        # PKS applies to supervisor pages accessed in supervisor mode (data
        # accesses only; instruction fetch is not subject to keys).
        if (not user and not is_user_page and access != "exec"
                and ctx.cr4 & regs.CR4_PKS):
            rights = regs.pkey_rights(ctx.pkrs, pte_pkey(pte))
            if rights & regs.PKR_AD:
                raise fault(pkey=True, why=f"PKS access-disable on {va:#x}")
            if access == "write" and rights & regs.PKR_WD:
                raise fault(pkey=True, why=f"PKS write-disable on {va:#x}")

        # accessed/dirty maintenance
        new = pte | PTE_A | (PTE_D if access == "write" else 0)
        if new != pte:
            self.phys.write_u64(slot.pa, new)
        pa = (hit_fn << 12) | (va & (PAGE_SIZE - 1))
        return pa, pte

    # ------------------------------------------------------------------ #
    # checked byte access (used by the micro CPU and data channels)
    # ------------------------------------------------------------------ #

    def read(self, aspace: AddressSpace, va: int, size: int, ctx: AccessContext) -> bytes:
        out = bytearray()
        while size > 0:
            pa, _ = self.check(aspace, va, "read", ctx)
            chunk = min(size, PAGE_SIZE - (va & (PAGE_SIZE - 1)))
            out += self.phys.read(pa, chunk)
            va += chunk
            size -= chunk
        self.clock.charge(Cost.MEM, "mem")
        return bytes(out)

    def write(self, aspace: AddressSpace, va: int, data: bytes, ctx: AccessContext) -> None:
        off = 0
        while off < len(data):
            pa, _ = self.check(aspace, va, "write", ctx)
            chunk = min(len(data) - off, PAGE_SIZE - (va & (PAGE_SIZE - 1)))
            self.phys.write(pa, data[off:off + chunk])
            va += chunk
            off += chunk
        self.clock.charge(Cost.MEM, "mem")

    def fetch(self, aspace: AddressSpace, va: int, size: int, ctx: AccessContext) -> bytes:
        pa, _ = self.check(aspace, va, "exec", ctx)
        if (va & (PAGE_SIZE - 1)) + size > PAGE_SIZE:
            # straddles a page: validate the second page too
            self.check(aspace, (va + size - 1) & ~(PAGE_SIZE - 1), "exec", ctx)
        return self.phys.read(pa, size)

    def read_u64(self, aspace: AddressSpace, va: int, ctx: AccessContext) -> int:
        return int.from_bytes(self.read(aspace, va, 8, ctx), "little")

    def write_u64(self, aspace: AddressSpace, va: int, value: int, ctx: AccessContext) -> None:
        self.write(aspace, va, (value & (2 ** 64 - 1)).to_bytes(8, "little"), ctx)

    def touch(self, aspace: AddressSpace, va: int, access: str, ctx: AccessContext) -> int:
        """Permission-check an access without moving bytes (macro model).

        Returns the physical address. Used by the macro-level kernel and
        workloads, whose data lives in Python objects but whose *page
        accesses* must still obey (and exercise) the permission pipeline.
        """
        pa, _ = self.check(aspace, va, access, ctx)
        return pa
