"""Fixed-capacity ring buffer shared by the trace layer and the audit log.

Long-running and server benchmarks generate unbounded event streams; the
observability layer must never grow without bound (the old monitor
``audit_log`` was a plain ``list`` that did exactly that). A
:class:`RingBuffer` keeps the most recent ``capacity`` items and counts
what it overwrote, so consumers can tell "nothing happened" apart from
"events happened but were dropped".
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Bounded FIFO keeping the newest ``capacity`` items.

    Supports the list-ish read surface the audit log's consumers use:
    ``len``, iteration (oldest → newest), integer and slice indexing.
    Overwritten items bump :attr:`dropped`.
    """

    __slots__ = ("capacity", "dropped", "_buf", "_start")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._buf: list[T] = []
        self._start = 0

    def append(self, item: T) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(item)
        else:
            self._buf[self._start] = item
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    def clear(self) -> None:
        self._buf.clear()
        self._start = 0

    def to_list(self) -> list[T]:
        return self._buf[self._start:] + self._buf[:self._start]

    def __len__(self) -> int:
        return len(self._buf)

    def __bool__(self) -> bool:
        return bool(self._buf)

    def __iter__(self) -> Iterator[T]:
        n = len(self._buf)
        for i in range(n):
            yield self._buf[(self._start + i) % n]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.to_list()[index]
        n = len(self._buf)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"ring index {index} out of range ({n} items)")
        return self._buf[(self._start + index) % n]

    def __repr__(self) -> str:
        return (f"RingBuffer({len(self._buf)}/{self.capacity} items, "
                f"{self.dropped} dropped)")
