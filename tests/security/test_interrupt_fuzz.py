"""Interrupt-injection fuzz: the #INT gate holds at EVERY preemption point.

The paper assumes hardware patched against malicious interrupt injection
(Heckler/WeSee, §4.1) for *unexpected vectors*; for ordinary injectable
interrupts, Erebor's #INT gate must guarantee the OS handler never runs
with monitor permissions — no matter which instruction of the EMC the
interrupt lands on. This test injects at every single step of an EMC
round trip and asserts the invariant each time.
"""

import pytest

from repro.core.emc import EmcCall, MONITOR_DATA_VA
from repro.core.gates import PKRS_KERNEL, int_gate, int_gate_return
from repro.core.microrig import GateRig
from repro.hw import regs
from repro.hw.cpu import CpuHalt
from repro.hw.errors import HardwareFault
from repro.hw.isa import I
from repro.hw.testbench import KERNEL_CODE_VA

GATE_VA = 0x60_5000_0000
RETURN_VA = 0x60_6000_0000
HANDLER_VA = 0x60_7000_0000
PROBE_MSR = 0x7777


def build_rig():
    """A rig whose OS handler records the PKRS value it observes."""
    rig = GateRig()
    # OS interrupt handler: read PKRS into a probe MSR... it cannot wrmsr
    # (deprivileged), so record via a register the test inspects through
    # a store to kernel memory.
    rig.machine.map_data(0x60_9000_0000, 1, owner="kernel")
    rig.machine.load_code(HANDLER_VA, [
        I("movi", "rcx", imm=regs.IA32_PKRS),
        I("rdmsr"),                                  # rax = observed PKRS
        I("movi", "rbx", imm=0x60_9000_0000),
        I("store", "rbx", "rax"),                    # record it
        I("jmp", imm=RETURN_VA),
    ])
    rig.machine.load_code(GATE_VA, int_gate(HANDLER_VA))
    rig.machine.load_code(RETURN_VA, int_gate_return())
    rig.machine.install_idt({33: GATE_VA})
    return rig


def observed_pkrs(rig) -> int:
    hit = rig.machine.aspace.translate(0x60_9000_0000)
    return rig.machine.phys.read_u64(hit[0])


def run_one(inject_at_step: int) -> tuple[int, bool, int]:
    """Run a WRITE_MSR EMC, injecting vector 33 after `inject_at_step`
    retired instructions. Returns (observed_pkrs, completed, msr_value)."""
    rig = build_rig()
    stub = rig.caller_stub(int(EmcCall.WRITE_MSR), rsi=PROBE_MSR, rdx=0xAB)
    rig.machine.load_code(KERNEL_CODE_VA, stub)
    rig.cpu.mode = "kernel"
    rig.cpu.rip = KERNEL_CODE_VA
    steps = 0
    injected = False
    completed = False
    for _ in range(5000):
        if steps == inject_at_step and not injected:
            rig.cpu.deliver(33)
            injected = True
        try:
            rig.cpu.step()
        except CpuHalt:
            completed = True
            break
        steps += 1
    return observed_pkrs(rig), completed, rig.cpu.msrs.get(PROBE_MSR, 0)


def total_emc_steps() -> int:
    rig = build_rig()
    stub = rig.caller_stub(int(EmcCall.WRITE_MSR), rsi=PROBE_MSR, rdx=0xAB)
    rig.machine.load_code(KERNEL_CODE_VA, stub)
    rig.cpu.mode = "kernel"
    rig.cpu.rip = KERNEL_CODE_VA
    steps = 0
    for _ in range(5000):
        try:
            rig.cpu.step()
        except CpuHalt:
            return steps
        steps += 1
    raise AssertionError("EMC did not complete")


def test_injection_at_every_emc_instruction_never_leaks_permissions():
    """The core invariant, exhaustively: for every possible preemption
    point, the OS handler observes closed (kernel-profile) PKRS, and the
    interrupted EMC still completes correctly afterwards."""
    n = total_emc_steps()
    assert n > 30  # sanity: the sweep actually covers the gate path
    for inject_at in range(n):
        observed, completed, msr = run_one(inject_at)
        assert observed == PKRS_KERNEL, (
            f"OS handler saw open PKRS {observed:#x} when injected "
            f"at step {inject_at}")
        assert completed, f"EMC never completed (injected at {inject_at})"
        assert msr == 0xAB, f"EMC result lost (injected at {inject_at})"


def test_injection_outside_emc_also_sees_closed_permissions():
    rig = build_rig()
    rig.machine.load_code(KERNEL_CODE_VA, [I("nop"), I("nop"), I("hlt")])
    rig.cpu.mode = "kernel"
    rig.cpu.rip = KERNEL_CODE_VA
    rig.cpu.step()
    rig.cpu.deliver(33)          # interrupt plain kernel execution
    try:
        rig.cpu.run(max_steps=100)
    except HardwareFault:
        pytest.fail("int gate must not fault outside EMC")
    assert observed_pkrs(rig) == PKRS_KERNEL
    assert rig.cpu.msrs[regs.IA32_PKRS] == PKRS_KERNEL
