"""Seeded attack images: kernels the byte scan accepts but the CFG rejects.

Each builder packages a small malicious ``.text`` as a SELF image that
contains *no* sensitive byte sequence — Erebor's §5.1 scan passes it —
yet violates a structural property only :class:`repro.analysis.verifier.
StaticVerifier` can see.  One attack per check ID keeps failures
attributable; the CLI self-check and ``tests/security`` both consume
:func:`attack_corpus`.

Two extra builders cover the ERIM-style *unaligned* sensitive sequences
(a ``0xF0 + sub-opcode`` pair hidden inside an immediate, and one
spanning two adjacent instructions).  Those are caught by the byte scan
itself — they exist to pin the scan's every-byte-offset property and the
verifier's V6 reporting of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emc_abi import ENTRY_GATE_VA, EmcCall
from ..hw.isa import INSTR_SIZE, I, assemble
from ..kernel.image import KERNEL_TEXT_VA, SEC_EXEC, SEC_WRITE, Section, SelfImage

_VA = KERNEL_TEXT_VA


@dataclass(frozen=True)
class AttackImage:
    """One adversarial kernel image with its expected verdict."""

    name: str
    image: SelfImage
    expected_check: str      # the CHECKS id that must reject it
    passes_byte_scan: bool
    description: str


def _image(name: str, instrs, *, flags: int = SEC_EXEC,
           entry: int = _VA) -> SelfImage:
    return SelfImage(name, entry, [
        Section(".text", _VA, assemble(instrs), flags),
        Section(".data", _VA + 0x4000_0000, b"\x00" * 64, SEC_WRITE),
    ])


def rogue_gate_icall() -> AttackImage:
    """Non-thunk code icalls the entry gate — a forged EMC request."""
    instrs = [
        I("push", "rax"),
        I("movi", "rax", imm=ENTRY_GATE_VA),
        I("icall", "rax"),
        I("pop", "rax"),
        I("ret"),
    ]
    return AttackImage(
        "rogue-gate-icall", _image("rogue-gate-icall", instrs), "V3", True,
        "icall of the entry-gate VA with no instrumentation marshalling "
        "body: the kernel forges an EMC with attacker-controlled "
        "registers")


def non_endbr_indirect() -> AttackImage:
    """Statically-known indirect branch to a non-endbr landing pad."""
    instrs = [
        I("movi", "rbx", imm=_VA + 3 * INSTR_SIZE),
        I("icall", "rbx"),
        I("ret"),
        I("nop"),            # the landing pad: not an endbr
        I("ret"),
    ]
    return AttackImage(
        "non-endbr-indirect", _image("non-endbr-indirect", instrs), "V2",
        True,
        "movi+icall to an in-image target that is not an endbr — relies "
        "on runtime IBT instead of being provably safe at load time")


def wx_section() -> AttackImage:
    """A section mapped writable AND executable."""
    instrs = [I("nop"), I("ret")]
    return AttackImage(
        "wx-section", _image("wx-section", instrs,
                             flags=SEC_EXEC | SEC_WRITE), "V4", True,
        "benign-looking code in a W|X section: the kernel could rewrite "
        "its own verified text after the scan")


def jump_into_immediate() -> AttackImage:
    """Direct jump landing mid-instruction, inside an immediate."""
    instrs = [
        I("jmp", imm=_VA + INSTR_SIZE + 4),   # into slot 1's immediate
        I("movi", "rax", imm=0x1122_3344),
        I("ret"),
    ]
    return AttackImage(
        "jump-into-immediate", _image("jump-into-immediate", instrs),
        "V1", True,
        "jmp targets byte offset 16 — between instruction boundaries, "
        "inside the movi immediate")


def section_fallthrough() -> AttackImage:
    """Executable section whose last instruction falls off the end."""
    instrs = [I("nop"), I("nop")]
    return AttackImage(
        "section-fallthrough", _image("section-fallthrough", instrs),
        "V5", True,
        "section ends in a nop: execution runs off the mapped text into "
        "whatever is adjacent")


def clobber_thunk() -> AttackImage:
    """A pre-fix-shaped gate thunk with no save/restore bracket."""
    thunk_va = _VA + 2 * INSTR_SIZE
    instrs = [
        I("call", imm=thunk_va),
        I("hlt"),
        # the thunk: correct wrmsr marshalling, but the live values of
        # rdi/rsi/rdx/rax at the call site are destroyed
        I("movi", "rdi", imm=int(EmcCall.WRITE_MSR)),
        I("mov", "rsi", "rcx"),
        I("mov", "rdx", "rax"),
        I("movi", "rax", imm=ENTRY_GATE_VA),
        I("icall", "rax"),
        I("ret"),
    ]
    return AttackImage(
        "clobber-thunk", _image("clobber-thunk", instrs), "V7", True,
        "template-shaped gate thunk that overwrites rdi/rsi/rdx/rax "
        "without push/pop — silent kernel state corruption per EMC")


def erim_unaligned_immediate() -> AttackImage:
    """0xF0+sub-opcode hidden inside a movi's 8-byte immediate."""
    # imm = 0x5F000 → little-endian bytes 00 F0 05 ... : the (F0, 05)
    # pair sits at byte offsets 5..6 of the instruction — an unaligned
    # tdcall encoding reachable by a mid-instruction jump
    instrs = [
        I("movi", "rax", imm=0x5F000),
        I("ret"),
    ]
    return AttackImage(
        "erim-unaligned-immediate",
        _image("erim-unaligned-immediate", instrs), "V6", False,
        "sensitive sequence inside an immediate (ERIM-style): only an "
        "every-byte-offset scan finds it")


def erim_spanning_instructions() -> AttackImage:
    """0xF0 ending one instruction, sub-opcode starting the next."""
    # instr 0's top immediate byte is 0xF0 (offset 11); instr 1's opcode
    # byte is hlt = 0x02 (offset 12) → an unaligned wrmsr at offset 11
    instrs = [
        I("movi", "rax", imm=0xF0 << 56),
        I("hlt"),
    ]
    return AttackImage(
        "erim-spanning-instructions",
        _image("erim-spanning-instructions", instrs), "V6", False,
        "sensitive sequence spanning two adjacent instructions "
        "(ERIM-style straddle)")


def attack_corpus() -> list[AttackImage]:
    """Every seeded attack, byte-scan-passing ones first (stable order)."""
    return [
        rogue_gate_icall(),
        non_endbr_indirect(),
        wx_section(),
        jump_into_immediate(),
        section_fallthrough(),
        clobber_thunk(),
        erim_unaligned_immediate(),
        erim_spanning_instructions(),
    ]
