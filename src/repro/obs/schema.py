"""Hand-rolled schema checks for the obs export formats (zero-dependency).

CI's smoke job runs ``python -m repro.obs --workload helloworld --export
json`` and validates the output with :func:`check_export`; tests validate
the Chrome trace with :func:`check_chrome_trace`. These are deliberately
small structural checks — presence and types of the load-bearing fields —
not a full JSON-Schema implementation (the container must not grow
dependencies).
"""

from __future__ import annotations

_EVENT_KEYS = {"name", "cat", "kind", "begin", "end", "depth", "path", "args"}


def validate_export(obj) -> list[str]:
    """Return a list of problems with an obs JSON bundle (empty = valid)."""
    errors: list[str] = []

    def need(container, key, types, where):
        if not isinstance(container, dict) or key not in container:
            errors.append(f"{where}: missing key {key!r}")
            return None
        value = container[key]
        if not isinstance(value, types):
            errors.append(f"{where}.{key}: expected {types}, "
                          f"got {type(value).__name__}")
            return None
        return value

    if not isinstance(obj, dict):
        return [f"top level: expected dict, got {type(obj).__name__}"]

    meta = need(obj, "meta", dict, "top")
    if meta is not None:
        need(meta, "workload", str, "meta")
        need(meta, "setting", str, "meta")
        need(meta, "cycles", int, "meta")
        need(meta, "seconds", (int, float), "meta")
        wall = need(meta, "wall_cycles", int, "meta")
        per_cpu = need(meta, "per_cpu_cycles", list, "meta")
        if wall is not None and per_cpu:
            if wall != max(per_cpu):
                errors.append("meta.wall_cycles: not the max over "
                              "meta.per_cpu_cycles")
        # ring-buffer health and the audit-chain head are load-bearing:
        # a bundle that silently lost events, or that cannot be tied to
        # the monitor's tamper-evident log, must not validate
        need(meta, "dropped", int, "meta")
        need(meta, "audit_head", str, "meta")
        # the CFG-verifier digest is optional (older bundles predate it)
        # but must be a string when present
        if "cfg_report_digest" in meta:
            need(meta, "cfg_report_digest", str, "meta")
        if "dataflow_report_digest" in meta:
            need(meta, "dataflow_report_digest", str, "meta")

    trace = need(obj, "trace", dict, "top")
    if trace is not None:
        need(trace, "dropped", int, "trace")
        events = need(trace, "events", list, "trace")
        if events is not None:
            for i, event in enumerate(events[:64] + events[-8:]):
                if not isinstance(event, dict):
                    errors.append(f"trace.events[{i}]: not a dict")
                    continue
                missing = _EVENT_KEYS - set(event)
                if missing:
                    errors.append(f"trace.events[{i}]: missing {sorted(missing)}")
                elif event["end"] < event["begin"]:
                    errors.append(f"trace.events[{i}]: end < begin")

    metrics = need(obj, "metrics", dict, "top")
    if metrics is not None:
        for section in ("counters", "gauges", "histograms"):
            series = need(metrics, section, dict, "metrics")
            if series is None:
                continue
            for name, by_label in series.items():
                if not isinstance(by_label, dict):
                    errors.append(f"metrics.{section}.{name}: not a dict")

    profile = need(obj, "profile", dict, "top")
    if profile is not None:
        need(profile, "total_cycles", int, "profile")
        collapsed = need(profile, "collapsed", list, "profile")
        if collapsed is not None:
            for i, line in enumerate(collapsed[:64]):
                if (not isinstance(line, str) or " " not in line
                        or not line.rsplit(" ", 1)[1].isdigit()):
                    errors.append(f"profile.collapsed[{i}]: not a "
                                  f"'path cycles' line: {line!r}")

    # the budget ledger is optional (older bundles predate it) but must
    # be internally conserved when present
    if "ledger" in obj:
        errors.extend(validate_ledger(obj["ledger"]))

    return errors


def check_export(obj) -> None:
    """Raise ``ValueError`` listing every schema problem (None if valid)."""
    errors = validate_export(obj)
    if errors:
        raise ValueError("obs export failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_ledger(obj) -> list[str]:
    """Structural + conservation check of one budget ledger
    (:func:`repro.obs.ledger.capture_ledger`)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"ledger: expected dict, got {type(obj).__name__}"]
    for key, types in (("version", int), ("cycles", int),
                       ("wall_cycles", int),
                       ("wall_seconds", (int, float)),
                       ("per_cpu_cycles", list), ("per_cpu_busy", list),
                       ("lanes", dict), ("planes", dict),
                       ("conservation", dict)):
        if key not in obj:
            errors.append(f"ledger: missing key {key!r}")
        elif not isinstance(obj[key], types):
            errors.append(f"ledger.{key}: expected "
                          f"{getattr(types, '__name__', types)}, "
                          f"got {type(obj[key]).__name__}")
    lanes = obj.get("lanes")
    if isinstance(lanes, dict):
        for name, lane in lanes.items():
            if not isinstance(lane, dict):
                errors.append(f"ledger.lanes[{name!r}]: not a dict")
                continue
            for key in ("busy", "planes", "tags"):
                if key not in lane:
                    errors.append(f"ledger.lanes[{name!r}]: "
                                  f"missing key {key!r}")
            for section in ("planes", "tags"):
                body = lane.get(section)
                if isinstance(body, dict):
                    for tag, cycles in body.items():
                        if not isinstance(cycles, int) or cycles < 0:
                            errors.append(
                                f"ledger.lanes[{name!r}].{section}"
                                f"[{tag!r}]: not a non-negative int")
    conservation = obj.get("conservation")
    if isinstance(conservation, dict):
        if not isinstance(conservation.get("ok"), bool):
            errors.append("ledger.conservation.ok: missing or not a bool")
        elif not conservation["ok"]:
            for violation in conservation.get("violations", ()):
                errors.append(f"ledger.conservation: {violation}")
    # re-derive the invariant rather than trusting the embedded verdict
    if not errors:
        from .ledger import verify_conservation
        rerun = verify_conservation(obj)
        for violation in rerun["violations"]:
            errors.append(f"ledger (re-derived): {violation}")
    return errors


def check_ledger(obj) -> None:
    errors = validate_ledger(obj)
    if errors:
        raise ValueError("budget ledger failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_diff_report(obj) -> list[str]:
    """Structural check of one divergence report
    (:func:`repro.obs.diff.diff_any`)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"diff: expected dict, got {type(obj).__name__}"]
    for key, types in (("version", int), ("mode", str),
                       ("inputs", dict), ("divergent", bool),
                       ("digest_mismatches", list)):
        if key not in obj:
            errors.append(f"diff: missing key {key!r}")
        elif not isinstance(obj[key], types):
            errors.append(f"diff.{key}: expected {types.__name__}, "
                          f"got {type(obj[key]).__name__}")
    mode = obj.get("mode")
    if mode not in ("bundle", "digest-map"):
        errors.append(f"diff.mode: unknown mode {mode!r}")
    if mode == "bundle":
        for section in ("simulated_deltas", "plane_deltas",
                        "span_deltas", "tenant_deltas"):
            deltas = obj.get(section)
            if not isinstance(deltas, list):
                errors.append(f"diff.{section}: missing or not a list")
                continue
            for i, d in enumerate(deltas):
                if not isinstance(d, dict) or not {"name", "a", "b",
                                                   "delta"} <= set(d):
                    errors.append(f"diff.{section}[{i}]: "
                                  "missing name/a/b/delta")
        seq = obj.get("first_divergent_audit_seq")
        if seq is not None and not isinstance(seq, int):
            errors.append("diff.first_divergent_audit_seq: not an int")
    for i, d in enumerate(obj.get("digest_mismatches") or []):
        if not isinstance(d, dict) or not {"name", "a", "b"} <= set(d):
            errors.append(f"diff.digest_mismatches[{i}]: "
                          "missing name/a/b")
    # the verdict must agree with the evidence
    if isinstance(obj.get("divergent"), bool):
        has_deltas = bool(obj.get("digest_mismatches")) or any(
            obj.get(s) for s in ("simulated_deltas", "plane_deltas",
                                 "span_deltas", "tenant_deltas"))
        if obj["divergent"] != has_deltas:
            errors.append("diff.divergent: verdict disagrees with the "
                          "recorded deltas")
    return errors


def check_diff_report(obj) -> None:
    errors = validate_diff_report(obj)
    if errors:
        raise ValueError("diff report failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_chrome_trace(obj) -> list[str]:
    """Structural check of a Chrome ``trace_event`` dict."""
    errors: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["missing traceEvents"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            errors.append(f"traceEvents[{i}]: not a dict")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                errors.append(f"traceEvents[{i}]: missing {key!r}")
        ph = e.get("ph")
        if ph in ("X", "i") and "ts" not in e:
            errors.append(f"traceEvents[{i}]: missing ts")
        if ph == "X" and e.get("dur", -1) < 0:
            errors.append(f"traceEvents[{i}]: X event without dur >= 0")
    return errors


def check_chrome_trace(obj) -> None:
    errors = validate_chrome_trace(obj)
    if errors:
        raise ValueError("chrome trace failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_flight_dump(obj) -> list[str]:
    """Structural check of one frozen flight-recorder black box."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level: expected dict, got {type(obj).__name__}"]
    for key, types in (("reason", str), ("detail", str),
                       ("trace_id", str), ("cycle", int),
                       ("window", dict), ("audit_head", str),
                       ("wall_cycles", int), ("per_cpu_cycles", list),
                       ("per_cpu", dict), ("utilization", dict),
                       ("ledger", dict), ("traceEvents", list)):
        if key not in obj:
            errors.append(f"flight: missing key {key!r}")
        elif not isinstance(obj[key], types):
            errors.append(f"flight.{key}: expected {types.__name__}, "
                          f"got {type(obj[key]).__name__}")
    window = obj.get("window")
    if isinstance(window, dict):
        for key in ("start", "end", "lookback_kcycles"):
            if not isinstance(window.get(key), int):
                errors.append(f"flight.window.{key}: missing or not an int")
        if (isinstance(window.get("start"), int)
                and isinstance(window.get("end"), int)
                and window["end"] < window["start"]):
            errors.append("flight.window: end < start")
    per_cpu = obj.get("per_cpu")
    if isinstance(per_cpu, dict):
        for lane, body in per_cpu.items():
            if not isinstance(body, dict):
                errors.append(f"flight.per_cpu[{lane!r}]: not a dict")
                continue
            if not isinstance(body.get("events"), list):
                errors.append(f"flight.per_cpu[{lane!r}].events: not a list")
            if not isinstance(body.get("dropped"), int):
                errors.append(f"flight.per_cpu[{lane!r}].dropped: "
                              "missing or not an int")
    if isinstance(obj.get("ledger"), dict) and obj["ledger"]:
        errors.extend(validate_ledger(obj["ledger"]))
    if isinstance(obj.get("traceEvents"), list):
        errors.extend(validate_chrome_trace(
            {"traceEvents": obj["traceEvents"]}))
    return errors


def check_flight_dump(obj) -> None:
    errors = validate_flight_dump(obj)
    if errors:
        raise ValueError("flight dump failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_request_trace(obj) -> list[str]:
    """Structural check of one rebuilt causal span tree (a list of root
    nodes as produced by ``SpanNode.to_dict``)."""
    errors: list[str] = []
    if not isinstance(obj, list):
        return [f"request trace: expected list of roots, "
                f"got {type(obj).__name__}"]

    def walk(node, where):
        if not isinstance(node, dict):
            errors.append(f"{where}: not a dict")
            return
        for key, types in (("name", str), ("kind", str), ("begin", int),
                           ("end", int), ("args", dict),
                           ("children", list)):
            if key not in node:
                errors.append(f"{where}: missing key {key!r}")
            elif not isinstance(node[key], types):
                errors.append(f"{where}.{key}: expected {types.__name__}, "
                              f"got {type(node[key]).__name__}")
        if isinstance(node.get("begin"), int) \
                and isinstance(node.get("end"), int):
            if node["end"] < node["begin"]:
                errors.append(f"{where}: end < begin")
            for i, child in enumerate(node.get("children") or []):
                walk(child, f"{where}.children[{i}]")
                if (isinstance(child, dict)
                        and isinstance(child.get("begin"), int)
                        and isinstance(child.get("end"), int)
                        and not (node["begin"] <= child["begin"]
                                 and child["end"] <= node["end"])):
                    errors.append(f"{where}.children[{i}]: not contained "
                                  "in parent interval")

    for i, root in enumerate(obj):
        walk(root, f"roots[{i}]")
    return errors


def check_request_trace(obj) -> None:
    errors = validate_request_trace(obj)
    if errors:
        raise ValueError("request trace failed schema check:\n  "
                         + "\n  ".join(errors))


def validate_hostprof_report(obj) -> list[str]:
    """Structural check of a host-time attribution report
    (``HostProfiler.report()``)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"hostprof: expected dict, got {type(obj).__name__}"]
    for key, types in (("window_s", (int, float)),
                       ("attributed_s", (int, float)),
                       ("unattributed_s", (int, float)),
                       ("coverage", (int, float)), ("entries", int),
                       ("entry_overhead_us", (int, float)),
                       ("subsystems", list)):
        if key not in obj:
            errors.append(f"hostprof: missing key {key!r}")
        elif not isinstance(obj[key], types):
            errors.append(f"hostprof.{key}: wrong type "
                          f"{type(obj[key]).__name__}")
    for i, row in enumerate(obj.get("subsystems") or []):
        if not isinstance(row, dict):
            errors.append(f"hostprof.subsystems[{i}]: not a dict")
            continue
        for key, types in (("name", str), ("self_s", (int, float)),
                           ("share", (int, float)), ("calls", int)):
            if not isinstance(row.get(key), types):
                errors.append(f"hostprof.subsystems[{i}].{key}: "
                              "missing or wrong type")
    shares = [r.get("share", 0) for r in obj.get("subsystems") or []
              if isinstance(r, dict)]
    if shares and sum(shares) > 1.02:   # self-time shares cannot exceed 1
        errors.append("hostprof.subsystems: shares sum past 1.0 "
                      f"({sum(shares):.3f}) — double counting")
    return errors


def check_hostprof_report(obj) -> None:
    errors = validate_hostprof_report(obj)
    if errors:
        raise ValueError("hostprof report failed schema check:\n  "
                         + "\n  ".join(errors))
