"""Tests for DMA devices, the NIC, platform profiles, and UINTR fabric."""

import pytest

from repro.hw.devices import DmaBlocked, DmaEngine, VirtualNic
from repro.hw.memory import PAGE_SIZE, PhysicalMemory
from repro.hw.platform import CCA, PROFILES, SEV, TDX, profile
from repro.hw.uintr import UintrFabric

MIB = 1024 * 1024


class FakeSept:
    def __init__(self, shared=()):
        self.shared = set(shared)

    def is_shared(self, fn):
        return fn in self.shared


@pytest.fixture
def phys():
    return PhysicalMemory(16 * MIB)


# --- DMA ---------------------------------------------------------------------

def test_dma_reads_shared_frames(phys):
    dma = DmaEngine(phys, FakeSept({3}))
    phys.write(3 * PAGE_SIZE, b"shared-data")
    assert dma.dma_read(3 * PAGE_SIZE, 11) == b"shared-data"


def test_dma_blocked_on_private_frames(phys):
    dma = DmaEngine(phys, FakeSept({3}))
    with pytest.raises(DmaBlocked):
        dma.dma_read(4 * PAGE_SIZE, 8)
    assert dma.blocked_attempts == [4]


def test_dma_write_checks_every_spanned_frame(phys):
    dma = DmaEngine(phys, FakeSept({5}))  # frame 6 is private
    with pytest.raises(DmaBlocked):
        dma.dma_write(5 * PAGE_SIZE + PAGE_SIZE - 4, b"x" * 16)


def test_dma_write_lands_in_memory(phys):
    dma = DmaEngine(phys, FakeSept({7}))
    dma.dma_write(7 * PAGE_SIZE, b"incoming")
    assert phys.read(7 * PAGE_SIZE, 8) == b"incoming"


# --- NIC ------------------------------------------------------------------------

def test_nic_transmit_is_host_visible(phys):
    nic = VirtualNic(DmaEngine(phys, FakeSept({2})))
    phys.write(2 * PAGE_SIZE, b"packet-bytes")
    nic.guest_transmit(2 * PAGE_SIZE, 12)
    assert nic.tx_log == [b"packet-bytes"]


def test_nic_transmit_callback(phys):
    got = []
    nic = VirtualNic(DmaEngine(phys, FakeSept({2})))
    nic.on_transmit = got.append
    phys.write(2 * PAGE_SIZE, b"ping")
    nic.guest_transmit(2 * PAGE_SIZE, 4)
    assert got == [b"ping"]


def test_nic_receive_via_dma(phys):
    nic = VirtualNic(DmaEngine(phys, FakeSept({2})))
    nic.host_inject(b"from-outside")
    n = nic.guest_receive(2 * PAGE_SIZE, 64)
    assert n == 12
    assert phys.read(2 * PAGE_SIZE, 12) == b"from-outside"


def test_nic_receive_empty_queue(phys):
    nic = VirtualNic(DmaEngine(phys, FakeSept({2})))
    assert nic.guest_receive(2 * PAGE_SIZE, 64) == 0


def test_nic_receive_into_private_frame_blocked(phys):
    nic = VirtualNic(DmaEngine(phys, FakeSept()))
    nic.host_inject(b"x")
    with pytest.raises(DmaBlocked):
        nic.guest_receive(2 * PAGE_SIZE, 64)


# --- platform profiles ------------------------------------------------------------

def test_three_profiles_registered():
    assert set(PROFILES) == {"tdx", "sev", "cca"}
    assert profile("tdx") is TDX


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        profile("sgx")


def test_sev_lacks_pks_with_fallback():
    assert not SEV.protection_keys
    assert SEV.permission_switch_multiplier > 1
    assert "page table" in SEV.protection_key_mechanism


def test_tdx_cca_have_native_keys():
    for prof in (TDX, CCA):
        assert prof.protection_keys
        assert prof.permission_switch_multiplier == 1.0


def test_table7_column_values():
    assert TDX.ghci_instruction == "tdcall"
    assert SEV.ghci_instruction == "vmgexit"
    assert CCA.ghci_instruction == "smc"
    assert CCA.hw_cfi_forward == "BTI" and CCA.hw_cfi_backward == "GCS"


# --- UINTR fabric ---------------------------------------------------------------

def test_uintr_posts_and_delivers():
    fabric = UintrFabric()
    got = []
    fabric.register_receiver(4, lambda sender, idx: got.append((sender, idx)))

    class FakeCpu:
        cpu_id = 2

    fabric.send(FakeCpu(), 4)
    fabric.send(FakeCpu(), 9)   # no receiver: posted but not delivered
    assert got == [(2, 4)]
    assert fabric.posted == [(2, 4), (2, 9)]
