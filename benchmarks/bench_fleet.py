"""Fleet bench: forked/warm start amortization + §9.2 sharing at 8 forks.

Drives the full orchestration stack — template capture, warm pool,
admission, attested sessions — with the deterministic load generator and
pins the PR's headline numbers: forked and warm starts ≥5× cheaper than
a cold boot, 8 forked llama sandboxes deduplicating physical frames at
least as hard as the paper-scale sharing arithmetic, and byte-identical
repeats under one seed.
"""

import pytest

from repro.baselines.unikernel import paper_scale_comparison
from repro.bench.report import format_table, mib, pct
from repro.fleet import run_fleet
from repro.vm import MIB

CLIENTS = 8


@pytest.fixture(scope="module")
def fleet():
    """8 llama clients, 8-slot pool: every session is a concurrent fork."""
    report, _system = run_fleet(workload="llama.cpp", clients=CLIENTS,
                                requests=1, pool_size=CLIENTS,
                                tenants=CLIENTS, seed=7, scale=0.1,
                                memory_bytes=1024 * MIB,
                                cma_bytes=512 * MIB)
    return report


@pytest.fixture(scope="module")
def reuse_fleet():
    """8 llama clients over 2 slots: 6 sessions ride the warm path."""
    report, _system = run_fleet(workload="llama.cpp", clients=CLIENTS,
                                requests=1, pool_size=2, tenants=2,
                                seed=7, scale=0.1,
                                memory_bytes=1024 * MIB,
                                cma_bytes=512 * MIB)
    return report


def test_fork_and_warm_start_amortization(benchmark, fleet, reuse_fleet):
    report = benchmark.pedantic(lambda: reuse_fleet, rounds=1, iterations=1)
    assert report.outcomes == {"completed": CLIENTS}
    # PR acceptance: both cheap paths beat cold creation by >=5x
    assert report.fork_speedup() >= 5
    assert report.warm_speedup() >= 5
    assert fleet.fork_speedup() >= 5
    forks = report.fork_start_cycles
    warms = report.warm_start_cycles
    rows = [
        ["cold capture (boot+init)", 1, f"{report.cold_start_cycles:,}",
         "1.0x"],
        ["CoW fork", len(forks), f"{sum(forks) // len(forks):,}",
         f"{report.fork_speedup():,.0f}x"],
        ["warm reset", len(warms), f"{sum(warms) // len(warms):,}",
         f"{report.warm_speedup():,.0f}x"],
    ]
    print("\n" + format_table(
        "Fleet start paths, llama.cpp (cycles per client-ready sandbox)",
        ["path", "starts", "cycles", "vs cold"], rows))


def test_eight_forks_hit_paper_shaped_dedup(benchmark, fleet):
    """S3: 8 forked llama sandboxes share model *and* template frames.

    The paper's §9.2 arithmetic shares only the common model region
    (89.1% at 4 GB scale; ``paper_scale_comparison(8)`` ≈ 77.8% at the
    honest per-client footprint). The fork engine also shares the
    confined image copy-on-write, so the measured reduction must clear
    the paper-shaped ratio — and the stricter 85% bar, approaching the
    8-way physical ceiling of 87.5%.
    """
    report = benchmark.pedantic(lambda: fleet, rounds=1, iterations=1)
    paper = paper_scale_comparison(CLIENTS)
    assert report.outcomes == {"completed": CLIENTS}
    assert report.memory_reduction >= paper.reduction
    assert report.memory_reduction >= 0.85
    # dedup is physical: each client's marginal memory is the few pages
    # it actually dirtied, far below its virtual confined image
    assert report.marginal_bytes_mean * 20 < report.template_bytes
    rows = [
        ["unikernel-per-client", CLIENTS, mib(report.unikernel_bytes), "-"],
        ["fleet (template + CoW forks)", CLIENTS, mib(report.fleet_bytes),
         pct(report.memory_reduction)],
        [paper.label, paper.clients, mib(paper.erebor_bytes),
         pct(paper.reduction)],
    ]
    print("\n" + format_table(
        "Per-fleet physical memory, 8 llama clients "
        "(paper: up to 89.1% saved)",
        ["configuration", "clients", "footprint", "saved"], rows))


def test_marginal_client_memory_below_unikernel(benchmark, fleet):
    report = benchmark.pedantic(lambda: fleet, rounds=1, iterations=1)
    per_client_unikernel = report.unikernel_bytes // CLIENTS
    assert report.marginal_bytes_max < per_client_unikernel
    assert report.marginal_bytes_mean > 0      # CoW actually broke pages


def test_fleet_is_deterministic(benchmark):
    def twice():
        a, _ = run_fleet(workload="llama.cpp", clients=4, requests=2,
                         pool_size=2, tenants=2, seed=11, scale=0.1,
                         memory_bytes=1024 * MIB, cma_bytes=512 * MIB)
        b, _ = run_fleet(workload="llama.cpp", clients=4, requests=2,
                         pool_size=2, tenants=2, seed=11, scale=0.1,
                         memory_bytes=1024 * MIB, cma_bytes=512 * MIB)
        return a, b

    a, b = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()


def test_throughput_reported(benchmark, reuse_fleet):
    report = benchmark.pedantic(lambda: reuse_fleet, rounds=1, iterations=1)
    assert report.requests_served == CLIENTS
    assert report.throughput_rps > 0
    assert report.serve_cycles < report.total_cycles
